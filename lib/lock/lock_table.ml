module Engine = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Symbol = Icdb_util.Symbol

type outcome = Granted | Timeout | Deadlock

exception Lock_revoked

(* Objects are interned symbols: callers intern once (typically at workload
   generation or at the operation boundary) and every structure below is
   int-keyed — the dense-id [entries] array makes the per-acquire lookup an
   array index instead of a string hash. Observer events carry the symbol;
   listeners resolve it to a string only when they actually materialize a
   label (e.g. with tracing on). *)

type observer_event =
  | Wait_started of { owner : int; obj : Symbol.t }
  | Wait_ended of {
      owner : int;
      obj : Symbol.t;
      outcome : [ `Granted | `Timeout | `Deadlock | `Cancelled ];
      waited : float;
    }
  | Acquired of { owner : int; obj : Symbol.t }
  | Released of { owner : int; obj : Symbol.t; held : float }

type 'mode holder = { h_owner : int; mutable h_mode : 'mode; mutable acquired_at : float }

type 'mode waiter = {
  w_owner : int;
  w_mode : 'mode;
  w_upgrade : bool;
  w_since : float;
  mutable w_active : bool;
  w_resume : outcome Fiber.resumer;
}

type 'mode entry = { mutable holders : 'mode holder list; waiters : 'mode waiter Queue.t }

type 'mode t = {
  engine : Engine.t;
  syms : Symbol.table;
  compatible : 'mode -> 'mode -> bool;
  combine : 'mode -> 'mode -> 'mode;
  (* dense symbol id -> entry; symbols come from one per-federation (or
     per-site) table, so the array stays compact *)
  mutable entries : 'mode entry option array;
  (* owner -> objects held. The inner table is keyed by the object's
     *string* name (mapping to its symbol) on purpose: release order during
     [release_all] is this table's iteration order, which feeds fiber
     wake-ups — keeping the seed's string-keyed layout keeps simulation
     schedules, and therefore reports, byte-identical. *)
  owned : (int, (string, Symbol.t) Hashtbl.t) Hashtbl.t;
  (* owner -> the single wait it is currently blocked in *)
  waiting_on : (int, Symbol.t * 'mode waiter) Hashtbl.t;
  (* scratch visited-set for [would_deadlock], generation-stamped so checks
     reuse it without a per-check allocation or clear *)
  dd_visited : (int, int) Hashtbl.t;
  mutable dd_gen : int;
  mutable hold_time_hook : obj:Symbol.t -> duration:float -> unit;
  mutable observer : observer_event -> unit;
  mutable acquisitions : int;
  mutable waits : int;
  mutable deadlocks : int;
  mutable timeouts : int;
  mutable held_total : int; (* live (owner, object) holder pairs *)
}

let create engine ~syms ~compatible ~combine =
  {
    engine;
    syms;
    compatible;
    combine;
    entries = Array.make 256 None;
    owned = Hashtbl.create 64;
    waiting_on = Hashtbl.create 64;
    dd_visited = Hashtbl.create 64;
    dd_gen = 0;
    hold_time_hook = (fun ~obj:_ ~duration:_ -> ());
    observer = (fun _ -> ());
    acquisitions = 0;
    waits = 0;
    deadlocks = 0;
    timeouts = 0;
    held_total = 0;
  }

let symbols t = t.syms
let intern t s = Symbol.intern t.syms s
let obj_name t obj = Symbol.name t.syms obj

(* Pre-size the dense entries array for a known object population (e.g. a
   million preloaded accounts) so the first acquires don't pay log2(n)
   doubling copies. *)
let ensure_capacity t n =
  if n > Array.length t.entries then begin
    let bigger = Array.make n None in
    Array.blit t.entries 0 bigger 0 (Array.length t.entries);
    t.entries <- bigger
  end

let entry_slot t obj =
  if obj >= Array.length t.entries then begin
    let n = Array.length t.entries in
    let bigger = Array.make (max (2 * n) (obj + 1)) None in
    Array.blit t.entries 0 bigger 0 n;
    t.entries <- bigger
  end;
  t.entries.(obj)

let find_entry t obj = if obj < Array.length t.entries then t.entries.(obj) else None

let entry_of t obj =
  match entry_slot t obj with
  | Some e -> e
  | None ->
    let e = { holders = []; waiters = Queue.create () } in
    t.entries.(obj) <- Some e;
    e

let find_holder entry owner = List.find_opt (fun h -> h.h_owner = owner) entry.holders

let note_owned t owner obj =
  let objs =
    match Hashtbl.find_opt t.owned owner with
    | Some objs -> objs
    | None ->
      let objs = Hashtbl.create 8 in
      Hashtbl.replace t.owned owner objs;
      objs
  in
  Hashtbl.replace objs (obj_name t obj) obj

let active_waiters entry =
  Queue.fold (fun acc w -> if w.w_active then w :: acc else acc) [] entry.waiters
  |> List.rev

(* A request is grantable when every *other* holder's mode is compatible
   with the (possibly combined) requested mode. *)
let grantable t entry ~owner ~mode ~upgrade =
  let want =
    if upgrade then
      match find_holder entry owner with
      | Some h -> t.combine h.h_mode mode
      | None -> mode
    else mode
  in
  List.for_all
    (fun h -> h.h_owner = owner || t.compatible h.h_mode want)
    entry.holders

let grant t entry ~obj ~owner ~mode =
  (match find_holder entry owner with
  | Some h -> h.h_mode <- t.combine h.h_mode mode
  | None ->
    entry.holders <-
      { h_owner = owner; h_mode = mode; acquired_at = Engine.now t.engine } :: entry.holders;
    t.held_total <- t.held_total + 1);
  note_owned t owner obj;
  t.acquisitions <- t.acquisitions + 1;
  t.observer (Acquired { owner; obj })

(* Wake newly grantable waiters: upgrades first (they hold part of the lock
   already — making them wait behind ordinary requests invites needless
   deadlocks), then the FIFO prefix of ordinary waiters. *)
let grant_pass t obj entry =
  let wake w =
    w.w_active <- false;
    Hashtbl.remove t.waiting_on w.w_owner;
    t.observer
      (Wait_ended
         { owner = w.w_owner; obj; outcome = `Granted;
           waited = Engine.now t.engine -. w.w_since });
    grant t entry ~obj ~owner:w.w_owner ~mode:w.w_mode;
    w.w_resume (Ok Granted)
  in
  Queue.iter
    (fun w ->
      if w.w_active && w.w_upgrade
         && grantable t entry ~owner:w.w_owner ~mode:w.w_mode ~upgrade:true
      then wake w)
    entry.waiters;
  let continue = ref true in
  while !continue do
    match Queue.peek_opt entry.waiters with
    | None -> continue := false
    | Some w ->
      if not w.w_active then ignore (Queue.pop entry.waiters)
      else if grantable t entry ~owner:w.w_owner ~mode:w.w_mode ~upgrade:w.w_upgrade then begin
        ignore (Queue.pop entry.waiters);
        wake w
      end
      else continue := false
  done;
  if entry.holders = [] && Queue.is_empty entry.waiters then t.entries.(obj) <- None

(* Waits-for edges of a blocked owner: the holders of the object it waits
   on, plus active waiters queued ahead of it (they will be granted first). *)
let blockers t owner =
  match Hashtbl.find_opt t.waiting_on owner with
  | None -> []
  | Some (obj, w) -> (
    match find_entry t obj with
    | None -> []
    | Some entry ->
      let from_holders =
        List.filter_map
          (fun h -> if h.h_owner <> owner then Some h.h_owner else None)
          entry.holders
      in
      let ahead = ref [] in
      (try
         Queue.iter
           (fun w' ->
             if w' == w then raise Exit
             else if w'.w_active && w'.w_owner <> owner then ahead := w'.w_owner :: !ahead)
           entry.waiters
       with Exit -> ());
      from_holders @ List.rev !ahead)

(* Would blocking [owner] on [entry] close a waits-for cycle back to it?
   The visited-set is the table's generation-stamped scratch table, so the
   check allocates nothing beyond the transient blocker lists. *)
let would_deadlock t entry ~owner ~upgrade =
  let initial =
    let from_holders =
      List.filter_map
        (fun h -> if h.h_owner <> owner then Some h.h_owner else None)
        entry.holders
    in
    if upgrade then from_holders
    else
      from_holders
      @ List.filter_map
          (fun w -> if w.w_owner <> owner then Some w.w_owner else None)
          (active_waiters entry)
  in
  t.dd_gen <- t.dd_gen + 1;
  let gen = t.dd_gen in
  let rec reaches_owner node =
    if node = owner then true
    else if Hashtbl.find_opt t.dd_visited node = Some gen then false
    else begin
      Hashtbl.replace t.dd_visited node gen;
      List.exists reaches_owner (blockers t node)
    end
  in
  List.exists reaches_owner initial

let acquire t ~owner ~obj ~mode ?timeout () =
  let entry = entry_of t obj in
  let upgrade, already_covered =
    match find_holder entry owner with
    | Some h ->
      let want = t.combine h.h_mode mode in
      (true, want = h.h_mode)
    | None -> (false, false)
  in
  if already_covered then Granted
  else if
    grantable t entry ~owner ~mode ~upgrade
    && (upgrade || Queue.fold (fun acc w -> acc && not w.w_active) true entry.waiters)
  then begin
    grant t entry ~obj ~owner ~mode;
    Granted
  end
  else begin
    t.waits <- t.waits + 1;
    if would_deadlock t entry ~owner ~upgrade then begin
      t.deadlocks <- t.deadlocks + 1;
      t.observer (Wait_started { owner; obj });
      t.observer (Wait_ended { owner; obj; outcome = `Deadlock; waited = 0.0 });
      Deadlock
    end
    else begin
      t.observer (Wait_started { owner; obj });
      Fiber.await (fun resume ->
          let w =
            { w_owner = owner; w_mode = mode; w_upgrade = upgrade;
              w_since = Engine.now t.engine; w_active = true; w_resume = resume }
          in
          Queue.add w entry.waiters;
          Hashtbl.replace t.waiting_on owner (obj, w);
          match timeout with
          | None -> ()
          | Some d ->
            ignore
              (Engine.schedule t.engine ~delay:d (fun () ->
                   if w.w_active then begin
                     w.w_active <- false;
                     Hashtbl.remove t.waiting_on owner;
                     t.timeouts <- t.timeouts + 1;
                     t.observer
                       (Wait_ended
                          { owner; obj; outcome = `Timeout;
                            waited = Engine.now t.engine -. w.w_since });
                     resume (Ok Timeout)
                   end)))
    end
  end

let try_acquire t ~owner ~obj ~mode =
  let entry = entry_of t obj in
  let upgrade = Option.is_some (find_holder entry owner) in
  if
    grantable t entry ~owner ~mode ~upgrade
    && (upgrade || Queue.fold (fun acc w -> acc && not w.w_active) true entry.waiters)
  then begin
    grant t entry ~obj ~owner ~mode;
    true
  end
  else begin
    if entry.holders = [] && Queue.is_empty entry.waiters then t.entries.(obj) <- None;
    false
  end

let drop_holder t obj entry owner =
  match find_holder entry owner with
  | None -> ()
  | Some h ->
    entry.holders <- List.filter (fun h' -> h'.h_owner <> owner) entry.holders;
    t.held_total <- t.held_total - 1;
    let held = Engine.now t.engine -. h.acquired_at in
    t.hold_time_hook ~obj ~duration:held;
    t.observer (Released { owner; obj; held })

let release t ~owner ~obj =
  match find_entry t obj with
  | None -> ()
  | Some entry ->
    drop_holder t obj entry owner;
    (match Hashtbl.find_opt t.owned owner with
    | Some objs -> Hashtbl.remove objs (obj_name t obj)
    | None -> ());
    grant_pass t obj entry

let cancel_wait t owner =
  match Hashtbl.find_opt t.waiting_on owner with
  | None -> ()
  | Some (obj, w) ->
    w.w_active <- false;
    Hashtbl.remove t.waiting_on owner;
    t.observer
      (Wait_ended
         { owner; obj; outcome = `Cancelled;
           waited = Engine.now t.engine -. w.w_since });
    w.w_resume (Error Lock_revoked);
    (match find_entry t obj with
    | Some entry -> grant_pass t obj entry
    | None -> ())

let release_all t ~owner =
  cancel_wait t owner;
  match Hashtbl.find_opt t.owned owner with
  | None -> ()
  | Some objs ->
    Hashtbl.remove t.owned owner;
    Hashtbl.iter
      (fun _name obj ->
        match find_entry t obj with
        | None -> ()
        | Some entry ->
          drop_holder t obj entry owner;
          grant_pass t obj entry)
      objs

let reset t =
  let pending =
    Hashtbl.fold (fun _ (_, w) acc -> w :: acc) t.waiting_on []
  in
  Array.fill t.entries 0 (Array.length t.entries) None;
  Hashtbl.reset t.owned;
  Hashtbl.reset t.waiting_on;
  t.held_total <- 0;
  List.iter
    (fun w ->
      if w.w_active then begin
        w.w_active <- false;
        w.w_resume (Error Lock_revoked)
      end)
    pending

let held t ~owner =
  match Hashtbl.find_opt t.owned owner with
  | None -> []
  | Some objs ->
    Hashtbl.fold
      (fun name obj acc ->
        match find_entry t obj with
        | None -> acc
        | Some entry -> (
          match find_holder entry owner with
          | Some h -> (name, h.h_mode) :: acc
          | None -> acc))
      objs []
    |> List.sort compare

let holders t ~obj =
  match find_entry t obj with
  | None -> []
  | Some entry ->
    List.map (fun h -> (h.h_owner, h.h_mode)) entry.holders |> List.sort compare

let set_hold_time_hook t f = t.hold_time_hook <- f
let set_observer t f = t.observer <- f
let acquisition_count t = t.acquisitions
let wait_count t = t.waits
let deadlock_count t = t.deadlocks
let timeout_count t = t.timeouts
let blocked_count t = Hashtbl.length t.waiting_on
let held_count t = t.held_total
