(** Generic lock table with fiber-blocking waits.

    The table is parametric in the lock-mode type: the local databases
    instantiate it with {!Mode.t}, while the multi-level transaction layer
    instantiates it with L1 action classes whose compatibility is the
    commutativity relation of the paper's section 4.1. Compatibility and
    combination are supplied as plain functions at {!create} time.

    Semantics:
    - requests are granted immediately when compatible with all holders and
      no earlier waiter is queued (FIFO fairness);
    - re-entrant requests strengthen the held mode ([combine]); upgrades may
      wait but jump ahead of ordinary waiters when grantable;
    - a request that would close a cycle in the waits-for graph is denied
      with [`Deadlock] instead of blocking (immediate deadlock detection,
      requester is the victim);
    - an optional timeout turns a long wait into [`Timeout] — the paper's
      "aborted by the local transaction manager, e.g. because of time out". *)

type 'mode t

type outcome = Granted | Timeout | Deadlock

(** [create engine ~compatible ~combine] builds an empty table. [combine]
    must return a mode at least as strong as both arguments; [compatible]
    need not be reflexive (X is incompatible with X). *)
val create :
  Icdb_sim.Engine.t ->
  compatible:('mode -> 'mode -> bool) ->
  combine:('mode -> 'mode -> 'mode) ->
  'mode t

(** [acquire t ~owner ~obj ~mode ?timeout ()] blocks the calling fiber until
    the lock is granted, the optional virtual-time [timeout] expires, or a
    deadlock is detected. Owners are small integers (transaction ids);
    objects are strings. *)
val acquire :
  'mode t -> owner:int -> obj:string -> mode:'mode -> ?timeout:float -> unit -> outcome

(** [try_acquire t ~owner ~obj ~mode] grants without ever blocking; [false]
    when the lock would have to wait. *)
val try_acquire : 'mode t -> owner:int -> obj:string -> mode:'mode -> bool

(** [release t ~owner ~obj] drops one owner's lock on [obj] (no-op if not
    held) and wakes newly grantable waiters. *)
val release : 'mode t -> owner:int -> obj:string -> unit

(** [release_all t ~owner] drops everything the owner holds — the unlock
    phase of strict two-phase locking. Also cancels any wait the owner still
    has queued. *)
val release_all : 'mode t -> owner:int -> unit

(** Raised at the suspension point of a blocked request whose wait is torn
    down from outside — by {!release_all} on its owner (a transaction being
    aborted by another fiber) or by {!reset} (site crash). *)
exception Lock_revoked

(** [reset t] wipes the table: every holder is dropped silently and every
    blocked request is resumed with {!Lock_revoked}. Models the loss of the
    volatile lock table in a crash. *)
val reset : 'mode t -> unit

(** [held t ~owner] lists [(obj, mode)] currently held. *)
val held : 'mode t -> owner:int -> (string * 'mode) list

(** [holders t ~obj] lists [(owner, mode)] granted on [obj]. *)
val holders : 'mode t -> obj:string -> (int * 'mode) list

(** [set_hold_time_hook t f] installs [f ~obj ~duration], invoked whenever a
    lock is released, with the virtual time it was held — the V1 experiment's
    raw data. *)
val set_hold_time_hook : 'mode t -> (obj:string -> duration:float -> unit) -> unit

(** Fine-grained lock-lifecycle events for the observability layer. A wait
    that is denied by deadlock detection still emits the [Wait_started] /
    [Wait_ended] pair (with [waited = 0.]) so every start has an end. *)
type observer_event =
  | Wait_started of { owner : int; obj : string }
  | Wait_ended of {
      owner : int;
      obj : string;
      outcome : [ `Granted | `Timeout | `Deadlock | `Cancelled ];
      waited : float;
    }
  | Acquired of { owner : int; obj : string }
  | Released of { owner : int; obj : string; held : float }

(** [set_observer t f] installs a lock-event listener. Default: no-op;
    installing replaces the previous listener. *)
val set_observer : 'mode t -> (observer_event -> unit) -> unit

(** Counters for the experiment tables. *)

val acquisition_count : 'mode t -> int

(** Requests that had to block at least once. *)
val wait_count : 'mode t -> int

val deadlock_count : 'mode t -> int
val timeout_count : 'mode t -> int

(** Number of requests currently blocked. *)
val blocked_count : 'mode t -> int
