(** Generic lock table with fiber-blocking waits.

    The table is parametric in the lock-mode type: the local databases
    instantiate it with {!Mode.t}, while the multi-level transaction layer
    instantiates it with L1 action classes whose compatibility is the
    commutativity relation of the paper's section 4.1. Compatibility and
    combination are supplied as plain functions at {!create} time.

    Lock objects are interned {!Icdb_util.Symbol.t} ids against the table's
    symbol table (supplied at {!create} time and usually shared with the
    owning site or federation): the hot acquire/release path indexes a dense
    array instead of hashing strings, and object names are only resolved
    back to strings at report/trace boundaries via {!obj_name}.

    Semantics:
    - requests are granted immediately when compatible with all holders and
      no earlier waiter is queued (FIFO fairness);
    - re-entrant requests strengthen the held mode ([combine]); upgrades may
      wait but jump ahead of ordinary waiters when grantable;
    - a request that would close a cycle in the waits-for graph is denied
      with [`Deadlock] instead of blocking (immediate deadlock detection,
      requester is the victim);
    - an optional timeout turns a long wait into [`Timeout] — the paper's
      "aborted by the local transaction manager, e.g. because of time out". *)

module Symbol = Icdb_util.Symbol

type 'mode t

type outcome = Granted | Timeout | Deadlock

(** [create engine ~syms ~compatible ~combine] builds an empty table whose
    objects are symbols of [syms]. [combine] must return a mode at least as
    strong as both arguments; [compatible] need not be reflexive (X is
    incompatible with X). *)
val create :
  Icdb_sim.Engine.t ->
  syms:Symbol.table ->
  compatible:('mode -> 'mode -> bool) ->
  combine:('mode -> 'mode -> 'mode) ->
  'mode t

(** The symbol table supplied at creation. *)
val symbols : 'mode t -> Symbol.table

(** [ensure_capacity t n] grows the dense symbol->entry array to hold at
    least [n] objects up front, avoiding doubling copies during a bulk
    preload. Never shrinks; held locks are unchanged. *)
val ensure_capacity : 'mode t -> int -> unit

(** [intern t s] interns an object name against the table's symbols. *)
val intern : 'mode t -> string -> Symbol.t

(** [obj_name t obj] resolves a lock object back to its name. *)
val obj_name : 'mode t -> Symbol.t -> string

(** [acquire t ~owner ~obj ~mode ?timeout ()] blocks the calling fiber until
    the lock is granted, the optional virtual-time [timeout] expires, or a
    deadlock is detected. Owners are small integers (transaction ids);
    objects are interned symbols. *)
val acquire :
  'mode t -> owner:int -> obj:Symbol.t -> mode:'mode -> ?timeout:float -> unit -> outcome

(** [try_acquire t ~owner ~obj ~mode] grants without ever blocking; [false]
    when the lock would have to wait. *)
val try_acquire : 'mode t -> owner:int -> obj:Symbol.t -> mode:'mode -> bool

(** [release t ~owner ~obj] drops one owner's lock on [obj] (no-op if not
    held) and wakes newly grantable waiters. *)
val release : 'mode t -> owner:int -> obj:Symbol.t -> unit

(** [release_all t ~owner] drops everything the owner holds — the unlock
    phase of strict two-phase locking. Also cancels any wait the owner still
    has queued. *)
val release_all : 'mode t -> owner:int -> unit

(** Raised at the suspension point of a blocked request whose wait is torn
    down from outside — by {!release_all} on its owner (a transaction being
    aborted by another fiber) or by {!reset} (site crash). *)
exception Lock_revoked

(** [reset t] wipes the table: every holder is dropped silently and every
    blocked request is resumed with {!Lock_revoked}. Models the loss of the
    volatile lock table in a crash. *)
val reset : 'mode t -> unit

(** [held t ~owner] lists [(name, mode)] currently held, sorted by name. *)
val held : 'mode t -> owner:int -> (string * 'mode) list

(** [holders t ~obj] lists [(owner, mode)] granted on [obj]. *)
val holders : 'mode t -> obj:Symbol.t -> (int * 'mode) list

(** [set_hold_time_hook t f] installs [f ~obj ~duration], invoked whenever a
    lock is released, with the virtual time it was held — the V1 experiment's
    raw data. *)
val set_hold_time_hook : 'mode t -> (obj:Symbol.t -> duration:float -> unit) -> unit

(** Fine-grained lock-lifecycle events for the observability layer. A wait
    that is denied by deadlock detection still emits the [Wait_started] /
    [Wait_ended] pair (with [waited = 0.]) so every start has an end.
    Events carry the interned object; listeners resolve it with {!obj_name}
    only when they materialize a label. *)
type observer_event =
  | Wait_started of { owner : int; obj : Symbol.t }
  | Wait_ended of {
      owner : int;
      obj : Symbol.t;
      outcome : [ `Granted | `Timeout | `Deadlock | `Cancelled ];
      waited : float;
    }
  | Acquired of { owner : int; obj : Symbol.t }
  | Released of { owner : int; obj : Symbol.t; held : float }

(** [set_observer t f] installs a lock-event listener. Default: no-op;
    installing replaces the previous listener. *)
val set_observer : 'mode t -> (observer_event -> unit) -> unit

(** Counters for the experiment tables. *)

val acquisition_count : 'mode t -> int

(** Requests that had to block at least once. *)
val wait_count : 'mode t -> int

val deadlock_count : 'mode t -> int
val timeout_count : 'mode t -> int

(** Number of requests currently blocked. *)
val blocked_count : 'mode t -> int

(** Live (owner, object) holder pairs right now — O(1). A quiescent table
    (no running transactions) should report zero; anything else is a lock
    leak (the online leak monitor's signal). *)
val held_count : 'mode t -> int
