module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Disk = Icdb_storage.Disk
module Bp = Icdb_storage.Buffer_pool
module Heap = Icdb_storage.Heap
module Log = Icdb_wal.Log
module Recovery = Icdb_wal.Recovery
module Lock = Icdb_lock.Lock_table
module Mode = Icdb_lock.Mode
module Rng = Icdb_util.Rng
module Btree = Icdb_util.Btree
module Symbol = Icdb_util.Symbol

type abort_reason =
  | Deadlock_victim
  | Lock_timeout
  | Validation_failed
  | Site_crashed
  | Injected
  | Requested

let abort_reason_to_string = function
  | Deadlock_victim -> "deadlock"
  | Lock_timeout -> "lock-timeout"
  | Validation_failed -> "validation-failed"
  | Site_crashed -> "site-crashed"
  | Injected -> "injected"
  | Requested -> "requested"

let pp_abort_reason fmt r = Format.pp_print_string fmt (abort_reason_to_string r)

type cc_scheme = Locking of { wait_timeout : float option } | Optimistic

type granularity = Record_level | Page_level

type capabilities = {
  supports_prepare : bool;
  supports_increment_locks : bool;
  granularity : granularity;
  cc : cc_scheme;
}

let default_capabilities =
  {
    supports_prepare = false;
    supports_increment_locks = true;
    granularity = Record_level;
    cc = Locking { wait_timeout = Some 50.0 };
  }

type spontaneous_abort = {
  probability : float;
  min_delay : float;
  max_delay : float;
}

type config = {
  site_name : string;
  capabilities : capabilities;
  op_delay : float;
  commit_delay : float;
  buffer_capacity : int;
  spontaneous : spontaneous_abort option;
  seed : int64;
  group_commit_window : float option;
  checkpoint_interval : float option;
}

let default_config ~site_name =
  {
    site_name;
    capabilities = default_capabilities;
    op_delay = 1.0;
    commit_delay = 2.0;
    buffer_capacity = 64;
    spontaneous = None;
    seed = 1L;
    group_commit_window = None;
    checkpoint_interval = None;
  }

type access =
  | Read of { key : string; value : int option }
  | Wrote of { key : string; before : int option; after : int option }
  | Incremented of { key : string; delta : int }

type 'a outcome = ('a, abort_reason) result

type txn_state = Running | Prepared | Committed | Aborted of abort_reason

(* Deferred effect of an optimistic transaction. *)
type buf_entry = Put of int | Del | Add of int

(* Index maintenance performed by a locking transaction, replayed in reverse
   when the transaction rolls back. *)
type index_op = Indexed of string * Heap.rid | Unindexed of string * Heap.rid

type txn = {
  id : int;
  mutable tstate : txn_state;
  mutable committing : bool;
      (* commit record appended; outcome now decided by log durability, not
         by rollback paths (kill/injection must leave it alone) *)
  mutable last_lsn : Log.lsn;
  mutable acc : access list; (* reversed *)
  mutable index_ops : index_op list; (* reversed *)
  (* optimistic state; keys are interned against the engine's symbol table *)
  start_serial : int;
  reads : (Symbol.t, unit) Hashtbl.t;
  buf : (Symbol.t, buf_entry) Hashtbl.t;
  mutable buf_keys : Symbol.t list; (* first-touch order, reversed *)
}

type gc_waiter = { gw_lsn : int; gw_txn : txn; gw_resume : unit Fiber.resumer }

type t = {
  engine : Sim.t;
  config : config;
  (* per-site interner: every lock object and optimistic read/write-set key
     is a dense int against this table; strings come back only at report
     and trace boundaries *)
  syms : Symbol.table;
  (* page number -> interned "page:N" symbol, so page-granularity sites
     don't rebuild the string on every access *)
  page_syms : (int, Symbol.t) Hashtbl.t;
  page_alloc_sym : Symbol.t;
  rng : Rng.t;
  disk : Disk.t;
  log : Log.t;
  mutable pool : Bp.t;
  mutable heap : Heap.t;
  mutable locks : Mode.t Lock.t;
  mutable index : Heap.rid Btree.t;
  mutable up : bool;
  mutable next_txn : int;
  live : (int, txn) Hashtbl.t; (* running and prepared *)
  in_doubt_tbl : (int, Log.lsn) Hashtbl.t;
  (* optimistic bookkeeping: per-key serial of the last committed writer.
     First-committer-wins only ever compares a read key against the *newest*
     committed write of that key, so the full (serial, write-set) history the
     seed kept — and rescanned per commit — collapses into one table probe
     per read-set key. *)
  mutable commit_serial : int;
  last_writer : (Symbol.t, int) Hashtbl.t;
  mutable commits : int;
  abort_tally : (abort_reason, int) Hashtbl.t;
  mutable hold_hook : obj:Symbol.t -> duration:float -> unit;
  (* stored so [restart]'s fresh lock table keeps feeding the same listener *)
  mutable lock_observer : Lock.observer_event -> unit;
  mutable state_hook : [ `Crash | `Recovered ] -> unit;
  (* online money-conservation monitor: net user-visible value change of
     every local commit, including in-doubt commits resolved after a crash *)
  mutable commit_delta_hook : (txn_id:int -> delta:int -> unit) option;
  (* group commit: committers waiting for the next batched log force *)
  mutable gc_waiters : gc_waiter list;
  mutable gc_scheduled : bool;
}

exception Local_abort of abort_reason

(* Protocol metadata keys ("__cm:...", "__um:...", ...): the commitment
   protocols' database-resident markers, the "additional relation" of
   [WV 90]. Unique per global transaction, they get their own record-level
   locks even on page-granularity sites and are not charged an operation
   delay — otherwise marker traffic would distort the very concurrency
   behaviour the experiments measure. *)
let internal_key key = String.length key >= 2 && key.[0] = '_' && key.[1] = '_'

(* Forward reference: [checkpoint] is defined after the transaction
   machinery but the periodic scheduler in [create] needs it. *)
let checkpoint_impl : (t -> unit) ref = ref (fun _ -> ())

let name t = t.config.site_name
let capabilities t = t.config.capabilities

let new_lock_table t_engine syms hold_hook =
  let locks =
    Lock.create t_engine ~syms ~compatible:Mode.compatible ~combine:Mode.combine
  in
  Lock.set_hold_time_hook locks (fun ~obj ~duration -> hold_hook ~obj ~duration);
  locks

let install_wal_hook t =
  Bp.set_wal_hook t.pool (fun ~lsn -> Log.flush_to t.log (Int64.to_int lsn))

let create engine config =
  (match (config.capabilities.supports_prepare, config.capabilities.cc) with
  | true, Optimistic ->
    invalid_arg "Engine.create: prepare support requires the locking scheme"
  | _ -> ());
  let disk = Disk.create () in
  let pool = Bp.create ~capacity:config.buffer_capacity disk in
  let heap = Heap.create disk pool in
  let hold_hook = ref (fun ~obj:_ ~duration:_ -> ()) in
  let syms = Symbol.create ~capacity:256 () in
  let t =
    {
      engine;
      config;
      syms;
      page_syms = Hashtbl.create 16;
      page_alloc_sym = Symbol.intern syms "page:alloc";
      rng = Rng.create config.seed;
      disk;
      log = Log.create ();
      pool;
      heap;
      locks = new_lock_table engine syms (fun ~obj ~duration -> !hold_hook ~obj ~duration);
      index = Btree.create ();
      up = true;
      next_txn = 0;
      live = Hashtbl.create 64;
      in_doubt_tbl = Hashtbl.create 8;
      commit_serial = 0;
      last_writer = Hashtbl.create 64;
      commits = 0;
      abort_tally = Hashtbl.create 8;
      hold_hook = (fun ~obj:_ ~duration:_ -> ());
      lock_observer = (fun _ -> ());
      state_hook = (fun _ -> ());
      commit_delta_hook = None;
      gc_waiters = [];
      gc_scheduled = false;
    }
  in
  (hold_hook := fun ~obj ~duration -> t.hold_hook ~obj ~duration);
  Lock.set_observer t.locks (fun e -> t.lock_observer e);
  install_wal_hook t;
  (match config.checkpoint_interval with
  | None -> ()
  | Some period ->
    let rec tick () =
      ignore
        (Sim.schedule engine ~delay:period (fun () ->
             if t.up then !checkpoint_impl t;
             tick ()))
    in
    tick ());
  t

let record_abort t reason =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.abort_tally reason) in
  Hashtbl.replace t.abort_tally reason (current + 1)

let fresh_txn t =
  t.next_txn <- t.next_txn + 1;
  {
    id = t.next_txn;
    tstate = Running;
    committing = false;
    last_lsn = Log.null_lsn;
    acc = [];
    index_ops = [];
    start_serial = t.commit_serial;
    reads = Hashtbl.create 8;
    buf = Hashtbl.create 8;
    buf_keys = [];
  }

let is_locking t = match t.config.capabilities.cc with Locking _ -> true | Optimistic -> false

let wait_timeout t =
  match t.config.capabilities.cc with
  | Locking { wait_timeout } -> wait_timeout
  | Optimistic -> None

let txn_id txn = txn.id

let state txn =
  match txn.tstate with
  | Running -> `Running
  | Prepared -> `Prepared
  | Committed -> `Committed
  | Aborted r -> `Aborted r

let accesses txn = List.rev txn.acc
let note txn a = txn.acc <- a :: txn.acc

(* --- forward logging and application (locking scheme) ----------------- *)

(* In-simulation, the sequence "mutate page; append matching log record" is
   atomic (no yield point in between), so reserving the next LSN before the
   heap placement preserves the WAL invariant observably. *)
let do_insert t txn ~key ~value =
  let lsn = Log.last_lsn t.log + 1 in
  let rid = Heap.insert t.heap ~lsn:(Int64.of_int lsn) ~key ~value in
  let lsn' =
    Log.append t.log (Op { txn = txn.id; op = Insert { rid; key; value }; prev = txn.last_lsn })
  in
  assert (lsn' = lsn);
  txn.last_lsn <- lsn;
  Btree.insert t.index key rid;
  txn.index_ops <- Indexed (key, rid) :: txn.index_ops

let log_and_apply t txn op =
  let lsn = Log.append t.log (Op { txn = txn.id; op; prev = txn.last_lsn }) in
  Recovery.apply_op t.pool ~lsn op;
  txn.last_lsn <- lsn

let do_update t txn rid ~key ~before ~after =
  log_and_apply t txn (Update { rid; key; before; after })

let do_delete t txn rid ~key ~value =
  log_and_apply t txn (Delete { rid; key; value });
  ignore (Btree.remove t.index key);
  txn.index_ops <- Unindexed (key, rid) :: txn.index_ops

let do_incr t txn rid ~key ~delta = log_and_apply t txn (Incr { rid; key; delta })

let heap_value t key =
  match Btree.find t.index key with
  | None -> None
  | Some rid -> Option.map snd (Heap.read t.heap rid)

let fix_index_after_undo t txn =
  List.iter
    (function
      | Indexed (key, _) -> ignore (Btree.remove t.index key)
      | Unindexed (key, rid) -> Btree.insert t.index key rid)
    txn.index_ops;
  txn.index_ops <- []

(* --- rollback ---------------------------------------------------------- *)

let do_rollback t txn reason =
  (match t.config.capabilities.cc with
  | Locking _ ->
    ignore (Recovery.undo_chain t.log t.pool ~txn:txn.id ~from:txn.last_lsn);
    fix_index_after_undo t txn
  | Optimistic -> ());
  txn.tstate <- Aborted reason;
  Hashtbl.remove t.live txn.id;
  Lock.release_all t.locks ~owner:txn.id;
  record_abort t reason

let begin_txn t =
  if not t.up then failwith "Engine.begin_txn: site is down";
  let txn = fresh_txn t in
  Hashtbl.replace t.live txn.id txn;
  if is_locking t then ignore (Log.append t.log (Begin txn.id));
  (match t.config.spontaneous with
  | Some { probability; min_delay; max_delay } when Rng.bernoulli t.rng probability ->
    let delay = min_delay +. Rng.float t.rng (Float.max 0.0 (max_delay -. min_delay)) in
    ignore
      (Sim.schedule t.engine ~delay (fun () ->
           if t.up && txn.tstate = Running && not txn.committing then
             do_rollback t txn Injected))
  | Some _ | None -> ());
  txn

(* Crash-race-safe begin: a caller resumed by a restart can be overtaken by
   another crash event at the same instant, so "the site was up when I was
   woken" does not imply "the site is up now". Returning [None] instead of
   raising lets protocol code turn that race into an ordinary branch
   failure. *)
let begin_txn_opt t = if not t.up then None else Some (begin_txn t)

(* --- guarded operation plumbing ---------------------------------------- *)

let check_alive t txn =
  if not t.up then raise (Local_abort Site_crashed);
  match txn.tstate with
  | Running -> ()
  | Aborted r -> raise (Local_abort r)
  | Committed | Prepared -> invalid_arg "Engine: operation on a finished transaction"

let consume t txn d =
  Fiber.sleep t.engine d;
  check_alive t txn

(* Operation cost: protocol metadata writes (marker records) piggyback on
   the transaction's existing log traffic and are not charged an operation
   delay of their own. *)
let op_cost t key = if internal_key key then 0.0 else t.config.op_delay

let page_sym t page =
  match Hashtbl.find_opt t.page_syms page with
  | Some s -> s
  | None ->
    let s = Symbol.intern t.syms ("page:" ^ string_of_int page) in
    Hashtbl.replace t.page_syms page s;
    s

(* Maps a key access to the lock object and mode the site's granularity
   dictates. Page-level sites have no record or increment locks: everything
   but a read takes an exclusive page lock. *)
let lock_target t key mode =
  match t.config.capabilities.granularity with
  | Record_level -> (Symbol.intern t.syms key, mode)
  | Page_level when internal_key key -> (Symbol.intern t.syms key, mode)
  | Page_level ->
    let obj =
      match Btree.find t.index key with
      | Some (rid : Icdb_storage.Heap.rid) -> page_sym t rid.page
      | None -> t.page_alloc_sym
    in
    let mode =
      match mode with
      | Mode.Shared -> Mode.Shared
      | Mode.Exclusive | Mode.Increment -> Mode.Exclusive
    in
    (obj, mode)

let lock t txn ~key ~mode =
  let obj, mode = lock_target t key mode in
  match Lock.acquire t.locks ~owner:txn.id ~obj ~mode ?timeout:(wait_timeout t) () with
  | Granted -> check_alive t txn
  | Timeout ->
    do_rollback t txn Lock_timeout;
    raise (Local_abort Lock_timeout)
  | Deadlock ->
    do_rollback t txn Deadlock_victim;
    raise (Local_abort Deadlock_victim)

let run_op t txn f =
  try
    check_alive t txn;
    Ok (f ())
  with
  | Local_abort r -> Error r
  | Lock.Lock_revoked -> (
    (* The wait was torn down by [kill] or a crash; the rollback already
       happened on the other side. *)
    match txn.tstate with
    | Aborted r -> Error r
    | Running | Prepared | Committed -> Error Injected)

(* --- optimistic-path helpers ------------------------------------------- *)

let buf_note txn key entry =
  if not (Hashtbl.mem txn.buf key) then txn.buf_keys <- key :: txn.buf_keys;
  Hashtbl.replace txn.buf key entry

(* [key] is the raw string (for the heap/index lookup), [sym] its interned
   id — callers intern once per operation. *)
let occ_visible t txn ~key ~sym =
  match Hashtbl.find_opt txn.buf sym with
  | Some (Put v) -> Some v
  | Some Del -> None
  | Some (Add d) -> (
    Hashtbl.replace txn.reads sym ();
    match heap_value t key with Some v -> Some (v + d) | None -> Some d)
  | None ->
    Hashtbl.replace txn.reads sym ();
    heap_value t key

(* --- public operations -------------------------------------------------- *)

let read t txn key =
  run_op t txn (fun () ->
      (match t.config.capabilities.cc with
      | Locking _ -> lock t txn ~key ~mode:Mode.Shared
      | Optimistic -> ());
      consume t txn (op_cost t key);
      let value =
        match t.config.capabilities.cc with
        | Locking _ -> heap_value t key
        | Optimistic -> occ_visible t txn ~key ~sym:(Symbol.intern t.syms key)
      in
      note txn (Read { key; value });
      value)

let write t txn ~key ~value =
  run_op t txn (fun () ->
      (match t.config.capabilities.cc with
      | Locking _ -> lock t txn ~key ~mode:Mode.Exclusive
      | Optimistic -> ());
      consume t txn (op_cost t key);
      let before =
        match t.config.capabilities.cc with
        | Locking _ ->
          let before = heap_value t key in
          (match Btree.find t.index key with
          | Some rid -> do_update t txn rid ~key ~before:(Option.get before) ~after:value
          | None -> do_insert t txn ~key ~value);
          before
        | Optimistic ->
          (* A blind write must stay blind: looking up the before-image for
             the access record must not enlarge the validation read set. *)
          let sym = Symbol.intern t.syms key in
          let was_read = Hashtbl.mem txn.reads sym in
          let before = occ_visible t txn ~key ~sym in
          if not was_read then Hashtbl.remove txn.reads sym;
          buf_note txn sym (Put value);
          before
      in
      note txn (Wrote { key; before; after = Some value }))

let delete t txn key =
  run_op t txn (fun () ->
      (match t.config.capabilities.cc with
      | Locking _ -> lock t txn ~key ~mode:Mode.Exclusive
      | Optimistic -> ());
      consume t txn (op_cost t key);
      (match t.config.capabilities.cc with
      | Locking _ -> (
        match Btree.find t.index key with
        | Some rid ->
          let value = Option.get (heap_value t key) in
          do_delete t txn rid ~key ~value;
          note txn (Wrote { key; before = Some value; after = None })
        | None -> note txn (Wrote { key; before = None; after = None }))
      | Optimistic ->
        let sym = Symbol.intern t.syms key in
        let was_read = Hashtbl.mem txn.reads sym in
        let before = occ_visible t txn ~key ~sym in
        if not was_read then Hashtbl.remove txn.reads sym;
        buf_note txn sym Del;
        note txn (Wrote { key; before; after = None })))

let increment t txn ~key ~delta =
  run_op t txn (fun () ->
      (match t.config.capabilities.cc with
      | Locking _ ->
        let mode =
          if t.config.capabilities.supports_increment_locks then Mode.Increment
          else Mode.Exclusive
        in
        lock t txn ~key ~mode
      | Optimistic -> ());
      consume t txn (op_cost t key);
      (match t.config.capabilities.cc with
      | Locking _ -> (
        match Btree.find t.index key with
        | Some rid -> do_incr t txn rid ~key ~delta
        | None -> invalid_arg "Engine.increment: unknown key")
      | Optimistic ->
        let sym = Symbol.intern t.syms key in
        let entry =
          match Hashtbl.find_opt txn.buf sym with
          | Some (Add d) -> Add (d + delta)
          | Some (Put v) -> Put (v + delta)
          | Some Del -> Put delta
          | None -> Add delta
        in
        buf_note txn sym entry);
      note txn (Incremented { key; delta }))

(* Backward validation: fail if any transaction that committed after we
   started wrote something we read. Only the newest committed write of each
   key matters (an older one implies a newer-or-equal serial in the table),
   so this is one probe per read-set key instead of a scan over the
   committed-write history. *)
let occ_validate t txn =
  not
    (Hashtbl.fold
       (fun k () hit ->
         hit
         ||
         match Hashtbl.find_opt t.last_writer k with
         | Some serial -> serial > txn.start_serial
         | None -> false)
       txn.reads false)

let occ_apply t txn =
  ignore (Log.append t.log (Begin txn.id));
  List.iter
    (fun sym ->
      let key = Symbol.name t.syms sym in
      match Hashtbl.find txn.buf sym with
      | Put value -> (
        match Btree.find t.index key with
        | Some rid ->
          let before = Option.get (heap_value t key) in
          do_update t txn rid ~key ~before ~after:value
        | None -> do_insert t txn ~key ~value)
      | Del -> (
        match Btree.find t.index key with
        | Some rid ->
          let value = Option.get (heap_value t key) in
          do_delete t txn rid ~key ~value
        | None -> ())
      | Add delta -> (
        match Btree.find t.index key with
        | Some rid -> do_incr t txn rid ~key ~delta
        | None -> do_insert t txn ~key ~value:delta))
    (List.rev txn.buf_keys);
  t.commit_serial <- t.commit_serial + 1;
  List.iter (fun sym -> Hashtbl.replace t.last_writer sym t.commit_serial) txn.buf_keys

(* Make the transaction's commit record durable. With group commit the
   caller blocks until the batch's single force; a crash inside the window
   aborts the waiters whose commit records were still volatile — and
   confirms those whose records had already reached stable storage through
   an earlier WAL-rule force. *)
let force_commit_record t txn ~lsn =
  match t.config.group_commit_window with
  | None -> Log.flush t.log
  | Some window ->
    Fiber.await (fun resume ->
        t.gc_waiters <- { gw_lsn = lsn; gw_txn = txn; gw_resume = resume } :: t.gc_waiters;
        if not t.gc_scheduled then begin
          t.gc_scheduled <- true;
          ignore
            (Sim.schedule t.engine ~delay:window (fun () ->
                 t.gc_scheduled <- false;
                 if t.up then begin
                   Log.flush t.log;
                   let waiters = List.rev t.gc_waiters in
                   t.gc_waiters <- [];
                   List.iter (fun w -> w.gw_resume (Ok ())) waiters
                 end))
        end)

(* Net user-visible value change of a committing transaction — writes
   telescope (each [Wrote] carries before/after), so the sum over the
   access list is final minus initial. Internal marker keys are excluded:
   they are protocol bookkeeping, not money. Computed only when the
   monitor hook is installed. *)
let committed_delta txn =
  List.fold_left
    (fun acc a ->
      match a with
      | Incremented { key; delta } -> if internal_key key then acc else acc + delta
      | Wrote { key; before; after } ->
        if internal_key key then acc
        else acc + Option.value ~default:0 after - Option.value ~default:0 before
      | Read _ -> acc)
    0 txn.acc

let notify_commit_delta t ~txn_id ~delta =
  match t.commit_delta_hook with None -> () | Some f -> f ~txn_id ~delta

let finish_commit t txn =
  txn.committing <- true;
  let lsn = Log.append t.log (Commit txn.id) in
  force_commit_record t txn ~lsn;
  txn.tstate <- Committed;
  Hashtbl.remove t.live txn.id;
  t.commits <- t.commits + 1;
  (match t.commit_delta_hook with
  | None -> ()
  | Some f -> f ~txn_id:txn.id ~delta:(committed_delta txn));
  Lock.release_all t.locks ~owner:txn.id

let commit t txn =
  run_op t txn (fun () ->
      consume t txn t.config.commit_delay;
      match t.config.capabilities.cc with
      | Locking _ -> finish_commit t txn
      | Optimistic ->
        if occ_validate t txn then begin
          occ_apply t txn;
          finish_commit t txn
        end
        else begin
          do_rollback t txn Validation_failed;
          raise (Local_abort Validation_failed)
        end)

let abort t txn =
  match txn.tstate with
  | Running when not txn.committing -> do_rollback t txn Requested
  | Running | Prepared | Committed | Aborted _ -> ()

let kill t txn =
  match txn.tstate with
  | Running when not txn.committing -> do_rollback t txn Injected
  | Running | Prepared | Committed | Aborted _ -> ()

(* --- prepare / in-doubt -------------------------------------------------- *)

let prepare t txn =
  if not t.config.capabilities.supports_prepare then
    failwith "Engine.prepare: this local system has no ready state";
  run_op t txn (fun () ->
      consume t txn t.config.commit_delay;
      ignore (Log.append t.log (Prepare { txn = txn.id; last = txn.last_lsn }));
      Log.flush t.log;
      txn.tstate <- Prepared)

(* Index consistency after undoing a transaction recovered from the log:
   simplest correct answer is a full rebuild from the heap. *)
let rebuild_index t =
  t.index <- Btree.create ();
  Heap.iter t.heap (fun rid key _ -> Btree.insert t.index key rid)

(* In-doubt transactions lost their in-memory access list to the crash;
   their net value change is recovered by walking the log's per-transaction
   [prev] chain from the Prepare record's [last] LSN. A prepared chain is
   pure [Op] records (no undo ran). Stops early if a checkpoint truncated
   the prefix — impossible while the transaction is in doubt, since
   truncation keeps everything its rollback could need. *)
let chain_delta t ~from =
  let rec walk lsn acc =
    if lsn = Log.null_lsn then acc
    else
      match Log.get t.log lsn with
      | Log.Op { op; prev; _ } ->
        let d =
          match op with
          | Log.Insert { key; value; _ } -> if internal_key key then 0 else value
          | Log.Delete { key; value; _ } -> if internal_key key then 0 else -value
          | Log.Update { key; before; after; _ } ->
            if internal_key key then 0 else after - before
          | Log.Incr { key; delta; _ } -> if internal_key key then 0 else delta
        in
        walk prev (acc + d)
      | _ -> acc
      | exception Invalid_argument _ -> acc
  in
  walk from 0

let resolve_prepared t ~txn_id ~commit:decide_commit =
  match Hashtbl.find_opt t.live txn_id with
  | Some txn when txn.tstate = Prepared ->
    if decide_commit then finish_commit t txn else do_rollback t txn Requested
  | Some _ -> failwith "Engine.resolve_prepared: transaction is not prepared"
  | None -> (
    match Hashtbl.find_opt t.in_doubt_tbl txn_id with
    | None -> failwith "Engine.resolve_prepared: unknown transaction"
    | Some last ->
      Hashtbl.remove t.in_doubt_tbl txn_id;
      if decide_commit then begin
        ignore (Log.append t.log (Commit txn_id));
        Log.flush t.log;
        t.commits <- t.commits + 1;
        if t.commit_delta_hook <> None then
          notify_commit_delta t ~txn_id ~delta:(chain_delta t ~from:last)
      end
      else begin
        ignore (Recovery.undo_chain t.log t.pool ~txn:txn_id ~from:last);
        rebuild_index t;
        record_abort t Requested
      end;
      Lock.release_all t.locks ~owner:txn_id)

let in_doubt t = Hashtbl.fold (fun id _ acc -> id :: acc) t.in_doubt_tbl [] |> List.sort compare

let running_transactions t =
  Hashtbl.fold (fun _ txn acc -> if txn.tstate = Running then txn :: acc else acc) t.live []

let abort_txn_id t ~txn_id =
  match Hashtbl.find_opt t.live txn_id with
  | Some txn when txn.tstate = Running ->
    do_rollback t txn Requested;
    true
  | Some _ | None -> false

(* --- crash / restart ----------------------------------------------------- *)

let crash t =
  if t.up then begin
    t.up <- false;
    t.state_hook `Crash;
    Log.crash t.log;
    Bp.drop_all t.pool;
    (* Group-commit waiters first: a commit record that reached stable
       storage (e.g. through a WAL-rule force) means the transaction
       committed despite the crash; a volatile one means it did not. *)
    let waiters = List.rev t.gc_waiters in
    t.gc_waiters <- [];
    List.iter
      (fun w ->
        if w.gw_lsn <= Log.flushed_lsn t.log then begin
          w.gw_txn.tstate <- Committed;
          w.gw_resume (Ok ())
        end
        else begin
          w.gw_txn.tstate <- Aborted Site_crashed;
          record_abort t Site_crashed;
          w.gw_resume (Error (Local_abort Site_crashed))
        end)
      waiters;
    Hashtbl.iter
      (fun _ txn ->
        match txn.tstate with
        | Running ->
          txn.tstate <- Aborted Site_crashed;
          record_abort t Site_crashed
        | Prepared | Committed | Aborted _ -> ())
      t.live;
    Hashtbl.reset t.live;
    Hashtbl.reset t.in_doubt_tbl;
    Hashtbl.reset t.last_writer;
    Lock.reset t.locks
  end

let reacquire_in_doubt_locks t txn_id =
  Log.iter t.log (fun _ record ->
      match record with
      | Op { txn; op; _ } when txn = txn_id ->
        let key =
          match op with
          | Insert { key; _ } | Delete { key; _ } | Update { key; _ } | Incr { key; _ } -> key
        in
        let obj, mode = lock_target t key Mode.Exclusive in
        ignore (Lock.try_acquire t.locks ~owner:txn_id ~obj ~mode)
      | _ -> ())

let restart t =
  if t.up then invalid_arg "Engine.restart: site is up";
  t.pool <- Bp.create ~capacity:t.config.buffer_capacity t.disk;
  install_wal_hook t;
  t.heap <- Heap.recover t.disk t.pool;
  let outcome = Recovery.restart t.log t.pool in
  rebuild_index t;
  t.locks <- new_lock_table t.engine t.syms (fun ~obj ~duration -> t.hold_hook ~obj ~duration);
  Lock.set_observer t.locks (fun e -> t.lock_observer e);
  List.iter
    (fun (txn_id, last) ->
      Hashtbl.replace t.in_doubt_tbl txn_id last;
      reacquire_in_doubt_locks t txn_id)
    outcome.in_doubt;
  t.up <- true;
  t.state_hook `Recovered;
  outcome

let is_up t = t.up

(* --- inspection & metrics ------------------------------------------------ *)

let committed_value t key = heap_value t key

let committed_keys t =
  Btree.keys t.index

let load t rows =
  (* Bulk preloads can be a million rows: pre-size the interner and the
     lock table's dense entry array so the load doesn't pay repeated
     doubling copies on the way up. *)
  let n = Symbol.count t.syms + List.length rows in
  Symbol.ensure_capacity t.syms n;
  Lock.ensure_capacity t.locks n;
  let txn = fresh_txn t in
  ignore (Log.append t.log (Begin txn.id));
  List.iter (fun (key, value) -> do_insert t txn ~key ~value) rows;
  ignore (Log.append t.log (Commit txn.id));
  Log.flush t.log

(* A sharp checkpoint: force pages (log first via the WAL hook), log the
   checkpoint record, then drop the log prefix nobody can need — the oldest
   record still reachable from any live, prepared or in-doubt transaction
   bounds the truncation. *)
let checkpoint t =
  if not t.up then invalid_arg "Engine.checkpoint: site is down";
  Bp.flush_all t.pool;
  let active =
    Hashtbl.fold (fun id txn acc -> (id, txn.last_lsn) :: acc) t.live []
    |> List.sort compare
  in
  let ck_lsn = Log.append t.log (Checkpoint { active; dirty = [] }) in
  Log.flush t.log;
  let active_ids = Hashtbl.create 16 in
  Hashtbl.iter (fun id _ -> Hashtbl.replace active_ids id ()) t.live;
  Hashtbl.iter (fun id _ -> Hashtbl.replace active_ids id ()) t.in_doubt_tbl;
  let bound = ref ck_lsn in
  Log.iter t.log (fun lsn record ->
      let touch id = if Hashtbl.mem active_ids id && lsn < !bound then bound := lsn in
      match record with
      | Begin id | Commit id | Abort id -> touch id
      | Op { txn; _ } | Clr { txn; _ } | Prepare { txn; _ } -> touch txn
      | Checkpoint _ -> ());
  Log.truncate_prefix t.log ~keep_from:!bound

let () = checkpoint_impl := checkpoint

let commit_count t = t.commits

let abort_count t = Hashtbl.fold (fun _ n acc -> acc + n) t.abort_tally 0

let abort_counts t =
  Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) t.abort_tally []
  |> List.sort compare

let wal t = t.log
let symbols t = t.syms
let flush_buffers t = Bp.flush_all t.pool
let buffer_pins t = Bp.pin_count t.pool
let set_hold_time_hook t f = t.hold_hook <- f
let set_lock_observer t f = t.lock_observer <- f
let set_state_hook t f = t.state_hook <- f
let set_commit_delta_hook t f = t.commit_delta_hook <- Some f
let live_txn_count t = Hashtbl.length t.live
let in_doubt_count t = Hashtbl.length t.in_doubt_tbl
let lock_held_count t = Lock.held_count t.locks
let buffer_pool t = t.pool
let lock_wait_count t = Lock.wait_count t.locks
let lock_deadlock_count t = Lock.deadlock_count t.locks
let lock_timeout_count t = Lock.timeout_count t.locks
