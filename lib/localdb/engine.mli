(** A local database system — one of the paper's "existing systems".

    Each engine is a self-contained DBMS: keyed integer records on slotted
    pages behind a buffer pool, a write-ahead log with restart recovery, and
    a pluggable concurrency-control scheme (strict two-phase locking with
    wait timeouts, or optimistic validation). It guarantees local ACID and
    exposes exactly the interface the paper assumes of an unmodifiable
    system: [begin], operations, [commit], [abort] — and {e optionally} a
    persisted [prepare] state, the capability most existing systems lack and
    whose absence motivates the whole paper.

    All potentially blocking calls ({!read}, {!write}, {!commit}, ...) must
    run inside an {!Icdb_sim.Fiber}; they consume virtual time and may
    suspend on lock waits.

    Autonomy is modelled faithfully: a transaction can be aborted under the
    caller's feet by a lock timeout, a deadlock, failed optimistic
    validation, an injected kill ({!kill} — the experiment harness's
    "aborted by the local transaction manager"), or a site crash. Every
    operation therefore returns an [outcome]. *)

type t

(** Why a local transaction died. Mirrors the paper's §3.2 list: "by the
    local transaction manager, e.g. because of time out, by an optimistic
    scheduler since the transaction did not survive the validation phase,
    or by a system crash" — plus explicit requests. *)
type abort_reason =
  | Deadlock_victim
  | Lock_timeout
  | Validation_failed
  | Site_crashed
  | Injected  (** killed by the environment / failure injector *)
  | Requested  (** the client called {!abort} *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit
val abort_reason_to_string : abort_reason -> string

type cc_scheme =
  | Locking of { wait_timeout : float option }
      (** strict 2PL; waits longer than [wait_timeout] abort the waiter *)
  | Optimistic  (** deferred writes, backward validation at commit *)

(** Lock granularity of a locking site. [Page_level] models the paper's
    single-level systems whose L0 concurrency control works on pages: any
    non-read access takes an exclusive lock on the record's {e page}, so two
    increments of different records sharing a page conflict — the exact
    situation of Figure 8. Inserts of unknown keys serialize on a coarse
    allocation lock (a documented simplification; the Figure 8 workloads
    operate on preloaded keys). [Record_level] locks individual keys and
    supports the increment mode. *)
type granularity = Record_level | Page_level

(** What this existing system's interface offers. [supports_prepare]
    requires [Locking] (a prepared transaction must keep its writes
    protected); {!create} rejects other combinations. *)
type capabilities = {
  supports_prepare : bool;
  supports_increment_locks : bool;
      (** commutative increment lock mode available at the record level *)
  granularity : granularity;
  cc : cc_scheme;
}

(** No prepare, increment locks available, 2PL with a 50-time-unit wait
    timeout — a typical unmodifiable system. *)
val default_capabilities : capabilities

(** Autonomous failure injection: with [probability], a transaction is
    killed (reason [Injected]) at a uniformly random point of
    [\[min_delay, max_delay\]] after it began — {e if} it is still running
    then. Prepared transactions are never killed (the ready state is a
    promise); this models the paper's local system that "may still abort
    the transaction, e.g. because of time out" while a commitment-after
    local waits for the global decision in the running state. *)
type spontaneous_abort = {
  probability : float;
  min_delay : float;
  max_delay : float;
}

type config = {
  site_name : string;
  capabilities : capabilities;
  op_delay : float;  (** virtual time consumed by each operation *)
  commit_delay : float;  (** virtual time consumed by commit processing *)
  buffer_capacity : int;  (** buffer-pool frames *)
  spontaneous : spontaneous_abort option;
  seed : int64;  (** stream for the failure injector *)
  group_commit_window : float option;
      (** [Some w]: committers wait up to [w] virtual time so one log force
          serves the whole batch; acknowledgement only after the force, so
          durability is never weakened (a crash inside the window turns the
          waiting commits into aborts). [None] (default): force per commit. *)
  checkpoint_interval : float option;
      (** [Some p]: take a {!checkpoint} every [p] virtual time units while
          the site is up. [None] (default): manual checkpoints only. *)
}

val default_config : site_name:string -> config

(** Local transaction handle. *)
type txn

(** One observed data access, in execution order — raw material for the
    global serialization-graph checker. *)
type access =
  | Read of { key : string; value : int option }
  | Wrote of { key : string; before : int option; after : int option }
      (** [after = None] is a delete, [before = None] an insert *)
  | Incremented of { key : string; delta : int }

type 'a outcome = ('a, abort_reason) result

val create : Icdb_sim.Engine.t -> config -> t
val name : t -> string
val capabilities : t -> capabilities

(** [load t rows] installs initial committed data; call before any traffic
    (setup only, no fiber needed, consumes no virtual time). *)
val load : t -> (string * int) list -> unit

(** {1 Transaction interface} *)

val begin_txn : t -> txn

(** [begin_txn_opt t] is [Some (begin_txn t)] when the site is up, [None]
    when it is down — where {!begin_txn} raises. Use this at protocol branch
    starts: a fiber woken by a restart can be overtaken by another crash at
    the same instant, and the race must surface as a branch failure, not an
    escaping exception. *)
val begin_txn_opt : t -> txn option

val txn_id : txn -> int
val state : txn -> [ `Running | `Prepared | `Committed | `Aborted of abort_reason ]

(** Accesses performed so far (committed or not), oldest first. *)
val accesses : txn -> access list

(** [read t txn key] is the visible value ([None] when the key is absent). *)
val read : t -> txn -> string -> int option outcome

(** [write t txn ~key ~value] upserts. *)
val write : t -> txn -> key:string -> value:int -> unit outcome

(** [delete t txn key]; succeeds (as a no-op) when the key is absent. *)
val delete : t -> txn -> string -> unit outcome

(** [increment t txn ~key ~delta] adds [delta] blindly — no value is
    returned, which is what lets increments commute (Figure 8). Uses the
    increment lock mode when the site supports it, an exclusive lock
    otherwise. The key must exist ([Invalid_argument] otherwise). *)
val increment : t -> txn -> key:string -> delta:int -> unit outcome

(** [commit t txn]: for locking sites, forces the log and releases locks;
    for optimistic sites, validates first — [Error Validation_failed]
    aborts the transaction. *)
val commit : t -> txn -> unit outcome

(** Client-requested rollback. Idempotent on finished transactions. *)
val abort : t -> txn -> unit

(** [kill t txn] is the failure injector: aborts a {e running} transaction
    from outside (reason [Injected]), even one blocked on a lock. No-op on
    finished transactions. *)
val kill : t -> txn -> unit

(** {1 The optional ready state (2PC-capable sites only)} *)

(** [prepare t txn] persists the ready state: the transaction can no longer
    be lost to a crash, only to an explicit global abort. Raises [Failure]
    on sites without [supports_prepare] — that is the paper's point. *)
val prepare : t -> txn -> unit outcome

(** [resolve_prepared t ~txn_id ~commit] delivers the global decision to a
    prepared transaction — including one recovered in-doubt after a crash.
    Raises [Failure] for an unknown/unprepared id. *)
val resolve_prepared : t -> txn_id:int -> commit:bool -> unit

(** In-doubt transaction ids currently awaiting a decision. *)
val in_doubt : t -> int list

(** Handles of transactions currently in the running state (monitoring and
    failure-injection hooks; order is unspecified). *)
val running_transactions : t -> txn list

(** [abort_txn_id t ~txn_id] rolls back a {e running} transaction by id —
    used by central-crash recovery, which holds ids but no handles. No-op
    for unknown, finished or prepared transactions; [true] when a rollback
    happened. *)
val abort_txn_id : t -> txn_id:int -> bool

(** {1 Crash and restart} *)

(** [crash t] kills the site: volatile state (buffer pool, lock table,
    running transactions, unflushed log tail) is lost; stable state (disk,
    flushed log) survives. Running transactions become
    [`Aborted Site_crashed]; blocked fibers are woken with an error. *)
val crash : t -> unit

(** [restart t] runs restart recovery and reopens the site; returns the
    recovery report. Prepared in-doubt transactions are restored with their
    write locks re-acquired, awaiting {!resolve_prepared}. *)
val restart : t -> Icdb_wal.Recovery.outcome

val is_up : t -> bool

(** {1 Committed state inspection (tests, invariant checks)} *)

(** Reads the committed value without a transaction or locks. *)
val committed_value : t -> string -> int option

val committed_keys : t -> string list

(** {1 Metrics} *)

val commit_count : t -> int
val abort_count : t -> int

(** Aborts broken down by reason. *)
val abort_counts : t -> (abort_reason * int) list

(** The site's write-ahead log (read access for tests and crash-window
    experiments). *)
val wal : t -> Icdb_wal.Log.t

(** Force all dirty buffered pages to disk (exercises the WAL-rule hook). *)
val flush_buffers : t -> unit

(** Outstanding buffer-pool pins; zero between operations (pin-balance
    invariant — see {!Icdb_storage.Buffer_pool.pin_count}). *)
val buffer_pins : t -> int

(** [checkpoint t] takes a sharp checkpoint: every dirty page is forced to
    disk (log first, per the WAL rule), a checkpoint record listing the live
    transactions is force-logged, and the log prefix that no live, prepared
    or in-doubt transaction's rollback can need is truncated. Restart
    recovery then replays only the retained suffix. Raises
    [Invalid_argument] while the site is down. *)
val checkpoint : t -> unit

(** The site's symbol table: lock objects and optimistic read/write-set keys
    are interned against it; observers resolve symbols carried by lock
    events back to names with {!Icdb_util.Symbol.name}. *)
val symbols : t -> Icdb_util.Symbol.table

(** [set_hold_time_hook t f] forwards to the lock table: [f] observes every
    lock-release with its hold duration. [obj] is the interned lock
    object. *)
val set_hold_time_hook :
  t -> (obj:Icdb_util.Symbol.t -> duration:float -> unit) -> unit

(** [set_lock_observer t f] forwards lock-lifecycle events to [f]. The
    listener survives {!crash}/{!restart} even though the lock table itself
    is recreated. *)
val set_lock_observer : t -> (Icdb_lock.Lock_table.observer_event -> unit) -> unit

(** [set_state_hook t f] calls [f `Crash] as the site goes down and
    [f `Recovered] once restart recovery completes. *)
val set_state_hook : t -> ([ `Crash | `Recovered ] -> unit) -> unit

(** [set_commit_delta_hook t f] calls [f ~txn_id ~delta] at every local
    commit with the transaction's net user-visible value change (internal
    marker keys excluded; writes telescope to final − initial). Fires for
    in-doubt transactions resolved to commit after a crash too — their
    delta is recovered from the log's per-transaction record chain, since
    the in-memory access list died with the site. The online
    money-conservation monitor's feed; the delta computation only runs
    while a hook is installed. *)
val set_commit_delta_hook : t -> (txn_id:int -> delta:int -> unit) -> unit

(** Transactions currently live (running or prepared) — O(1). *)
val live_txn_count : t -> int

(** In-doubt transactions awaiting a decision — O(1)
    ([List.length (in_doubt t)] without the allocation). *)
val in_doubt_count : t -> int

(** Lock (owner, object) pairs currently held — O(1); zero when the site
    is quiescent (see {!Icdb_lock.Lock_table.held_count}). *)
val lock_held_count : t -> int

(** The site's buffer pool (pin-drift monitoring and tests). *)
val buffer_pool : t -> Icdb_storage.Buffer_pool.t

val lock_wait_count : t -> int
val lock_deadlock_count : t -> int
val lock_timeout_count : t -> int
