(* Deterministic per-transaction head sampling.

   The keep/drop decision for a transaction is a pure function of
   (seed, gid): a splitmix64 mix of the two, mapped to [0,1) and compared
   against the rate. Every event kind that carries the gid (the txn span,
   its phases, branches and the decision instant) shares the transaction's
   fate, so a sampled trace always contains whole transactions — and the
   decision is identical no matter how many domains (-j N) executed the
   sweep, because no run-order state is involved. *)

let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let keep ~seed ~rate gid =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else begin
    let h = splitmix64 (Int64.add seed (Int64.mul (Int64.of_int gid) 0x9e3779b97f4a7c15L)) in
    (* top 53 bits → uniform in [0,1) *)
    let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53 in
    u < rate
  end

let kind_filter ~seed ~rate =
  fun (kind : Span.kind) ->
    match kind with
    | Span.Txn { gid; _ }
    | Span.Phase { gid; _ }
    | Span.Branch { gid; _ }
    | Span.Decision { gid; _ } -> keep ~seed ~rate gid
    | Span.Outage _ | Span.Mark _ -> true
    | Span.Message _ | Span.Lock_wait _ | Span.Lock_hold _ | Span.Wal_force _ ->
      (* no gid to key on: these high-volume kinds are dropped whenever the
         trace is sampled at all *)
      rate >= 1.0
