(** Metrics registry: named, labelled counters and latency histograms.

    The single recording path for every numeric observation in the testbed:
    {!Icdb_core.Metrics} re-homes its per-run counters here, the protocol
    phases record their latencies here, and the link / lock-table / WAL
    hooks feed message, wait and force counts. Exporters ({!Export}) turn a
    {!snapshot} into JSON or Prometheus text.

    Metric handles are get-or-create: [counter t ~labels name] returns the
    existing handle when the (name, sorted labels) pair is already
    registered. Handles are cheap to cache and O(1) to update, so hot paths
    (one observation per message or lock wait) stay off the allocator. All
    listings are sorted, so snapshots of deterministic runs are
    byte-identical regardless of domain count.

    Histograms are bounded-memory, HDR-style: observations land in
    log-spaced buckets (one octave per binary exponent, 32 linear
    sub-buckets each, lazily allocated), so memory is O(occupied buckets)
    regardless of observation count. Count, sum, mean, min and max are
    exact; {!hist_percentile} returns the upper bound of the bucket holding
    the target rank clamped into [min, max] — within 1/32 (≤ 6.25%)
    relative error of the true order statistic, and exact whenever all
    observations share one bucket (in particular for a single
    observation). *)

type t

(** Identity of a metric: name plus sorted [(label, value)] pairs. *)
type key = { name : string; labels : (string * string) list }

type counter
type histogram

val create : unit -> t

(** Get or create. Raises [Invalid_argument] when the name is already
    registered as the other metric type. *)
val counter : t -> ?labels:(string * string) list -> string -> counter

val histogram : t -> ?labels:(string * string) list -> string -> histogram
val inc : ?by:int -> counter -> unit
val count : counter -> int
val observe : histogram -> float -> unit
val hist_count : histogram -> int

(** Mean over all observations; [0.] when empty. *)
val hist_mean : histogram -> float

(** Bucketed percentile (see the module comment); [0.] when empty,
    exact max for [p >= 100]. *)
val hist_percentile : histogram -> float -> float
val clear_counter : counter -> unit
val clear_histogram : histogram -> unit

(** Point-in-time summary of one histogram. *)
type hsnap = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_max : float;
}

val hist_snapshot : histogram -> hsnap

(** Full registry dump, both sections sorted by (name, labels). *)
type snapshot = {
  counters : (key * int) list;
  histograms : (key * hsnap) list;
}

val snapshot : t -> snapshot

(** Every histogram registered under [name], any label set, sorted. *)
val histograms_named : t -> string -> (key * histogram) list

(** [label key l] is the value of label [l], if present. *)
val label : key -> string -> string option
