type event =
  | Begin of { id : int; parent : int; actor : string; time : float; kind : Span.kind }
  | End of { id : int; time : float }
  | Complete of { actor : string; start : float; stop : float; kind : Span.kind }
  | Instant of { actor : string; time : float; kind : Span.kind }

type t = {
  mutable clock : unit -> float;
  mutable enabled : bool;
  mutable events : event array;
  mutable len : int;
  mutable next_id : int;
}

let dummy = Instant { actor = ""; time = 0.0; kind = Span.Mark "" }

let create ?(enabled = false) ~clock () =
  { clock; enabled; events = Array.make 256 dummy; len = 0; next_id = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let set_clock t clock = t.clock <- clock

let push t ev =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let begin_span t ?(parent = -1) ~actor kind =
  if not t.enabled then -1
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    push t (Begin { id; parent; actor; time = t.clock (); kind });
    id
  end

let end_span t id =
  if t.enabled && id >= 0 then push t (End { id; time = t.clock () })

let complete t ~actor ~start ?stop kind =
  if t.enabled then
    let stop = match stop with Some s -> s | None -> t.clock () in
    push t (Complete { actor; start; stop; kind })

let instant t ~actor kind =
  if t.enabled then push t (Instant { actor; time = t.clock (); kind })

let length t = t.len
let clear t = t.len <- 0

let events t = Array.to_list (Array.sub t.events 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

(* --- span reconstruction ------------------------------------------------- *)

type span = {
  s_id : int;  (* -1 for Complete spans *)
  s_parent : int;
  s_actor : string;
  s_kind : Span.kind;
  s_start : float;
  s_stop : float option;
}

let spans t =
  let open_tbl = Hashtbl.create 64 in
  let out = ref [] in
  let order = ref 0 in
  iter t (fun ev ->
      incr order;
      match ev with
      | Begin { id; parent; actor; time; kind } ->
        Hashtbl.replace open_tbl id
          (!order, { s_id = id; s_parent = parent; s_actor = actor; s_kind = kind; s_start = time; s_stop = None })
      | End { id; time } -> (
        match Hashtbl.find_opt open_tbl id with
        | None -> ()
        | Some (ord, s) ->
          Hashtbl.remove open_tbl id;
          out := (ord, { s with s_stop = Some time }) :: !out)
      | Complete { actor; start; stop; kind } ->
        out :=
          ( !order,
            { s_id = -1; s_parent = -1; s_actor = actor; s_kind = kind; s_start = start; s_stop = Some stop } )
          :: !out
      | Instant _ -> ());
  (* Spans still open at the end of the run dangle without a stop. *)
  Hashtbl.iter (fun _ (ord, s) -> out := (ord, s) :: !out) open_tbl;
  List.sort compare !out |> List.map snd

let instants t =
  let out = ref [] in
  iter t (function
    | Instant { actor; time; kind } -> out := (time, actor, kind) :: !out
    | _ -> ());
  List.rev !out
