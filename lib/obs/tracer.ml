type event =
  | Begin of { id : int; parent : int; actor : string; time : float; kind : Span.kind }
  | End of { id : int; time : float }
  | Complete of { actor : string; start : float; stop : float; kind : Span.kind }
  | Instant of { actor : string; time : float; kind : Span.kind }

(* Flight-recorder ring storage, unboxed and strided.

   Storing boxed [event] values into a long-lived ring array looks cheap
   but is not: each event is young at the store and dead [cap] pushes
   later, yet every minor GC in between promotes the entire surviving ring
   contents (event records plus their [Span.kind] payloads) into the major
   heap, where they immediately become garbage the major collector has to
   find. On the 12k-transaction bench kernel that churn alone costs more
   than the pushes themselves.

   So the ring holds no event values. Each slot is a fixed stride in three
   flat arrays — ints (event tag, span kind tag and small enums packed into
   one word, plus id/parent/gid), unboxed floats (start/stop times), and
   pointers to strings that are already long-lived (actor names,
   protocol/phase/site/label atoms). A push writes a few adjacent words in
   three cache lines, crosses no write barrier, and leaves nothing for the
   GC to promote. Events are re-boxed only on the cold read side ({!iter}
   and friends). *)
type ring = {
  (* stride 4: packed (tag lor ktag<<2 lor kint2<<6), id, parent, kint *)
  r_int : int array;
  (* stride 2: t0 (Begin/Instant time, Complete start), t1 (Complete stop) *)
  r_flt : float array;
  (* stride 3: actor, kstr, kstr2 *)
  r_str : string array;
}

type t = {
  mutable clock : unit -> float;
  mutable enabled : bool;
  mutable events : event array; (* growable store (unbounded mode only) *)
  mutable len : int;
  mutable next_id : int;
  mutable cap : int; (* ring capacity; 0 = unbounded growable array *)
  mutable head : int; (* ring read position (oldest retained event) *)
  mutable dropped : int; (* events overwritten by ring wraparound *)
  ring : ring option; (* Some iff cap > 0 *)
  mutable sink : (event -> unit) option; (* streaming tap, fed every event *)
  mutable store : bool; (* false = sink-only, nothing retained *)
  mutable sampler : (Span.kind -> bool) option; (* None = keep everything *)
}

let dummy = Instant { actor = ""; time = 0.0; kind = Span.Mark "" }
let no_str = ""

let make_ring cap =
  {
    r_int = Array.make (4 * cap) 0;
    r_flt = Array.make (2 * cap) 0.0;
    r_str = Array.make (3 * cap) no_str;
  }

let create ?(enabled = false) ?limit ~clock () =
  let cap = match limit with None -> 0 | Some n -> max n 1 in
  {
    clock;
    enabled;
    events = (if cap > 0 then [||] else Array.make 256 dummy);
    len = 0;
    next_id = 0;
    cap;
    head = 0;
    dropped = 0;
    ring = (if cap > 0 then Some (make_ring cap) else None);
    sink = None;
    store = true;
    sampler = None;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let set_clock t clock = t.clock <- clock

let set_sink t sink = t.sink <- sink
let set_store t store = t.store <- store
let set_sampler t sampler = t.sampler <- sampler
let dropped t = t.dropped
let capacity t = if t.cap > 0 then Some t.cap else None

let sampled t kind =
  match t.sampler with None -> true | Some keep -> keep kind

(* Claim the next ring slot: overwrite the oldest event when full. Indices
   advance one step at a time, so a compare-and-reset wrap replaces the
   integer division. *)
let ring_pos t =
  if t.len = t.cap then begin
    let h = t.head in
    t.head <- (let h' = h + 1 in if h' = t.cap then 0 else h');
    t.dropped <- t.dropped + 1;
    h
  end
  else begin
    let i = t.head + t.len in
    let i = if i >= t.cap then i - t.cap else i in
    t.len <- t.len + 1;
    i
  end

(* Event tags (bits 0-1 of the packed word). *)
let tag_begin = 0
and tag_end = 1
and tag_complete = 2
and tag_instant = 3

(* [store_kind r ~ib ~sb ~tag kind] fills the kind slots of event [ib/sb]
   and writes the packed word: event tag, kind constructor index (bits
   2-5) and any small enum payload — direction, commit flag, phase index —
   in the bits above. Indices come from {!ring_pos}, hence in bounds. *)
let store_kind r ~ib ~sb ~tag (kind : Span.kind) =
  match kind with
  | Span.Txn { gid; protocol } ->
    Array.unsafe_set r.r_int ib tag;
    Array.unsafe_set r.r_int (ib + 3) gid;
    Array.unsafe_set r.r_str (sb + 1) protocol
  | Span.Phase { gid; phase } ->
    Array.unsafe_set r.r_int ib (tag lor (1 lsl 2) lor (Span.phase_index phase lsl 6));
    Array.unsafe_set r.r_int (ib + 3) gid
  | Span.Branch { gid; site } ->
    Array.unsafe_set r.r_int ib (tag lor (2 lsl 2));
    Array.unsafe_set r.r_int (ib + 3) gid;
    Array.unsafe_set r.r_str (sb + 1) site
  | Span.Lock_wait { table; obj } ->
    Array.unsafe_set r.r_int ib (tag lor (3 lsl 2));
    Array.unsafe_set r.r_str (sb + 1) table;
    Array.unsafe_set r.r_str (sb + 2) obj
  | Span.Lock_hold { table; obj } ->
    Array.unsafe_set r.r_int ib (tag lor (4 lsl 2));
    Array.unsafe_set r.r_str (sb + 1) table;
    Array.unsafe_set r.r_str (sb + 2) obj
  | Span.Message { label; direction } ->
    let dir = match direction with Span.Send -> 0 | Span.Recv -> 1 | Span.Drop -> 2 in
    Array.unsafe_set r.r_int ib (tag lor (5 lsl 2) lor (dir lsl 6));
    Array.unsafe_set r.r_str (sb + 1) label
  | Span.Wal_force { site } ->
    Array.unsafe_set r.r_int ib (tag lor (6 lsl 2));
    Array.unsafe_set r.r_str (sb + 1) site
  | Span.Outage { site } ->
    Array.unsafe_set r.r_int ib (tag lor (7 lsl 2));
    Array.unsafe_set r.r_str (sb + 1) site
  | Span.Decision { gid; commit } ->
    Array.unsafe_set r.r_int ib (tag lor (8 lsl 2) lor (Bool.to_int commit lsl 6));
    Array.unsafe_set r.r_int (ib + 3) gid
  | Span.Mark s ->
    Array.unsafe_set r.r_int ib (tag lor (9 lsl 2));
    Array.unsafe_set r.r_str (sb + 1) s

let phase_of_index : int -> Span.phase = function
  | 0 -> Span.Execute
  | 1 -> Span.Vote
  | 2 -> Span.Decide
  | 3 -> Span.Local_commit
  | 4 -> Span.Redo
  | _ -> Span.Compensate

let load_kind r ~ib ~sb ~packed : Span.kind =
  let kint2 = packed lsr 6 in
  match (packed lsr 2) land 15 with
  | 0 -> Span.Txn { gid = r.r_int.(ib + 3); protocol = r.r_str.(sb + 1) }
  | 1 -> Span.Phase { gid = r.r_int.(ib + 3); phase = phase_of_index kint2 }
  | 2 -> Span.Branch { gid = r.r_int.(ib + 3); site = r.r_str.(sb + 1) }
  | 3 -> Span.Lock_wait { table = r.r_str.(sb + 1); obj = r.r_str.(sb + 2) }
  | 4 -> Span.Lock_hold { table = r.r_str.(sb + 1); obj = r.r_str.(sb + 2) }
  | 5 ->
    Span.Message
      {
        label = r.r_str.(sb + 1);
        direction = (match kint2 with 0 -> Span.Send | 1 -> Span.Recv | _ -> Span.Drop);
      }
  | 6 -> Span.Wal_force { site = r.r_str.(sb + 1) }
  | 7 -> Span.Outage { site = r.r_str.(sb + 1) }
  | 8 -> Span.Decision { gid = r.r_int.(ib + 3); commit = kint2 = 1 }
  | _ -> Span.Mark r.r_str.(sb + 1)

let ring_nth r i =
  let ib = 4 * i and fb = 2 * i and sb = 3 * i in
  let packed = r.r_int.(ib) in
  match packed land 3 with
  | 0 ->
    Begin
      {
        id = r.r_int.(ib + 1);
        parent = r.r_int.(ib + 2);
        actor = r.r_str.(sb);
        time = r.r_flt.(fb);
        kind = load_kind r ~ib ~sb ~packed;
      }
  | 1 -> End { id = r.r_int.(ib + 1); time = r.r_flt.(fb) }
  | 2 ->
    Complete
      {
        actor = r.r_str.(sb);
        start = r.r_flt.(fb);
        stop = r.r_flt.(fb + 1);
        kind = load_kind r ~ib ~sb ~packed;
      }
  | _ ->
    Instant
      { actor = r.r_str.(sb); time = r.r_flt.(fb); kind = load_kind r ~ib ~sb ~packed }

let ring_store t r ev =
  let i = ring_pos t in
  let ib = 4 * i and fb = 2 * i and sb = 3 * i in
  match ev with
  | Begin { id; parent; actor; time; kind } ->
    Array.unsafe_set r.r_int (ib + 1) id;
    Array.unsafe_set r.r_int (ib + 2) parent;
    Array.unsafe_set r.r_str sb actor;
    Array.unsafe_set r.r_flt fb time;
    store_kind r ~ib ~sb ~tag:tag_begin kind
  | End { id; time } ->
    Array.unsafe_set r.r_int ib tag_end;
    Array.unsafe_set r.r_int (ib + 1) id;
    Array.unsafe_set r.r_flt fb time
  | Complete { actor; start; stop; kind } ->
    Array.unsafe_set r.r_str sb actor;
    Array.unsafe_set r.r_flt fb start;
    Array.unsafe_set r.r_flt (fb + 1) stop;
    store_kind r ~ib ~sb ~tag:tag_complete kind
  | Instant { actor; time; kind } ->
    Array.unsafe_set r.r_str sb actor;
    Array.unsafe_set r.r_flt fb time;
    store_kind r ~ib ~sb ~tag:tag_instant kind

let push t ev =
  (match t.sink with None -> () | Some f -> f ev);
  if t.store then begin
    match t.ring with
    | Some r -> ring_store t r ev
    | None ->
      if t.len = Array.length t.events then begin
        let bigger = Array.make (2 * t.len) dummy in
        Array.blit t.events 0 bigger 0 t.len;
        t.events <- bigger
      end;
      t.events.(t.len) <- ev;
      t.len <- t.len + 1
  end

(* The four recording entry points write the ring directly when no sink is
   attached — the common (chaos flight-recorder) configuration — so the
   steady-state path never allocates the boxed [event] at all. Any other
   configuration falls back to {!push}, which needs the boxed value for the
   sink anyway. *)

let begin_span t ?(parent = -1) ~actor kind =
  if not t.enabled then -1
  else if not (sampled t kind) then -1
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let time = t.clock () in
    (match (t.ring, t.sink) with
    | Some r, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i and sb = 3 * i in
        Array.unsafe_set r.r_int (ib + 1) id;
        Array.unsafe_set r.r_int (ib + 2) parent;
        Array.unsafe_set r.r_str sb actor;
        Array.unsafe_set r.r_flt (2 * i) time;
        store_kind r ~ib ~sb ~tag:tag_begin kind
      end
    | _ -> push t (Begin { id; parent; actor; time; kind }));
    id
  end

let end_span t id =
  if t.enabled && id >= 0 then begin
    match (t.ring, t.sink) with
    | Some r, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i in
        Array.unsafe_set r.r_int ib tag_end;
        Array.unsafe_set r.r_int (ib + 1) id;
        Array.unsafe_set r.r_flt (2 * i) (t.clock ())
      end
    | _ -> push t (End { id; time = t.clock () })
  end

let complete t ~actor ~start ?stop kind =
  if t.enabled && sampled t kind then begin
    let stop = match stop with Some s -> s | None -> t.clock () in
    match (t.ring, t.sink) with
    | Some r, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i and fb = 2 * i and sb = 3 * i in
        Array.unsafe_set r.r_str sb actor;
        Array.unsafe_set r.r_flt fb start;
        Array.unsafe_set r.r_flt (fb + 1) stop;
        store_kind r ~ib ~sb ~tag:tag_complete kind
      end
    | _ -> push t (Complete { actor; start; stop; kind })
  end

let instant t ~actor kind =
  if t.enabled && sampled t kind then begin
    match (t.ring, t.sink) with
    | Some r, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i and sb = 3 * i in
        Array.unsafe_set r.r_str sb actor;
        Array.unsafe_set r.r_flt (2 * i) (t.clock ());
        store_kind r ~ib ~sb ~tag:tag_instant kind
      end
    | _ -> push t (Instant { actor; time = t.clock (); kind })
  end

(* Allocation-free entry points for the two event kinds that dominate a
   protocol run's stream (message instants and lock-interval completes —
   together ~3/4 of all events): the kind payload arrives as primitive
   arguments and is written straight into the ring slots, so the hot
   (flight-recorder) configuration never materialises the [Span.kind]
   record at all. Any attachment that needs a boxed kind — a sink, a
   sampler — falls back to the general path. *)

let instant_message t ~actor ~label ~(direction : Span.direction) =
  if t.enabled then begin
    match (t.ring, t.sink, t.sampler) with
    | Some r, None, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i and sb = 3 * i in
        let dir = match direction with Span.Send -> 0 | Span.Recv -> 1 | Span.Drop -> 2 in
        Array.unsafe_set r.r_str sb actor;
        Array.unsafe_set r.r_str (sb + 1) label;
        Array.unsafe_set r.r_flt (2 * i) (t.clock ());
        Array.unsafe_set r.r_int ib (tag_instant lor (5 lsl 2) lor (dir lsl 6))
      end
    | _ -> instant t ~actor (Span.Message { label; direction })
  end

let complete_lock t ~actor ~start ~wait ~table ~obj =
  if t.enabled then begin
    match (t.ring, t.sink, t.sampler) with
    | Some r, None, None ->
      if t.store then begin
        let i = ring_pos t in
        let ib = 4 * i and fb = 2 * i and sb = 3 * i in
        Array.unsafe_set r.r_str sb actor;
        Array.unsafe_set r.r_str (sb + 1) table;
        Array.unsafe_set r.r_str (sb + 2) obj;
        Array.unsafe_set r.r_flt fb start;
        Array.unsafe_set r.r_flt (fb + 1) (t.clock ());
        Array.unsafe_set r.r_int ib (tag_complete lor ((if wait then 3 else 4) lsl 2))
      end
    | _ ->
      complete t ~actor ~start
        (if wait then Span.Lock_wait { table; obj } else Span.Lock_hold { table; obj })
  end

let length t = t.len

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

let iter t f =
  match t.ring with
  | Some r ->
    for k = 0 to t.len - 1 do
      let i = t.head + k in
      let i = if i >= t.cap then i - t.cap else i in
      f (ring_nth r i)
    done
  | None ->
    for i = 0 to t.len - 1 do
      f t.events.(i)
    done

let events t =
  let out = ref [] in
  iter t (fun ev -> out := ev :: !out);
  List.rev !out

(* --- span reconstruction ------------------------------------------------- *)

type span = {
  s_id : int;  (* -1 for Complete spans *)
  s_parent : int;
  s_actor : string;
  s_kind : Span.kind;
  s_start : float;
  s_stop : float option;
}

let spans t =
  let open_tbl = Hashtbl.create 64 in
  let out = ref [] in
  let order = ref 0 in
  iter t (fun ev ->
      incr order;
      match ev with
      | Begin { id; parent; actor; time; kind } ->
        Hashtbl.replace open_tbl id
          (!order, { s_id = id; s_parent = parent; s_actor = actor; s_kind = kind; s_start = time; s_stop = None })
      | End { id; time } -> (
        match Hashtbl.find_opt open_tbl id with
        | None -> ()
        | Some (ord, s) ->
          Hashtbl.remove open_tbl id;
          out := (ord, { s with s_stop = Some time }) :: !out)
      | Complete { actor; start; stop; kind } ->
        out :=
          ( !order,
            { s_id = -1; s_parent = -1; s_actor = actor; s_kind = kind; s_start = start; s_stop = Some stop } )
          :: !out
      | Instant _ -> ());
  (* Spans still open at the end of the run dangle without a stop. *)
  Hashtbl.iter (fun _ (ord, s) -> out := (ord, s) :: !out) open_tbl;
  List.sort compare !out |> List.map snd

let instants t =
  let out = ref [] in
  iter t (function
    | Instant { actor; time; kind } -> out := (time, actor, kind) :: !out
    | _ -> ());
  List.rev !out
