(** The typed event vocabulary of the observability layer.

    Every span or instant a {!Tracer} records carries one of these kinds;
    exporters derive display names and Chrome-trace categories from them
    instead of parsing strings. *)

(** Protocol phases, the unit of the per-protocol latency breakdown:
    execution of the locals, the voting round (2PC inquiry / final-state
    inquiry), the decision instant, post-decision local commitment, redo of
    an erroneously aborted local (§3.2), and compensation by inverse
    transactions (§3.3/§4). *)
type phase = Execute | Vote | Decide | Local_commit | Redo | Compensate

val phase_name : phase -> string

(** Canonical report order. *)
val all_phases : phase list

(** Dense index of a phase in {!all_phases} — lets hot consumers keep
    pre-resolved per-phase handles in a plain array. *)
val phase_index : phase -> int

val num_phases : int

type direction = Send | Recv | Drop

val direction_name : direction -> string

type kind =
  | Txn of { gid : int; protocol : string }  (** global-transaction lifetime *)
  | Phase of { gid : int; phase : phase }
  | Branch of { gid : int; site : string }
      (** one branch (or MLT action) round-trip, from request send to reply *)
  | Lock_wait of { table : string; obj : string }
  | Lock_hold of { table : string; obj : string }
  | Message of { label : string; direction : direction }  (** instant *)
  | Wal_force of { site : string }  (** instant *)
  | Outage of { site : string }  (** site crash .. recovery *)
  | Decision of { gid : int; commit : bool }  (** instant *)
  | Mark of string  (** free-form instant *)

(** Display name, e.g. ["g12 vote"] or ["send prepare"]. *)
val name : kind -> string

(** Chrome-trace category ("txn", "phase", "lock", "msg", ...). *)
val category : kind -> string
