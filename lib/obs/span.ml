type phase = Execute | Vote | Decide | Local_commit | Redo | Compensate

let phase_name = function
  | Execute -> "execute"
  | Vote -> "vote"
  | Decide -> "decide"
  | Local_commit -> "local-commit"
  | Redo -> "redo"
  | Compensate -> "compensate"

let all_phases = [ Execute; Vote; Decide; Local_commit; Redo; Compensate ]

let num_phases = 6

let phase_index = function
  | Execute -> 0
  | Vote -> 1
  | Decide -> 2
  | Local_commit -> 3
  | Redo -> 4
  | Compensate -> 5

type direction = Send | Recv | Drop

let direction_name = function Send -> "send" | Recv -> "recv" | Drop -> "drop"

type kind =
  | Txn of { gid : int; protocol : string }
  | Phase of { gid : int; phase : phase }
  | Branch of { gid : int; site : string }
  | Lock_wait of { table : string; obj : string }
  | Lock_hold of { table : string; obj : string }
  | Message of { label : string; direction : direction }
  | Wal_force of { site : string }
  | Outage of { site : string }
  | Decision of { gid : int; commit : bool }
  | Mark of string

let name = function
  | Txn { gid; protocol } -> Printf.sprintf "g%d %s" gid protocol
  | Phase { gid; phase } -> Printf.sprintf "g%d %s" gid (phase_name phase)
  | Branch { gid; site } -> Printf.sprintf "g%d @%s" gid site
  | Lock_wait { obj; _ } -> "lock-wait " ^ obj
  | Lock_hold { obj; _ } -> "lock-hold " ^ obj
  | Message { label; direction } -> direction_name direction ^ " " ^ label
  | Wal_force { site } -> "wal-force " ^ site
  | Outage { site } -> "down " ^ site
  | Decision { gid; commit } ->
    Printf.sprintf "g%d decision:%s" gid (if commit then "commit" else "abort")
  | Mark s -> s

let category = function
  | Txn _ -> "txn"
  | Phase _ -> "phase"
  | Branch _ -> "branch"
  | Lock_wait _ | Lock_hold _ -> "lock"
  | Message _ -> "msg"
  | Wal_force _ -> "wal"
  | Outage _ -> "crash"
  | Decision _ -> "decision"
  | Mark _ -> "mark"
