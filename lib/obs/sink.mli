(** Incremental Chrome-trace writer — {!Export.chrome_trace} as a stream.

    [create ~write] emits the JSON header immediately and then formats each
    event handed to {!on_event} straight into [write] (typically
    [output_string] on a file channel). Attach one to a tracer with
    [Tracer.set_sink t (Some (Sink.on_event sink))], usually together with
    [Tracer.set_store t false], and a million-account run traces to disk
    with in-process memory bounded by the open-span and actor tables.

    {!close} finishes the stream: spans still open are closed at the last
    recorded time next to a [crash-truncated] marker (the same discipline
    as the batch exporter), then the closing bracket is written. Events
    arriving after [close] are ignored.

    Format note: thread_name metadata records are interleaved (emitted when
    an actor is first seen) rather than leading the file as in the batch
    exporter — the trace-event spec permits "M" records anywhere, and
    Perfetto reads both. *)

type t

val create : write:(string -> unit) -> t
val on_event : t -> Tracer.event -> unit
val close : t -> unit

(** Payload events written so far (metadata records excluded). *)
val event_count : t -> int

(** Total bytes handed to [write] so far. *)
val byte_count : t -> int
