(** Deterministic exporters for traces and metric snapshots.

    See OBSERVABILITY.md for the formats and how to open a trace in
    Perfetto. *)

(** Chrome trace-event JSON ([{"traceEvents": [...]}]): protocol spans as
    async "b"/"e" pairs (they overlap freely on one track), lock waits /
    holds / outages as complete "X" events, messages / decisions / WAL
    forces as instants. One virtual time unit is exported as 1 µs. Open at
    [https://ui.perfetto.dev] or [chrome://tracing]. *)
val chrome_trace : Tracer.t -> string

(** JSON snapshot of every counter and histogram, sorted. *)
val metrics_json : Registry.t -> string

(** Prometheus text exposition: counters as [counter], histograms as
    [summary] with 0.5/0.95/1 quantiles. *)
val prometheus : Registry.t -> string

(** Indented, human-readable span tree plus a chronological instant list
    (the [icdb trace] output). *)
val span_tree : Tracer.t -> string

(** Escapes a string for embedding in JSON (shared by BENCH.json writers). *)
val json_escape : string -> string
