(** Deterministic exporters for traces and metric snapshots.

    See OBSERVABILITY.md for the formats and how to open a trace in
    Perfetto. *)

(** Chrome trace-event JSON ([{"traceEvents": [...]}]): protocol spans as
    async "b"/"e" pairs (they overlap freely on one track), lock waits /
    holds / outages as complete "X" events, messages / decisions / WAL
    forces as instants. One virtual time unit is exported as 1 µs. Spans a
    crash left open are closed synthetically at the last recorded time,
    next to a [crash-truncated] marker instant, so Perfetto shows the
    crash signature instead of clipping the track. Open at
    [https://ui.perfetto.dev] or [chrome://tracing]. *)
val chrome_trace : Tracer.t -> string

(** JSON snapshot of every counter and histogram, sorted. *)
val metrics_json : Registry.t -> string

(** Prometheus text exposition: counters as [counter], histograms as
    [summary] with 0.5/0.95/1 quantiles. *)
val prometheus : Registry.t -> string

(** Indented, human-readable span tree plus a chronological instant list
    (the [icdb trace] output). Spans a crash left open are pinned to the
    last recorded time and tagged [(crash-truncated)]. *)
val span_tree : Tracer.t -> string

(** Plain-text dump of a (usually ring-limited) tracer, one line per
    retained event, oldest first — the flight-recorder forensics format
    written by [icdb chaos] next to a shrunken reproducer. *)
val flight_dump : Tracer.t -> string

(** Escapes a string for embedding in JSON (shared by BENCH.json writers). *)
val json_escape : string -> string

(** Fixed-precision float formatting shared by the JSON writers
    ([%.3f]; NaN renders as [0]). *)
val fnum : float -> string
