(* Streaming Chrome-trace writer: the incremental counterpart of
   {!Export.chrome_trace}. Events are formatted and handed to [write] as
   they are recorded, so a million-account run can trace to disk while the
   in-process state stays O(open spans + actors): a tid table, the
   open-span table End events need, and whatever the channel buffers.

   The one format difference from the batch exporter is metadata placement:
   thread_name records are emitted when an actor is first seen instead of
   all up front (the batch exporter can afford a first pass; a stream
   cannot). The trace-event spec allows "M" records anywhere. *)

type t = {
  write : string -> unit;
  mutable first : bool;
  mutable closed : bool;
  tids : (string, int) Hashtbl.t;
  open_spans : (int, string * Span.kind) Hashtbl.t;
  mutable last_time : float;
  mutable events : int; (* payload events emitted (metadata excluded) *)
  mutable bytes : int;
}

let emit t line =
  let sep = if t.first then "" else ",\n" in
  t.first <- false;
  t.write sep;
  t.write line;
  t.bytes <- t.bytes + String.length sep + String.length line

let create ~write =
  let t =
    {
      write;
      first = true;
      closed = false;
      tids = Hashtbl.create 16;
      open_spans = Hashtbl.create 64;
      last_time = 0.0;
      events = 0;
      bytes = 0;
    }
  in
  let header = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" in
  t.write header;
  t.bytes <- t.bytes + String.length header;
  emit t "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"icdb\"}}";
  t

let tid_of t actor =
  match Hashtbl.find_opt t.tids actor with
  | Some n -> n
  | None ->
    let n = Hashtbl.length t.tids in
    Hashtbl.replace t.tids actor n;
    emit t
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         n (Export.json_escape actor));
    n

let bump_time t time = if time > t.last_time then t.last_time <- time

let on_event t (ev : Tracer.event) =
  if not t.closed then begin
    t.events <- t.events + 1;
    match ev with
    | Tracer.Begin { id; actor; time; kind; parent = _ } ->
      bump_time t time;
      Hashtbl.replace t.open_spans id (actor, kind);
      emit t
        (Printf.sprintf
           "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"b\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
           (Span.category kind)
           (Export.json_escape (Span.name kind))
           id (tid_of t actor) (Export.fnum time))
    | Tracer.End { id; time } -> (
      bump_time t time;
      match Hashtbl.find_opt t.open_spans id with
      | None -> t.events <- t.events - 1 (* End without a Begin: dropped *)
      | Some (actor, kind) ->
        Hashtbl.remove t.open_spans id;
        emit t
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"e\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Span.category kind)
             (Export.json_escape (Span.name kind))
             id (tid_of t actor) (Export.fnum time)))
    | Tracer.Complete { actor; start; stop; kind } ->
      bump_time t stop;
      emit t
        (Printf.sprintf
           "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s}"
           (Span.category kind)
           (Export.json_escape (Span.name kind))
           (tid_of t actor) (Export.fnum start)
           (Export.fnum (stop -. start)))
    | Tracer.Instant { actor; time; kind } ->
      bump_time t time;
      emit t
        (Printf.sprintf
           "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s}"
           (Span.category kind)
           (Export.json_escape (Span.name kind))
           (tid_of t actor) (Export.fnum time))
  end

let close t =
  if not t.closed then begin
    (* Same crash-truncation discipline as the batch exporter: close every
       span still open at the last recorded time, marker first. *)
    let stop = Export.fnum t.last_time in
    let dangling =
      Hashtbl.fold (fun id span acc -> (id, span) :: acc) t.open_spans []
      |> List.sort compare
    in
    List.iter
      (fun (id, (actor, kind)) ->
        let tid = tid_of t actor in
        emit t
          (Printf.sprintf
             "{\"cat\":\"mark\",\"name\":\"crash-truncated: %s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Export.json_escape (Span.name kind))
             tid stop);
        emit t
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"e\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Span.category kind)
             (Export.json_escape (Span.name kind))
             id tid stop))
      dangling;
    Hashtbl.reset t.open_spans;
    let footer = "\n]}\n" in
    t.write footer;
    t.bytes <- t.bytes + String.length footer;
    t.closed <- true
  end

let event_count t = t.events
let byte_count t = t.bytes
