(** Deterministic, seeded per-transaction head sampling for traces.

    [keep ~seed ~rate gid] decides a whole transaction's fate as a pure
    function of [(seed, gid)] — a splitmix64 hash compared against [rate] —
    so roughly [rate] of all transactions are kept, the same ones on every
    run of the same seed and under any [-j N] domain count. [kind_filter]
    lifts the decision to a {!Tracer.set_sampler} predicate: gid-carrying
    kinds (txn, phase, branch, decision spans) follow their transaction,
    outages and marks are always kept (they are rare and forensic), and the
    gid-less high-volume kinds (messages, lock waits/holds, WAL forces) are
    dropped whenever [rate < 1.0]. *)

val keep : seed:int64 -> rate:float -> int -> bool

val kind_filter : seed:int64 -> rate:float -> Span.kind -> bool
