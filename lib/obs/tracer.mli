(** Structured, span-based event recorder over virtual time.

    A tracer is created with a clock (usually [Icdb_sim.Engine.now] of the
    run's engine) and records four event shapes: [Begin]/[End] pairs for
    nested spans with parent links (protocol runs and their phases),
    retrospective [Complete] spans for intervals whose extent is only known
    when they finish (lock waits, lock holds, site outages), and [Instant]
    points (messages, decisions, WAL forces).

    Recording is gated on {!enabled}: a disabled tracer's record calls are
    single branch tests, so permanent instrumentation costs nothing when no
    trace is requested. The event log is an append-order growable array —
    every accessor is linear, never quadratic, and the order doubles as a
    deterministic tiebreak for simultaneous events. *)

type event =
  | Begin of { id : int; parent : int; actor : string; time : float; kind : Span.kind }
      (** [parent < 0] means no parent *)
  | End of { id : int; time : float }
  | Complete of { actor : string; start : float; stop : float; kind : Span.kind }
  | Instant of { actor : string; time : float; kind : Span.kind }

type t

(** [create ?enabled ~clock ()]. [clock] supplies timestamps (virtual
    time); [enabled] defaults to [false]. *)
val create : ?enabled:bool -> clock:(unit -> float) -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Re-point the timestamp source. Lets a tracer be created before the
    engine whose virtual clock it will read exists (the runner re-wires a
    supplied tracer onto its own engine). *)
val set_clock : t -> (unit -> float) -> unit

(** [begin_span t ?parent ~actor kind] opens a span and returns its id.
    Negative [parent] (the default) means a root span. Returns [-1] (a
    valid no-op handle) when disabled. *)
val begin_span : t -> ?parent:int -> actor:string -> Span.kind -> int

val end_span : t -> int -> unit

(** [complete t ~actor ~start ?stop kind] records a span retrospectively;
    [stop] defaults to the current clock. *)
val complete : t -> actor:string -> start:float -> ?stop:float -> Span.kind -> unit

val instant : t -> actor:string -> Span.kind -> unit
val length : t -> int
val clear : t -> unit

(** Events in recording order. *)
val events : t -> event list

val iter : t -> (event -> unit) -> unit

(** A reconstructed span. [s_id] is [-1] for [Complete] spans; [s_stop] is
    [None] for spans still open when the trace ended. *)
type span = {
  s_id : int;
  s_parent : int;
  s_actor : string;
  s_kind : Span.kind;
  s_start : float;
  s_stop : float option;
}

(** All spans, ordered by completion (ends before enclosing ends). *)
val spans : t -> span list

(** All instants as [(time, actor, kind)], in recording order. *)
val instants : t -> (float * string * Span.kind) list
