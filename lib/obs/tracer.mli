(** Structured, span-based event recorder over virtual time.

    A tracer is created with a clock (usually [Icdb_sim.Engine.now] of the
    run's engine) and records four event shapes: [Begin]/[End] pairs for
    nested spans with parent links (protocol runs and their phases),
    retrospective [Complete] spans for intervals whose extent is only known
    when they finish (lock waits, lock holds, site outages), and [Instant]
    points (messages, decisions, WAL forces).

    Recording is gated on {!enabled}: a disabled tracer's record calls are
    single branch tests, so permanent instrumentation costs nothing when no
    trace is requested. The event log is an append-order growable array —
    every accessor is linear, never quadratic, and the order doubles as a
    deterministic tiebreak for simultaneous events.

    Three optional attachments turn the same tracer into the large-run
    observability pipeline: a fixed [limit] makes the store a
    flight-recorder ring that overwrites its oldest event when full
    (bounded memory, {!dropped} counts the overwrites); a {!set_sink} tap
    receives every recorded event before it is (maybe) stored, which with
    [set_store t false] gives a pure streaming tracer with O(ring) memory;
    and a {!set_sampler} predicate drops whole span kinds at record time
    (deterministic seeded per-transaction sampling lives in
    {!Sampling}). *)

type event =
  | Begin of { id : int; parent : int; actor : string; time : float; kind : Span.kind }
      (** [parent < 0] means no parent *)
  | End of { id : int; time : float }
  | Complete of { actor : string; start : float; stop : float; kind : Span.kind }
  | Instant of { actor : string; time : float; kind : Span.kind }

type t

(** [create ?enabled ?limit ~clock ()]. [clock] supplies timestamps
    (virtual time); [enabled] defaults to [false]. [limit] bounds the store
    to a ring of the most recent [limit] events (flight-recorder mode);
    omitted, the store grows without bound as before. *)
val create : ?enabled:bool -> ?limit:int -> clock:(unit -> float) -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [set_sink t (Some f)] taps every recorded event: [f] runs before the
    event is stored (or not stored — see {!set_store}), in recording
    order. [None] removes the tap. *)
val set_sink : t -> (event -> unit) option -> unit

(** [set_store t false] stops retaining events in memory — only the sink
    sees them. Default [true]. *)
val set_store : t -> bool -> unit

(** [set_sampler t (Some keep)] drops events whose kind fails [keep] at
    record time ({!begin_span} returns [-1], so the matching
    {!end_span} is a no-op too). [None] (default) keeps everything. *)
val set_sampler : t -> (Span.kind -> bool) option -> unit

(** Events overwritten by ring wraparound since the last {!clear}; [0] for
    unbounded tracers. *)
val dropped : t -> int

(** The ring capacity, or [None] for an unbounded tracer. *)
val capacity : t -> int option

(** Re-point the timestamp source. Lets a tracer be created before the
    engine whose virtual clock it will read exists (the runner re-wires a
    supplied tracer onto its own engine). *)
val set_clock : t -> (unit -> float) -> unit

(** [begin_span t ?parent ~actor kind] opens a span and returns its id.
    Negative [parent] (the default) means a root span. Returns [-1] (a
    valid no-op handle) when disabled. *)
val begin_span : t -> ?parent:int -> actor:string -> Span.kind -> int

val end_span : t -> int -> unit

(** [complete t ~actor ~start ?stop kind] records a span retrospectively;
    [stop] defaults to the current clock. *)
val complete : t -> actor:string -> start:float -> ?stop:float -> Span.kind -> unit

val instant : t -> actor:string -> Span.kind -> unit

(** Allocation-free recording of the two event kinds that dominate a
    protocol run's stream. Semantically identical to {!instant} with
    [Span.Message] and {!complete} with [Span.Lock_wait]/[Span.Lock_hold]
    ([wait] selects which), but the kind payload is passed as primitive
    arguments, so the flight-recorder configuration (ring, no sink, no
    sampler) stores it without allocating the kind record. *)
val instant_message :
  t -> actor:string -> label:string -> direction:Span.direction -> unit

val complete_lock :
  t ->
  actor:string ->
  start:float ->
  wait:bool ->
  table:string ->
  obj:string ->
  unit
val length : t -> int
val clear : t -> unit

(** Events in recording order. *)
val events : t -> event list

val iter : t -> (event -> unit) -> unit

(** A reconstructed span. [s_id] is [-1] for [Complete] spans; [s_stop] is
    [None] for spans still open when the trace ended. *)
type span = {
  s_id : int;
  s_parent : int;
  s_actor : string;
  s_kind : Span.kind;
  s_start : float;
  s_stop : float option;
}

(** All spans, ordered by completion (ends before enclosing ends). *)
val spans : t -> span list

(** All instants as [(time, actor, kind)], in recording order. *)
val instants : t -> (float * string * Span.kind) list
