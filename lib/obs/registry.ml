type key = { name : string; labels : (string * string) list }

type counter = { mutable v : int }

(* Bounded-memory HDR-style histogram: observations land in log-spaced
   buckets — one octave per binary exponent, [sub_buckets] linear
   sub-divisions inside each octave, so the bucket width is at most
   1/sub_buckets of the value (≤ 6.25% relative quantile error). Count,
   sum, min and max are tracked exactly and incrementally; only the bucket
   counts are stored, so memory is O(occupied octaves), independent of the
   observation count — the property that lets the million-account runs keep
   full metrics. Octave count arrays are allocated lazily: a histogram that
   only ever sees values in two octaves holds two 32-slot int arrays. *)

let sub_buckets = 32
let e_lo = -32 (* smallest tracked exponent: values below 2^-33 share a bucket *)
let e_hi = 63 (* largest: values ≥ 2^63 share the top bucket *)
let n_octaves = e_hi - e_lo + 1

type histogram = {
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_nonpos : int; (* observations ≤ 0 (or NaN): kept out of the log buckets *)
  octaves : int array option array; (* n_octaves slots, sub_buckets counts each *)
}

type metric = Counter of counter | Histogram of histogram

type t = { tbl : (key, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let key ?(labels = []) name = { name; labels = List.sort compare labels }

let counter t ?labels name =
  let k = key ?labels name in
  match Hashtbl.find_opt t.tbl k with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
    invalid_arg (Printf.sprintf "Registry.counter: %S is a histogram" name)
  | None ->
    let c = { v = 0 } in
    Hashtbl.replace t.tbl k (Counter c);
    c

let fresh_histogram () =
  {
    h_n = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_nonpos = 0;
    octaves = Array.make n_octaves None;
  }

let histogram t ?labels name =
  let k = key ?labels name in
  match Hashtbl.find_opt t.tbl k with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Registry.histogram: %S is a counter" name)
  | None ->
    let h = fresh_histogram () in
    Hashtbl.replace t.tbl k (Histogram h);
    h

let inc ?(by = 1) c = c.v <- c.v + by
let count c = c.v

let observe h x =
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. x;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x;
  if x > 0.0 then begin
    let m, e = Float.frexp x in
    (* m ∈ [0.5, 1): linear sub-bucket index inside the octave. *)
    if e < e_lo then begin
      (* tiny positive values: bottom bucket of the lowest octave *)
      let counts =
        match h.octaves.(0) with
        | Some c -> c
        | None ->
          let c = Array.make sub_buckets 0 in
          h.octaves.(0) <- Some c;
          c
      in
      counts.(0) <- counts.(0) + 1
    end
    else begin
      let oct = if e > e_hi then n_octaves - 1 else e - e_lo in
      let sub =
        if e > e_hi then sub_buckets - 1
        else
          let s = int_of_float ((m -. 0.5) *. float_of_int (2 * sub_buckets)) in
          if s < 0 then 0 else if s >= sub_buckets then sub_buckets - 1 else s
      in
      let counts =
        match h.octaves.(oct) with
        | Some c -> c
        | None ->
          let c = Array.make sub_buckets 0 in
          h.octaves.(oct) <- Some c;
          c
      in
      counts.(sub) <- counts.(sub) + 1
    end
  end
  else h.h_nonpos <- h.h_nonpos + 1 (* ≤ 0 and NaN observations *)

let hist_count h = h.h_n
let hist_mean h = if h.h_n = 0 then 0.0 else h.h_sum /. float_of_int h.h_n

(* Upper bound of bucket (oct, sub): (0.5 + (sub+1)/64) · 2^e. *)
let bucket_upper oct sub =
  Float.ldexp
    (0.5 +. (float_of_int (sub + 1) /. float_of_int (2 * sub_buckets)))
    (oct + e_lo)

(* Percentile = upper bound of the bucket holding the target rank, clamped
   into [min, max]. A single-bucket histogram (and in particular a single
   observation) therefore reports exact quantiles; in general the answer is
   within one bucket (≤ 1/sub_buckets relative) of the true order
   statistic. *)
let hist_percentile h p =
  if h.h_n = 0 then 0.0
  else if p >= 100.0 then h.h_max
  else begin
    let target =
      let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_n)) in
      if r < 1 then 1 else if r > h.h_n then h.h_n else r
    in
    if target <= h.h_nonpos then (if h.h_min < 0.0 then h.h_min else 0.0)
    else begin
      let cum = ref h.h_nonpos in
      let result = ref h.h_max in
      (try
         for oct = 0 to n_octaves - 1 do
           match h.octaves.(oct) with
           | None -> ()
           | Some counts ->
             for sub = 0 to sub_buckets - 1 do
               if counts.(sub) > 0 then begin
                 cum := !cum + counts.(sub);
                 if !cum >= target then begin
                   result := bucket_upper oct sub;
                   raise Exit
                 end
               end
             done
         done
       with Exit -> ());
      let r = !result in
      let r = if r > h.h_max then h.h_max else r in
      if r < h.h_min then h.h_min else r
    end
  end

let clear_counter c = c.v <- 0

let clear_histogram h =
  h.h_n <- 0;
  h.h_sum <- 0.0;
  h.h_min <- infinity;
  h.h_max <- neg_infinity;
  h.h_nonpos <- 0;
  Array.fill h.octaves 0 n_octaves None

type hsnap = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_max : float;
}

let hist_snapshot h =
  if h.h_n = 0 then
    { h_count = 0; h_sum = 0.0; h_mean = 0.0; h_p50 = 0.0; h_p95 = 0.0; h_max = 0.0 }
  else
    {
      h_count = h.h_n;
      h_sum = h.h_sum;
      h_mean = hist_mean h;
      h_p50 = hist_percentile h 50.0;
      h_p95 = hist_percentile h 95.0;
      h_max = h.h_max;
    }

type snapshot = {
  counters : (key * int) list;
  histograms : (key * hsnap) list;
}

let snapshot t =
  let counters = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun k m ->
      match m with
      | Counter c -> counters := (k, c.v) :: !counters
      | Histogram h -> histograms := (k, hist_snapshot h) :: !histograms)
    t.tbl;
  {
    counters = List.sort compare !counters;
    histograms = List.sort (fun (a, _) (b, _) -> compare a b) !histograms;
  }

(* Histograms matching [name] (any labels), sorted by labels. *)
let histograms_named t name =
  Hashtbl.fold
    (fun k m acc ->
      match m with
      | Histogram h when k.name = name -> (k, h) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let label k name = List.assoc_opt name k.labels
