module Stats = Icdb_util.Stats

type key = { name : string; labels : (string * string) list }

type counter = { mutable v : int }
type histogram = { mutable sample : Stats.Sample.t }

type metric = Counter of counter | Histogram of histogram

type t = { tbl : (key, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let key ?(labels = []) name = { name; labels = List.sort compare labels }

let counter t ?labels name =
  let k = key ?labels name in
  match Hashtbl.find_opt t.tbl k with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
    invalid_arg (Printf.sprintf "Registry.counter: %S is a histogram" name)
  | None ->
    let c = { v = 0 } in
    Hashtbl.replace t.tbl k (Counter c);
    c

let histogram t ?labels name =
  let k = key ?labels name in
  match Hashtbl.find_opt t.tbl k with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Registry.histogram: %S is a counter" name)
  | None ->
    let h = { sample = Stats.Sample.create () } in
    Hashtbl.replace t.tbl k (Histogram h);
    h

let inc ?(by = 1) c = c.v <- c.v + by
let count c = c.v
let observe h x = Stats.Sample.add h.sample x

let hist_count h = Stats.Sample.count h.sample
let hist_mean h = if hist_count h = 0 then 0.0 else Stats.Sample.mean h.sample

let hist_percentile h p =
  if hist_count h = 0 then 0.0 else Stats.Sample.percentile h.sample p

let clear_counter c = c.v <- 0
let clear_histogram h = h.sample <- Stats.Sample.create ()

type hsnap = {
  h_count : int;
  h_sum : float;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_max : float;
}

let hist_snapshot h =
  let n = hist_count h in
  if n = 0 then { h_count = 0; h_sum = 0.0; h_mean = 0.0; h_p50 = 0.0; h_p95 = 0.0; h_max = 0.0 }
  else
    let sum = Array.fold_left ( +. ) 0.0 (Stats.Sample.values h.sample) in
    {
      h_count = n;
      h_sum = sum;
      h_mean = Stats.Sample.mean h.sample;
      h_p50 = Stats.Sample.percentile h.sample 50.0;
      h_p95 = Stats.Sample.percentile h.sample 95.0;
      h_max = Stats.Sample.percentile h.sample 100.0;
    }

type snapshot = {
  counters : (key * int) list;
  histograms : (key * hsnap) list;
}

let snapshot t =
  let counters = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun k m ->
      match m with
      | Counter c -> counters := (k, c.v) :: !counters
      | Histogram h -> histograms := (k, hist_snapshot h) :: !histograms)
    t.tbl;
  {
    counters = List.sort compare !counters;
    histograms = List.sort (fun (a, _) (b, _) -> compare a b) !histograms;
  }

(* Histograms matching [name] (any labels), sorted by labels. *)
let histograms_named t name =
  Hashtbl.fold
    (fun k m acc ->
      match m with
      | Histogram h when k.name = name -> (k, h) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let label k name = List.assoc_opt name k.labels
