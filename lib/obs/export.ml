(* Exporters: Chrome trace-event JSON (chrome://tracing, Perfetto), a JSON
   metrics snapshot, a Prometheus-style text dump, and a human-readable span
   tree. All output is deterministic: times are fixed-precision, listings
   are sorted, and no wall-clock state leaks in. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fnum x =
  (* Fixed precision, no exponent: deterministic and Perfetto-friendly. *)
  if Float.is_nan x then "0" else Printf.sprintf "%.3f" x

(* --- Chrome trace-event JSON --------------------------------------------- *)

let event_time = function
  | Tracer.Begin { time; _ } | Tracer.End { time; _ } | Tracer.Instant { time; _ } -> time
  | Tracer.Complete { stop; _ } -> stop

(* Latest timestamp recorded anywhere in the trace — the time a synthetic
   crash-truncated close is pinned to. *)
let last_recorded tracer =
  let last = ref 0.0 in
  Tracer.iter tracer (fun ev -> if event_time ev > !last then last := event_time ev);
  !last

(* One virtual time unit is exported as one microsecond. Nested protocol
   spans become async ("b"/"e") events — unlike "B"/"E" duration events they
   tolerate the arbitrary interleaving of concurrent global transactions on
   the same track. Lock waits/holds and outages are complete ("X") events;
   messages, decisions and forces are instants. *)
let chrome_trace tracer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  let tids = Hashtbl.create 16 in
  let tid_order = ref [] in
  let tid_of actor =
    match Hashtbl.find_opt tids actor with
    | Some n -> n
    | None ->
      let n = Hashtbl.length tids in
      Hashtbl.replace tids actor n;
      tid_order := actor :: !tid_order;
      n
  in
  (* First pass: assign tids in order of appearance so metadata can lead. *)
  Tracer.iter tracer (fun ev ->
      match ev with
      | Tracer.Begin { actor; _ } | Tracer.Complete { actor; _ } | Tracer.Instant { actor; _ } ->
        ignore (tid_of actor)
      | Tracer.End _ -> ());
  emit "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"icdb\"}}";
  List.iter
    (fun actor ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (Hashtbl.find tids actor) (json_escape actor)))
    (List.rev !tid_order);
  (* Async end events carry no kind of their own: remember each Begin. *)
  let open_spans = Hashtbl.create 64 in
  Tracer.iter tracer (fun ev ->
      match ev with
      | Tracer.Begin { id; actor; time; kind; parent = _ } ->
        Hashtbl.replace open_spans id (actor, kind);
        emit
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"b\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Span.category kind) (json_escape (Span.name kind)) id
             (Hashtbl.find tids actor) (fnum time))
      | Tracer.End { id; time } -> (
        match Hashtbl.find_opt open_spans id with
        | None -> ()
        | Some (actor, kind) ->
          Hashtbl.remove open_spans id;
          emit
            (Printf.sprintf
               "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"e\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
               (Span.category kind) (json_escape (Span.name kind)) id
               (Hashtbl.find tids actor) (fnum time)))
      | Tracer.Complete { actor; start; stop; kind } ->
        emit
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s}"
             (Span.category kind) (json_escape (Span.name kind)) (Hashtbl.find tids actor)
             (fnum start)
             (fnum (stop -. start)))
      | Tracer.Instant { actor; time; kind } ->
        emit
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Span.category kind) (json_escape (Span.name kind)) (Hashtbl.find tids actor)
             (fnum time)));
  (* Spans left open (a central crash truncated the run mid-transaction)
     would otherwise render with no closing event and Perfetto would clip
     the track. Close each one explicitly at the last recorded time with a
     crash-truncated marker so the crash signature is visible. *)
  if Hashtbl.length open_spans > 0 then begin
    let stop = fnum (last_recorded tracer) in
    let dangling =
      Hashtbl.fold (fun id span acc -> (id, span) :: acc) open_spans []
      |> List.sort compare
    in
    List.iter
      (fun (id, (actor, kind)) ->
        let tid = Hashtbl.find tids actor in
        emit
          (Printf.sprintf
             "{\"cat\":\"mark\",\"name\":\"crash-truncated: %s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (json_escape (Span.name kind)) tid stop);
        emit
          (Printf.sprintf
             "{\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"e\",\"id\":%d,\"pid\":1,\"tid\":%d,\"ts\":%s}"
             (Span.category kind) (json_escape (Span.name kind)) id tid stop))
      dangling
  end;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* --- JSON metrics snapshot ------------------------------------------------ *)

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let metrics_json registry =
  let snap = Registry.snapshot registry in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"counters\": [\n";
  let n = List.length snap.Registry.counters in
  List.iteri
    (fun i ((k : Registry.key), v) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\":\"%s\",\"labels\":%s,\"value\":%d}%s\n"
           (json_escape k.name) (labels_json k.labels) v
           (if i < n - 1 then "," else "")))
    snap.Registry.counters;
  Buffer.add_string buf "  ],\n  \"histograms\": [\n";
  let n = List.length snap.Registry.histograms in
  List.iteri
    (fun i ((k : Registry.key), (h : Registry.hsnap)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"max\":%s}%s\n"
           (json_escape k.name) (labels_json k.labels) h.h_count (fnum h.h_sum) (fnum h.h_mean)
           (fnum h.h_p50) (fnum h.h_p95) (fnum h.h_max)
           (if i < n - 1 then "," else "")))
    snap.Registry.histograms;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- Prometheus text ------------------------------------------------------ *)

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (json_escape v)) labels)
    ^ "}"

let prometheus registry =
  let snap = Registry.snapshot registry in
  let buf = Buffer.create 4096 in
  let last_type = ref "" in
  let type_line name kind =
    if !last_type <> name then begin
      last_type := name;
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((k : Registry.key), v) ->
      type_line k.name "counter";
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" k.name (prom_labels k.labels) v))
    snap.Registry.counters;
  List.iter
    (fun ((k : Registry.key), (h : Registry.hsnap)) ->
      type_line k.name "summary";
      let q quantile value =
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" k.name
             (prom_labels (k.labels @ [ ("quantile", quantile) ]))
             (fnum value))
      in
      q "0.5" h.h_p50;
      q "0.95" h.h_p95;
      q "1" h.h_max;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" k.name (prom_labels k.labels) (fnum h.h_sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" k.name (prom_labels k.labels) h.h_count))
    snap.Registry.histograms;
  Buffer.contents buf

(* --- span tree ------------------------------------------------------------ *)

let span_tree tracer =
  let spans = Tracer.spans tracer in
  let buf = Buffer.create 2048 in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  let ids = Hashtbl.create 64 in
  List.iter (fun (s : Tracer.span) -> if s.s_id >= 0 then Hashtbl.replace ids s.s_id ()) spans;
  List.iter
    (fun (s : Tracer.span) ->
      if s.s_parent >= 0 && Hashtbl.mem ids s.s_parent then
        Hashtbl.replace children s.s_parent
          (s :: Option.value ~default:[] (Hashtbl.find_opt children s.s_parent))
      else roots := s :: !roots)
    spans;
  let by_start l = List.sort (fun (a : Tracer.span) b -> compare (a.s_start, a.s_id) (b.s_start, b.s_id)) l in
  let last = last_recorded tracer in
  let rec print depth (s : Tracer.span) =
    (* A span with no stop was cut off by a crash: pin it to the last
       recorded time and say so, instead of the old silent "open". *)
    let stop, marker =
      match s.s_stop with
      | Some st -> (Printf.sprintf "%8.2f" st, "")
      | None -> (Printf.sprintf "%8.2f" last, " (crash-truncated)")
    in
    Buffer.add_string buf
      (Printf.sprintf "%s[%8.2f .. %s] %-12s %s%s\n" (String.make (2 * depth) ' ') s.s_start stop
         s.s_actor (Span.name s.s_kind) marker);
    if s.s_id >= 0 then
      List.iter (print (depth + 1))
        (by_start (Option.value ~default:[] (Hashtbl.find_opt children s.s_id)))
  in
  List.iter (print 0) (by_start !roots);
  let instants = Tracer.instants tracer in
  if instants <> [] then begin
    Buffer.add_string buf "instants:\n";
    List.iter
      (fun (time, actor, kind) ->
        Buffer.add_string buf (Printf.sprintf "  t=%8.2f  [%-12s] %s\n" time actor (Span.name kind)))
      instants
  end;
  Buffer.contents buf

(* --- flight-recorder dump ------------------------------------------------- *)

(* Plain-text rendering of a (usually ring-limited) tracer: one line per
   retained event, oldest first — the forensics file written next to a
   chaos reproducer. Deterministic: same seed, same dump. *)
let flight_dump tracer =
  let buf = Buffer.create 4096 in
  let cap =
    match Tracer.capacity tracer with
    | Some c -> Printf.sprintf "%d" c
    | None -> "unbounded"
  in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder: %d events retained, %d dropped (capacity %s)\n"
       (Tracer.length tracer) (Tracer.dropped tracer) cap);
  (* End events carry only an id; remember Begins (including ones whose
     Begin was overwritten by the ring — rendered as "?"). *)
  let open_spans = Hashtbl.create 64 in
  Tracer.iter tracer (fun ev ->
      let line =
        match ev with
        | Tracer.Begin { id; actor; time; kind; parent = _ } ->
          Hashtbl.replace open_spans id (Span.name kind);
          Printf.sprintf "t=%10.2f  %-12s  begin  %s (#%d)" time actor (Span.name kind) id
        | Tracer.End { id; time } ->
          let name =
            match Hashtbl.find_opt open_spans id with Some n -> n | None -> "?"
          in
          Hashtbl.remove open_spans id;
          Printf.sprintf "t=%10.2f  %-12s  end    %s (#%d)" time "" name id
        | Tracer.Complete { actor; start; stop; kind } ->
          Printf.sprintf "t=%10.2f  %-12s  span   %s [%.2f .. %.2f]" stop actor
            (Span.name kind) start stop
        | Tracer.Instant { actor; time; kind } ->
          Printf.sprintf "t=%10.2f  %-12s  mark   %s" time actor (Span.name kind)
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  if Hashtbl.length open_spans > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d span(s) still open at the end of the recording\n"
         (Hashtbl.length open_spans));
  Buffer.contents buf
