(* Deterministic string<->int interner.

   Ids are handed out in first-intern order, so for a fixed workload the
   mapping is a pure function of the access sequence: re-running the same
   seeded simulation — or running it on another domain of a [-j N] sweep —
   produces identical ids. Each federation (and each local database engine)
   owns its own table; tables are never shared across domains, which makes
   them Domain-safe without locks.

   The reverse direction ([name]) is an array index, so resolving a symbol
   back to its string allocates nothing: the returned string is the one
   interned originally. *)

type t = int

type table = {
  mutable names : string array; (* id -> string, dense prefix [0, count) *)
  mutable count : int;
  ids : (string, int) Hashtbl.t;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { names = Array.make capacity ""; count = 0; ids = Hashtbl.create capacity }

let count tbl = tbl.count

(* Pre-size for a known load (e.g. a million-account preload) so interning
   does not go through log2(n) doubling copies of the names array. *)
let ensure_capacity tbl n =
  if n > Array.length tbl.names then begin
    let bigger = Array.make n "" in
    Array.blit tbl.names 0 bigger 0 tbl.count;
    tbl.names <- bigger
  end

let intern tbl s =
  match Hashtbl.find_opt tbl.ids s with
  | Some id -> id
  | None ->
    let id = tbl.count in
    if id = Array.length tbl.names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit tbl.names 0 bigger 0 id;
      tbl.names <- bigger
    end;
    tbl.names.(id) <- s;
    tbl.count <- id + 1;
    Hashtbl.replace tbl.ids s id;
    id

let find tbl s = Hashtbl.find_opt tbl.ids s

let name tbl id =
  if id < 0 || id >= tbl.count then invalid_arg "Symbol.name: unknown symbol";
  tbl.names.(id)

(* Point-in-time copy of the mapping: index i holds the string of symbol i. *)
let snapshot tbl = Array.sub tbl.names 0 tbl.count

let mem tbl s = Hashtbl.mem tbl.ids s
