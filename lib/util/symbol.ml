(* Deterministic string<->int interner.

   Ids are handed out in first-intern order, so for a fixed workload the
   mapping is a pure function of the access sequence: re-running the same
   seeded simulation — or running it on another domain of a [-j N] sweep —
   produces identical ids. Each federation (and each local database engine)
   owns its own table; tables are never shared across domains, which makes
   them Domain-safe without locks.

   The reverse direction ([name]) is an array index, so resolving a symbol
   back to its string allocates nothing: the returned string is the one
   interned originally.

   Concurrency invariant: a table is safe under a partitioned (coupled-
   engine) simulation because event execution is serialized — at most one
   domain touches the table at any moment, with happens-before edges
   through the scheduler's baton mutex. What is NOT safe is sharing one
   table between two independent simulations running concurrently (e.g.
   two [-j] sweep cells): their interleaved interning would race. The
   debug ownership check below catches exactly that class: enable it with
   [set_debug true] (or ICDB_SYMBOL_DEBUG=1), [seal] the table once setup
   interning is done, and [allow] each domain that legitimately executes
   for the owning simulation; sealed tables then refuse NEW interning from
   any other domain. Lookups of already-interned strings are never
   checked — they are read-only and the hot path. *)

type t = int

type table = {
  mutable names : string array; (* id -> string, dense prefix [0, count) *)
  mutable count : int;
  ids : (string, int) Hashtbl.t;
  mutable sealed : bool;
  mutable owners : int list; (* domain ids allowed to intern once sealed *)
}

let debug =
  ref
    (match Sys.getenv_opt "ICDB_SYMBOL_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_debug on = debug := on

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  {
    names = Array.make capacity "";
    count = 0;
    ids = Hashtbl.create capacity;
    sealed = false;
    owners = [];
  }

let self_id () = (Domain.self () :> int)

let allow tbl =
  let id = self_id () in
  if not (List.mem id tbl.owners) then tbl.owners <- id :: tbl.owners

let seal tbl =
  tbl.sealed <- true;
  allow tbl

let check_owner tbl s =
  if !debug && tbl.sealed && not (List.mem (self_id ()) tbl.owners) then
    failwith
      (Printf.sprintf
         "Symbol.intern: new symbol %S interned from non-owner domain %d after seal"
         s (self_id ()))

let count tbl = tbl.count

(* Pre-size for a known load (e.g. a million-account preload) so interning
   does not go through log2(n) doubling copies of the names array. *)
let ensure_capacity tbl n =
  if n > Array.length tbl.names then begin
    let bigger = Array.make n "" in
    Array.blit tbl.names 0 bigger 0 tbl.count;
    tbl.names <- bigger
  end

let intern tbl s =
  match Hashtbl.find_opt tbl.ids s with
  | Some id -> id
  | None ->
    check_owner tbl s;
    let id = tbl.count in
    if id = Array.length tbl.names then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit tbl.names 0 bigger 0 id;
      tbl.names <- bigger
    end;
    tbl.names.(id) <- s;
    tbl.count <- id + 1;
    Hashtbl.replace tbl.ids s id;
    id

let find tbl s = Hashtbl.find_opt tbl.ids s

let name tbl id =
  if id < 0 || id >= tbl.count then invalid_arg "Symbol.name: unknown symbol";
  tbl.names.(id)

(* Point-in-time copy of the mapping: index i holds the string of symbol i. *)
let snapshot tbl = Array.sub tbl.names 0 tbl.count

let mem tbl s = Hashtbl.mem tbl.ids s
