type t = {
  n : int;
  theta : float;
  cdf : float array; (* cdf.(k) = P(X <= k); binary-searched at sample time *)
}

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be non-negative";
  (* Two passes, one array: the weight w(k) = 1/(k+1)^theta is recomputed
     instead of staged in a scratch array, so a million-account sampler
     allocates the 8 MB cdf and nothing else. Summation order matches the
     old fold exactly — samples are bit-for-bit unchanged. *)
  let weight k = 1.0 /. (float_of_int (k + 1) ** theta) in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. weight k
  done;
  let total = !total in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (weight k /. total);
    cdf.(k) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; theta; cdf }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest k with cdf.(k) > u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
