(** Fixed-size [Domain] worker pool for embarrassingly parallel task lists.

    The experiment sweep is a list of independent, deterministically seeded
    simulations; this pool farms such a list out to OCaml 5 domains while
    keeping the result order — and therefore any concatenated report —
    byte-identical to a sequential run. Workers block on a condition
    variable between batches (no busy-wait), so a long-lived pool parks
    for free while the main domain does other work.

    Core budget: a simulation may itself be partitioned over domains
    ([--sim-domains]); divide the sweep's [-j] by that count (and {!size}
    reports what a pool actually holds) so the two levels of parallelism
    do not oversubscribe the machine. *)

type t

(** [create ~size] spawns [max 1 size] worker domains, parked until the
    first {!exec}. *)
val create : size:int -> t

(** Number of worker domains. *)
val size : t -> int

(** [exec pool tasks] executes every task on the pool's workers and
    returns the results in task order. Exceptions raised by tasks are
    captured; after all tasks have finished, the exception of the
    lowest-indexed failed task is re-raised, so failure behaviour is
    deterministic. One batch runs at a time. *)
val exec : t -> (unit -> 'a) list -> 'a list

(** [shutdown pool] wakes and joins every worker. The pool must not be
    used afterwards. *)
val shutdown : t -> unit

(** [run ~jobs tasks] is the one-shot form: [jobs <= 1] runs inline on the
    calling domain; otherwise a transient pool of [min jobs (List.length
    tasks)] workers executes the batch and is shut down. Same ordering and
    failure guarantees as {!exec}. *)
val run : jobs:int -> (unit -> 'a) list -> 'a list
