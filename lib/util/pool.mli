(** Fixed-size [Domain] worker pool for embarrassingly parallel task lists.

    The experiment sweep is a list of independent, deterministically seeded
    simulations; this pool farms such a list out to OCaml 5 domains while
    keeping the result order — and therefore any concatenated report —
    byte-identical to a sequential run. *)

(** [run ~jobs tasks] executes every task and returns the results in task
    order. [jobs <= 1] runs inline on the calling domain; otherwise
    [min jobs (List.length tasks)] domains are spawned for the duration of
    the call. Exceptions raised by tasks are captured; after all tasks have
    finished, the exception of the lowest-indexed failed task is re-raised,
    so failure behaviour is deterministic as well. *)
val run : jobs:int -> (unit -> 'a) list -> 'a list
