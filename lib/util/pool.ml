(* Fixed-size Domain worker pool for embarrassingly parallel task lists.

   Workers pull task indices from a shared counter and write results into a
   per-task slot, so the caller observes results in task order no matter how
   the domains interleave — parallel output is deterministic whenever the
   tasks themselves are. Uses only stdlib Domain/Mutex primitives. *)

type 'a slot = Pending | Done of 'a | Failed of exn

let run (type a) ~jobs (tasks : (unit -> a) list) : a list =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else if jobs <= 1 then Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    let results : a slot array = Array.make n Pending in
    let mutex = Mutex.create () in
    let next = ref 0 in
    let take () =
      Mutex.lock mutex;
      let i = !next in
      next := i + 1;
      Mutex.unlock mutex;
      i
    in
    let worker () =
      let rec loop () =
        let i = take () in
        if i < n then begin
          (results.(i) <- (try Done (tasks.(i) ()) with e -> Failed e));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (* Every task ran to a verdict; re-raise the lowest-indexed failure so
       exception propagation is deterministic too. *)
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end
