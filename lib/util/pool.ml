(* Fixed-size Domain worker pool for embarrassingly parallel task lists.

   Workers pull task indices from a shared counter and write results into a
   per-task slot, so the caller observes results in task order no matter how
   the domains interleave — parallel output is deterministic whenever the
   tasks themselves are. Between batches workers block on a condition
   variable (no busy-wait): an idle pool costs nothing but N parked
   domains. Uses only stdlib Domain/Mutex/Condition primitives.

   A batch is type-erased behind a closure list so one pool can serve
   batches of different result types over its lifetime. *)

type 'a slot = Pending | Done of 'a | Failed of exn

type batch = {
  jobs : (unit -> unit) array; (* each writes its own slot *)
  mutable next : int; (* next un-started index *)
  mutable unfinished : int; (* jobs not yet run to a verdict *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t; (* workers wait here for a batch (or shutdown) *)
  idle : Condition.t; (* the submitter waits here for batch completion *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let rec worker_loop t =
  (* called with [t.mutex] held *)
  match t.batch with
  | None ->
    if not t.stop then begin
      Condition.wait t.work t.mutex;
      worker_loop t
    end
  | Some b ->
    if b.next >= Array.length b.jobs then begin
      (* batch fully claimed; park until the next one *)
      Condition.wait t.work t.mutex;
      worker_loop t
    end
    else begin
      let i = b.next in
      b.next <- i + 1;
      Mutex.unlock t.mutex;
      b.jobs.(i) ();
      Mutex.lock t.mutex;
      b.unfinished <- b.unfinished - 1;
      if b.unfinished = 0 then begin
        t.batch <- None;
        Condition.signal t.idle
      end;
      worker_loop t
    end

let worker t =
  Mutex.lock t.mutex;
  worker_loop t;
  Mutex.unlock t.mutex

let create ~size:n =
  let t =
    {
      size = max 1 n;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init t.size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let exec (type a) t (tasks : (unit -> a) list) : a list =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let results : a slot array = Array.make n Pending in
    let jobs =
      Array.init n (fun i () ->
          results.(i) <- (try Done (tasks.(i) ()) with e -> Failed e))
    in
    Mutex.lock t.mutex;
    (* one batch in flight at a time; queue behind any current one *)
    while t.batch <> None do
      Condition.wait t.idle t.mutex
    done;
    t.batch <- Some { jobs; next = 0; unfinished = n };
    Condition.broadcast t.work;
    while t.batch <> None do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Every task ran to a verdict; re-raise the lowest-indexed failure so
       exception propagation is deterministic too. *)
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end

let run (type a) ~jobs (tasks : (unit -> a) list) : a list =
  let n = List.length tasks in
  if n = 0 then []
  else if jobs <= 1 then List.map (fun f -> f ()) tasks
  else begin
    let pool = create ~size:(min jobs n) in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> exec pool tasks)
  end
