(** Deterministic string<->int interner.

    Ids are dense ints assigned in first-intern order, so a fixed seeded
    workload always produces the same mapping — including when experiments
    run on parallel domains, each with its own table. Downstream hot
    structures (lock tables, read/write sets, conflict indexes) key on the
    int and resolve back to the original string only at report/export
    boundaries. *)

type t = int
(** A symbol: the dense id of an interned string. Valid only against the
    table that produced it. *)

type table

val create : ?capacity:int -> unit -> table
val intern : table -> string -> t
(** [intern tbl s] returns the id of [s], assigning the next dense id on
    first sight. O(1) amortized; one string hash. *)

val find : table -> string -> t option
(** Like {!intern} but never assigns a fresh id. *)

val mem : table -> string -> bool
val name : table -> t -> string
(** Resolve a symbol back to its string. Allocation-free: returns the
    originally interned string. Raises [Invalid_argument] on unknown ids. *)

val count : table -> int

(** [ensure_capacity tbl n] grows the id->string array to hold at least [n]
    symbols, avoiding repeated doubling copies during a bulk preload. Never
    shrinks; ids and contents are unchanged. *)
val ensure_capacity : table -> int -> unit

val snapshot : table -> string array
(** Point-in-time copy of the mapping: index [i] holds the string of
    symbol [i]. *)

(** {2 Debug ownership check}

    Tables are Domain-safe under a partitioned simulation only because
    event execution is serialized; the invariant that must hold is that a
    table is never shared between two {e concurrently executing}
    simulations. With the check enabled ({!set_debug}, or the
    [ICDB_SYMBOL_DEBUG] environment variable), interning a {e new} string
    into a {!seal}ed table from a domain that was not {!allow}ed fails
    fast instead of racing silently. Lookups of already-interned strings
    are unaffected. Off by default: zero cost on the hot path beyond one
    branch. *)

(** Globally enable/disable the ownership check. *)
val set_debug : bool -> unit

(** [seal tbl] marks setup interning finished and registers the calling
    domain as an owner. New interning from other domains is rejected while
    the check is enabled, unless they call {!allow} first. *)
val seal : table -> unit

(** [allow tbl] registers the calling domain as a legitimate interner —
    the parallel scheduler calls this from every partition domain of the
    owning simulation. *)
val allow : table -> unit
