module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Stats.Summary.min: empty";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Summary.max: empty";
    t.max

  let total t = t.total
end

module Sample = struct
  type t = {
    mutable values : float array;
    mutable len : int;
    mutable sorted : float array option; (* cache, invalidated by [add] *)
  }

  let create () = { values = Array.make 16 0.0; len = 0; sorted = None }

  let add t x =
    if t.len = Array.length t.values then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.values 0 bigger 0 t.len;
      t.values <- bigger
    end;
    t.values.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- None

  let count t = t.len

  let mean t =
    if t.len = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.len - 1 do
        acc := !acc +. t.values.(i)
      done;
      !acc /. float_of_int t.len
    end

  let values t = Array.sub t.values 0 t.len

  let sorted_values t =
    match t.sorted with
    | Some s -> s
    | None ->
      let s = Array.sub t.values 0 t.len in
      Array.sort Float.compare s;
      t.sorted <- Some s;
      s

  let percentile t p =
    if t.len = 0 then invalid_arg "Stats.Sample.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Sample.percentile: p out of range";
    let sorted = sorted_values t in
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
    end

  let median t = percentile t 50.0
end

let histogram ~buckets values =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if Array.length values = 0 then [||]
  else begin
    let lo = Array.fold_left Float.min infinity values in
    let hi = Array.fold_left Float.max neg_infinity values in
    let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
    let counts = Array.make buckets 0 in
    let bucket_of x =
      let b = int_of_float ((x -. lo) /. width) in
      if b >= buckets then buckets - 1 else if b < 0 then 0 else b
    in
    Array.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) values;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end
