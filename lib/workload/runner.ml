module Sim = Icdb_sim.Engine
module Parallel = Icdb_sim.Parallel
module Fiber = Icdb_sim.Fiber
module Rng = Icdb_util.Rng
module Symbol = Icdb_util.Symbol
module Zipf = Icdb_util.Zipf
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Metrics = Icdb_core.Metrics
module Action_log = Icdb_core.Action_log
module Graph = Icdb_core.Serialization_graph
module Lock = Icdb_lock.Lock_table
module Registry = Icdb_obs.Registry
module Span = Icdb_obs.Span

type config = {
  protocol : Protocol.t;
  seed : int64;
  n_sites : int;
  accounts_per_site : int;
  initial_balance : int;
  n_txns : int;
  concurrency : int;
  branches_per_txn : int;
  ops_per_branch : int;
  zipf_theta : float;
  use_increments : bool;
  read_fraction : float;
  p_intended_abort : float;
  p_spontaneous : float;
  spontaneous_window : float * float;
  crash_rate : float;
  crash_duration : float;
  latency : float;
  op_delay : float;
  commit_delay : float;
  lock_wait_timeout : float option;
  granularity : Db.granularity;
  prepare_capable : bool;
  global_cc_enabled : bool;
  mlt_action_retries : int;
  mixed_capabilities : bool;
  group_commit_window : float option;
  checkpoint_interval : float option;
  heterogeneous_cc : bool;
  message_loss : float;
  msg_batch_window : float option;
  central_gc_window : float option;
  sim_domains : int;
      (* partition the simulation over this many domains (1 = the plain
         sequential engine, byte-identical output either way) *)
  shards : int;
      (* group the sites into this many shards, each with its own
         coordinator, journal and decision log; 1 = the unsharded
         federation, byte-identical to the pre-sharding runner *)
  cross_shard_fraction : float;
      (* probability that a generated transaction deliberately spans at
         least two shards; the rest stay within one shard and take the
         single-shard fast path (ignored when [shards <= 1]) *)
  decision_force_time : float option;
      (* serial decision-log device: each force at a coordinator occupies
         its log head for this long (see {!Federation.create}) *)
  acceptors : int;
      (* Paxos Commit group size (2F+1): decisions replicate to this many
         acceptor sites instead of forcing one coordinator log; 1 = Paxos
         off, byte-identical to the single-coordinator runner *)
}

let default =
  {
    protocol = Protocol.Before;
    seed = 42L;
    n_sites = 4;
    accounts_per_site = 32;
    initial_balance = 1000;
    n_txns = 200;
    concurrency = 8;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.6;
    use_increments = true;
    read_fraction = 0.5;
    p_intended_abort = 0.0;
    p_spontaneous = 0.0;
    spontaneous_window = (2.0, 20.0);
    crash_rate = 0.0;
    crash_duration = 30.0;
    latency = 1.0;
    op_delay = 1.0;
    commit_delay = 2.0;
    lock_wait_timeout = Some 100.0;
    granularity = Db.Record_level;
    prepare_capable = true;
    global_cc_enabled = true;
    mlt_action_retries = 0;
    mixed_capabilities = false;
    group_commit_window = None;
    checkpoint_interval = None;
    heterogeneous_cc = false;
    message_loss = 0.0;
    msg_batch_window = None;
    central_gc_window = None;
    sim_domains = 1;
    shards = 1;
    cross_shard_fraction = 0.0;
    decision_force_time = None;
    acceptors = 1;
  }

type report = {
  elapsed : float;
  started : int;
  committed : int;
  aborted : int;
  throughput : float;
  mean_response : float;
  p95_response : float;
  mean_hold : float;
  p95_hold : float;
  messages : int;
  messages_per_committed : float;
  messages_by_label : (string * int) list;
  repetitions : int;
  compensations : int;
  redo_log_writes : int;
  undo_log_writes : int;
  mlt_log_writes : int;
  global_cc_acquisitions : int;
  l1_acquisitions : int;
  local_lock_waits : int;
  local_lock_timeouts : int;
  local_lock_deadlocks : int;
  money_before : int;
  money_after : int;
  money_conserved : bool;
  serializable : bool;
  violations : string list;
  decision_log_entries : int;
  log_forces : int;
  log_forces_per_commit : float;
  messages_dropped : int;
  phase_breakdown : (string * Registry.hsnap) list;
  batch_envelopes : int;
  batch_occupancy_mean : float;
  central_log_forces : int;
  shard_log_forces : int;
  shard_decisions : int;
  paxos_rounds : int;
  paxos_acceptor_forces : int;
  paxos_failovers : int;
}

let site_name i = Printf.sprintf "site-%d" i
let account_name i = Printf.sprintf "acct-%03d" i

let site_config cfg i =
  (* A hybrid federation is mixed by construction: alternate sites expose
     the prepared state. *)
  (* Heterogeneous CC: every third site runs an optimistic scheduler, the
     rest lock. Optimistic sites cannot expose a prepared state. *)
  let optimistic = cfg.heterogeneous_cc && i mod 3 = 2 in
  let supports_prepare =
    (not optimistic)
    &&
    match cfg.protocol with
    | Protocol.Hybrid -> i mod 2 = 0
    | _ when cfg.mixed_capabilities -> i mod 2 = 0
    | _ -> cfg.prepare_capable
  in
  {
    Db.site_name = site_name i;
    capabilities =
      {
        supports_prepare;
        supports_increment_locks = true;
        granularity = cfg.granularity;
        cc =
          (if optimistic then Db.Optimistic
           else Locking { wait_timeout = cfg.lock_wait_timeout });
      };
    op_delay = cfg.op_delay;
    commit_delay = cfg.commit_delay;
    (* Scale the pool with the preload so million-account sites keep their
       working set resident (a cold heap scan per insert would dominate).
       Every seed-scale config stays at exactly 64 frames. *)
    buffer_capacity = max 64 (cfg.accounts_per_site / 4);
    spontaneous =
      (if cfg.p_spontaneous > 0.0 then
         Some
           {
             probability = cfg.p_spontaneous;
             min_delay = fst cfg.spontaneous_window;
             max_delay = snd cfg.spontaneous_window;
           }
       else None);
    seed = Int64.add cfg.seed (Int64.of_int (1000 + i));
    group_commit_window = cfg.group_commit_window;
    checkpoint_interval = cfg.checkpoint_interval;
  }

(* Balanced increment deltas: each op moves a random amount, the last op of
   the last branch absorbs the slack so the transaction nets to zero. *)
let balanced_deltas rng ~n =
  let deltas = Array.init n (fun _ -> Rng.int_in_range rng ~lo:(-20) ~hi:20) in
  let total = Array.fold_left ( + ) 0 deltas in
  deltas.(n - 1) <- deltas.(n - 1) - total;
  deltas

(* Site and account name strings are formatted once per run and indexed
   thereafter: the generators run per transaction, and formatting every
   object name was one of the top per-transaction allocators. *)
type names = {
  ns_sites : string array;
  ns_accounts : string array;
  ns_shards : int array array;
      (* site indices per shard, [Federation.create]'s contiguous-range
         mapping; [||] when the run is unsharded *)
}

let make_names cfg =
  {
    ns_sites = Array.init cfg.n_sites site_name;
    ns_accounts = Array.init cfg.accounts_per_site account_name;
    ns_shards =
      (if cfg.shards <= 1 then [||]
       else
         Array.init cfg.shards (fun s ->
             Array.of_list
               (List.filter
                  (fun i -> i * cfg.shards / cfg.n_sites = s)
                  (List.init cfg.n_sites Fun.id))));
  }

(* Shard-aware site placement. A single-shard transaction samples all its
   branches inside one uniformly chosen shard (→ the fast path); a
   cross-shard one spreads its branches round-robin over distinct shards so
   "cross" deterministically means cross. Only reached when [shards > 1]:
   the unsharded generator keeps its exact pre-sharding draw sequence. *)
let sharded_sites cfg names rng ~branches_n =
  let shards = Array.length names.ns_shards in
  let within members n =
    let n = min n (Array.length members) in
    List.map (fun i -> members.(i)) (Rng.sample_distinct rng ~n ~bound:(Array.length members))
  in
  if branches_n > 1 && Rng.bernoulli rng cfg.cross_shard_fraction then begin
    let k = min branches_n shards in
    let shard_ids = Rng.sample_distinct rng ~n:k ~bound:shards in
    let quota = Array.make shards 0 in
    List.iteri
      (fun b _ ->
        let s = List.nth shard_ids (b mod k) in
        quota.(s) <- quota.(s) + 1)
      (List.init branches_n Fun.id);
    List.concat_map (fun s -> within names.ns_shards.(s) quota.(s)) shard_ids
  end
  else within names.ns_shards.(Rng.int rng shards) branches_n

let flat_spec cfg names fed rng zipf =
  let gid = Federation.fresh_gid fed in
  let branches_n = min cfg.branches_per_txn cfg.n_sites in
  let sites =
    if cfg.shards <= 1 then Rng.sample_distinct rng ~n:branches_n ~bound:cfg.n_sites
    else sharded_sites cfg names rng ~branches_n
  in
  let branches_n = List.length sites in
  let abort_branch =
    if Rng.bernoulli rng cfg.p_intended_abort then Some (Rng.int rng branches_n) else None
  in
  let n_ops = branches_n * cfg.ops_per_branch in
  let deltas = if cfg.use_increments then balanced_deltas rng ~n:n_ops else [||] in
  let branches =
    List.mapi
      (fun bi site_idx ->
        let program =
          List.init cfg.ops_per_branch (fun oi ->
              let account = names.ns_accounts.(Zipf.sample zipf rng) in
              if cfg.use_increments then
                Program.Increment (account, deltas.((bi * cfg.ops_per_branch) + oi))
              else if Rng.bernoulli rng cfg.read_fraction then Program.Read account
              else Program.Write (account, Rng.int rng 10_000))
        in
        Global.branch ~vote_commit:(abort_branch <> Some bi) ~site:names.ns_sites.(site_idx)
          program)
      sites
  in
  { Global.gid; branches }

let mlt_spec cfg names fed rng zipf =
  let gid = Federation.fresh_gid fed in
  let branches_n = min cfg.branches_per_txn cfg.n_sites in
  let sites =
    if cfg.shards <= 1 then Rng.sample_distinct rng ~n:branches_n ~bound:cfg.n_sites
    else sharded_sites cfg names rng ~branches_n
  in
  let branches_n = List.length sites in
  let n_ops = branches_n * cfg.ops_per_branch in
  let deltas = if cfg.use_increments then balanced_deltas rng ~n:n_ops else [||] in
  let actions =
    List.concat
      (List.mapi
         (fun bi site_idx ->
           List.init cfg.ops_per_branch (fun oi ->
               let site = names.ns_sites.(site_idx) in
               let account = names.ns_accounts.(Zipf.sample zipf rng) in
               if cfg.use_increments then begin
                 let delta = deltas.((bi * cfg.ops_per_branch) + oi) in
                 if delta >= 0 then Action.deposit ~site ~account delta
                 else Action.withdraw ~site ~account (-delta)
               end
               else if Rng.bernoulli rng cfg.read_fraction then
                 Action.read_balance ~site ~account
               else
                 (* A blind overwrite is not invertible without the before
                    image; MLT models it as a non-commuting write whose
                    inverse the action itself cannot know, so the generator
                    uses increments disguised as writes instead. *)
                 Action.increment ~site ~key:account (Rng.int_in_range rng ~lo:(-10) ~hi:10)))
         sites)
  in
  let abort_after =
    if Rng.bernoulli rng cfg.p_intended_abort then Some (Rng.int rng (List.length actions))
    else None
  in
  { Global.mlt_gid = gid; actions; abort_after }

(* Per-(protocol, phase) latency summary, canonical phase order. *)
let phase_breakdown registry ~protocol =
  let of_protocol =
    List.filter
      (fun ((key : Registry.key), _) -> Registry.label key "protocol" = Some protocol)
      (Registry.histograms_named registry "icdb_phase_time")
  in
  List.filter_map
    (fun phase ->
      let name = Span.phase_name phase in
      List.find_map
        (fun ((key : Registry.key), h) ->
          if Registry.label key "phase" = Some name then
            Some (name, Registry.hist_snapshot h)
          else None)
        of_protocol)
    Span.all_phases

let run ?registry ?tracer ?on_setup ?on_txn_exn ?on_drain cfg =
  if cfg.n_sites <= 0 || cfg.n_txns < 0 || cfg.concurrency <= 0 then
    invalid_arg "Runner.run: bad configuration";
  if cfg.shards < 1 || cfg.shards > cfg.n_sites then
    invalid_arg "Runner.run: shards must be in 1..n_sites";
  if cfg.cross_shard_fraction < 0.0 || cfg.cross_shard_fraction > 1.0 then
    invalid_arg "Runner.run: cross_shard_fraction must be in [0,1]";
  if cfg.acceptors < 1 || cfg.acceptors mod 2 = 0 || cfg.acceptors > cfg.n_sites
  then invalid_arg "Runner.run: acceptors must be odd and in 1..n_sites";
  (* One engine per partition: partition 0 holds the central system (and
     everything when unpartitioned), sites round-robin over the rest. The
     scheduler executes in the exact global (time, seq) order whatever the
     partition count, so the report below is byte-identical for any
     [sim_domains]. *)
  let par = Parallel.create ~domains:cfg.sim_domains () in
  let engines = Parallel.engines par in
  let n_parts = Parallel.size par in
  let engine = engines.(0) in
  (* A caller-supplied tracer predates this engine; point it at our clock. *)
  Option.iter
    (fun tr -> Icdb_obs.Tracer.set_clock tr (fun () -> Sim.now engine))
    tracer;
  let configs = List.init cfg.n_sites (site_config cfg) in
  let site_engines =
    Array.init cfg.n_sites (fun i ->
        if n_parts = 1 then engine
        else if cfg.shards > 1 then
          (* the shard is the natural partition: a single-shard fast-path
             round then runs entirely on the partition owning the shard *)
          engines.(1 + (i * cfg.shards / cfg.n_sites mod (n_parts - 1)))
        else engines.(1 + (i mod (n_parts - 1))))
  in
  let fed =
    Federation.create engine ~site_engines ~latency:cfg.latency
      ~loss:cfg.message_loss ?registry ?tracer
      ~msg_batch_window:cfg.msg_batch_window
      ~central_gc_window:cfg.central_gc_window ~shards:cfg.shards
      ~decision_force_time:cfg.decision_force_time configs
  in
  (* On a shared registry the per-run counters may hold a previous run's
     totals; start this run from zero. (Labelled metrics — phase latencies,
     message counts — accumulate by design.) *)
  if registry <> None then Metrics.reset fed.metrics;
  fed.global_cc_enabled <- cfg.global_cc_enabled;
  let names = make_names cfg in
  (* Preload accounts, reusing the interned name array instead of
     re-formatting every account name a second time. *)
  let rows =
    List.init cfg.accounts_per_site (fun i -> (names.ns_accounts.(i), cfg.initial_balance))
  in
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.sites;
  let money_before = cfg.n_sites * cfg.accounts_per_site * cfg.initial_balance in
  (* Paxos Commit: installed before [on_setup] so fault injectors armed
     there already see the leader-failover hook; [acceptors = 1] installs
     nothing and the run is byte-identical to the plain runner. *)
  let paxos =
    if cfg.acceptors > 1 then
      Some (Icdb_core.Paxos_commit.install fed ~acceptors:cfg.acceptors)
    else None
  in
  (* Fault-campaign hook: runs with the federation built and preloaded but
     before any fiber is spawned, so injectors it arms see the whole run. *)
  Option.iter (fun f -> f engine fed) on_setup;
  (* Setup interning is done; seal the symbol tables so the debug ownership
     check (ICDB_SYMBOL_DEBUG) can flag interning from a domain that is
     neither this one nor a partition domain of this very simulation. *)
  let each_table f =
    f fed.syms;
    List.iter (fun (_, site) -> f (Db.symbols (Site.db site))) fed.sites
  in
  each_table Symbol.seal;
  Parallel.set_domain_start par (fun () -> each_table Symbol.allow);
  let master_rng = Rng.create cfg.seed in
  let zipf = Zipf.create ~n:cfg.accounts_per_site ~theta:cfg.zipf_theta in
  let issued = ref 0 in
  let finished_at = ref 0.0 in
  let stop_crashes = ref false in
  (* Crash injectors, one per site. *)
  if cfg.crash_rate > 0.0 then
    List.iter
      (fun (_, site) ->
        let rng = Rng.split master_rng in
        (* on the site's own engine: the injector's events then run on the
           partition owning the site (placement only — order is global) *)
        let seng = Site.engine site in
        Fiber.spawn seng (fun () ->
            let rec loop () =
              Fiber.sleep seng (Rng.exponential rng ~mean:(1000.0 /. cfg.crash_rate));
              if not !stop_crashes then begin
                if Site.is_up site then Site.crash_for site ~duration:cfg.crash_duration;
                loop ()
              end
            in
            loop ()))
      fed.sites;
  (* Workers. *)
  let worker rng () =
    let rec loop () =
      if !issued < cfg.n_txns then begin
        incr issued;
        (let run_one () =
           match cfg.protocol with
           | Protocol.Before_mlt ->
             ignore
               (Icdb_core.Commit_before_mlt.run ~action_retries:cfg.mlt_action_retries fed
                  (mlt_spec cfg names fed rng zipf))
           | flat -> ignore (Protocol.run_flat flat fed (flat_spec cfg names fed rng zipf))
         in
         match on_txn_exn with
         | None -> run_one ()
         | Some handler -> (
           (* Injected central crashes abandon the protocol run mid-flight;
              the handler decides whether the worker survives to issue the
              next transaction. *)
           try run_one () with e when handler e -> ()));
        loop ()
      end
    in
    loop ()
  in
  Fiber.spawn engine (fun () ->
      let workers =
        List.init cfg.concurrency (fun _ ->
            let rng = Rng.split master_rng in
            worker rng)
      in
      ignore (Fiber.all engine workers);
      finished_at := Sim.now engine;
      stop_crashes := true);
  Parallel.run par;
  (* Make sure every site is up so the final snapshot sees recovered state. *)
  List.iter
    (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
    fed.sites;
  (* Fault-campaign drain hook: runs as a fiber after the workload settled
     and all sites restarted — the place for central recovery and
     invariant probes that need the simulated clock. *)
  Option.iter
    (fun f ->
      Fiber.spawn engine f;
      Parallel.run par)
    on_drain;
  let elapsed = if !finished_at > 0.0 then !finished_at else Sim.now engine in
  let m = fed.metrics in
  let committed = Metrics.committed m in
  let messages = Federation.total_messages fed in
  let money_after =
    List.fold_left (fun acc (_, _, v) -> acc + v) 0 (Federation.snapshot fed)
  in
  let violations = Graph.violations fed.graph in
  let sum f = List.fold_left (fun acc (_, site) -> acc + f (Site.db site)) 0 fed.sites in
  {
    elapsed;
    started = Metrics.started m;
    committed;
    aborted = Metrics.aborted m;
    throughput = (if elapsed > 0.0 then float_of_int committed /. elapsed *. 1000.0 else 0.0);
    mean_response = Metrics.mean_response_time m;
    p95_response = Metrics.p95_response_time m;
    mean_hold = Metrics.mean_hold_time m;
    p95_hold = Metrics.p95_hold_time m;
    messages;
    messages_per_committed =
      (if committed > 0 then float_of_int messages /. float_of_int committed else 0.0);
    messages_by_label = Federation.messages_by_label fed;
    repetitions = Metrics.repetitions m;
    compensations = Metrics.compensations m;
    redo_log_writes = Action_log.write_count fed.redo_log;
    undo_log_writes = Action_log.write_count fed.undo_log;
    mlt_log_writes = Action_log.write_count fed.mlt_undo_log;
    global_cc_acquisitions = Metrics.global_lock_acquisitions m;
    l1_acquisitions = Metrics.l1_lock_acquisitions m;
    local_lock_waits = sum Db.lock_wait_count;
    local_lock_timeouts = sum Db.lock_timeout_count;
    local_lock_deadlocks = sum Db.lock_deadlock_count;
    money_before;
    money_after;
    money_conserved = money_after = money_before;
    serializable = violations = [];
    violations = List.map (Format.asprintf "%a" Graph.pp_violation) violations;
    decision_log_entries = Federation.decision_log_size fed;
    log_forces = sum (fun db -> Icdb_wal.Log.force_count (Db.wal db));
    log_forces_per_commit =
      (if committed > 0 then
         float_of_int (sum (fun db -> Icdb_wal.Log.force_count (Db.wal db)))
         /. float_of_int committed
       else 0.0);
    messages_dropped =
      List.fold_left
        (fun acc (_, site) -> acc + Icdb_net.Link.dropped_count (Site.link site))
        0 fed.sites;
    phase_breakdown =
      phase_breakdown fed.registry ~protocol:(Protocol.obs_name cfg.protocol);
    batch_envelopes = Federation.batch_envelopes fed;
    batch_occupancy_mean = Federation.batch_occupancy_mean fed;
    central_log_forces = Federation.central_log_forces fed;
    shard_log_forces = Federation.shard_log_forces fed;
    shard_decisions = Federation.shard_decisions fed;
    paxos_rounds =
      (match paxos with Some p -> Icdb_core.Paxos_commit.rounds p | None -> 0);
    paxos_acceptor_forces =
      (match paxos with
      | Some p -> Icdb_core.Paxos_commit.acceptor_forces p
      | None -> 0);
    paxos_failovers =
      (match paxos with Some p -> Icdb_core.Paxos_commit.failovers p | None -> 0);
  }
