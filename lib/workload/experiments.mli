(** The paper's evaluation, regenerated.

    One entry per figure (F2-F8) and per §4.3 validation claim (V1-V7), as
    indexed in DESIGN.md §4 and EXPERIMENTS.md. Each experiment builds its
    own deterministic federation(s), runs the workload, and renders the
    resulting trace or table as text. [dune exec bench/main.exe] prints all
    of them; [icdb exp <id>] prints one. *)

(** [(id, one-line description)] for every experiment, in paper order. *)
val all : (string * string) list

(** [run id] executes one experiment and returns its printable report.
    Raises [Not_found] for unknown ids. *)
val run : string -> string

(** Runs every experiment and concatenates the reports in registry order.
    [jobs] (default 1) spreads the experiments over that many OCaml domains;
    every experiment is an independent deterministically seeded simulation,
    so the output is byte-identical for any [jobs]. *)
val run_all : ?jobs:int -> unit -> string
