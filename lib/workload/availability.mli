(** Experiment A1 — availability lab: Paxos Commit vs the single
    coordinator.

    Part A prices the replicated decision log on the fault-free path (the
    O1 fixed-spec machinery, so outcomes are asserted identical and the
    msgs/commit and forces/commit deltas are pure protocol overhead).
    Part B scripts the classic 2PC blocking scenario — the leader dies at
    a victim transaction's "voted" instant with one acceptor site down
    (F = 1 of a 2F+1 = 3 group) — and measures the victim's in-doubt
    window: with a single coordinator it stays open until post-run restart
    recovery; with Paxos Commit a new leader completes it from the
    acceptor quorum while the workload is still running.

    The report ends with verdict lines CI greps, the healthy ones being
    ["replication changes no outcome"] and
    ["no blocked commits under F=1 leader crash"]. *)

exception Leader_crash
(** Raised inside the victim's coordinator fiber by the scripted crash;
    swallowed by the runner's worker. *)

type blocking_result = {
  br_report : Runner.report;
  br_crash_time : float;  (** virtual instant the leader died *)
  br_close_time : float;  (** virtual instant the victim's entry closed *)
  br_resolved_mid_run : bool;
      (** victim settled before the last worker finished (no blocking) *)
}

(** [blocking_run ~acceptors ~n_txns ~seed] — one scripted leader-crash
    run (part B); [acceptors = 1] is the single-coordinator baseline. *)
val blocking_run : acceptors:int -> n_txns:int -> seed:int64 -> blocking_result

(** [run_a1 ()] renders the lab: both tables plus the verdict lines.
    [smoke] runs the reduced CI-sized workload. Deterministic in [seed]
    (default 42). *)
val run_a1 : ?smoke:bool -> ?seed:int64 -> unit -> string
