(** S1 — million-account scaling lab.

    Runs the standard transaction mix for every protocol over a ladder of
    federation sizes (up to ~10⁶ preloaded accounts across 32 sites) and
    renders committed-txns per 1000 virtual time units alongside wall-clock
    engine events/sec. The virtual-time columns are deterministic; the wall
    columns are host measurements, which is why S1 is invoked explicitly
    ([icdb exp s1]) and excluded from {!Experiments.run_all} and its
    byte-identity guarantees. *)

type trace_spec = {
  ts_rate : float;
      (** per-transaction head-sampling rate in [0,1]; deterministic in the
          run seed ({!Icdb_obs.Sampling}) *)
  ts_base : string;  (** output path prefix for the per-cell trace files *)
}
(** Streaming-trace request: each cell writes an incremental Chrome trace
    to [ts_base-<protocol>-<sites>x<accounts>.json] through a sink-only
    tracer ({!Icdb_obs.Sink}) — bounded memory even at the million-account
    cells. *)

val run_s1 : ?smoke:bool -> ?trace:trace_spec -> ?sim_domains:int -> unit -> string
(** [run_s1 ~smoke ()] renders the scaling table. [smoke] (default false)
    shrinks the size ladder to CI scale. [trace] streams sampled Chrome
    traces per cell and adds trace-volume columns to the table.
    [sim_domains] (default 1) partitions each cell's simulation over that
    many domains ({!Icdb_sim.Parallel}); every deterministic column is
    byte-identical for any value — only the wall-clock columns change. *)
