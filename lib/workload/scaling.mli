(** S1 — million-account scaling lab.

    Runs the standard transaction mix for every protocol over a ladder of
    federation sizes (up to ~10⁶ preloaded accounts across 32 sites) and
    renders committed-txns per 1000 virtual time units alongside wall-clock
    engine events/sec. The virtual-time columns are deterministic; the wall
    columns are host measurements, which is why S1 is invoked explicitly
    ([icdb exp s1]) and excluded from {!Experiments.run_all} and its
    byte-identity guarantees. *)

val run_s1 : ?smoke:bool -> unit -> string
(** [run_s1 ~smoke ()] renders the scaling table. [smoke] (default false)
    shrinks the size ladder to CI scale. *)
