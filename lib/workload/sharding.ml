(* S2 — sharded-federation lab.

   The headline experiment of the sharded federation: committed-txns/sec as
   the same 10⁶-account federation (16 sites × 62 500 accounts) is split
   into 1, 2, 4 and 8 shards, for cross-shard fractions of 0%, 5% and 20%.
   The decision log is modelled as a serial device (every force occupies
   its coordinator's log head for a fixed time), so the unsharded cell is
   bottlenecked on the single central log head and each shard adds an
   independent head — exactly the contention the per-shard coordinators
   relieve. A transaction whose branches land in one shard commits in a
   purely local round: the top-forces column staying 0 at 0% cross is the
   fast path made visible.

   Every column is a deterministic function of the seed (virtual-time
   throughput, commit counts, message and force tallies) — no wall-clock
   columns — so the table is byte-stable and the smoke ladder diffable in
   CI. *)

module Table = Icdb_util.Table

type row = {
  sh_shards : int;
  sh_cross : float; (* requested cross-shard fraction *)
  sh_committed : int;
  sh_throughput : float; (* committed per 1000 virtual time units *)
  sh_msgs_per_commit : float;
  sh_top_forces : int; (* central (top-level) decision-log forces *)
  sh_shard_forces : int; (* forces summed over the shard coordinators *)
}

let shard_ladder ~smoke = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ]
let cross_ladder ~smoke = if smoke then [ 0.0; 0.05 ] else [ 0.0; 0.05; 0.20 ]

(* The serial log head's occupancy per force. Comparable to a round trip
   (latency 1.0 each way, commit_delay 2.0), and with 32 workers in flight
   the single head saturates — which is the point. *)
let force_time = 4.0

(* The smoke grid keeps the full grid's shape (16 sites, 32 workers, same
   force time) and shrinks only the preload and the transaction count, so
   its virtual-time rates stay comparable to the full rows — bench/diff.exe
   compares a smoke BENCH.json against the full-run BASELINE.json under the
   same (shards, cross) keys. *)
let config ~smoke ~shards ~cross protocol =
  {
    Runner.default with
    protocol;
    n_sites = 16;
    accounts_per_site = (if smoke then 250 else 62_500);
    n_txns = (if smoke then 150 else 300);
    concurrency = 32;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.8;
    use_increments = true;
    shards;
    cross_shard_fraction = cross;
    decision_force_time = Some force_time;
  }

let run_cell ~smoke ~shards ~cross protocol =
  let r = Runner.run (config ~smoke ~shards ~cross protocol) in
  {
    sh_shards = shards;
    sh_cross = cross;
    sh_committed = r.Runner.committed;
    sh_throughput = r.Runner.throughput;
    sh_msgs_per_commit = r.Runner.messages_per_committed;
    sh_top_forces = r.Runner.central_log_forces;
    sh_shard_forces = r.Runner.shard_log_forces;
  }

let run_cells ?(protocol = Protocol.Two_phase) ~smoke () =
  List.concat_map
    (fun cross ->
      List.map (fun shards -> run_cell ~smoke ~shards ~cross protocol) (shard_ladder ~smoke))
    (cross_ladder ~smoke)

(* The acceptance line: at cross-shard fractions <= 5%, throughput must be
   strictly increasing from 1 to 4 shards. *)
let monotone_verdicts rows =
  List.filter_map
    (fun cross ->
      if cross > 0.05 then None
      else begin
        let ladder =
          List.filter (fun r -> r.sh_cross = cross && r.sh_shards <= 4) rows
          |> List.sort (fun a b -> compare a.sh_shards b.sh_shards)
        in
        let rec increasing = function
          | a :: (b :: _ as rest) ->
            a.sh_throughput < b.sh_throughput && increasing rest
          | _ -> true
        in
        Some
          (Printf.sprintf "cross %2.0f%%: throughput 1->4 shards strictly increasing: %s (%s)"
             (cross *. 100.0)
             (if increasing ladder then "yes" else "NO")
             (String.concat " -> "
                (List.map (fun r -> Printf.sprintf "%.2f" r.sh_throughput) ladder)))
      end)
    (cross_ladder ~smoke:false |> List.filter (fun c -> List.exists (fun r -> r.sh_cross = c) rows))

let run_s2 ?(smoke = false) ?(protocol = Protocol.Two_phase) () =
  let rows = run_cells ~protocol ~smoke () in
  let cfg1 = config ~smoke ~shards:1 ~cross:0.0 protocol in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "S2 — sharding lab: %s, %d sites x %s accounts, %d txns, force %.1ftu%s"
           (Protocol.name protocol) cfg1.Runner.n_sites
           (Table.fmt_int cfg1.Runner.accounts_per_site)
           cfg1.Runner.n_txns force_time
           (if smoke then " (smoke)" else ""))
      [ "cross %"; "shards"; "committed"; "txn/1000tu"; "msg/commit"; "top forces"; "shard forces" ]
  in
  List.iteri
    (fun i cross ->
      if i > 0 then Table.add_separator table;
      List.iter
        (fun (r : row) ->
          if r.sh_cross = cross then
            Table.add_row table
              [
                Table.fmt_float ~decimals:0 (cross *. 100.0);
                Table.fmt_int r.sh_shards;
                Table.fmt_int r.sh_committed;
                Table.fmt_float ~decimals:2 r.sh_throughput;
                Table.fmt_float ~decimals:1 r.sh_msgs_per_commit;
                Table.fmt_int r.sh_top_forces;
                Table.fmt_int r.sh_shard_forces;
              ])
        rows)
    (cross_ladder ~smoke);
  "Committed-transaction throughput as the federation is split into per-shard\n\
   coordinators. The decision log is a serial device (one log head per\n\
   coordinator, " ^ Printf.sprintf "%.1f" force_time
  ^ " tu per force): unsharded, every decision queues on the\n\
     single central head; each shard adds an independent head, and\n\
     single-shard transactions commit in a purely local round — at 0% cross\n\
     the top-level log takes no force at all. All columns are deterministic\n\
     virtual-time measurements (seed 42).\n\n"
  ^ Table.render table ^ "\n"
  ^ String.concat "\n" (monotone_verdicts rows)
  ^ "\n"
