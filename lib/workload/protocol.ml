type t = Two_phase | Presumed_abort | After | Before | Before_mlt | Hybrid

let name = function
  | Two_phase -> "2pc"
  | Presumed_abort -> "2pc-presumed-abort"
  | After -> "commit-after"
  | Before -> "commit-before"
  | Before_mlt -> "commit-before+mlt"
  | Hybrid -> "hybrid"

(* The short name the protocols pass to [Protocol_common.obs_begin] — the
   label on span kinds and phase-latency histograms. *)
let obs_name = function
  | Two_phase -> "2pc"
  | Presumed_abort -> "2pc-pa"
  | After -> "after"
  | Before -> "before"
  | Before_mlt -> "mlt"
  | Hybrid -> "hybrid"

let paper = [ Two_phase; After; Before; Before_mlt ]
let all = paper @ [ Presumed_abort; Hybrid ]

let is_flat = function
  | Two_phase | Presumed_abort | After | Before | Hybrid -> true
  | Before_mlt -> false

let of_string = function
  | "2pc" -> Ok Two_phase
  | "2pc-pa" | "presumed-abort" -> Ok Presumed_abort
  | "after" -> Ok After
  | "before" -> Ok Before
  | "before-mlt" | "before_mlt" | "mlt" -> Ok Before_mlt
  | "hybrid" -> Ok Hybrid
  | s ->
    Error
      (Printf.sprintf "unknown protocol %S (use 2pc|2pc-pa|after|before|before-mlt|hybrid)" s)

let run_flat t fed spec =
  match t with
  | Two_phase -> Icdb_core.Two_phase_commit.run fed spec
  | Presumed_abort -> Icdb_core.Presumed_abort.run fed spec
  | After -> Icdb_core.Commit_after.run fed spec
  | Before -> Icdb_core.Commit_before.run fed spec
  | Hybrid -> Icdb_core.Commit_hybrid.run fed spec
  | Before_mlt -> invalid_arg "Protocol.run_flat: Before_mlt takes MLT specs"
