(** Fixed-spec commit-overhead lab (experiment O1).

    {!Runner} draws each transaction's spec inside the worker fibers, so the
    workload itself depends on execution interleaving — fine for throughput
    sweeps, useless for comparing {e the same transactions} under different
    batching windows. This lab pre-generates the whole spec list from the
    seed (sites, deltas, intended aborts, gids) before the clock starts, and
    keeps the workload conflict-free (balanced increments on commuting lock
    modes, no failure injection), so every commit/abort decision is a pure
    function of its spec. Batching may then change timing and message
    counts, never outcomes — which is exactly what the equivalence property
    test asserts, and what makes the O1 overhead-vs-window table an
    apples-to-apples comparison. *)

type config = {
  protocol : Protocol.t;
  seed : int64;
  n_sites : int;
  accounts_per_site : int;
  initial_balance : int;
  n_txns : int;
  concurrency : int;  (** worker fibers draining the fixed spec queue *)
  branches_per_txn : int;
  ops_per_branch : int;
  zipf_theta : float;
  p_intended_abort : float;
      (** baked into the spec at generation time: a branch votes no (flat
          protocols) or the MLT run aborts after a fixed action count *)
  latency : float;
  op_delay : float;
  commit_delay : float;
  msg_batch_window : float option;  (** see {!Icdb_core.Federation.create} *)
  central_gc_window : float option;
  group_commit_window : float option;  (** local engines' group commit *)
  acceptors : int;
      (** Paxos Commit group size (2F+1); 1 (default) = single-coordinator
          forces, byte-identical to the pre-Paxos lab *)
}

val default : config

type result = {
  outcomes : bool list;
      (** per-transaction committed?, in generation (gid) order — identical
          across batching windows for a fixed seed *)
  committed : int;
  aborted : int;
  elapsed : float;
  throughput : float;
  messages : int;  (** physical wire messages *)
  messages_per_committed : float;
  messages_by_label : (string * int) list;
      (** logical per-label tally (piggybacked messages included) *)
  local_log_forces : int;
  central_log_forces : int;
      (** shared group-commit forces, or one per decision with the window
          off (the §5 baseline); 0 under Paxos — see next field *)
  paxos_acceptor_forces : int;
      (** acceptor log forces of the replicated decision log (0 with
          [acceptors = 1]) *)
  log_forces_per_commit : float;
      (** (local + central + acceptor) / committed *)
  batch_envelopes : int;
  batch_occupancy_mean : float;
  money_conserved : bool;
  serializable : bool;
}

(** [run config] executes the fixed workload to completion. Deterministic in
    [config.seed]. [registry] as in {!Runner.run}. *)
val run : ?registry:Icdb_obs.Registry.t -> config -> result
