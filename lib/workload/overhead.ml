module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Rng = Icdb_util.Rng
module Zipf = Icdb_util.Zipf
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Graph = Icdb_core.Serialization_graph

type config = {
  protocol : Protocol.t;
  seed : int64;
  n_sites : int;
  accounts_per_site : int;
  initial_balance : int;
  n_txns : int;
  concurrency : int;
  branches_per_txn : int;
  ops_per_branch : int;
  zipf_theta : float;
  p_intended_abort : float;
  latency : float;
  op_delay : float;
  commit_delay : float;
  msg_batch_window : float option;
  central_gc_window : float option;
  group_commit_window : float option;
  acceptors : int;
}

let default =
  {
    protocol = Protocol.Two_phase;
    seed = 42L;
    n_sites = 4;
    accounts_per_site = 16;
    initial_balance = 1000;
    n_txns = 120;
    concurrency = 12;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.6;
    p_intended_abort = 0.15;
    latency = 1.0;
    op_delay = 1.0;
    commit_delay = 2.0;
    msg_batch_window = None;
    central_gc_window = None;
    group_commit_window = None;
    acceptors = 1;
  }

type result = {
  outcomes : bool list;
  committed : int;
  aborted : int;
  elapsed : float;
  throughput : float;
  messages : int;
  messages_per_committed : float;
  messages_by_label : (string * int) list;
  local_log_forces : int;
  central_log_forces : int;
  paxos_acceptor_forces : int;
  log_forces_per_commit : float;
  batch_envelopes : int;
  batch_occupancy_mean : float;
  money_conserved : bool;
  serializable : bool;
}

let site_name i = Printf.sprintf "site-%d" i
let account_name i = Printf.sprintf "acct-%03d" i

let site_config cfg i =
  let supports_prepare =
    match cfg.protocol with Protocol.Hybrid -> i mod 2 = 0 | _ -> true
  in
  {
    Db.site_name = site_name i;
    capabilities =
      {
        supports_prepare;
        supports_increment_locks = true;
        granularity = Db.Record_level;
        cc = Db.Locking { wait_timeout = None };
      };
    op_delay = cfg.op_delay;
    commit_delay = cfg.commit_delay;
    buffer_capacity = max 64 (cfg.accounts_per_site / 4);
    spontaneous = None;
    seed = Int64.add cfg.seed (Int64.of_int (1000 + i));
    group_commit_window = cfg.group_commit_window;
    checkpoint_interval = None;
  }

(* Each op moves a random amount; the last op absorbs the slack so the
   transaction nets to zero (the money-conservation invariant). *)
let balanced_deltas rng ~n =
  let deltas = Array.init n (fun _ -> Rng.int_in_range rng ~lo:(-20) ~hi:20) in
  let total = Array.fold_left ( + ) 0 deltas in
  deltas.(n - 1) <- deltas.(n - 1) - total;
  deltas

type spec = Flat of Global.spec | Mlt of Global.mlt_spec

(* The whole workload is generated up front from [seed] alone — no draws
   interleave with execution, so the spec list (sites touched, deltas,
   intended aborts, gids) is the same whatever the batching windows are.
   Combined with an all-increment workload on conflict-free lock modes
   (increments commute locally, globally and at L1) and no failure
   injection, every commit/abort decision is a pure function of its spec:
   batching can move events in time but never change an outcome. That is
   the property the equivalence test checks. *)
let gen_specs cfg =
  let rng = Rng.create cfg.seed in
  let sites_arr = Array.init cfg.n_sites site_name in
  let accts_arr = Array.init cfg.accounts_per_site account_name in
  let zipf = Zipf.create ~n:cfg.accounts_per_site ~theta:cfg.zipf_theta in
  let branches_n = min cfg.branches_per_txn cfg.n_sites in
  let n_ops = branches_n * cfg.ops_per_branch in
  Array.init cfg.n_txns (fun i ->
      let gid = i + 1 in
      let sites = Rng.sample_distinct rng ~n:branches_n ~bound:cfg.n_sites in
      let deltas = balanced_deltas rng ~n:n_ops in
      let intended_abort = Rng.bernoulli rng cfg.p_intended_abort in
      match cfg.protocol with
      | Protocol.Before_mlt ->
        let actions =
          List.concat
            (List.mapi
               (fun bi site_idx ->
                 List.init cfg.ops_per_branch (fun oi ->
                     let site = sites_arr.(site_idx) in
                     let account = accts_arr.(Zipf.sample zipf rng) in
                     let delta = deltas.((bi * cfg.ops_per_branch) + oi) in
                     if delta >= 0 then Action.deposit ~site ~account delta
                     else Action.withdraw ~site ~account (-delta)))
               sites)
        in
        let abort_after =
          if intended_abort then Some (Rng.int rng (List.length actions)) else None
        in
        Mlt { Global.mlt_gid = gid; actions; abort_after }
      | _ ->
        let abort_branch =
          if intended_abort then Some (Rng.int rng branches_n) else None
        in
        let branches =
          List.mapi
            (fun bi site_idx ->
              let program =
                List.init cfg.ops_per_branch (fun oi ->
                    let account = accts_arr.(Zipf.sample zipf rng) in
                    Program.Increment (account, deltas.((bi * cfg.ops_per_branch) + oi)))
              in
              Global.branch
                ~vote_commit:(abort_branch <> Some bi)
                ~site:sites_arr.(site_idx) program)
            sites
        in
        Flat { Global.gid; branches })

let run ?registry cfg =
  if cfg.n_sites <= 0 || cfg.n_txns < 0 || cfg.concurrency <= 0 then
    invalid_arg "Overhead.run: bad configuration";
  let engine = Sim.create () in
  let configs = List.init cfg.n_sites (site_config cfg) in
  let fed =
    Federation.create engine ~latency:cfg.latency ~global_lock_timeout:None
      ?registry ~msg_batch_window:cfg.msg_batch_window
      ~central_gc_window:cfg.central_gc_window configs
  in
  let rows =
    List.init cfg.accounts_per_site (fun i -> (account_name i, cfg.initial_balance))
  in
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.sites;
  let money_before = cfg.n_sites * cfg.accounts_per_site * cfg.initial_balance in
  (* Paxos Commit replication, fault-free: the lab that measures what the
     acceptor rounds cost in messages and forces per commit. *)
  let paxos =
    if cfg.acceptors > 1 then
      Some (Icdb_core.Paxos_commit.install fed ~acceptors:cfg.acceptors)
    else None
  in
  let specs = gen_specs cfg in
  let outcomes = Array.make (Array.length specs) false in
  let next = ref 0 in
  let finished_at = ref 0.0 in
  let worker () =
    let rec loop () =
      if !next < Array.length specs then begin
        let i = !next in
        incr next;
        let outcome =
          match specs.(i) with
          | Flat s -> Protocol.run_flat cfg.protocol fed s
          | Mlt s -> Icdb_core.Commit_before_mlt.run fed s
        in
        outcomes.(i) <- Global.is_committed outcome;
        loop ()
      end
    in
    loop ()
  in
  Fiber.spawn engine (fun () ->
      ignore (Fiber.all engine (List.init cfg.concurrency (fun _ -> worker)));
      finished_at := Sim.now engine);
  Sim.run engine;
  let elapsed = if !finished_at > 0.0 then !finished_at else Sim.now engine in
  let committed = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 outcomes in
  let messages = Federation.total_messages fed in
  let local_log_forces =
    List.fold_left
      (fun acc (_, site) -> acc + Icdb_wal.Log.force_count (Db.wal (Site.db site)))
      0 fed.sites
  in
  let central_log_forces = Federation.central_log_forces fed in
  let paxos_acceptor_forces =
    match paxos with
    | Some p -> Icdb_core.Paxos_commit.acceptor_forces p
    | None -> 0
  in
  let money_after =
    List.fold_left (fun acc (_, _, v) -> acc + v) 0 (Federation.snapshot fed)
  in
  let per_commit n = if committed > 0 then float_of_int n /. float_of_int committed else 0.0 in
  {
    outcomes = Array.to_list outcomes;
    committed;
    aborted = Array.length outcomes - committed;
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int committed /. elapsed *. 1000.0 else 0.0);
    messages;
    messages_per_committed = per_commit messages;
    messages_by_label = Federation.messages_by_label fed;
    local_log_forces;
    central_log_forces;
    paxos_acceptor_forces;
    log_forces_per_commit =
      per_commit (local_log_forces + central_log_forces + paxos_acceptor_forces);
    batch_envelopes = Federation.batch_envelopes fed;
    batch_occupancy_mean = Federation.batch_occupancy_mean fed;
    money_conserved = money_after = money_before;
    serializable = Graph.violations fed.graph = [];
  }
