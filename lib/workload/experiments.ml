module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Rng = Icdb_util.Rng
module Table = Icdb_util.Table
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Graph = Icdb_core.Serialization_graph
module Metrics = Icdb_core.Metrics
module Action_log = Icdb_core.Action_log
module Tpc = Icdb_core.Two_phase_commit
module After = Icdb_core.Commit_after
module Before = Icdb_core.Commit_before
module Mlt = Icdb_core.Commit_before_mlt

(* --- shared scaffolding ------------------------------------------------- *)

let site_cfg ?(prepare = true) ?(granularity = Db.Record_level) name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = prepare;
        supports_increment_locks = true;
        granularity;
        cc = Locking { wait_timeout = Some 100.0 };
      };
  }

let make_fed ?(n = 2) ?(prepare = true) ?granularity eng =
  let configs =
    List.init n (fun i -> site_cfg ~prepare ?granularity (Printf.sprintf "s%d" i))
  in
  Federation.create eng configs

let load fed rows =
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.Federation.sites

let in_sim eng f =
  let result = ref None in
  Fiber.spawn eng (fun () -> result := Some (f ()));
  Sim.run eng;
  Option.get !result

let transfer_spec fed ?(vote0 = true) ?(vote1 = true) ?(amount = 5) key =
  {
    Global.gid = Federation.fresh_gid fed;
    branches =
      [
        Global.branch ~vote_commit:vote0 ~site:"s0" [ Program.Increment (key, amount) ];
        Global.branch ~vote_commit:vote1 ~site:"s1" [ Program.Increment (key, -amount) ];
      ];
  }

let value fed site key = Db.committed_value (Site.db (Federation.site fed site)) key

let kill_running_at eng fed ~site ~at =
  ignore
    (Sim.schedule eng ~delay:at (fun () ->
         let db = Site.db (Federation.site fed site) in
         List.iter (Db.kill db) (Db.running_transactions db)))

let heading title =
  Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '=')

let fmt = Table.fmt_float
let fmti = Table.fmt_int

(* --- F2/F4/F6: protocol state-and-message traces ------------------------ *)

let trace_of run_commit run_abort title =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (heading title);
  let show label f =
    let eng = Sim.create () in
    let fed = make_fed eng in
    load fed [ ("x", 100) ];
    let outcome = in_sim eng (fun () -> f fed) in
    Buffer.add_string buf (Printf.sprintf "\n--- %s (outcome: %s) ---\n" label
        (Global.outcome_to_string outcome));
    Buffer.add_string buf (Trace.render fed.trace);
    Buffer.add_string buf
      (Printf.sprintf "messages by label: %s\n"
         (String.concat ", "
            (List.map
               (fun (l, n) -> Printf.sprintf "%s=%d" l n)
               (Federation.messages_by_label fed))))
  in
  show "commit path" run_commit;
  show "abort path" run_abort;
  Buffer.contents buf

let fig2 () =
  trace_of
    (fun fed -> Tpc.run fed (transfer_spec fed "x"))
    (fun fed -> Tpc.run fed (transfer_spec fed ~vote1:false "x"))
    "F2 - Two-phase commit: states and messages (paper Figure 2)"

let fig4 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (trace_of
       (fun fed -> After.run fed (transfer_spec fed "x"))
       (fun fed -> After.run fed (transfer_spec fed ~vote1:false "x"))
       "F4 - Commitment after the global decision (paper Figure 4)");
  (* The defining path: erroneous local abort after "ready" -> repetition. *)
  let eng = Sim.create () in
  let fed = make_fed eng in
  load fed [ ("x", 100) ];
  kill_running_at eng fed ~site:"s0" ~at:6.5;
  let outcome = in_sim eng (fun () -> After.run fed (transfer_spec fed "x")) in
  Buffer.add_string buf
    (Printf.sprintf
       "\n--- erroneous abort after ready -> redo (outcome: %s, repetitions: %d) ---\n"
       (Global.outcome_to_string outcome)
       (Metrics.repetitions fed.metrics));
  Buffer.add_string buf (Trace.render fed.trace);
  Buffer.contents buf

let fig6 () =
  trace_of
    (fun fed -> Before.run fed (transfer_spec fed "x"))
    (fun fed -> Before.run fed (transfer_spec fed ~vote1:false "x"))
    "F6 - Commitment before the global decision (paper Figure 6)"

(* --- F3/F5/F7: commit-point ordering ------------------------------------ *)

let commit_points title expectation run =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load fed [ ("x", 100) ];
  ignore (in_sim eng (fun () -> run fed));
  let t actor label = Trace.find fed.trace ~actor ~label in
  let decision = Option.get (t "central" "g1:decision:commit") in
  let table =
    Table.create ~title
      [ "site"; "ready/local-commit"; "global decision"; "final commit"; "ordering" ]
  in
  List.iter
    (fun site ->
      let ready =
        match t site "g1:ready" with
        | Some v -> v
        | None -> Option.get (t site "g1:locally-committed")
      in
      let committed =
        match t site "g1:committed" with
        | Some v -> v
        | None -> Option.get (t site "g1:locally-committed")
      in
      let ordering =
        if ready < decision && decision < committed then "ready < decision < commit"
        else if committed <= decision then "local commit < decision"
        else if decision <= ready then "decision < local work"
        else "?"
      in
      Table.add_row table [ site; fmt ready; fmt decision; fmt committed; ordering ])
    [ "s0"; "s1" ];
  heading expectation ^ Table.render table

let fig3 () =
  commit_points "F3 - 2PC commit points"
    "F3 - Decision in the middle of local commitment (paper Figure 3)"
    (fun fed -> Tpc.run fed (transfer_spec fed "x"))

let fig5 () =
  commit_points "F5 - commit-after commit points"
    "F5 - Decision before every local commit (paper Figure 5)"
    (fun fed -> After.run fed (transfer_spec fed "x"))

let fig7 () =
  commit_points "F7 - commit-before commit points"
    "F7 - Every local commit before the decision (paper Figure 7)"
    (fun fed -> Before.run fed (transfer_spec fed "x"))

(* --- F8: two-level transactions vs page-level single-level -------------- *)

let fig8 () =
  (* N concurrent transfers over records sharing one page of a single
     page-granularity site. Single-level: each global transaction is one
     flat local transaction holding the page lock until the global end
     (2PC). Two-level: every increment is its own L0 transaction; L1
     increment locks commute. *)
  let n_txns = 8 in
  let records = [ ("x", 0); ("y", 0); ("z", 0); ("w", 0) ] in
  let keys = Array.of_list (List.map fst records) in
  let run_variant make_txn =
    let eng = Sim.create () in
    let fed = make_fed ~n:1 ~granularity:Db.Page_level eng in
    load fed records;
    let rng = Rng.create 7L in
    let finish = ref 0.0 in
    Fiber.spawn eng (fun () ->
        ignore
          (Fiber.all eng
             (List.init n_txns (fun _ ->
                  let k1 = Rng.pick rng keys and k2 = Rng.pick rng keys in
                  fun () -> make_txn fed k1 k2)));
        finish := Sim.now eng);
    Sim.run eng;
    (fed, !finish)
  in
  let flat_fed, flat_makespan =
    run_variant (fun fed k1 k2 ->
        let spec =
          {
            Global.gid = Federation.fresh_gid fed;
            branches =
              [
                Global.branch ~site:"s0"
                  [ Program.Increment (k1, 1); Program.Increment (k2, 1) ];
              ];
          }
        in
        ignore (Tpc.run fed spec))
  in
  let mlt_fed, mlt_makespan =
    run_variant (fun fed k1 k2 ->
        let spec =
          {
            Global.mlt_gid = Federation.fresh_gid fed;
            actions =
              [ Action.increment ~site:"s0" ~key:k1 1; Action.increment ~site:"s0" ~key:k2 1 ];
            abort_after = None;
          }
        in
        ignore (Mlt.run fed spec))
  in
  let table =
    Table.create ~title:(Printf.sprintf "F8 - %d concurrent increment txns, records co-located on one page" n_txns)
      [ "variant"; "makespan"; "txns/1000tu"; "mean L0 lock hold"; "p95 L0 lock hold" ]
  in
  let row name fed makespan =
    Table.add_row table
      [
        name;
        fmt makespan;
        fmt (float_of_int n_txns /. makespan *. 1000.0);
        fmt (Metrics.mean_hold_time fed.Federation.metrics);
        fmt (Metrics.p95_hold_time fed.Federation.metrics);
      ]
  in
  row "single-level (flat 2PC, page locks to global end)" flat_fed flat_makespan;
  row "two-level (MLT commit-before, short L0 page locks)" mlt_fed mlt_makespan;
  heading "F8 - Increased concurrency of multi-level transactions (paper Figure 8)"
  ^ Table.render table
  ^ Printf.sprintf "speedup (makespan): %s\n" (Table.fmt_ratio flat_makespan mlt_makespan)

(* --- V1: lock hold times and throughput --------------------------------- *)

let runner_cfg protocol =
  {
    Runner.default with
    protocol;
    n_txns = 150;
    concurrency = 12;
    accounts_per_site = 16;
    zipf_theta = 0.9;
  }

(* Appends a separator before every group except the first. *)
let group_separator table =
  let first = ref true in
  fun () ->
    if !first then first := false else Table.add_separator table

let v1 () =
  let table =
    Table.create
      ~title:
        "V1 - Local lock hold time and throughput under read/write contention (200 \
         txns, 16 workers, 8 hot accounts/site, zipf 1.1)"
      [ "protocol"; "sites"; "tput/1000tu"; "mean hold"; "p95 hold"; "mean resp"; "lock waits" ]
  in
  let sep = group_separator table in
  List.iter
    (fun n_sites ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run
              {
                (runner_cfg protocol) with
                n_sites;
                n_txns = 200;
                concurrency = 16;
                accounts_per_site = 8;
                zipf_theta = 1.1;
                (* increments commute everywhere; real lock conflicts need
                   a read/write mix *)
                use_increments = false;
                read_fraction = 0.5;
              }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmti n_sites;
              fmt r.throughput;
              fmt r.mean_hold;
              fmt r.p95_hold;
              fmt r.mean_response;
              fmti r.local_lock_waits;
            ])
        Protocol.paper)
    [ 2; 4; 8 ];
  heading "V1 - \"commit-after holds local locks until the global end\" (§4.3)"
  ^ Table.render table

(* --- V2: failure-rate sweep (repetitions) -------------------------------- *)

let v2 () =
  let table =
    Table.create
      ~title:"V2 - Spontaneous local-abort sweep (kills injected by local systems)"
      [ "protocol"; "p(kill)"; "committed"; "aborted"; "repetitions"; "compensations"; "tput" ]
  in
  let sep = group_separator table in
  List.iter
    (fun p ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run
              { (runner_cfg protocol) with p_spontaneous = p; n_txns = 200 }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmt p;
              fmti r.committed;
              fmti r.aborted;
              fmti r.repetitions;
              fmti r.compensations;
              fmt r.throughput;
            ])
        [ Protocol.Two_phase; Protocol.After; Protocol.Before ])
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  heading "V2 - \"commit-after degrades when locals must be repeated\" (§3.2/§4.3)"
  ^ Table.render table

(* --- V3: intended-abort sweep (compensations) ----------------------------- *)

let v3 () =
  let table =
    Table.create
      ~title:"V3 - Intended-abort sweep (transactions that decide to abort)"
      [ "protocol"; "p(abort)"; "committed"; "aborted"; "compensations"; "tput"; "mean resp" ]
  in
  let sep = group_separator table in
  List.iter
    (fun p ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run
              { (runner_cfg protocol) with p_intended_abort = p; n_txns = 200 }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmt p;
              fmti r.committed;
              fmti r.aborted;
              fmti r.compensations;
              fmt r.throughput;
              fmt r.mean_response;
            ])
        [ Protocol.After; Protocol.Before; Protocol.Before_mlt ])
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ];
  heading
    "V3 - \"intended aborts are handled better by commit-after; commit-before pays in \
     inverse transactions\" (§4.3)"
  ^ Table.render table

(* --- V4: additional-components ablation ---------------------------------- *)

let v4 () =
  let table =
    Table.create
      ~title:"V4 - Additional components per committed transaction (200 txns)"
      [
        "protocol";
        "addl CC acq/txn";
        "addl undo-log wr/txn";
        "redo-log wr/txn";
        "L1 lock acq/txn (inherent)";
        "L1 undo-log wr/txn (inherent)";
        "tput";
      ]
  in
  List.iter
    (fun protocol ->
      let r = Runner.run { (runner_cfg protocol) with n_txns = 200 } in
      let per x = fmt (float_of_int x /. float_of_int (max 1 r.committed)) in
      Table.add_row table
        [
          Protocol.name protocol;
          per r.global_cc_acquisitions;
          per r.undo_log_writes;
          per r.redo_log_writes;
          per r.l1_acquisitions;
          per r.mlt_log_writes;
          fmt r.throughput;
        ])
    [ Protocol.After; Protocol.Before; Protocol.Before_mlt ];
  heading
    "V4 - \"no additional concurrency control and recovery modules are needed\" with MLT \
     (§4.3)"
  ^ Table.render table

(* --- V5: message complexity ----------------------------------------------- *)

let v5 () =
  let table =
    Table.create ~title:"V5 - Messages per committed global transaction (failure-free)"
      [ "protocol"; "branches"; "messages/commit"; "expected" ]
  in
  let sep = group_separator table in
  List.iter
    (fun branches ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run
              {
                (runner_cfg protocol) with
                n_sites = 8;
                branches_per_txn = branches;
                n_txns = 60;
                concurrency = 4;
                zipf_theta = 0.0;
              }
          in
          let expected =
            match protocol with
            | Protocol.Two_phase | Protocol.Presumed_abort | Protocol.After ->
              6 * branches
            | Protocol.Before | Protocol.Before_mlt -> 4 * branches
            | Protocol.Hybrid -> 5 * branches
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmti branches;
              fmt r.messages_per_committed;
              Printf.sprintf "%dn (exec 2n + commit %dn)" (expected / branches)
                ((expected / branches) - 2);
            ])
        Protocol.paper)
    [ 1; 2; 4 ];
  heading "V5 - Message complexity: 4n commit messages (2PC/after) vs 2n (before)"
  ^ Table.render table

(* --- V6: crash-window matrix ---------------------------------------------- *)

let v6 () =
  let table =
    Table.create
      ~title:
        "V6 - Atomicity across site crashes injected at every protocol instant (transfer \
         of 5 between two sites; crash at t, recovery 25tu later)"
      [ "protocol"; "crash windows"; "atomic"; "committed"; "aborted" ]
  in
  let crash_times = List.init 30 (fun i -> 0.5 +. float_of_int i) in
  let check_one protocol crash_at =
    let eng = Sim.create () in
    let fed = make_fed eng in
    load fed [ ("x", 100) ];
    ignore
      (Sim.schedule eng ~delay:crash_at (fun () ->
           Site.crash_for (Federation.site fed "s0") ~duration:25.0));
    let outcome =
      in_sim eng (fun () ->
          match protocol with
          | Protocol.Two_phase -> Tpc.run fed (transfer_spec fed "x")
          | Protocol.Presumed_abort -> Icdb_core.Presumed_abort.run fed (transfer_spec fed "x")
          | Protocol.After -> After.run fed (transfer_spec fed "x")
          | Protocol.Before -> Before.run fed (transfer_spec fed "x")
          | Protocol.Hybrid -> Icdb_core.Commit_hybrid.run fed (transfer_spec fed "x")
          | Protocol.Before_mlt ->
            Mlt.run fed
              {
                Global.mlt_gid = Federation.fresh_gid fed;
                actions =
                  [
                    Action.deposit ~site:"s0" ~account:"x" 5;
                    Action.withdraw ~site:"s1" ~account:"x" 5;
                  ];
                abort_after = None;
              })
    in
    List.iter
      (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
      fed.sites;
    let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
    let atomic =
      match outcome with
      | Global.Committed -> v0 = Some 105 && v1 = Some 95
      | Global.Aborted _ -> v0 = Some 100 && v1 = Some 100
    in
    (atomic, Global.is_committed outcome)
  in
  List.iter
    (fun protocol ->
      let results = List.map (check_one protocol) crash_times in
      let atomic = List.length (List.filter fst results) in
      let committed = List.length (List.filter snd results) in
      Table.add_row table
        [
          Protocol.name protocol;
          fmti (List.length crash_times);
          Printf.sprintf "%d/%d" atomic (List.length crash_times);
          fmti committed;
          fmti (List.length crash_times - committed);
        ])
    Protocol.paper;
  heading "V6 - Crash-window matrix (§3.2/§3.3 failure discussion)" ^ Table.render table

(* --- V7: the serializability requirements ---------------------------------- *)

let v7 () =
  let table =
    Table.create
      ~title:
        "V7 - Serializability requirements: violations detected by the global \
         serialization-graph checker"
      [ "scenario"; "additional CC module"; "violations" ]
  in
  let dirty_read ~cc =
    let eng = Sim.create () in
    let fed = make_fed eng in
    fed.global_cc_enabled <- cc;
    load fed [ ("x", 100) ];
    Fiber.spawn eng (fun () -> ignore (Before.run fed (transfer_spec fed ~vote1:false "x")));
    Fiber.spawn eng (fun () ->
        Fiber.sleep eng 6.0;
        ignore
          (Before.run fed
             {
               Global.gid = Federation.fresh_gid fed;
               branches = [ Global.branch ~site:"s0" [ Program.Read "x" ] ];
             }));
    Sim.run eng;
    Graph.violations fed.graph
  in
  let order_flip ~cc =
    let eng = Sim.create () in
    let fed = make_fed eng in
    fed.global_cc_enabled <- cc;
    load fed [ ("x", 100); ("y", 100) ];
    Fiber.spawn eng (fun () ->
        ignore
          (After.run fed
             {
               Global.gid = Federation.fresh_gid fed;
               branches =
                 [
                   Global.branch ~site:"s0" [ Program.Read "x" ];
                   Global.branch ~site:"s1" [ Program.Increment ("y", 1) ];
                 ];
             }));
    kill_running_at eng fed ~site:"s0" ~at:5.5;
    Fiber.spawn eng (fun () ->
        Fiber.sleep eng 4.6;
        ignore
          (Before.run fed
             {
               Global.gid = Federation.fresh_gid fed;
               branches =
                 [
                   Global.branch ~site:"s0" [ Program.Write ("x", 999) ];
                   Global.branch ~site:"s1" [ Program.Read "y" ];
                 ];
             }));
    Sim.run eng;
    Graph.violations fed.graph
  in
  let describe violations =
    if violations = [] then "none"
    else String.concat "; " (List.map (Format.asprintf "%a" Graph.pp_violation) violations)
  in
  Table.add_row table
    [ "§3.3 dirty read of compensated data (commit-before)"; "disabled"; describe (dirty_read ~cc:false) ];
  Table.add_row table
    [ "§3.3 dirty read of compensated data (commit-before)"; "enabled"; describe (dirty_read ~cc:true) ];
  Table.add_row table
    [ "§3.2 order flip through repetition (commit-after)"; "disabled"; describe (order_flip ~cc:false) ];
  Table.add_row table
    [ "§3.2 order flip through repetition (commit-after)"; "enabled"; describe (order_flip ~cc:true) ];
  heading "V7 - Why the additional CC module exists (§3.2/§3.3 requirements)"
  ^ Table.render table

(* --- A1: presumed-abort ablation -------------------------------------------- *)

let a1 () =
  let table =
    Table.create
      ~title:
        "A1 - Standard vs presumed-abort 2PC (read-heavy workload, 80% reads, 200 txns)"
      [
        "protocol"; "p(abort)"; "committed"; "msgs/commit"; "decision-log entries"; "tput";
      ]
  in
  let sep = group_separator table in
  List.iter
    (fun p ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run
              {
                (runner_cfg protocol) with
                n_txns = 200;
                use_increments = false;
                read_fraction = 0.8;
                p_intended_abort = p;
              }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmt p;
              fmti r.committed;
              fmt r.messages_per_committed;
              fmti r.decision_log_entries;
              fmt r.throughput;
            ])
        [ Protocol.Two_phase; Protocol.Presumed_abort ])
    [ 0.0; 0.2; 0.4 ];
  heading
    "A1 - Extension: presumed-abort 2PC [ML 83] - fewer messages on abort, no abort log \
     records, read-only branches skip phase 2"
  ^ Table.render table

(* --- A2: hybrid protocol on a mixed-capability federation -------------------- *)

let a2 () =
  let table =
    Table.create
      ~title:
        "A2 - Mixed federation (half the sites expose a ready state), 200 txns"
      [ "protocol"; "committed"; "aborted"; "msgs/commit"; "compensations"; "tput" ]
  in
  List.iter
    (fun protocol ->
      let r =
        Runner.run
          {
            (runner_cfg protocol) with
            n_txns = 200;
            mixed_capabilities = true;
            p_intended_abort = 0.1;
          }
      in
      Table.add_row table
        [
          Protocol.name protocol;
          fmti r.committed;
          fmti r.aborted;
          fmt r.messages_per_committed;
          fmti r.compensations;
          fmt r.throughput;
        ])
    [ Protocol.Two_phase; Protocol.Before; Protocol.Hybrid ];
  heading
    "A2 - Extension: hybrid commitment - 2PC legs where the ready state exists, \
     commitment-before legs elsewhere (2PC alone cannot run at all)"
  ^ Table.render table

(* --- A3: MLT action retries --------------------------------------------------- *)

let a3 () =
  let table =
    Table.create
      ~title:"A3 - L0 action retries under spontaneous local aborts (p=0.3, 200 txns)"
      [ "retries"; "committed"; "aborted"; "action retries"; "compensations"; "tput" ]
  in
  List.iter
    (fun retries ->
      let r =
        Runner.run
          {
            (runner_cfg Protocol.Before_mlt) with
            n_txns = 200;
            p_spontaneous = 0.3;
            spontaneous_window = (0.5, 6.0);
            mlt_action_retries = retries;
          }
      in
      Table.add_row table
        [
          fmti retries;
          fmti r.committed;
          fmti r.aborted;
          fmti r.repetitions;
          fmti r.compensations;
          fmt r.throughput;
        ])
    [ 0; 1; 3 ];
  heading
    "A3 - Extension: retrying a failed L0 action (safe by L1 atomicity) converts \
     global aborts + compensations into cheap resubmissions"
  ^ Table.render table

(* --- A4: central-crash recovery matrix ----------------------------------------- *)

let a4 () =
  let module Recovery = Icdb_core.Central_recovery in
  let exception Central_crash in
  let table =
    Table.create
      ~title:
        "A4 - Central system crashes mid-protocol; recovery completes from the stable \
         journal (transfer of 5; atomicity = both applied or neither)"
      [ "protocol"; "crash phase"; "recovered"; "pushed"; "aborted"; "redone"; "undone"; "atomic" ]
  in
  let scenario protocol phase =
    let eng = Sim.create () in
    (* The hybrid protocol is exercised on the mixed federation it exists
       for: s0 prepare-capable, s1 not. *)
    let fed =
      if protocol = Protocol.Hybrid then
        Federation.create eng [ site_cfg ~prepare:true "s0"; site_cfg ~prepare:false "s1" ]
      else make_fed ~prepare:true eng
    in
    load fed [ ("x", 100) ];
    fed.Federation.central_fail <-
      (fun ~gid:_ p -> if p = phase then raise Central_crash);
    Icdb_sim.Fiber.spawn eng
      ~on_error:(function
        | Central_crash -> Recovery.crash fed
        | e -> raise e)
      (fun () ->
        ignore
          (match protocol with
          | Protocol.Two_phase -> Tpc.run fed (transfer_spec fed "x")
          | Protocol.Presumed_abort -> Icdb_core.Presumed_abort.run fed (transfer_spec fed "x")
          | Protocol.After -> After.run fed (transfer_spec fed "x")
          | Protocol.Before -> Before.run fed (transfer_spec fed "x")
          | Protocol.Hybrid -> Icdb_core.Commit_hybrid.run fed (transfer_spec fed "x")
          | Protocol.Before_mlt ->
            Mlt.run fed
              {
                Global.mlt_gid = Federation.fresh_gid fed;
                actions =
                  [
                    Action.deposit ~site:"s0" ~account:"x" 5;
                    Action.withdraw ~site:"s1" ~account:"x" 5;
                  ];
                abort_after = None;
              }));
    Sim.run eng;
    fed.Federation.central_fail <- (fun ~gid:_ _ -> ());
    let summary = in_sim eng (fun () -> Recovery.recover fed) in
    let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
    let atomic =
      (v0 = Some 105 && v1 = Some 95) || (v0 = Some 100 && v1 = Some 100)
    in
    Table.add_row table
      [
        Protocol.name protocol;
        phase;
        fmti summary.entries_recovered;
        fmti summary.decisions_pushed;
        fmti summary.locals_aborted;
        fmti summary.branches_redone;
        fmti summary.branches_undone;
        (if atomic then "yes" else "NO");
      ]
  in
  let sep = group_separator table in
  List.iter
    (fun protocol ->
      sep ();
      let phases =
        match protocol with
        | Protocol.Before_mlt -> [ "action-0"; "decided" ]
        | _ -> [ "executed"; "voted"; "decided" ]
      in
      List.iter (fun phase -> scenario protocol phase) phases)
    Protocol.all;
  heading
    "A4 - Extension: recovery of the central system itself (presumed abort for \
     undecided entries; decisions pushed to completion from the journal)"
  ^ Table.render table

(* --- A5: group commit --------------------------------------------------------- *)

let a5 () =
  let table =
    Table.create
      ~title:"A5 - Group commit at the local systems (commit-before, 16 workers, 300 txns)"
      [ "window"; "committed"; "log forces"; "forces/commit"; "tput"; "mean resp" ]
  in
  List.iter
    (fun window ->
      let r =
        Runner.run
          {
            (runner_cfg Protocol.Before) with
            n_txns = 300;
            concurrency = 16;
            group_commit_window = window;
          }
      in
      Table.add_row table
        [
          (match window with None -> "off" | Some w -> fmt w);
          fmti r.committed;
          fmti r.log_forces;
          fmt r.log_forces_per_commit;
          fmt r.throughput;
          fmt r.mean_response;
        ])
    [ None; Some 1.0; Some 3.0; Some 8.0 ];
  heading
    "A5 - Extension: batched log forces trade commit latency for fewer stable writes \
     (durability preserved: acknowledgement only after the force)"
  ^ Table.render table

(* --- A6: lossy wire ------------------------------------------------------------ *)

let a6 () =
  let table =
    Table.create
      ~title:
        "A6 - Message loss sweep (at-least-once delivery, receiver-side dedup; 200 txns)"
      [ "protocol"; "p(loss)"; "committed"; "msgs/commit"; "dropped"; "tput"; "money"; "serializable" ]
  in
  let sep = group_separator table in
  List.iter
    (fun loss ->
      sep ();
      List.iter
        (fun protocol ->
          let r =
            Runner.run { (runner_cfg protocol) with n_txns = 200; message_loss = loss }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              fmt loss;
              fmti r.committed;
              fmt r.messages_per_committed;
              fmti r.messages_dropped;
              fmt r.throughput;
              (if r.money_conserved then "ok" else "VIOLATED");
              (if r.serializable then "yes" else "NO");
            ])
        [ Protocol.Two_phase; Protocol.After; Protocol.Before ])
    [ 0.0; 0.05; 0.15; 0.3 ];
  heading
    "A6 - Extension: an unreliable wire - retransmission inflates message counts but \
     the database-resident markers and receiver-side dedup keep every invariant intact"
  ^ Table.render table

(* --- O1: commit-overhead batching ----------------------------------------------- *)

let o1 () =
  let table =
    Table.create
      ~title:
        "O1 - Commit overhead vs batch window (fixed-spec lab: 120 txns, 12 workers, \
         p(abort)=0.15; the window drives message piggybacking, central decision-log \
         group commit and local group commit together)"
      [
        "protocol"; "window"; "committed"; "msgs/commit"; "forces/commit";
        "central forces"; "occupancy"; "tput";
      ]
  in
  let sep = group_separator table in
  List.iter
    (fun protocol ->
      sep ();
      List.iter
        (fun window ->
          let r =
            Overhead.run
              {
                Overhead.default with
                protocol;
                msg_batch_window = window;
                central_gc_window = window;
                group_commit_window = window;
              }
          in
          Table.add_row table
            [
              Protocol.name protocol;
              (match window with None -> "off" | Some w -> fmt w);
              fmti r.committed;
              fmt r.messages_per_committed;
              fmt r.log_forces_per_commit;
              fmti r.central_log_forces;
              fmt r.batch_occupancy_mean;
              fmt r.throughput;
            ])
        [ None; Some 1.0; Some 3.0; Some 8.0 ])
    Protocol.all;
  heading
    "O1 - Extension: piggybacked decision traffic + group-committed decision log - \
     messages and stable writes per commit fall toward the §5 floor with identical \
     per-transaction outcomes (the equivalence property test); batching trades \
     commit latency for overhead, so virtual-time throughput moves little"
  ^ Table.render table

(* --- P1: phase-latency breakdown ------------------------------------------------ *)

let p1 () =
  let table =
    Table.create
      ~title:
        "P1 - Where the virtual time goes: per-phase latency from the metrics \
         registry (150 txns, 12 workers, p(abort)=0.1)"
      [ "protocol"; "phase"; "count"; "mean"; "p50"; "p95"; "max" ]
  in
  let sep = group_separator table in
  List.iter
    (fun protocol ->
      sep ();
      let r = Runner.run { (runner_cfg protocol) with p_intended_abort = 0.1 } in
      List.iter
        (fun (phase, (h : Icdb_obs.Registry.hsnap)) ->
          Table.add_row table
            [
              Protocol.name protocol;
              phase;
              fmti h.h_count;
              fmt h.h_mean;
              fmt h.h_p50;
              fmt h.h_p95;
              fmt h.h_max;
            ])
        r.phase_breakdown)
    Protocol.all;
  heading
    "P1 - Phase-latency breakdown: execution dominates everywhere; the commit \
     phases separate the protocols (vote+local-commit for 2PC/after, redo and \
     compensate tails for the optimistic pair)"
  ^ Table.render table

(* --- registry -------------------------------------------------------------- *)

let experiments =
  [
    ("f2", "2PC states and messages (Figure 2)", fig2);
    ("f3", "2PC commit points: decision mid-commit (Figure 3)", fig3);
    ("f4", "commit-after states, incl. the redo path (Figure 4)", fig4);
    ("f5", "commit-after commit points (Figure 5)", fig5);
    ("f6", "commit-before states, incl. the undo path (Figure 6)", fig6);
    ("f7", "commit-before commit points (Figure 7)", fig7);
    ("f8", "two-level vs page-level single-level concurrency (Figure 8)", fig8);
    ("v1", "lock hold times and throughput across protocols (§4.3)", v1);
    ("v2", "spontaneous-abort sweep: repetitions (§3.2)", v2);
    ("v3", "intended-abort sweep: compensations (§3.3/§4.3)", v3);
    ("v4", "additional-components ablation (§4.3)", v4);
    ("v5", "message complexity (§3)", v5);
    ("v6", "crash-window atomicity matrix (§3.2/§3.3)", v6);
    ("v7", "serializability-requirement violations (§3.2/§3.3)", v7);
    ("pa1", "extension: presumed-abort 2PC ablation [ML 83]", a1);
    ("a2", "extension: hybrid commitment on mixed-capability federations", a2);
    ("a3", "extension: MLT action-retry ablation", a3);
    ("a4", "extension: central-crash recovery matrix", a4);
    ("a5", "extension: group-commit ablation at the local systems", a5);
    ("a6", "extension: message-loss sweep over an at-least-once wire", a6);
    ("o1", "extension: commit-overhead batching vs batch window", o1);
    ("p1", "observability: per-protocol phase-latency breakdown", p1);
  ]

let all = List.map (fun (id, descr, _) -> (id, descr)) experiments

let run id =
  match List.find_opt (fun (id', _, _) -> id' = id) experiments with
  | Some (_, _, f) -> f ()
  | None -> raise Not_found

let run_all ?(jobs = 1) () =
  (* Each experiment is an independent, deterministically seeded simulation,
     so the registry can be farmed out to domains; concatenating in registry
     order keeps the report byte-identical to the sequential sweep. *)
  let tasks =
    List.map (fun (id, _, f) () -> Printf.sprintf "[%s]\n%s" id (f ())) experiments
  in
  String.concat "\n" (Icdb_util.Pool.run ~jobs tasks)
