(** Protocol selector used by the runner, the CLI and the benches. *)

type t =
  | Two_phase  (** §3.1 baseline — needs prepare-capable sites *)
  | Presumed_abort
      (** [ML 83] variant of 2PC: presumed abort + read-only optimization *)
  | After  (** §3.2 local commitment after the global decision *)
  | Before  (** §3.3 standalone commitment before the decision *)
  | Before_mlt  (** §4 commitment before, fused with multi-level txns *)
  | Hybrid
      (** extension: 2PC legs on prepare-capable sites, commitment-before
          legs elsewhere *)

val name : t -> string

(** Short observability name ("2pc", "2pc-pa", "after", "before", "mlt",
    "hybrid") — the [protocol] label on spans and phase histograms. *)
val obs_name : t -> string

(** Every protocol, paper ones first. *)
val all : t list

(** The four protocols the paper discusses (no extensions). *)
val paper : t list

(** Whether the protocol consumes flat specs ([true]) or MLT specs. *)
val is_flat : t -> bool

(** [of_string s] accepts ["2pc"], ["2pc-pa"], ["after"], ["before"],
    ["before-mlt"] (also ["before_mlt"], ["mlt"]), ["hybrid"]. *)
val of_string : string -> (t, string) result

(** Dispatch a flat spec. Raises [Invalid_argument] on [Before_mlt]. *)
val run_flat :
  t -> Icdb_core.Federation.t -> Icdb_core.Global.spec -> Icdb_core.Global.outcome
