(* S1 — million-account scaling lab.

   Where the F/V/A experiments reproduce the paper's figures at the paper's
   scale, S1 asks how far the same federation carries: each cell preloads
   accounts_per_site × sites accounts (up to ~10⁶ across 32 sites), runs a
   fixed transaction mix under every protocol and reports virtual-time
   committed-txns/sec next to the wall-clock engine events/sec the run
   sustained. Virtual-time throughput is deterministic (a pure function of
   the seed, like every other lab); the wall-clock columns are measured on
   the host and vary — they are the point of the lab, not a regression
   surface, which is why S1 lives outside [Experiments.run_all] and its
   byte-identity harness. *)

module Sim = Icdb_sim.Engine
module Table = Icdb_util.Table
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Sink = Icdb_obs.Sink
module Sampling = Icdb_obs.Sampling

type cell = { sc_sites : int; sc_accounts_per_site : int }

(* Streamed, sampled tracing for the lab: each cell writes an incremental
   Chrome trace to [ts_base]-<protocol>-<sites>x<accounts>.json, keeping
   the head-sampled fraction [ts_rate] of transactions (deterministic in
   the run seed — see {!Icdb_obs.Sampling}). The tracer stores nothing in
   memory ([set_store false]); the sink formats straight to the channel,
   which is what lets the million-account cells trace at all. *)
type trace_spec = { ts_rate : float; ts_base : string }

let cells ~smoke =
  if smoke then
    [
      { sc_sites = 2; sc_accounts_per_site = 500 };
      { sc_sites = 4; sc_accounts_per_site = 2_500 };
    ]
  else
    [
      { sc_sites = 4; sc_accounts_per_site = 2_500 };
      { sc_sites = 8; sc_accounts_per_site = 12_500 };
      { sc_sites = 16; sc_accounts_per_site = 31_250 };
      { sc_sites = 32; sc_accounts_per_site = 31_250 };
    ]

let config ?(sim_domains = 1) protocol (c : cell) =
  {
    Runner.default with
    protocol;
    n_sites = c.sc_sites;
    accounts_per_site = c.sc_accounts_per_site;
    n_txns = 150;
    concurrency = 16;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.8;
    use_increments = true;
    sim_domains;
  }

type row = {
  r_protocol : Protocol.t;
  r_sites : int;
  r_accounts : int; (* total across sites *)
  r_committed : int;
  r_throughput : float; (* committed per 1000 virtual time units *)
  r_load_wall : float; (* host seconds spent building + preloading *)
  r_wall : float; (* host seconds spent in the transaction phase *)
  r_events : int; (* engine events executed *)
  r_events_per_sec : float;
}

let run_cell ?trace ?sim_domains protocol (c : cell) =
  let registry = Registry.create () in
  let cfg = config ?sim_domains protocol c in
  (* Sink-only streaming tracer: events go straight to the per-cell file,
     nothing accumulates in memory, and the sampler keeps only a seeded
     head-sample of transactions. *)
  let stream =
    Option.map
      (fun ts ->
        let path =
          Printf.sprintf "%s-%s-%dx%d.json" ts.ts_base
            (Protocol.obs_name protocol) c.sc_sites c.sc_accounts_per_site
        in
        let oc = open_out path in
        let sink = Sink.create ~write:(output_string oc) in
        let tracer = Tracer.create ~enabled:true ~clock:(fun () -> 0.0) () in
        Tracer.set_store tracer false;
        Tracer.set_sink tracer (Some (Sink.on_event sink));
        if ts.ts_rate < 1.0 then
          Tracer.set_sampler tracer
            (Some (Sampling.kind_filter ~seed:cfg.Runner.seed ~rate:ts.ts_rate));
        (path, oc, sink, tracer))
      trace
  in
  let tracer = Option.map (fun (_, _, _, tr) -> tr) stream in
  let wall0 = Sys.time () in
  let loaded_at = ref wall0 in
  (* [on_setup] fires once the federation is built and preloaded, splitting
     the bulk load from the transaction phase the events/s column rates. *)
  let on_setup _engine _fed = loaded_at := Sys.time () in
  let report = Runner.run ~registry ?tracer ~on_setup cfg in
  let wall1 = Sys.time () in
  let trace_out =
    Option.map
      (fun (path, oc, sink, _) ->
        Sink.close sink;
        close_out oc;
        (path, Sink.event_count sink, Sink.byte_count sink))
      stream
  in
  let events = Registry.count (Registry.counter registry "icdb_sim_events_total") in
  let run_wall = wall1 -. !loaded_at in
  ( {
      r_protocol = protocol;
      r_sites = c.sc_sites;
      r_accounts = c.sc_sites * c.sc_accounts_per_site;
      r_committed = report.Runner.committed;
      r_throughput = report.Runner.throughput;
      r_load_wall = !loaded_at -. wall0;
      r_wall = run_wall;
      r_events = events;
      r_events_per_sec = (if run_wall > 0.0 then float_of_int events /. run_wall else 0.0);
    },
    trace_out )

let run_s1 ?(smoke = false) ?trace ?sim_domains () =
  let cells = cells ~smoke in
  let tracing = trace <> None in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "S1 — scaling lab: %d txns/run, accounts x sites per protocol%s"
           (config Protocol.Two_phase (List.hd cells)).Runner.n_txns
           (if smoke then " (smoke)" else ""))
      ([
         "protocol";
         "sites";
         "accounts";
         "committed";
         "txn/1000tu";
         "load s";
         "run s";
         "events";
         "events/s";
       ]
      @ (if tracing then [ "trace ev"; "trace KB" ] else []))
  in
  let trace_files = ref [] in
  List.iteri
    (fun i protocol ->
      if i > 0 then Table.add_separator table;
      List.iter
        (fun cell ->
          let r, trace_out = run_cell ?trace ?sim_domains protocol cell in
          let trace_cols =
            match trace_out with
            | None -> []
            | Some (path, ev, bytes) ->
              trace_files := path :: !trace_files;
              [ Table.fmt_int ev; Table.fmt_float ~decimals:1 (float_of_int bytes /. 1024.0) ]
          in
          Table.add_row table
            ([
               Protocol.name r.r_protocol;
               Table.fmt_int r.r_sites;
               Table.fmt_int r.r_accounts;
               Table.fmt_int r.r_committed;
               Table.fmt_float ~decimals:2 r.r_throughput;
               Table.fmt_float ~decimals:2 r.r_load_wall;
               Table.fmt_float ~decimals:2 r.r_wall;
               Table.fmt_int r.r_events;
               Table.fmt_float ~decimals:0 r.r_events_per_sec;
             ]
            @ trace_cols))
        cells)
    Protocol.all;
  let trace_note =
    match trace with
    | None -> ""
    | Some ts ->
      Printf.sprintf
        "Streaming Chrome traces (sample rate %.3f, seeded per-transaction head\n\
         sampling) written to %d file(s): %s-<protocol>-<sites>x<accounts>.json.\n\n"
        ts.ts_rate
        (List.length !trace_files)
        ts.ts_base
  in
  "Committed-transaction and engine-event rates as the federation grows from\n\
   thousands to a million preloaded accounts. The txn/1000tu column is\n\
   virtual-time throughput (deterministic, seed 42); load s (bulk preload),\n\
   run s (transaction phase) and events/s are host measurements and vary run\n\
   to run.\n\n" ^ trace_note
  ^ Table.render table
