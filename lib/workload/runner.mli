(** Experiment runner: drives a stream of global transactions through one
    protocol over a freshly built federation and reports every metric the
    evaluation tables need.

    The default workload is the banking workload the paper's VODAK setting
    suggests: each global transaction moves money between accounts spread
    over several sites using commuting increments, so the federation-wide
    {b total balance is an atomicity invariant} — any protocol bug (lost
    repetition, double undo, partial commit across a crash) shows up as
    non-conserved money. Setting [use_increments = false] switches to a
    read/write mix instead. *)

type config = {
  protocol : Protocol.t;
  seed : int64;
  n_sites : int;
  accounts_per_site : int;
  initial_balance : int;
  n_txns : int;  (** global transactions to run *)
  concurrency : int;  (** worker fibers (multiprogramming level) *)
  branches_per_txn : int;  (** distinct sites each global transaction touches *)
  ops_per_branch : int;
  zipf_theta : float;  (** account-access skew *)
  use_increments : bool;
  read_fraction : float;  (** read/write mix when [use_increments] is off *)
  p_intended_abort : float;  (** probability a transaction decides to abort *)
  p_spontaneous : float;  (** per-local-transaction autonomous kill probability *)
  spontaneous_window : float * float;  (** kill delay range after local begin *)
  crash_rate : float;  (** expected site crashes per 1000 time units *)
  crash_duration : float;
  latency : float;  (** link latency per direction *)
  op_delay : float;
  commit_delay : float;
  lock_wait_timeout : float option;  (** local lock wait bound *)
  granularity : Icdb_localdb.Engine.granularity;
  prepare_capable : bool;
      (** sites expose a ready state (2PC needs it); ignored for [Hybrid],
          which alternates capable and incapable sites by construction *)
  global_cc_enabled : bool;  (** V7 switches the additional CC module off *)
  mlt_action_retries : int;  (** L0 action retries for [Before_mlt] (A3) *)
  mixed_capabilities : bool;
      (** alternate prepare-capable / incapable sites regardless of protocol
          (A2 compares protocols on such a federation) *)
  group_commit_window : float option;  (** batched log forces (A5) *)
  checkpoint_interval : float option;  (** periodic sharp checkpoints *)
  heterogeneous_cc : bool;
      (** every third site runs an optimistic scheduler (no prepared state)
          — the paper's "aborted by an optimistic scheduler" systems *)
  message_loss : float;
      (** per-message-copy drop probability; links switch to at-least-once
          delivery with receiver-side dedup (A6) *)
  msg_batch_window : float option;
      (** per-site decision-message piggybacking window (O1); [None] or a
          non-positive value = off, reproducing pre-batching runs exactly *)
  central_gc_window : float option;
      (** group-commit window for the central decision log (O1); [None] or
          non-positive = every decision forced individually *)
  sim_domains : int;
      (** partition the simulation over this many OCaml domains: the
          central system on partition 0, sites round-robin over the rest
          ({!Icdb_sim.Parallel}). Reports, traces and metrics are
          byte-identical for every value; 1 (the default) runs today's
          sequential engine with no coupling at all *)
  shards : int;
      (** group the federation's sites into this many shards, each with its
          own coordinator site, journal, decision log and batcher
          ({!Icdb_core.Federation.create}). A transaction whose branches
          all land in one shard commits in a purely local round at its
          shard coordinator; cross-shard transactions run a top-level round
          over the participating shard coordinators. 1 (the default) is the
          unsharded federation, byte-identical to the pre-sharding runner.
          Must lie in [1..n_sites]. When sharded, the shard (not the site)
          is the unit of [sim_domains] placement *)
  cross_shard_fraction : float;
      (** probability a generated transaction deliberately spans at least
          two shards (round-robin over distinct shards); the rest sample
          all their branches inside one uniformly chosen shard. In [0,1];
          ignored when [shards <= 1] *)
  decision_force_time : float option;
      (** model the decision log as a serial device: every force occupies
          its coordinator's log head for this long, so with [shards = S]
          the federation has S+1 independent log heads instead of one —
          the contention sharding relieves. [None] (default) keeps forces
          instantaneous; ignored when [central_gc_window] is set *)
  acceptors : int;
      (** Paxos Commit group size (2F+1, odd, at most [n_sites]): every
          decision replicates to this many acceptor sites instead of
          forcing one coordinator log, and a leader crash can be failed
          over ({!Icdb_core.Paxos_commit}). 1 (the default) installs
          nothing and is byte-identical to the single-coordinator runner *)
}

val default : config

type report = {
  elapsed : float;  (** virtual time until the last worker finished *)
  started : int;
  committed : int;
  aborted : int;
  throughput : float;  (** committed globals per 1000 virtual time units *)
  mean_response : float;
  p95_response : float;
  mean_hold : float;  (** mean local lock hold time *)
  p95_hold : float;
  messages : int;
  messages_per_committed : float;
  messages_by_label : (string * int) list;
  repetitions : int;
  compensations : int;
  redo_log_writes : int;
  undo_log_writes : int;  (** the additional component's log (standalone) *)
  mlt_log_writes : int;  (** the L1 manager's inherent log *)
  global_cc_acquisitions : int;  (** additional CC module work *)
  l1_acquisitions : int;  (** inherent L1 lock work *)
  local_lock_waits : int;
  local_lock_timeouts : int;
  local_lock_deadlocks : int;
  money_before : int;
  money_after : int;
  money_conserved : bool;  (** meaningful only with [use_increments] *)
  serializable : bool;
  violations : string list;
  decision_log_entries : int;
      (** stable decision records at the central system; presumed-abort
          writes none for aborts (A1) *)
  log_forces : int;  (** log force operations across all sites *)
  log_forces_per_commit : float;
  messages_dropped : int;  (** copies the lossy wire discarded *)
  phase_breakdown : (string * Icdb_obs.Registry.hsnap) list;
      (** per-phase latency summaries for this run's protocol, in canonical
          phase order (execute, vote, decide, local-commit, redo,
          compensate); phases the protocol never entered are absent *)
  batch_envelopes : int;
      (** wire envelopes carrying batched decision traffic (0 with batching
          off) *)
  batch_occupancy_mean : float;  (** logical messages per envelope *)
  central_log_forces : int;
      (** central decision-log forces: shared group-commit forces when
          [central_gc_window] is on, one per decision otherwise. In a
          sharded run only cross-shard transactions force here *)
  shard_log_forces : int;
      (** decision-log forces summed over the shard coordinators (same
          group-commit accounting as [central_log_forces]); 0 unsharded *)
  shard_decisions : int;
      (** decisions recorded at shard coordinators — fast-path decisions
          plus cross-shard mirrors; 0 unsharded *)
  paxos_rounds : int;
      (** Paxos accept rounds driven (ballot 0 + recovery ballots); 0 with
          [acceptors = 1] *)
  paxos_acceptor_forces : int;
      (** acceptor log forces across the groups (promises + votes) *)
  paxos_failovers : int;  (** new-leader elections triggered *)
}

(** [run config] builds the federation, runs the workload to completion and
    returns the report. Deterministic in [config.seed].

    [registry] and [tracer] are passed to {!Icdb_core.Federation.create}; by
    default each run gets a fresh registry and a disabled tracer. When a
    shared [registry] is supplied, the per-run counters are reset at the
    start of the run (labelled metrics such as phase-latency histograms
    accumulate across runs by design).

    The three hooks exist for the fault-injection campaign
    ({!Icdb_fault.Campaign}):

    - [on_setup engine fed] runs once the federation is built and the
      accounts preloaded, before any worker or crash-injector fiber spawns
      — the place to arm fault plans (scheduled site crashes, loss bursts,
      a [central_fail] hook).
    - [on_txn_exn exn] is consulted when a protocol run raises inside a
      worker fiber; returning [true] swallows the exception (the worker
      issues the next transaction), [false] lets it propagate. Default:
      propagate everything.
    - [on_drain] runs as a fresh fiber after the workload settled and every
      site was restarted, with the engine drained again afterwards — the
      place for {!Icdb_core.Central_recovery.recover} and invariant probes
      that need the simulated clock. *)
val run :
  ?registry:Icdb_obs.Registry.t ->
  ?tracer:Icdb_obs.Tracer.t ->
  ?on_setup:(Icdb_sim.Engine.t -> Icdb_core.Federation.t -> unit) ->
  ?on_txn_exn:(exn -> bool) ->
  ?on_drain:(unit -> unit) ->
  config ->
  report
