module Sim = Icdb_sim.Engine
module Site = Icdb_net.Site
module Table = Icdb_util.Table
module Federation = Icdb_core.Federation
module Central_recovery = Icdb_core.Central_recovery
module Paxos = Icdb_core.Paxos_commit

(* A1 — availability lab: what Paxos Commit buys and what it costs.

   Part A prices the replication on the fault-free path with the O1
   fixed-spec machinery: the same pre-generated transactions run with a
   single-coordinator decision log ([acceptors = 1]) and with a 2F+1
   acceptor group ([acceptors = 3]); outcomes are asserted identical, so
   the msgs/commit and forces/commit deltas are pure protocol overhead.

   Part B measures the blocking window 2PC is infamous for: the same
   workload, same seed, one scripted leader crash at the "voted" instant
   of a mid-run transaction — the classic in-doubt window — plus one
   crashed acceptor site, i.e. F = 1 of 3 replicas down. With a single
   coordinator the victim stays in doubt until post-run restart recovery;
   with Paxos Commit a new leader completes it from the acceptor quorum
   after the failover delay, while the workload is still running. The
   verdict line is greppable by CI. *)

(* Raised by the scripted leader crash inside the victim's coordinator
   fiber; the runner's worker swallows it (the fiber dies, the journal
   entry stays open — exactly a coordinator crash). *)
exception Leader_crash

type blocking_result = {
  br_report : Runner.report;
  br_crash_time : float;  (** virtual instant the leader died *)
  br_close_time : float;  (** virtual instant the victim's entry closed *)
  br_resolved_mid_run : bool;
      (** victim settled before the last worker finished (no blocking) *)
}

let blocking_config ~acceptors ~n_txns ~seed =
  {
    Runner.default with
    protocol = Protocol.Two_phase;
    seed;
    n_txns;
    n_sites = 4;
    concurrency = 6;
    accounts_per_site = 12;
    initial_balance = 500;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.8;
    use_increments = true;
    lock_wait_timeout = Some 50.0;
    acceptors;
  }

(* One scripted run: crash the leader at gid [victim]'s "voted" instant
   (in-doubt window open at every participant), take acceptor site 2 down
   through the failover window (F = 1 of 3 with [acceptors = 3]; the same
   plan runs against [acceptors = 1] so the comparison is like for like),
   and record when the victim's journal entry finally closes. *)
let blocking_run ~acceptors ~n_txns ~seed =
  let cfg = blocking_config ~acceptors ~n_txns ~seed in
  let victim_k = n_txns / 6 in
  let victim = ref (-1) in
  let crash_time = ref nan in
  let close_time = ref nan in
  let resolved_mid_run = ref false in
  let drain_started = ref false in
  let fed_ref = ref None in
  let on_setup engine (fed : Federation.t) =
    fed_ref := Some fed;
    victim := fed.next_gid + victim_k + 1;
    let fired = ref false in
    fed.central_fail <-
      (fun ~gid phase ->
        if gid = !victim && phase = "voted" && not !fired then begin
          fired := true;
          crash_time := Sim.now engine;
          (* the simultaneous acceptor fault: one replica of the group is
             down across the whole failover window *)
          (match List.nth_opt fed.sites 2 with
          | Some (_, s) when Site.is_up s -> Site.crash_for s ~duration:60.0
          | _ -> ());
          (* volatile central state dies with the coordinator fiber; a new
             leader (a no-op without Paxos) takes the instance over *)
          Central_recovery.crash fed;
          fed.leader_failover ~gid;
          raise Leader_crash
        end);
    let prev = fed.journal_hook in
    fed.journal_hook <-
      (fun ev ->
        (match ev with
        | Federation.J_closed gid when gid = !victim && Float.is_nan !close_time ->
          close_time := Sim.now engine;
          (* closed before restart recovery even began = the transaction
             made progress while the workload was still live *)
          resolved_mid_run := not !drain_started
        | _ -> ());
        prev ev)
  in
  let on_txn_exn = function Leader_crash -> true | _ -> false in
  let on_drain () =
    drain_started := true;
    (* restart recovery: the single-coordinator baseline's only way to
       settle the victim — and the instant its blocking window ends *)
    match !fed_ref with
    | Some fed -> ignore (Central_recovery.recover fed)
    | None -> ()
  in
  let report = Runner.run ~on_setup ~on_txn_exn ~on_drain cfg in
  {
    br_report = report;
    br_crash_time = !crash_time;
    br_close_time = !close_time;
    br_resolved_mid_run = !resolved_mid_run;
  }

let overhead_protocols = [ Protocol.Two_phase; Protocol.After; Protocol.Before ]

let run_a1 ?(smoke = false) ?(seed = 42L) () =
  let buf = Buffer.create 2048 in
  let n_txns_a = if smoke then 60 else 120 in
  let n_txns_b = if smoke then 30 else 60 in
  (* --- part A: fault-free replication overhead ---------------------- *)
  let tbl_a =
    Table.create
      ~title:
        (Printf.sprintf
           "A1a - fault-free cost of Paxos Commit (fixed specs, %d txns, seed %Ld)"
           n_txns_a seed)
      [
        "protocol";
        "acceptors";
        "msgs/commit";
        "decision forces/commit";
        "forces/commit";
        "committed";
        "outcomes";
      ]
  in
  let outcomes_diverged = ref false in
  List.iter
    (fun protocol ->
      let run acceptors =
        Overhead.run
          { Overhead.default with protocol; seed; n_txns = n_txns_a; acceptors }
      in
      let base = run 1 in
      let paxos = run 3 in
      let identical = base.Overhead.outcomes = paxos.Overhead.outcomes in
      if not identical then outcomes_diverged := true;
      let per_commit (r : Overhead.result) n =
        if r.committed > 0 then float_of_int n /. float_of_int r.committed
        else 0.0
      in
      let row (r : Overhead.result) acceptors =
        Table.add_row tbl_a
          [
            Protocol.obs_name protocol;
            string_of_int acceptors;
            Table.fmt_float ~decimals:2 r.messages_per_committed;
            Table.fmt_float ~decimals:2
              (per_commit r (r.central_log_forces + r.paxos_acceptor_forces));
            Table.fmt_float ~decimals:2 r.log_forces_per_commit;
            string_of_int r.committed;
            (if identical then "identical" else "DIVERGED");
          ]
      in
      row base 1;
      row paxos 3)
    overhead_protocols;
  Buffer.add_string buf (Table.render tbl_a);
  (* --- part B: the in-doubt window under a leader crash -------------- *)
  let base = blocking_run ~acceptors:1 ~n_txns:n_txns_b ~seed in
  let paxos = blocking_run ~acceptors:3 ~n_txns:n_txns_b ~seed in
  let tbl_b =
    Table.create
      ~title:
        (Printf.sprintf
           "A1b - 2PC leader crash at \"voted\" + one acceptor down (F=1 of 3), %d txns"
           n_txns_b)
      [
        "config";
        "crash at";
        "resolved at";
        "in-doubt window";
        "resolved mid-run";
        "committed";
        "elapsed";
      ]
  in
  let row label (r : blocking_result) =
    Table.add_row tbl_b
      [
        label;
        Table.fmt_float ~decimals:1 r.br_crash_time;
        Table.fmt_float ~decimals:1 r.br_close_time;
        Table.fmt_float ~decimals:1 (r.br_close_time -. r.br_crash_time);
        (if r.br_resolved_mid_run then "yes" else "no (blocked until recovery)");
        string_of_int r.br_report.committed;
        Table.fmt_float ~decimals:1 r.br_report.elapsed;
      ]
  in
  row "2pc, single coordinator" base;
  row "2pc, paxos acceptors=3" paxos;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Table.render tbl_b);
  Buffer.add_char buf '\n';
  (* --- verdicts (CI greps these lines) ------------------------------- *)
  let window (r : blocking_result) = r.br_close_time -. r.br_crash_time in
  if !outcomes_diverged then
    Buffer.add_string buf "verdict: OUTCOMES DIVERGED between acceptors=1 and acceptors=3\n"
  else
    Buffer.add_string buf
      "verdict: replication changes no outcome (acceptors=1 and acceptors=3 identical)\n";
  if paxos.br_resolved_mid_run && not base.br_resolved_mid_run then
    Buffer.add_string buf
      (Printf.sprintf
         "verdict: no blocked commits under F=1 leader crash (paxos in-doubt window \
          %.1f tu; plain 2pc blocked %.1f tu, until post-run recovery)\n"
         (window paxos) (window base))
  else
    Buffer.add_string buf
      (Printf.sprintf
         "verdict: BLOCKING UNEXPECTED: paxos mid-run=%b (window %.1f tu), baseline \
          mid-run=%b (window %.1f tu)\n"
         paxos.br_resolved_mid_run (window paxos) base.br_resolved_mid_run
         (window base));
  Buffer.contents buf
