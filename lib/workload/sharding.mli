(** S2 — sharded-federation lab.

    Committed-txns/sec over shards ∈ {1,2,4,8} × cross-shard fraction ∈
    {0%,5%,20%} at 10⁶ preloaded accounts (16 sites × 62 500), with the
    decision log modelled as a serial device ([decision_force_time]) so the
    single central log head is the unsharded bottleneck each shard
    coordinator relieves. Unlike S1 every column is a deterministic
    virtual-time measurement, so the table is byte-stable across hosts;
    the smoke ladder is small enough for CI and the bench harness
    (BENCH.json's [sharding] section). *)

type row = {
  sh_shards : int;
  sh_cross : float;  (** requested cross-shard fraction *)
  sh_committed : int;
  sh_throughput : float;  (** committed per 1000 virtual time units *)
  sh_msgs_per_commit : float;
  sh_top_forces : int;
      (** central decision-log forces — 0 at 0% cross: single-shard
          transactions never touch the top level *)
  sh_shard_forces : int;  (** forces summed over the shard coordinators *)
}

(** Serial log-head occupancy per decision force (virtual time units). *)
val force_time : float

(** [run_cells ~smoke ()] runs the grid and returns its rows (cross-major,
    shards ascending). [protocol] defaults to 2PC — the sharding machinery
    is protocol-generic, the lab rates the log-head contention. *)
val run_cells : ?protocol:Protocol.t -> smoke:bool -> unit -> row list

(** [run_s2 ()] renders the lab: the table plus one monotonicity verdict
    line per cross fraction ≤ 5% (throughput strictly increasing from 1 to
    4 shards — the sharded federation's acceptance line). [smoke] (default
    false) shrinks the grid to CI scale. *)
val run_s2 : ?smoke:bool -> ?protocol:Protocol.t -> unit -> string
