type event = {
  time : float;
  seq : int; (* tie-breaker: FIFO among same-time events *)
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

(* Binary min-heap ordered by (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable now : float;
  mutable next_seq : int;
  mutable live : int; (* pending minus cancelled *)
  mutable observer : unit -> unit; (* called once per executed event *)
}

let dummy = { time = 0.0; seq = -1; thunk = (fun () -> ()); cancelled = true }

let create () =
  {
    heap = Array.make 64 dummy;
    size = 0;
    now = 0.0;
    next_seq = 0;
    live = 0;
    observer = (fun () -> ());
  }

let set_observer t f = t.observer <- f

let now t = t.now

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Keep the backing array within 4x of the live size so a burst of
   scheduling (e.g. a retry storm) does not pin memory for the rest of
   the run. 64 matches the initial capacity. *)
let maybe_shrink t =
  let cap = Array.length t.heap in
  if cap > 64 && t.size < cap / 4 then begin
    let smaller = Array.make (max 64 (cap / 2)) dummy in
    Array.blit t.heap 0 smaller 0 t.size;
    t.heap <- smaller
  end

let pop t =
  let ev = t.heap.(0) in
  (* Refill the root from the tail. Cancelled tail events are dead weight:
     drop them here instead of sifting them to the root one pop at a time.
     Sound because (time, seq) is a strict total order, so the heap shape
     never affects which live event is the minimum. *)
  let rec refill () =
    t.size <- t.size - 1;
    let last = t.heap.(t.size) in
    t.heap.(t.size) <- dummy;
    if t.size > 0 then
      if last.cancelled then refill ()
      else begin
        t.heap.(0) <- last;
        sift_down t 0
      end
  in
  refill ();
  maybe_shrink t;
  ev

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  let ev = { time = t.now +. delay; seq = t.next_seq; thunk; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  t.live <- t.live + 1;
  ev

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

(* Pops cancelled events lazily; returns the next live event if any. *)
let rec next_live t =
  if t.size = 0 then None
  else
    let ev = pop t in
    if ev.cancelled then next_live t else Some ev

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
    t.now <- ev.time;
    t.live <- t.live - 1;
    t.observer ();
    ev.thunk ();
    true

let run t =
  while step t do
    ()
  done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match next_live t with
    | None -> continue := false
    | Some ev ->
      if ev.time > horizon then begin
        (* Put it back: not yet due. *)
        push t ev;
        continue := false
      end
      else begin
        t.now <- ev.time;
        t.live <- t.live - 1;
        t.observer ();
        ev.thunk ()
      end
  done;
  if t.now < horizon then t.now <- horizon

let pending t = t.live
