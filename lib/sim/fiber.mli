(** Lightweight cooperative processes over the event engine.

    Fibers are implemented with OCaml 5 effect handlers: transaction logic is
    written as ordinary sequential code, and blocking points (message waits,
    lock waits, virtual sleeps) suspend the fiber and hand control back to
    the {!Engine}. A suspended fiber is resumed at most once; late resumers
    (e.g. a lock grant racing a timeout) are ignored, which keeps wakeup
    races deterministic and safe. *)

(** [resumer] completes a suspended fiber: [Ok v] resumes it with [v],
    [Error e] raises [e] at the suspension point. Calling a resumer more
    than once is a no-op after the first call. *)
type 'a resumer = ('a, exn) result -> unit

(** [spawn engine f] starts [f] as a fiber at the current virtual time.
    If [f] raises, [on_error] is invoked (default: the exception escapes
    the engine's event loop). *)
val spawn : ?on_error:(exn -> unit) -> Engine.t -> (unit -> unit) -> unit

(** [await register] suspends the calling fiber; [register] is called
    immediately with the fiber's resumer and is expected to stash it
    somewhere (a wait queue, a pending-reply table, a timer). Must be called
    from fiber context. *)
val await : (('a resumer) -> unit) -> 'a

(** [sleep engine d] suspends the calling fiber for [d] units of virtual
    time. *)
val sleep : Engine.t -> float -> unit

(** [yield engine] reschedules the calling fiber at the current time, letting
    other ready fibers and events run first. *)
val yield : Engine.t -> unit

(** Raised at a suspension point by {!await} users implementing timeouts. *)
exception Timed_out

(** [all engine thunks] runs every thunk as its own fiber and waits for all
    of them, returning results in input order. Must be called from a fiber.
    If a thunk raises, [all] re-raises the first (by input order) exception
    after every other thunk has finished. *)
val all : Engine.t -> (unit -> 'a) list -> 'a list

(** [all_on pairs] is {!all} with per-thunk placement: each thunk runs as a
    fiber spawned on its paired engine, so in a partitioned simulation its
    body executes on the domain owning that engine (a fiber always resumes
    on its spawn engine). With every pair naming the same engine this is
    exactly [all]. *)
val all_on : (Engine.t * (unit -> 'a)) list -> 'a list

(** Write-once synchronisation cell. *)
module Ivar : sig
  type 'a t

  val create : Engine.t -> 'a t

  (** [fill t v] wakes all readers with [v]. Raises [Invalid_argument] if
      already filled. *)
  val fill : 'a t -> 'a -> unit

  (** [read t] returns the value, suspending until {!fill} if necessary. *)
  val read : 'a t -> 'a

  val is_filled : 'a t -> bool

  (** [peek t] is [Some v] once filled. *)
  val peek : 'a t -> 'a option
end

(** Unbounded FIFO channel between fibers. *)
module Mailbox : sig
  type 'a t

  val create : Engine.t -> 'a t

  (** [send t v] enqueues [v]; if fibers are blocked in {!recv}, the oldest
      is woken with [v]. Never blocks. *)
  val send : 'a t -> 'a -> unit

  (** [recv t] dequeues the next value, suspending while empty. *)
  val recv : 'a t -> 'a

  (** [recv_timeout t d] is [Some v], or [None] if [d] virtual time passes
      with no message. *)
  val recv_timeout : 'a t -> float -> 'a option

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end
