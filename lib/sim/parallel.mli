(** Conservative parallel discrete-event scheduler: N coupled {!Engine}s,
    one domain each, executing in the exact global (time, seq) order.

    Partitions advance in {e windows}: the partition holding the global
    minimum runs its own events while they stay strictly below every other
    partition's horizon (shrunk live when an event schedules across the
    partition boundary), then hands the baton to the new minimum. Execution
    is serialized through one mutex, so a run is deterministic and
    byte-identical to a single-engine run of the same workload — for any
    domain count. With [domains = 1] the single engine is not even coupled:
    that path is bit-for-bit today's sequential scheduler. *)

type t

type stats = {
  s_windows : int array;  (** windows executed, per partition *)
  s_handoffs : int;  (** baton transfers between distinct partitions *)
  s_events : int array;  (** events executed, per partition *)
}

(** [create ~domains ()] builds [max 1 domains] engines; with two or more
    they are coupled to a shared clock and sequence. [threshold] is passed
    through to {!Engine.create}. *)
val create : ?threshold:int -> domains:int -> unit -> t

(** The partition engines, index = partition id. Schedule setup events on
    any of them before {!run}; an event executes on the domain that owns
    the engine holding it. *)
val engines : t -> Engine.t array

(** Number of partitions. *)
val size : t -> int

(** [set_domain_start t f] installs a callback run on every {e spawned}
    partition domain (not the caller's) at the start of each {!run},
    before any event executes there — the place to register the domain
    with debug ownership checks such as [Symbol.allow]. Default: no-op. *)
val set_domain_start : t -> (unit -> unit) -> unit

(** [run t] drains every partition to empty — the multi-engine
    {!Engine.run}. Spawns [size t - 1] domains for the duration of the
    call (partition 0 runs on the caller). The first exception escaping an
    event callback stops all partitions and is re-raised here. Callable
    repeatedly: events scheduled between runs are picked up by the next. *)
val run : t -> unit

(** Window/handoff counters since [create]; events per partition. *)
val stats : t -> stats

(** Live events summed over all partitions. *)
val pending : t -> int

(** Physically retained events (cancelled included) over all partitions. *)
val stored : t -> int
