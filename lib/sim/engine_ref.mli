(** Reference binary-heap event queue.

    A verbatim copy of the pre-calendar {!Engine} implementation, kept as an
    executable specification: the QCheck2 equivalence property drives this
    and the calendar queue through identical push/pop/cancel/clock-advance
    interleavings and demands identical pop order, and the bench scheduler
    kernel measures both so BENCH.json records the heap baseline the
    calendar is compared against. Not used by the simulation itself. *)

type t
type event_id

val create : unit -> t
val now : t -> float
val schedule : t -> delay:float -> (unit -> unit) -> event_id
val cancel : t -> event_id -> unit
val step : t -> bool
val run : t -> unit
val run_until : t -> float -> unit
val pending : t -> int
val set_observer : t -> (unit -> unit) -> unit
