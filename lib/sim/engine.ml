(* Event timestamps are non-negative floats ([now + delay], both >= 0), so
   they are kept bit-encoded as immediate ints: for non-negative IEEE
   doubles the raw bit pattern is monotone in the value, and shifting it
   down by 2^62 lands it exactly in OCaml's 63-bit int range. The encoding
   is an order-preserving bijection, so comparisons on keys equal
   comparisons on times — and the event record stays pointer-free apart
   from the thunk, instead of dragging a boxed float behind every record.
   At 10^6+ pending events that box is a second cold cache line per
   comparison; removing it is most of the calendar's speed at scale. *)
let bias = 0x4000000000000000L
let encode tm = Int64.to_int (Int64.sub (Int64.bits_of_float tm) bias)
let decode k = Int64.float_of_bits (Int64.add (Int64.of_int k) bias)

type event = {
  key : int; (* order-preserving bit encoding of the fire time *)
  seq : int; (* tie-breaker: FIFO among same-time events *)
  thunk : unit -> unit;
  mutable cancelled : bool;
  (* intrusive chain for calendar buckets and the overflow list: a day
     bucket is just a head pointer, so inserting far-future events touches
     one cold cache line (the head slot) instead of a bucket record plus a
     growable array. [dummy] is the nil sentinel; events in the heap keep
     [next = dummy] so dead events are never pinned through stale links. *)
  mutable next : event;
}

type event_id = event

(* Hybrid calendar queue.

   Two regimes share one API:

   - Below [threshold] pending events the engine is exactly the binary
     min-heap it has always been: every event lives in [heap], ordered by
     the strict ([time], [seq]) total order, and [frontier] is [infinity].
     This is the exact fallback — seed-scale runs never leave it.

   - Past [threshold] the far future moves out of the heap into a calendar:
     an array of day [buckets] of equal [width], auto-tuned at each rebuild
     from the observed mean inter-event gap so a bucket holds a handful of
     events. The heap then only holds events with [time < frontier] (the
     start of the first undrained day); buckets are unsorted and are sorted
     lazily — when the heap runs dry the next non-empty bucket is dumped
     into it (dropping cancelled events), and [frontier] advances one day.
     Events beyond the calendar's end land in [overflow] and are
     redistributed into a fresh calendar (again dropping cancelled events)
     once the buckets are spent.

   Pop order is fully determined by the ([time], [seq]) total order, so the
   two regimes — and any switching between them — produce identical
   schedules; only the constant factors differ. The routing invariants that
   keep this exact under floating point are:

   - every heap event satisfies [time < frontier] (float compare),
   - every event in bucket [b] satisfies [day_start b <= time] (same
     expression as [frontier]), and
   - [frontier = day_start cur] with [cur] the first undrained bucket,

   so no bucket can hold an event that should pop before something in the
   heap. Bucket indices are settled by direct comparison against
   [day_start], not trusted from float division. *)

(* Shared state of a coupled engine group (see {!attach}): one sequence
   counter and one clock for every engine in the group, so the global
   (time, seq) order of a partitioned run is the same strict total order a
   single engine would have produced. [current] is the partition whose
   events are being executed right now (-1 outside a parallel run);
   [on_cross] fires when an event is scheduled onto a partition other than
   the current one — the parallel scheduler uses it to shrink the running
   window's bound. Only one domain executes events at any moment (the
   scheduler serializes execution through a mutex handoff), so plain
   mutable fields are race-free. *)
type couple = {
  mutable gseq : int;
  mutable gnow : float;
  mutable current : int;
  mutable on_cross : int -> int -> int -> unit; (* owner, key, seq *)
}

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable now : float;
  mutable next_seq : int;
  mutable owner : int; (* partition id within a couple; 0 when alone *)
  mutable couple : couple option;
  mutable live : int; (* pending minus cancelled *)
  mutable executed : int;
  mutable observer : unit -> unit; (* called once per executed event *)
  threshold : int;
  (* calendar state; meaningful only when [cal_on] *)
  mutable cal_on : bool;
  mutable cal_ok : bool; (* false after a non-finite timestamp poisons tuning *)
  mutable frontier : int; (* heap holds key < frontier; encoded infinity when off *)
  mutable buckets : event array; (* chain heads; [dummy] = empty day *)
  mutable width : float;
  mutable cal_start : float;
  mutable cur : int; (* first undrained bucket *)
  mutable cal_count : int; (* events stored in buckets (incl. cancelled) *)
  mutable overflow : event; (* chain of events past the calendar end *)
  mutable ov_count : int;
  mutable resize_hook : buckets:int -> width:float -> events:int -> unit;
}

let rec dummy =
  { key = encode 0.0; seq = -1; thunk = (fun () -> ()); cancelled = true; next = dummy }

let create ?(threshold = 16384) () =
  {
    heap = Array.make 64 dummy;
    size = 0;
    now = 0.0;
    next_seq = 0;
    owner = 0;
    couple = None;
    live = 0;
    executed = 0;
    observer = (fun () -> ());
    threshold = max 64 threshold;
    cal_on = false;
    cal_ok = true;
    frontier = encode infinity;
    buckets = [||];
    width = 1.0;
    cal_start = 0.0;
    cur = 0;
    cal_count = 0;
    overflow = dummy;
    ov_count = 0;
    resize_hook = (fun ~buckets:_ ~width:_ ~events:_ -> ());
  }

let set_observer t f = t.observer <- f
let set_resize_hook t f = t.resize_hook <- f
let now t = match t.couple with Some c -> c.gnow | None -> t.now

let couple_create () =
  { gseq = 0; gnow = 0.0; current = -1; on_cross = (fun _ _ _ -> ()) }

let attach t c ~owner =
  if t.next_seq > 0 || t.executed > 0 || t.live > 0 then
    invalid_arg "Engine.attach: engine already in use";
  t.owner <- owner;
  t.couple <- Some c

let set_current c i = c.current <- i
let set_on_cross c f = c.on_cross <- f
let pending t = t.live
let executed t = t.executed
let stored t = t.size + t.cal_count + t.ov_count
let calendar_active t = t.cal_on

let earlier a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let heap_push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Keep the backing array within 4x of the live size so a burst of
   scheduling (e.g. a retry storm) does not pin memory for the rest of
   the run. 64 matches the initial capacity. *)
let maybe_shrink t =
  let cap = Array.length t.heap in
  if cap > 64 && t.size < cap / 4 then begin
    let smaller = Array.make (max 64 (cap / 2)) dummy in
    Array.blit t.heap 0 smaller 0 t.size;
    t.heap <- smaller
  end

let pop t =
  let ev = t.heap.(0) in
  (* Refill the root from the tail. Cancelled tail events are dead weight:
     drop them here instead of sifting them to the root one pop at a time.
     Sound because (time, seq) is a strict total order, so the heap shape
     never affects which live event is the minimum. *)
  let rec refill () =
    t.size <- t.size - 1;
    let last = t.heap.(t.size) in
    t.heap.(t.size) <- dummy;
    if t.size > 0 then
      if last.cancelled then refill ()
      else begin
        t.heap.(0) <- last;
        sift_down t 0
      end
  in
  refill ();
  maybe_shrink t;
  ev

(* -- calendar ----------------------------------------------------------- *)

let day_start t i = t.cal_start +. (float_of_int i *. t.width)

(* Precondition: calendar on and not (ev.key < t.frontier). *)
let calendar_insert t ev =
  let nb = Array.length t.buckets in
  let tm = decode ev.key in
  if not (tm < day_start t nb) then begin
    ev.next <- t.overflow;
    t.overflow <- ev;
    t.ov_count <- t.ov_count + 1
  end
  else begin
    (* Start from the float-division estimate, then settle onto the day
       whose [day_start] brackets the time under the same comparisons the
       drain path uses — a raw truncation can be off by one at a day
       boundary, which would break the heap/bucket ordering invariant. *)
    let raw = int_of_float ((tm -. t.cal_start) /. t.width) in
    let idx = ref (if raw < t.cur then t.cur else if raw >= nb then nb - 1 else raw) in
    while !idx > t.cur && tm < day_start t !idx do
      decr idx
    done;
    while !idx < nb - 1 && not (tm < day_start t (!idx + 1)) do
      incr idx
    done;
    ev.next <- t.buckets.(!idx);
    t.buckets.(!idx) <- ev;
    t.cal_count <- t.cal_count + 1
  end

(* Rebuild the calendar from the overflow staging bucket: drop cancelled
   events, re-tune the day width from the observed mean inter-event gap
   (about 8 live events per day) and redistribute. Degenerate inputs —
   non-finite timestamps, or a magnitude so large the width is absorbed by
   rounding — fall back to the plain heap. *)
let rebuild t =
  (* filter the overflow chain — drop cancelled events, track the key
     extrema (min/max over keys equals min/max over times: the encoding is
     monotone) *)
  let live = ref dummy and m = ref 0 in
  let mnk = ref max_int and mxk = ref min_int in
  let p = ref t.overflow in
  t.overflow <- dummy;
  t.ov_count <- 0;
  while !p != dummy do
    let ev = !p in
    p := ev.next;
    if ev.cancelled then ev.next <- dummy
    else begin
      ev.next <- !live;
      live := ev;
      incr m;
      if ev.key < !mnk then mnk := ev.key;
      if ev.key > !mxk then mxk := ev.key
    end
  done;
  let m = !m in
  if m > 0 then begin
    let mn = decode !mnk and mx = decode !mxk in
    let gap = (mx -. mn) /. float_of_int (max 1 (m - 1)) in
    let width = ref (if gap > 0.0 then 8.0 *. gap else 1.0) in
    if (not (Float.is_finite mn && Float.is_finite mx)) || not (mn +. !width > mn)
    then begin
      (* heap fallback; [cal_ok <- false] stops activation from thrashing *)
      let p = ref !live in
      while !p != dummy do
        let ev = !p in
        p := ev.next;
        ev.next <- dummy;
        heap_push t ev
      done;
      t.cal_on <- false;
      t.cal_ok <- false;
      t.frontier <- encode infinity
    end
    else begin
      let nb = max 16 ((m + 7) / 8) in
      while not (mx < mn +. (float_of_int nb *. !width)) do
        width := !width *. 2.0
      done;
      t.buckets <- Array.make nb dummy;
      t.width <- !width;
      t.cal_start <- mn;
      t.cur <- 0;
      t.cal_count <- 0;
      t.frontier <- encode (day_start t 0);
      let p = ref !live in
      while !p != dummy do
        let ev = !p in
        p := ev.next;
        calendar_insert t ev
      done;
      t.resize_hook ~buckets:nb ~width:!width ~events:m
    end
  end

(* Refill the heap from the calendar: skip empty days, dump the next
   non-empty bucket (this is where a bucket gets sorted — by pushing its
   live events into the near heap), advance the frontier one day. When the
   buckets are spent, rebuild from overflow; when that is empty too, the
   calendar shuts off and the engine is a plain heap again. Only called
   with an empty heap. *)
let rec advance t =
  if t.cal_count > 0 then begin
    while t.buckets.(t.cur) == dummy do
      t.cur <- t.cur + 1
    done;
    let p = ref t.buckets.(t.cur) in
    t.buckets.(t.cur) <- dummy;
    while !p != dummy do
      let ev = !p in
      p := ev.next;
      ev.next <- dummy;
      t.cal_count <- t.cal_count - 1;
      if not ev.cancelled then heap_push t ev
    done;
    t.cur <- t.cur + 1;
    t.frontier <- encode (day_start t (min t.cur (Array.length t.buckets)));
    if t.size = 0 then advance t (* the whole bucket was cancelled *)
  end
  else if t.ov_count > 0 then begin
    rebuild t;
    if t.size = 0 && t.cal_on then advance t
  end
  else begin
    t.cal_on <- false;
    t.frontier <- encode infinity
  end

(* Move everything onto the overflow staging chain (dropping cancelled
   events) and build the first calendar from it. *)
let activate t =
  let head = ref dummy and m = ref 0 in
  for i = 0 to t.size - 1 do
    let ev = t.heap.(i) in
    t.heap.(i) <- dummy;
    if not ev.cancelled then begin
      ev.next <- !head;
      head := ev;
      incr m
    end
  done;
  t.heap <- Array.make 64 dummy;
  t.size <- 0;
  t.overflow <- !head;
  t.ov_count <- !m;
  t.cal_on <- true;
  rebuild t

let insert t ev =
  if (not t.cal_on) || ev.key < t.frontier then begin
    heap_push t ev;
    if (not t.cal_on) && t.cal_ok && t.size >= t.threshold then activate t
  end
  else calendar_insert t ev

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  match t.couple with
  | None ->
    let ev =
      {
        key = encode (t.now +. delay);
        seq = t.next_seq;
        thunk;
        cancelled = false;
        next = dummy;
      }
    in
    t.next_seq <- t.next_seq + 1;
    insert t ev;
    t.live <- t.live + 1;
    ev
  | Some c ->
    (* Coupled: the timestamp comes from the shared clock and the
       tie-breaker from the shared sequence counter, so the (time, seq)
       pair is exactly what a single engine would have assigned to this
       same call. *)
    let ev =
      {
        key = encode (c.gnow +. delay);
        seq = c.gseq;
        thunk;
        cancelled = false;
        next = dummy;
      }
    in
    c.gseq <- c.gseq + 1;
    insert t ev;
    t.live <- t.live + 1;
    if t.owner <> c.current then c.on_cross t.owner ev.key ev.seq;
    ev

(* Unlink cancelled events from a chain; returns the new head and the
   count of survivors. Reverses the chain — bucket chains are unsorted, so
   order within one is irrelevant. *)
let compact_chain head =
  let h = ref dummy and n = ref 0 in
  let p = ref head in
  while !p != dummy do
    let ev = !p in
    p := ev.next;
    if ev.cancelled then ev.next <- dummy
    else begin
      ev.next <- !h;
      h := ev;
      incr n
    end
  done;
  (!h, !n)

(* Sweep cancelled events out of every store. O(stored), amortized by the
   [stored > 2 * live + 64] trigger in [cancel]: at least half of what we
   scan is garbage. Pop order is unaffected — (time, seq) is a strict
   total order, so dropping dead events never changes which live event is
   the minimum. *)
let compact t =
  let m = ref 0 in
  for i = 0 to t.size - 1 do
    let ev = t.heap.(i) in
    if not ev.cancelled then begin
      t.heap.(!m) <- ev;
      incr m
    end
  done;
  for i = !m to t.size - 1 do
    t.heap.(i) <- dummy
  done;
  t.size <- !m;
  (* Floyd heapify: the surviving prefix is not heap-ordered anymore *)
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  maybe_shrink t;
  if t.cal_on then begin
    let cnt = ref 0 in
    for i = t.cur to Array.length t.buckets - 1 do
      let h, n = compact_chain t.buckets.(i) in
      t.buckets.(i) <- h;
      cnt := !cnt + n
    done;
    t.cal_count <- !cnt;
    let h, n = compact_chain t.overflow in
    t.overflow <- h;
    t.ov_count <- n
  end

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1;
    if stored t > (2 * t.live) + 64 then compact t
  end

(* Pops cancelled events lazily; returns the next live event if any. *)
let rec next_live t =
  if t.size = 0 && t.cal_on then advance t;
  if t.size = 0 then None
  else
    let ev = pop t in
    if ev.cancelled then next_live t else Some ev

(* Non-destructive peek at the next live event's (key, seq): pops cancelled
   events and advances the calendar as needed, but leaves the live minimum
   in place — any later [insert] still lands correctly. The parallel
   scheduler compares these pairs across partitions to bound windows. *)
let rec head t =
  if t.size = 0 && t.cal_on then advance t;
  if t.size = 0 then None
  else begin
    let ev = t.heap.(0) in
    if ev.cancelled then begin
      ignore (pop t);
      head t
    end
    else Some (ev.key, ev.seq)
  end

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
    let tm = decode ev.key in
    t.now <- tm;
    (match t.couple with Some c -> c.gnow <- tm | None -> ());
    t.live <- t.live - 1;
    t.executed <- t.executed + 1;
    t.observer ();
    ev.thunk ();
    true

let run t =
  while step t do
    ()
  done

let run_until t horizon =
  (* A coupled engine has no private clock to advance; draining a coupled
     group is the parallel scheduler's job. *)
  if t.couple <> None then invalid_arg "Engine.run_until: engine is coupled";
  let continue = ref true in
  while !continue do
    match next_live t with
    | None -> continue := false
    | Some ev ->
      let tm = decode ev.key in
      if tm > horizon then begin
        (* Put it back: not yet due. It came out of the heap, so its time
           is below the frontier and it goes straight back in. *)
        heap_push t ev;
        continue := false
      end
      else begin
        t.now <- tm;
        t.live <- t.live - 1;
        t.executed <- t.executed + 1;
        t.observer ();
        ev.thunk ()
      end
  done;
  if t.now < horizon then t.now <- horizon
