(* Conservative multi-domain scheduler over coupled engines.

   The federation is partitioned: each partition owns one {!Engine} and one
   domain, and every event executes on the domain that owns its engine. The
   synchronization protocol is conservative (Chandy–Misra–Bryant in spirit)
   and *sequenced*: the engines share one clock and one tie-breaker
   sequence (an {!Engine.couple}), so the global execution order is the
   exact strict (time, seq) total order a single engine would produce —
   byte-identical reports, traces and metrics for any partition count.

   One partition holds the baton at a time. The holder runs a *window* of
   its own events while its head stays strictly below the bound — the
   minimum (key, seq) head over every other partition, shrunk on the fly
   whenever one of its events schedules something onto another partition
   (the [on_cross] hook). When the window closes, the baton moves to the
   partition holding the new global minimum. Execution is therefore
   serialized: parked domains touch nothing, and every handoff goes
   through one mutex, which gives the inter-domain happens-before edges
   that make the shared federation state (databases, journal, metrics,
   symbol tables) race-free without any sharding.

   Why sequenced instead of lookahead-concurrent: the fiber layer resumes
   every suspension by scheduling a delay-0 event on the fiber's spawn
   engine, so a cross-partition RPC implies a same-instant cross-partition
   event — the provable lookahead of the inline-RPC fabric is zero, and a
   window bounded by [min(neighbor horizons) + lookahead] degenerates to
   exactly this protocol. The cross-partition link latency (the classical
   lookahead, see {!lookahead}) is still derived and reported, and the
   window bound exploits it automatically whenever partitions genuinely
   are that far apart; it is just not load-bearing for safety. The
   multicore win at scale comes from partition-parallel phases with no
   cross-traffic (e.g. bulk preload) and from window runs between
   cross-partition interactions. *)

type t = {
  engines : Engine.t array;
  couple : Engine.couple option; (* [None] iff single partition *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : int; (* baton holder; -1 outside [run] *)
  mutable running : bool;
  mutable failure : exn option; (* first escaping event exception *)
  (* Bound of the window being run, as a (key, seq) pair. Written by the
     baton holder (directly and through [on_cross]); nobody else runs. *)
  mutable bound_key : int;
  mutable bound_seq : int;
  windows : int array; (* windows executed, per partition *)
  mutable handoffs : int;
  mutable domain_start : unit -> unit;
      (* run on every spawned partition domain before its first window:
         the place to register the domain with debug ownership checks
         (e.g. [Symbol.allow]) *)
}

type stats = { s_windows : int array; s_handoffs : int; s_events : int array }

let create ?threshold ~domains () =
  let n = max 1 domains in
  let engines = Array.init n (fun _ -> Engine.create ?threshold ()) in
  let couple =
    if n = 1 then None
    else begin
      let c = Engine.couple_create () in
      Array.iteri (fun i e -> Engine.attach e c ~owner:i) engines;
      Some c
    end
  in
  let t =
    {
      engines;
      couple;
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = -1;
      running = false;
      failure = None;
      bound_key = max_int;
      bound_seq = max_int;
      windows = Array.make n 0;
      handoffs = 0;
      domain_start = ignore;
    }
  in
  (match couple with
  | None -> ()
  | Some c ->
    Engine.set_on_cross c (fun owner key seq ->
        (* Setup code between runs has no baton holder (current = -1):
           events just queue up for the next [run]. *)
        if
          t.current >= 0 && owner <> t.current
          && (key < t.bound_key || (key = t.bound_key && seq < t.bound_seq))
        then begin
          t.bound_key <- key;
          t.bound_seq <- seq
        end));
  t

let engines t = t.engines
let size t = Array.length t.engines
let set_domain_start t f = t.domain_start <- f
let stats t =
  {
    s_windows = Array.copy t.windows;
    s_handoffs = t.handoffs;
    s_events = Array.map Engine.executed t.engines;
  }

let lt k1 s1 k2 s2 = k1 < k2 || (k1 = k2 && s1 < s2)

(* Global minimum head across all partitions; -1 when fully drained.
   Caller either holds the mutex or is alone (peeking a parked partition's
   engine pops its cancelled events, which is why the mutex matters). *)
let argmin_head t =
  let best = ref (-1) and bk = ref max_int and bs = ref max_int in
  Array.iteri
    (fun q e ->
      match Engine.head e with
      | Some (k, s) ->
        if !best < 0 || lt k s !bk !bs then begin
          best := q;
          bk := k;
          bs := s
        end
      | None -> ())
    t.engines;
  !best

(* Run one window for partition [p]. Called with the mutex held; returns
   with it held. Decides the next baton holder (or ends the run). *)
let window t p =
  let eng = t.engines.(p) in
  let bk = ref max_int and bs = ref max_int in
  Array.iteri
    (fun q e ->
      if q <> p then
        match Engine.head e with
        | Some (k, s) ->
          if lt k s !bk !bs then begin
            bk := k;
            bs := s
          end
        | None -> ())
    t.engines;
  t.bound_key <- !bk;
  t.bound_seq <- !bs;
  Mutex.unlock t.mutex;
  let outcome =
    try
      let continue_ = ref true in
      while !continue_ do
        match Engine.head eng with
        | Some (k, s) when lt k s t.bound_key t.bound_seq ->
          ignore (Engine.step eng)
        | _ -> continue_ := false
      done;
      None
    with e -> Some e
  in
  Mutex.lock t.mutex;
  t.windows.(p) <- t.windows.(p) + 1;
  match outcome with
  | Some e ->
    if t.failure = None then t.failure <- Some e;
    t.running <- false
  | None -> (
    match argmin_head t with
    | -1 -> t.running <- false
    | q ->
      (* q <> p whenever p still has events: p's window only closes once
         its head is past another partition's, and (key, seq) pairs are
         unique. *)
      if q <> t.current then t.handoffs <- t.handoffs + 1;
      t.current <- q;
      match t.couple with
      | Some c -> Engine.set_current c q
      | None -> ())

let worker t p =
  Mutex.lock t.mutex;
  while t.running do
    if t.current = p then begin
      window t p;
      Condition.broadcast t.cond
    end
    else Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex

(* Drain every partition to empty, in the global (time, seq) order. Like
   {!Engine.run} this propagates the first exception that escapes an event
   callback — after all domains have parked. *)
let run t =
  match t.couple with
  | None -> Engine.run t.engines.(0)
  | Some c -> (
    t.failure <- None;
    match argmin_head t with
    | -1 -> ()
    | q0 ->
      t.running <- true;
      t.current <- q0;
      Engine.set_current c q0;
      let others =
        Array.init
          (Array.length t.engines - 1)
          (fun i ->
            Domain.spawn (fun () ->
                t.domain_start ();
                worker t (i + 1)))
      in
      worker t 0;
      Array.iter Domain.join others;
      t.current <- -1;
      Engine.set_current c (-1);
      (match t.failure with Some e -> raise e | None -> ()))

(* Total live events over all partitions (the multi-engine analogue of
   [Engine.pending]); same for the physically retained count. *)
let pending t = Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines
let stored t = Array.fold_left (fun acc e -> acc + Engine.stored e) 0 t.engines
