(** Deterministic discrete-event simulation core.

    The engine owns a virtual clock and a priority queue of events. Events
    scheduled for the same instant fire in scheduling order (FIFO), which —
    together with the explicit {!Icdb_util.Rng} streams — makes every run of
    the federation bit-for-bit reproducible.

    Time is a dimensionless [float]; the experiments interpret one unit as
    "one millisecond" but nothing depends on that. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type event_id

(** A fresh engine at time [0.]. *)
val create : unit -> t

(** Current virtual time. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at time [now t +. delay]. [delay] must be
    non-negative; [Invalid_argument] otherwise. Returns a cancellation
    handle. *)
val schedule : t -> delay:float -> (unit -> unit) -> event_id

(** [cancel t id] prevents a pending event from firing. Cancelling an event
    that already fired (or was cancelled) is a no-op. *)
val cancel : t -> event_id -> unit

(** [step t] fires the single earliest pending event; [false] if none. *)
val step : t -> bool

(** [run t] fires events until the queue is empty. Exceptions escaping an
    event callback abort the run and propagate. *)
val run : t -> unit

(** [run_until t horizon] fires events with time [<= horizon], then advances
    the clock to [horizon]. Later events stay queued. *)
val run_until : t -> float -> unit

(** Number of pending (non-cancelled) events. *)
val pending : t -> int

(** [set_observer t f] installs a hook called once per executed event, just
    before its callback runs (the clock already shows the event's time).
    The observability layer counts scheduler activity through it. Default:
    no-op; installing replaces the previous hook. *)
val set_observer : t -> (unit -> unit) -> unit
