(** Deterministic discrete-event simulation core.

    The engine owns a virtual clock and a priority queue of events. Events
    scheduled for the same instant fire in scheduling order (FIFO), which —
    together with the explicit {!Icdb_util.Rng} streams — makes every run of
    the federation bit-for-bit reproducible.

    The queue is a hybrid calendar queue: below an activation threshold it
    is a plain binary min-heap (the exact fallback — seed-scale runs never
    leave it); past the threshold the far future spills into day-width
    buckets auto-tuned from the observed inter-event gap, keeping
    enqueue/dequeue O(1) amortized at millions of pending events. Both
    regimes pop in the same strict ([time], [seq]) total order, so the
    switch is invisible to the simulation — see {!Engine_ref} for the
    reference heap the equivalence tests compare against.

    Time is a dimensionless [float]; the experiments interpret one unit as
    "one millisecond" but nothing depends on that. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type event_id

(** A fresh engine at time [0.]. [threshold] (default 16384, clamped to at
    least 64) is the pending-event count at which the calendar activates;
    tests use a small value to exercise the calendar paths at toy scale. *)
val create : ?threshold:int -> unit -> t

(** Current virtual time. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at time [now t +. delay]. [delay] must be
    non-negative; [Invalid_argument] otherwise. Returns a cancellation
    handle. *)
val schedule : t -> delay:float -> (unit -> unit) -> event_id

(** [cancel t id] prevents a pending event from firing. Cancelling an event
    that already fired (or was cancelled) is a no-op. Cancelled events are
    compacted out of the queue once they outnumber live ones. *)
val cancel : t -> event_id -> unit

(** [step t] fires the single earliest pending event; [false] if none. *)
val step : t -> bool

(** [run t] fires events until the queue is empty. Exceptions escaping an
    event callback abort the run and propagate. *)
val run : t -> unit

(** [run_until t horizon] fires events with time [<= horizon], then advances
    the clock to [horizon]. Later events stay queued. *)
val run_until : t -> float -> unit

(** Number of pending (non-cancelled) events. *)
val pending : t -> int

(** Number of events physically retained, cancelled ones included. Always
    [>= pending]; the fault campaign asserts both reach zero after a
    drain. *)
val stored : t -> int

(** Events executed since creation. *)
val executed : t -> int

(** Whether the calendar regime is currently active (diagnostics/tests). *)
val calendar_active : t -> bool

(** [set_observer t f] installs a hook called once per executed event, just
    before its callback runs (the clock already shows the event's time).
    The observability layer counts scheduler activity through it. Default:
    no-op; installing replaces the previous hook. *)
val set_observer : t -> (unit -> unit) -> unit

(** [set_resize_hook t f] installs a hook called on every calendar rebuild
    with the new bucket count, day width and the number of live events
    redistributed. Never called while the engine stays below the activation
    threshold. Default: no-op; installing replaces the previous hook. *)
val set_resize_hook : t -> (buckets:int -> width:float -> events:int -> unit) -> unit

(** {2 Coupled engines (conservative parallel simulation)}

    A {!couple} binds several engines into one logical simulation: all of
    them draw timestamps from a shared clock and tie-breaker sequence, so
    the union of their queues pops in the exact strict (time, seq) total
    order a single engine would have produced for the same schedule calls.
    {!Parallel} drives a coupled group, one engine per domain, serializing
    execution so only one partition runs events at any moment. An
    uncoupled engine behaves exactly as before — the legacy single-engine
    path is untouched. *)

type couple

(** A fresh shared clock/sequence. *)
val couple_create : unit -> couple

(** [attach t c ~owner] joins a fresh engine to a couple as partition
    [owner]. Raises [Invalid_argument] if the engine already scheduled or
    executed anything (seeding it beforehand would fork the sequence). *)
val attach : t -> couple -> owner:int -> unit

(** [set_current c p] marks partition [p] as the one executing events
    ([-1]: none — e.g. single-threaded setup code between runs). *)
val set_current : couple -> int -> unit

(** [set_on_cross c f] installs the cross-partition scheduling hook:
    [f owner key seq] fires whenever an event is scheduled onto a partition
    other than the current one. The parallel scheduler uses it to shrink
    the running window's bound. *)
val set_on_cross : couple -> (int -> int -> int -> unit) -> unit

(** [head t] is the (key, seq) pair of the earliest live event, without
    removing it; [None] when the queue is drained. Keys are the engine's
    order-preserving bit encoding of fire times: comparing (key, seq)
    pairs lexicographically compares events in execution order. *)
val head : t -> (int * int) option
