type entry = { time : float; actor : string; label : string }

(* Append-order growable array: [record] is amortized O(1) and every query
   below is a single linear scan — no per-query [List.rev] of the log. *)
type t = { engine : Engine.t; mutable arr : entry array; mutable len : int }

let dummy = { time = 0.0; actor = ""; label = "" }

let create engine = { engine; arr = Array.make 64 dummy; len = 0 }

let record t ~actor label =
  if t.len = Array.length t.arr then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- { time = Engine.now t.engine; actor; label };
  t.len <- t.len + 1

let entries t = Array.to_list (Array.sub t.arr 0 t.len)

let find t ~actor ~label =
  let rec scan i =
    if i >= t.len then None
    else
      let e = t.arr.(i) in
      if e.actor = actor && e.label = label then Some e.time else scan (i + 1)
  in
  scan 0

let find_all t ~label =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let e = t.arr.(i) in
    if e.label = label then out := (e.time, e.actor) :: !out
  done;
  !out

let before t ~first ~then_ =
  let rec scan seen_first i =
    if i >= t.len then false
    else
      let e = t.arr.(i) in
      if e.label = first && not seen_first then scan true (i + 1)
      else if e.label = then_ then seen_first
      else scan seen_first (i + 1)
  in
  scan false 0

let length t = t.len
let clear t = t.len <- 0

let render t =
  let buf = Buffer.create 256 in
  for i = 0 to t.len - 1 do
    let e = t.arr.(i) in
    Buffer.add_string buf (Printf.sprintf "t=%8.2f  [%-12s] %s\n" e.time e.actor e.label)
  done;
  Buffer.contents buf
