type 'a resumer = ('a, exn) result -> unit

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

exception Timed_out

let await register = Effect.perform (Suspend register)

let spawn ?on_error engine f =
  let open Effect.Deep in
  let handle_error e =
    match on_error with
    | Some h -> h e
    | None -> raise e
  in
  let run () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = handle_error;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Resume-once: late resumers (a lock grant racing a
                     timeout) become no-ops instead of double-resuming. *)
                  let resumed = ref false in
                  let resume r =
                    if not !resumed then begin
                      resumed := true;
                      ignore
                        (Engine.schedule engine ~delay:0.0 (fun () ->
                             match r with
                             | Ok v -> continue k v
                             | Error e -> discontinue k e))
                    end
                  in
                  register resume)
            | _ -> None);
      }
  in
  ignore (Engine.schedule engine ~delay:0.0 run)

let sleep engine d =
  await (fun resume ->
      ignore (Engine.schedule engine ~delay:d (fun () -> resume (Ok ()))))

let yield engine = sleep engine 0.0

module Ivar = struct
  type 'a state = Empty of 'a resumer Queue.t | Full of 'a

  type 'a t = { engine : Engine.t; mutable state : 'a state }

  let create engine = { engine; state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Fiber.Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      Queue.iter (fun resume -> resume (Ok v)) waiters

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters -> await (fun resume -> Queue.add resume waiters)

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None
end

module Mailbox = struct
  type 'a waiter = { mutable active : bool; resume : 'a resumer }

  type 'a t = { engine : Engine.t; items : 'a Queue.t; waiters : 'a waiter Queue.t }

  let create engine = { engine; items = Queue.create (); waiters = Queue.create () }

  (* Pop waiters until one is still waiting; timed-out entries are skipped. *)
  let rec next_active_waiter t =
    match Queue.take_opt t.waiters with
    | None -> None
    | Some w -> if w.active then Some w else next_active_waiter t

  let send t v =
    match next_active_waiter t with
    | Some w ->
      w.active <- false;
      w.resume (Ok v)
    | None -> Queue.add v t.items

  let try_recv t = Queue.take_opt t.items

  let recv t =
    match try_recv t with
    | Some v -> v
    | None ->
      await (fun resume -> Queue.add { active = true; resume } t.waiters)

  let recv_timeout t d =
    match try_recv t with
    | Some v -> Some v
    | None -> (
      match
        await (fun resume ->
            let w = { active = true; resume } in
            Queue.add w t.waiters;
            ignore
              (Engine.schedule t.engine ~delay:d (fun () ->
                   if w.active then begin
                     w.active <- false;
                     resume (Error Timed_out)
                   end)))
      with
      | v -> Some v
      | exception Timed_out -> None)

  let length t = Queue.length t.items
end

let all_on pairs =
  let cells =
    List.map
      (fun (engine, thunk) ->
        let iv = Ivar.create engine in
        spawn engine (fun () ->
            let result = match thunk () with v -> Ok v | exception e -> Error e in
            Ivar.fill iv result);
        iv)
      pairs
  in
  let results = List.map Ivar.read cells in
  List.map (function Ok v -> v | Error e -> raise e) results

let all engine thunks = all_on (List.map (fun thunk -> (engine, thunk)) thunks)
