(** L1 actions of multi-level transactions (§4).

    An L1 action is one semantic step of a global transaction — "deposit 50
    into account 7 at site B" — implemented as one L0 transaction at one
    local system. It carries:
    - the conflict class used for L1 locking ({!Conflict});
    - the L0 [program] implementing it;
    - its [inverse] program, executed as a fresh L0 transaction to undo the
      action after it has committed (the L1 undo-log stores these).

    The L1 lock object is [site ^ "/" ^ target], so the same account name at
    different sites never aliases. *)

type t = {
  name : string;  (** human-readable, for traces ("deposit(acct-7,+50)") *)
  site : string;  (** the local system executing the action *)
  target : string;  (** the logical object the L1 lock protects *)
  clazz : Conflict.clazz;
  program : Icdb_localdb.Program.t;
  inverse : Icdb_localdb.Program.t;
  l1_obj : string;
      (** [site ^ "/" ^ target], built once by {!make} so the L1 lock path
          never rebuilds it per acquisition *)
}

val make :
  name:string ->
  site:string ->
  target:string ->
  clazz:Conflict.clazz ->
  program:Icdb_localdb.Program.t ->
  inverse:Icdb_localdb.Program.t ->
  t

(** The L1 lock object name. *)
val l1_object : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Common action constructors} *)

(** [increment ~site ~key delta] — clazz ["increment"], inverse negates. *)
val increment : site:string -> key:string -> int -> t

(** [deposit ~site ~account amount] / [withdraw ~site ~account amount] —
    banking classes; inverses are the opposite movement. *)
val deposit : site:string -> account:string -> int -> t

val withdraw : site:string -> account:string -> int -> t

(** [read_balance ~site ~account] — clazz ["read-balance"], empty inverse. *)
val read_balance : site:string -> account:string -> t

(** [write ~site ~key ~before ~after] — clazz ["write"]; the inverse
    restores [before] ([None] deletes the key). Non-commuting. *)
val write : site:string -> key:string -> before:int option -> after:int -> t
