(** L1 conflict relations from action commutativity (§4.1).

    "Two L1 actions a1 and a2 are in conflict if they do not generally
    commute." An L1 lock in class [c1] is compatible with one in class [c2]
    exactly when the classes commute. The relation is given per action
    {e class} (e.g. every [deposit] commutes with every [withdraw]), which
    matches the paper's use of method commutativity in VODAK. *)

type clazz = string

type t

(** [of_commuting_pairs pairs] builds a relation in which [c1] and [c2]
    commute iff [(c1, c2)] or [(c2, c1)] is listed. Note that a class only
    commutes with itself if [(c, c)] is listed. *)
val of_commuting_pairs : (clazz * clazz) list -> t

(** [commute t c1 c2]. Unknown classes commute with nothing. *)
val commute : t -> clazz -> clazz -> bool

(** [memoized t] is [t] with a private memo: commutativity and combination
    answers are cached under the packed pair of interned class ids, so the
    L1 lock manager's hot compatibility checks skip the '+'-class splitting
    after first sight. The memo is per-instance (the federation takes one),
    keeping the shared module-level relations immutable and Domain-safe. *)
val memoized : t -> t

(** The relation for read/write/increment actions:
    - [read] commutes with [read];
    - [increment] commutes with [increment] (and [decrement], its alias);
    - [write] commutes with nothing;
    - everything else conflicts. *)
val read_write_increment : t

(** The relation for the banking workload: [deposit], [withdraw] and each
    other commute (both are increments of a balance); [read-balance]
    commutes only with itself; [transfer-in]/[transfer-out] behave like
    deposit/withdraw. *)
val banking : t

(** Combination for re-entrant L1 requests: classes are joined into a
    synthetic class that conflicts like the union of the two. Exposed for
    use as the lock table's [combine]. *)
val combine : t -> clazz -> clazz -> clazz

(** [compatible t] is [commute t] extended to handle {!combine}d classes —
    pass this to {!Icdb_lock.Lock_table.create}. *)
val compatible : t -> clazz -> clazz -> bool
