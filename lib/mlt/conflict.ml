module Symbol = Icdb_util.Symbol

type clazz = string

(* Optional per-instance memo: commutativity and combination answers keyed
   by the packed pair of interned class ids. Only {!memoized} instances
   carry one — the shared module-level relations stay immutable, so they
   remain safe to share across the [-j] sweep's domains. *)
type memo = {
  syms : Symbol.table;
  commute_memo : (int, bool) Hashtbl.t;
  combine_memo : (int, clazz) Hashtbl.t;
}

type t = { commuting : (clazz * clazz, unit) Hashtbl.t; memo : memo option }

let of_commuting_pairs pairs =
  let commuting = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace commuting (a, b) ();
      Hashtbl.replace commuting (b, a) ())
    pairs;
  { commuting; memo = None }

let memoized t =
  {
    t with
    memo =
      Some
        {
          syms = Symbol.create ~capacity:32 ();
          commute_memo = Hashtbl.create 64;
          combine_memo = Hashtbl.create 64;
        };
  }

let commute_base t a b = Hashtbl.mem t.commuting (a, b)

(* Re-entrant L1 requests merge classes into a '+'-joined synthetic class
   that conflicts like the union of its parts. *)
let parts c = String.split_on_char '+' c

let commute_raw t c1 c2 =
  List.for_all (fun a -> List.for_all (fun b -> commute_base t a b) (parts c2)) (parts c1)

(* The class universe is tiny (named classes plus their '+'-joins), so two
   interned ids pack into one immediate int. *)
let pack a b = (a lsl 16) lor b

let commute t c1 c2 =
  match t.memo with
  | None -> commute_raw t c1 c2
  | Some m -> (
    let key = pack (Symbol.intern m.syms c1) (Symbol.intern m.syms c2) in
    match Hashtbl.find_opt m.commute_memo key with
    | Some answer -> answer
    | None ->
      let answer = commute_raw t c1 c2 in
      Hashtbl.replace m.commute_memo key answer;
      answer)

let compatible = commute

let combine_raw c1 c2 =
  if c1 = c2 then c1
  else String.concat "+" (List.sort_uniq compare (parts c1 @ parts c2))

let combine t c1 c2 =
  match t.memo with
  | None -> combine_raw c1 c2
  | Some m -> (
    let key = pack (Symbol.intern m.syms c1) (Symbol.intern m.syms c2) in
    match Hashtbl.find_opt m.combine_memo key with
    | Some c -> c
    | None ->
      let c = combine_raw c1 c2 in
      Hashtbl.replace m.combine_memo key c;
      c)

let read_write_increment =
  of_commuting_pairs
    [
      ("read", "read");
      ("increment", "increment");
      ("increment", "decrement");
      ("decrement", "decrement");
    ]

let banking =
  of_commuting_pairs
    [
      ("deposit", "deposit");
      ("deposit", "withdraw");
      ("withdraw", "withdraw");
      ("deposit", "transfer-in");
      ("deposit", "transfer-out");
      ("withdraw", "transfer-in");
      ("withdraw", "transfer-out");
      ("transfer-in", "transfer-in");
      ("transfer-in", "transfer-out");
      ("transfer-out", "transfer-out");
      ("read-balance", "read-balance");
    ]
