module Program = Icdb_localdb.Program

type t = {
  name : string;
  site : string;
  target : string;
  clazz : Conflict.clazz;
  program : Program.t;
  inverse : Program.t;
  l1_obj : string; (* site ^ "/" ^ target, built once at construction *)
}

let make ~name ~site ~target ~clazz ~program ~inverse =
  { name; site; target; clazz; program; inverse; l1_obj = site ^ "/" ^ target }

let l1_object t = t.l1_obj

let pp fmt t = Format.fprintf fmt "%s@%s[%s:%s]" t.name t.site t.target t.clazz

let increment ~site ~key delta =
  make
    ~name:(Printf.sprintf "incr(%s,%+d)" key delta)
    ~site ~target:key ~clazz:"increment"
    ~program:[ Program.Increment (key, delta) ]
    ~inverse:[ Program.Increment (key, -delta) ]

let deposit ~site ~account amount =
  make
    ~name:(Printf.sprintf "deposit(%s,%d)" account amount)
    ~site ~target:account ~clazz:"deposit"
    ~program:[ Program.Increment (account, amount) ]
    ~inverse:[ Program.Increment (account, -amount) ]

let withdraw ~site ~account amount =
  make
    ~name:(Printf.sprintf "withdraw(%s,%d)" account amount)
    ~site ~target:account ~clazz:"withdraw"
    ~program:[ Program.Increment (account, -amount) ]
    ~inverse:[ Program.Increment (account, amount) ]

let read_balance ~site ~account =
  make
    ~name:(Printf.sprintf "read-balance(%s)" account)
    ~site ~target:account ~clazz:"read-balance"
    ~program:[ Program.Read account ]
    ~inverse:[]

let write ~site ~key ~before ~after =
  let inverse =
    match before with
    | Some b -> [ Program.Write (key, b) ]
    | None -> [ Program.Delete key ]
  in
  make
    ~name:(Printf.sprintf "write(%s,%d)" key after)
    ~site ~target:key ~clazz:"write"
    ~program:[ Program.Write (key, after) ]
    ~inverse
