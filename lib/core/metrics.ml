module Registry = Icdb_obs.Registry

(* Handles into one shared registry: recording here and exporting a snapshot
   through {!Icdb_obs.Export} read the same cells. *)
type t = {
  registry : Registry.t;
  started : Registry.counter;
  committed : Registry.counter;
  aborted : Registry.counter;
  repetitions : Registry.counter;
  compensations : Registry.counter;
  global_locks : Registry.counter;
  l1_locks : Registry.counter;
  hold : Registry.histogram;
  response : Registry.histogram;
}

let create registry =
  let c name = Registry.counter registry name in
  let h name = Registry.histogram registry name in
  {
    registry;
    started = c "icdb_txns_started_total";
    committed = c "icdb_txns_committed_total";
    aborted = c "icdb_txns_aborted_total";
    repetitions = c "icdb_repetitions_total";
    compensations = c "icdb_compensations_total";
    global_locks = c "icdb_global_lock_acquisitions_total";
    l1_locks = c "icdb_l1_lock_acquisitions_total";
    hold = h "icdb_lock_hold_time";
    response = h "icdb_txn_response_time";
  }

let registry t = t.registry

let reset t =
  List.iter Registry.clear_counter
    [
      t.started; t.committed; t.aborted; t.repetitions; t.compensations;
      t.global_locks; t.l1_locks;
    ];
  Registry.clear_histogram t.hold;
  Registry.clear_histogram t.response

let txn_started t = Registry.inc t.started

let txn_committed t ~response_time =
  Registry.inc t.committed;
  Registry.observe t.response response_time

let txn_aborted t = Registry.inc t.aborted
let repetition t = Registry.inc t.repetitions
let compensation t = Registry.inc t.compensations
let global_lock_acquired t = Registry.inc t.global_locks
let l1_lock_acquired t = Registry.inc t.l1_locks
let observe_hold_time t d = Registry.observe t.hold d

let started t = Registry.count t.started
let committed t = Registry.count t.committed
let aborted t = Registry.count t.aborted
let repetitions t = Registry.count t.repetitions
let compensations t = Registry.count t.compensations
let global_lock_acquisitions t = Registry.count t.global_locks
let l1_lock_acquisitions t = Registry.count t.l1_locks

let safe_stat f h = if Registry.hist_count h = 0 then 0.0 else f h

let mean_hold_time t = safe_stat Registry.hist_mean t.hold
let p95_hold_time t = safe_stat (fun h -> Registry.hist_percentile h 95.0) t.hold
let hold_time_samples t = Registry.hist_count t.hold
let mean_response_time t = safe_stat Registry.hist_mean t.response
let p95_response_time t = safe_stat (fun h -> Registry.hist_percentile h 95.0) t.response
