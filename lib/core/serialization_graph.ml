module Db = Icdb_localdb.Engine
module Symbol = Icdb_util.Symbol

(* Access classification on one key: the strongest kind decides conflicts. *)
type kind = KRead | KIncr | KWrite

type local = {
  gid : int;
  compensation : bool;
  kinds : (Symbol.t * kind) array;
      (* key -> strongest kind, interned and memoized at record time. The
         array preserves the enumeration order of the scratch table it is
         materialized from, which downstream passes replay — edge insertion
         order feeds cycle reporting, so it must stay stable. *)
}

type t = {
  syms : Symbol.table; (* graph-wide interner for record keys *)
  histories : (string, local list ref) Hashtbl.t; (* site -> reversed commit order *)
  outcomes : (int, bool) Hashtbl.t; (* gid -> committed *)
  mutable locals : int;
}

type violation =
  | Cycle of int list
  | Dirty_read of { reader : int; aborted_writer : int; site : string }

let pp_violation fmt = function
  | Cycle gids ->
    Format.fprintf fmt "cycle: %a"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
         (fun f g -> Format.fprintf f "G%d" g))
      gids
  | Dirty_read { reader; aborted_writer; site } ->
    Format.fprintf fmt "dirty access at %s: G%d used data of aborted G%d before compensation"
      site reader aborted_writer

let create () =
  {
    syms = Symbol.create ~capacity:256 ();
    histories = Hashtbl.create 16;
    outcomes = Hashtbl.create 64;
    locals = 0;
  }

let internal_key key = String.length key >= 2 && key.[0] = '_' && key.[1] = '_'

(* Conflict-equivalent join of two kinds on the same key: a read and an
   increment by the same local conflict with everything a write does, so the
   mixed case collapses to write strength. *)
let join k1 k2 =
  match (k1, k2) with
  | KWrite, _ | _, KWrite -> KWrite
  | KRead, KIncr | KIncr, KRead -> KWrite
  | KRead, KRead -> KRead
  | KIncr, KIncr -> KIncr

let kinds_of accesses =
  let tbl = Hashtbl.create 8 in
  let strengthen key kind =
    if internal_key key then ()
    else
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key kind
      | Some k ->
        let j = join k kind in
        if j <> k then Hashtbl.replace tbl key j
  in
  List.iter
    (function
      | Db.Read { key; _ } -> strengthen key KRead
      | Db.Wrote { key; _ } -> strengthen key KWrite
      | Db.Incremented { key; _ } -> strengthen key KIncr)
    accesses;
  tbl

let kinds_conflict k1 k2 =
  match (k1, k2) with
  | KRead, KRead -> false
  | KIncr, KIncr -> false
  | KRead, (KIncr | KWrite)
  | KIncr, (KRead | KWrite)
  | KWrite, (KRead | KIncr | KWrite) ->
    true

let conflict_kinds a b =
  let small, big = if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a) in
  Hashtbl.fold
    (fun key ka hit ->
      hit
      ||
      match Hashtbl.find_opt big key with
      | None -> false
      | Some kb -> kinds_conflict ka kb)
    small false

let conflict a b = conflict_kinds (kinds_of a) (kinds_of b)

(* Materialize the per-local kinds as an interned array, in exactly the
   scratch table's enumeration order: every later pass walks this array
   instead of re-iterating a string table. *)
let intern_kinds t accesses =
  let tbl = kinds_of accesses in
  let items = ref [] in
  Hashtbl.iter (fun key kind -> items := (Symbol.intern t.syms key, kind) :: !items) tbl;
  Array.of_list (List.rev !items)

let record_local t ~gid ~site ~compensation accesses =
  let hist =
    match Hashtbl.find_opt t.histories site with
    | Some h -> h
    | None ->
      let h = ref [] in
      Hashtbl.replace t.histories site h;
      h
  in
  hist := { gid; compensation; kinds = intern_kinds t accesses } :: !hist;
  t.locals <- t.locals + 1

let record_outcome t ~gid ~committed = Hashtbl.replace t.outcomes gid committed

let committed_of t gid = Option.value ~default:false (Hashtbl.find_opt t.outcomes gid)

(* Build edges among committed globals from per-site commit order.

   Per site, a per-key index replaces the all-pairs local scan: each key maps
   to the committed accessors seen so far, bucketed by kind. A new accessor
   emits one edge per earlier accessor in a conflicting bucket, so the cost is
   O(total accesses + conflicting pairs) instead of O(locals^2). *)
let edges t =
  let edges = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _site hist ->
      let index : (Symbol.t, int list ref * int list ref * int list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let emit_from g2 g1 = if g1 <> g2 then Hashtbl.replace edges (g1, g2) () in
      List.iter
        (fun l ->
          if committed_of t l.gid && not l.compensation then
            Array.iter
              (fun (key, kind) ->
                let reads, incrs, writes =
                  match Hashtbl.find_opt index key with
                  | Some buckets -> buckets
                  | None ->
                    let buckets = (ref [], ref [], ref []) in
                    Hashtbl.replace index key buckets;
                    buckets
                in
                let from = List.iter (emit_from l.gid) in
                (match kind with
                | KRead ->
                  from !incrs;
                  from !writes;
                  reads := l.gid :: !reads
                | KIncr ->
                  from !reads;
                  from !writes;
                  incrs := l.gid :: !incrs
                | KWrite ->
                  from !reads;
                  from !incrs;
                  from !writes;
                  writes := l.gid :: !writes))
              l.kinds)
        (List.rev !hist))
    t.histories;
  edges

let find_cycle t =
  let edge_tbl = edges t in
  let succ = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) () ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt succ a) in
      Hashtbl.replace succ a (b :: cur))
    edge_tbl;
  let state = Hashtbl.create 64 in
  (* 0 = in progress, 1 = done *)
  let exception Found of int list in
  let rec dfs path node =
    match Hashtbl.find_opt state node with
    | Some 1 -> ()
    | Some _ ->
      (* back edge: extract the cycle from the path *)
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = node then [ x ] else x :: cut rest
      in
      raise (Found (List.rev (cut path)))
    | None ->
      Hashtbl.replace state node 0;
      List.iter (dfs (node :: path)) (Option.value ~default:[] (Hashtbl.find_opt succ node));
      Hashtbl.replace state node 1
  in
  try
    Hashtbl.iter (fun node _ -> dfs [ node ] node) succ;
    None
  with Found cycle -> Some cycle

(* A committed local conflicting with an aborted global's original local,
   positioned after it and before its compensation, read or overwrote data
   that was later compensated away.

   One forward pass per site over a per-key index: aborted locals open a
   "dirty window" on every key they changed (pure reads are harmless — the
   read-only optimization); committed locals scan the still-open windows on
   the keys they touched. Windows close at the aborted global's compensation,
   and closed entries are pruned as they are encountered, so the cost is
   O(total accesses + reported pairs) instead of the former O(locals^2)
   all-pairs window scan. *)
let dirty_reads t =
  let found = ref [] in
  Hashtbl.iter
    (fun site hist ->
      let ordered = Array.of_list (List.rev !hist) in
      let n = Array.length ordered in
      (* window_end.(i): index of gid's first compensation after i, or n. *)
      let window_end = Array.make n n in
      let next_comp = Hashtbl.create 16 in
      for i = n - 1 downto 0 do
        let l = ordered.(i) in
        window_end.(i) <- Option.value ~default:n (Hashtbl.find_opt next_comp l.gid);
        if l.compensation then Hashtbl.replace next_comp l.gid i
      done;
      (* key -> open dirty windows (writer position, gid, kind, window end) *)
      let open_windows : (Symbol.t, (int * int * kind * int) list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let pairs = Hashtbl.create 16 in
      for p = 0 to n - 1 do
        let l = ordered.(p) in
        if not l.compensation then begin
          let committed = committed_of t l.gid in
          Array.iter
            (fun (key, kind) ->
              match Hashtbl.find_opt open_windows key with
              | None ->
                if (not committed) && kind <> KRead then
                  Hashtbl.replace open_windows key (ref [ (p, l.gid, kind, window_end.(p)) ])
              | Some cell ->
                cell := List.filter (fun (_, _, _, wend) -> wend > p) !cell;
                if committed then
                  List.iter
                    (fun (i, wgid, wkind, _) ->
                      if wgid <> l.gid && kinds_conflict wkind kind then
                        Hashtbl.replace pairs (i, p) ())
                    !cell
                else if kind <> KRead then cell := (p, l.gid, kind, window_end.(p)) :: !cell)
            l.kinds
        end
      done;
      let site_pairs = List.sort compare (Hashtbl.fold (fun ij () acc -> ij :: acc) pairs []) in
      List.iter
        (fun (i, j) ->
          found :=
            Dirty_read { reader = ordered.(j).gid; aborted_writer = ordered.(i).gid; site }
            :: !found)
        site_pairs)
    t.histories;
  List.rev !found

let violations t =
  let cycle = match find_cycle t with Some c -> [ Cycle c ] | None -> [] in
  cycle @ dirty_reads t

let serializable t = violations t = []
let recorded_locals t = t.locals
