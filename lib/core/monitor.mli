(** Online invariant monitors: first-trip detection for the chaos campaign.

    Where the campaign's post-run invariant suite says {e that} an
    invariant broke, an attached monitor says {e when} — the first virtual
    time at which the violation became observable — by watching
    continuously through hooks the instrumentation layer already has:

    - {b money}: every local commit feeds its net value change through
      {!Icdb_localdb.Engine.set_commit_delta_hook} (in-doubt commits
      recovered from the log chain included); at quiescent instants (empty
      journal, drained action logs) the running sum must be zero.
    - {b stuck}: a watchdog tick trips when the journal has open entries
      but nothing has progressed (open/decide/close/commit) for
      [stuck_after] virtual time units.
    - {b lock-leak}: at quiescent instants with no live or in-doubt local
      transactions anywhere, every lock table must be empty (O(1) via
      {!Icdb_lock.Lock_table.held_count}).
    - {b pin-drift}: same instants, every up site's buffer pool must have
      zero outstanding pins.

    Each monitor trips at most once per run, records the first virtual trip
    time, bumps a lazily-created [icdb_monitor_trips_total{monitor}]
    counter (runs that never trip leave the registry untouched) and drops a
    [monitor-trip:<name>] mark into the tracer — visible in the flight
    recorder dump.

    The watchdog stops rescheduling once [finished ()] holds, the stuck
    detector fired, or its own tick was the engine's last pending event
    (the run is draining naturally — ticking on would manufacture virtual
    time and make in-doubt entries awaiting post-run recovery look stuck),
    so it never keeps the simulation engine alive artificially;
    {!finalize} runs a last sweep after post-run recovery. *)

type t

(** One first-trip record. *)
type trip = { m_monitor : string; m_time : float; m_detail : string }

type config = {
  stuck_after : float;
      (** journal inactivity threshold (virtual time units) *)
  check_interval : float;  (** watchdog tick period *)
}

(** 120 tu stuck threshold, 20 tu tick. *)
val default_config : config

(** [attach ?config fed ~finished] installs the hooks (replacing the
    federation's {!Federation.journal_hook} and every site's commit-delta
    hook) and schedules the watchdog. [finished] should become true once
    the workload is complete and the journal drained — it lets the
    watchdog retire. *)
val attach : ?config:config -> Federation.t -> finished:(unit -> bool) -> t

(** Final sweep + watchdog stop; call once the run (including any post-run
    recovery) has drained. *)
val finalize : t -> unit

(** All first trips, in trip order. *)
val trips : t -> trip list

(** [first_trip t "money"] — the named monitor's trip, if it fired. *)
val first_trip : t -> string -> trip option

val pp_trip : Format.formatter -> trip -> unit
