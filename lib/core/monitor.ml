(* Online invariant monitors.

   The chaos campaign (lib/fault) checks its invariant suite after a run
   completes, which says *that* money was lost or a lock leaked but not
   *when*. These monitors watch the same invariants continuously through
   the hooks the observability layer already has — the federation's journal
   choke points, the local engines' commit-delta feed, and a periodic
   watchdog tick on the simulation clock — and record the first virtual
   time each one trips. That timestamp is the forensic anchor: paired with
   the flight-recorder ring it answers "what was the federation doing when
   the invariant first became false".

   Checks only fire at quiescent instants (empty journal, drained action
   logs): mid-protocol a nonzero money drift or a held lock is normal.
   Trips are one-shot (first time only) and feed a lazily-created
   [icdb_monitor_trips_total{monitor}] counter, so runs that never trip
   leave the registry byte-identical. The watchdog stops rescheduling as
   soon as the run is finished or the stuck detector has fired — it must
   never keep the engine artificially alive, or the campaign's
   engine-drained invariant would hang. *)

module Sim = Icdb_sim.Engine
module Site = Icdb_net.Site
module Db = Icdb_localdb.Engine
module Lock = Icdb_lock.Lock_table
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span

type trip = { m_monitor : string; m_time : float; m_detail : string }

type config = {
  stuck_after : float;
      (* no journal progress for this many virtual time units = stuck *)
  check_interval : float; (* watchdog tick period *)
}

let default_config = { stuck_after = 120.0; check_interval = 20.0 }

type t = {
  fed : Federation.t;
  cfg : config;
  finished : unit -> bool;
  mutable drift : int; (* running sum of committed local deltas *)
  mutable last_progress : float;
  mutable trips : trip list; (* newest first *)
  tripped : (string, unit) Hashtbl.t;
  mutable stopped : bool;
}

let trip t name detail =
  if not (Hashtbl.mem t.tripped name) then begin
    Hashtbl.add t.tripped name ();
    let time = Sim.now t.fed.Federation.engine in
    t.trips <- { m_monitor = name; m_time = time; m_detail = detail } :: t.trips;
    Registry.inc
      (Registry.counter t.fed.Federation.registry
         ~labels:[ ("monitor", name) ]
         "icdb_monitor_trips_total");
    (* leave a mark in the flight recorder so the dump shows the trip in
       sequence with the events that caused it *)
    Tracer.instant t.fed.Federation.tracer ~actor:"monitor"
      (Span.Mark ("monitor-trip:" ^ name))
  end

let journal_empty t = Federation.total_journal_entries t.fed = 0

(* Quiescent = no transaction mid-protocol anywhere: journal empty and no
   deferred redo/undo work pending (a decided-but-not-yet-redone action
   legitimately carries money the committed state doesn't show yet). *)
let quiescent t =
  journal_empty t
  && Action_log.pending t.fed.Federation.redo_log = 0
  && Action_log.pending t.fed.Federation.undo_log = 0
  && Action_log.pending t.fed.Federation.mlt_undo_log = 0

let check_money t =
  if t.drift <> 0 && quiescent t then
    trip t "money"
      (Printf.sprintf "conservation drift %+d at a quiescent instant" t.drift)

(* Returns [true] when it tripped, so the watchdog can stop: a stuck run
   never finishes, and the tick must not keep the engine alive forever. *)
let check_stuck t now =
  if (not (journal_empty t)) && now -. t.last_progress >= t.cfg.stuck_after
  then begin
    let oldest =
      match Federation.journal_open_entries t.fed with
      | (gid, entry) :: _ -> Printf.sprintf "g%d (%s)" gid entry.Federation.j_protocol
      | [] -> "?"
    in
    trip t "stuck"
      (Printf.sprintf "no journal progress for %.0f tu; oldest open entry %s"
         (now -. t.last_progress) oldest);
    true
  end
  else false

let check_leaks t =
  if quiescent t then begin
    let idle (_, site) =
      let db = Site.db site in
      Db.live_txn_count db = 0 && Db.in_doubt_count db = 0
    in
    if List.for_all idle t.fed.Federation.sites then begin
      let global =
        Lock.held_count t.fed.Federation.global_cc
        + Lock.held_count t.fed.Federation.l1_locks
        + Array.fold_left
            (fun acc (sh : Federation.shard) ->
              acc + Lock.held_count sh.sh_cc + Lock.held_count sh.sh_l1)
            0 t.fed.Federation.shards
      in
      let local =
        List.fold_left
          (fun acc (_, site) -> acc + Db.lock_held_count (Site.db site))
          0 t.fed.Federation.sites
      in
      if global + local > 0 then
        trip t "lock-leak"
          (Printf.sprintf "%d global + %d local locks held with no live transaction"
             global local);
      List.iter
        (fun (name, site) ->
          let db = Site.db site in
          if Site.is_up site && Db.buffer_pins db <> 0 then
            trip t "pin-drift"
              (Printf.sprintf "%d buffer pins outstanding at idle site %s"
                 (Db.buffer_pins db) name))
        t.fed.Federation.sites
    end
  end

let tick_checks t =
  check_money t;
  check_leaks t

let rec schedule_tick t =
  ignore
    (Sim.schedule t.fed.Federation.engine ~delay:t.cfg.check_interval (fun () ->
         if not t.stopped then begin
           let now = Sim.now t.fed.Federation.engine in
           tick_checks t;
           if t.finished () then t.stopped <- true
           else if Sim.pending t.fed.Federation.engine = 0 then
             (* Our own tick was the last event: the engine is draining
                naturally. Rescheduling would manufacture virtual time the
                run never had — in the chaos campaign that both delays
                post-run recovery and makes in-doubt entries (which recovery
                is *about* to resolve) look stuck. Retire quietly; a genuine
                stall keeps other events pending (retries, waiters) and is
                caught by the branch below. *)
             t.stopped <- true
           else if check_stuck t now then t.stopped <- true
           else schedule_tick t
         end))

let attach ?(config = default_config) (fed : Federation.t) ~finished =
  let t =
    {
      fed;
      cfg = config;
      finished;
      drift = 0;
      last_progress = Sim.now fed.Federation.engine;
      trips = [];
      tripped = Hashtbl.create 4;
      stopped = false;
    }
  in
  let progress () = t.last_progress <- Sim.now fed.Federation.engine in
  fed.Federation.journal_hook <-
    (function
     | Federation.J_opened _ -> progress ()
     | Federation.J_decided _ -> progress ()
     | Federation.J_closed _ ->
       progress ();
       (* a close is the canonical decision-settled instant: the natural
          point to check conservation incrementally *)
       check_money t);
  List.iter
    (fun (_, site) ->
      Db.set_commit_delta_hook (Site.db site) (fun ~txn_id:_ ~delta ->
          t.drift <- t.drift + delta;
          progress ()))
    fed.Federation.sites;
  schedule_tick t;
  t

(* Final sweep once the run has drained (after recovery in the chaos
   campaign): catches violations that only became checkable at the very
   end, and stops the watchdog for good. *)
let finalize t =
  t.stopped <- true;
  tick_checks t

let trips t = List.rev t.trips

let first_trip t name =
  List.find_opt (fun tr -> tr.m_monitor = name) (trips t)

let pp_trip fmt tr =
  Format.fprintf fmt "%s first tripped at t=%.2f: %s" tr.m_monitor tr.m_time
    tr.m_detail
