module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Span = Icdb_obs.Span
open Protocol_common

type vote = Ready of Db.txn | No of Global.abort_cause

(* Repeat the branch's local transaction until one incarnation commits. The
   commit marker written inside the transaction makes the loop idempotent:
   if a previous incarnation did commit (e.g. the crash hit after commit),
   no second execution happens. *)
let redo_until_committed (fed : Federation.t) ~gid ~obs (b : Global.branch) =
  obs_phase fed obs ~gid ~actor:b.site Span.Redo (fun _ ->
      ignore
        (persistently_apply fed ~gid ~site:b.site ~marker:(commit_marker ~gid)
           ~compensation:false
           ~on_attempt:(fun () ->
             Metrics.repetition fed.metrics;
             Trace.record fed.trace ~actor:b.site (ev gid "redo-execution"))
           b.program))

let run (fed : Federation.t) (spec : Global.spec) =
  let gid = spec.gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (b : Global.branch) -> b.site) spec.branches)
    ~gid ~protocol:"after";
  let obs = obs_begin fed ~gid ~protocol:"after" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  if not (acquire_global_locks fed ~gid spec) then begin
    Federation.journal_close fed ~gid;
    finish fed ~gid ~start ~obs (Aborted Global_cc_denied)
  end
  else begin
    (* Stable redo-log entry per branch, before anything executes. *)
    List.iter
      (fun (b : Global.branch) ->
        Action_log.append fed.redo_log ~gid
          { site = b.site; program = b.program; tag = "branch" })
      spec.branches;
    let marker_op = [ Program.Write (commit_marker ~gid, 1) ] in
    let results =
      obs_phase fed obs ~gid Span.Execute (fun sp ->
          fanout fed
            (List.map
               (fun (b : Global.branch) ->
                 ( b.site,
                   fun () ->
                     (b, execute_branch fed ~gid ~parent:sp b ~extra_ops:marker_op)
                 ))
               spec.branches))
    in
    fed.central_fail ~gid "executed";
    (* The inquiry: communication managers answer from the running state. *)
    Trace.record fed.trace ~actor:coord (ev gid "inquire");
    let votes =
      obs_phase fed obs ~gid Span.Vote @@ fun _ ->
      fanout fed
        (List.map
           (fun (result : Global.branch * exec_status) ->
             let b, _ = result in
             ( b.site,
               fun () ->
             let b, status = result in
             let site = Federation.site fed b.site in
             let db = Site.db site in
             match status with
             | Exec_failed r -> (b, No (Global.Local_abort { site = b.site; reason = r }))
             | Exec_ok txn ->
               Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                   if not b.vote_commit then begin
                     Db.abort db txn;
                     ("abort-vote", (b, No (Global.Voted_abort b.site)))
                   end
                   else
                     (* No ready state: the vote only reports that the local
                        transaction is still alive. It may yet die. *)
                     match Db.state txn with
                     | `Running ->
                       Trace.record fed.trace ~actor:b.site (ev gid "ready");
                       ("ready", (b, Ready txn))
                     | `Aborted r ->
                       ( "abort-vote",
                         (b, No (Global.Local_abort { site = b.site; reason = r })) )
                     | `Prepared | `Committed ->
                       invalid_arg "Commit_after: local transaction in impossible state"))
             )
           results)
    in
    let abort_cause =
      List.find_map (function _, No cause -> Some cause | _, Ready _ -> None) votes
    in
    fed.central_fail ~gid "voted";
    let decide_commit = Option.is_none abort_cause in
    Trace.record fed.trace ~actor:coord
      (ev gid (if decide_commit then "decision:commit" else "decision:abort"));
    Federation.journal_decide fed ~gid ~commit:decide_commit;
    obs_decision fed obs ~gid ~commit:decide_commit;
    fed.central_fail ~gid "decided";
    obs_phase fed obs ~gid Span.Local_commit (fun _ ->
        ignore
          (fanout fed
             (List.filter_map
                (function
                  | (b : Global.branch), Ready txn ->
                    Some
                      ( b.site,
                        fun () ->
                          let site = Federation.site fed b.site in
                          let db = Site.db site in
                          if decide_commit then
                            decision_rpc fed ~gid ~site:b.site ~label:"commit"
                              (fun () ->
                                (match Db.commit db txn with
                                | Ok () ->
                                  graph_local fed ~gid ~site:b.site
                                    ~compensation:false txn
                                | Error _ ->
                                  (* Erroneous abort after the ready answer: the
                                     §3.2 repair — repetition from the redo-log. *)
                                  redo_until_committed fed ~gid ~obs b);
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "committed");
                                "finished")
                          else
                            decision_rpc fed ~gid ~site:b.site ~label:"abort"
                              (fun () ->
                                Db.abort db txn;
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "aborted");
                                "finished") )
                  | _, No _ -> None)
                votes)));
    Action_log.remove fed.redo_log ~gid;
    Federation.journal_close fed ~gid;
    release_global_locks fed ~gid;
    let outcome =
      if decide_commit then Global.Committed else Global.Aborted (Option.get abort_cause)
    in
    finish fed ~gid ~start ~obs outcome
  end
