module Sim = Icdb_sim.Engine
module Trace = Icdb_sim.Trace
module Lock = Icdb_lock.Lock_table
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Action = Icdb_mlt.Action
module Span = Icdb_obs.Span
open Protocol_common

(* Execute an inverse action until it commits, marker-guarded (the L1
   recovery component's "inverse of inverse" is avoided by idempotence). *)
let undo_action (fed : Federation.t) ~gid ~obs ~seq (action : Action.t) =
  obs_phase fed obs ~gid ~actor:action.Action.site Span.Compensate (fun _ ->
      ignore
        (persistently_apply fed ~gid ~site:action.Action.site
           ~marker:(undo_marker ~gid ~seq) ~compensation:true
           ~on_attempt:(fun () ->
             Metrics.compensation fed.metrics;
             Trace.record fed.trace ~actor:action.Action.site (ev gid "inverse-action"))
           action.Action.inverse))

(* Per-action commit marker: lets site and central recovery see which
   actions of a global transaction committed. *)
let action_marker ~gid ~seq = "__am:" ^ string_of_int gid ^ ":" ^ string_of_int seq

let execute_action (fed : Federation.t) ~gid ~seq (action : Action.t) =
  let site = Federation.site fed action.site in
  let db = Site.db site in
  Link.rpc ~gid (Site.link site) ~label:"execute-action" (fun () ->
      match Db.begin_txn_opt db with
      | None ->
        ( "action-failed",
          Error (Global.Local_abort { site = action.site; reason = Db.Site_crashed }) )
      | Some txn -> (
        Federation.journal_branch fed ~gid ~site:action.site ~txn_id:(Db.txn_id txn);
        match
          Program.run db txn
            (action.program @ [ Program.Write (action_marker ~gid ~seq, 1) ])
        with
        | Error r ->
          Db.abort db txn;
          ("action-failed", Error (Global.Local_abort { site = action.site; reason = r }))
        | Ok () -> (
          (* The L1 undo-log write — inherent to the transaction model, not
             an addition of the commitment protocol. *)
          Action_log.append fed.mlt_undo_log ~gid
            { site = action.site; program = action.inverse; tag = action.name };
          match Db.commit db txn with
          | Ok () ->
            graph_local fed ~gid ~site:action.site ~compensation:false txn;
            Trace.record fed.trace ~actor:action.site (ev gid ("done:" ^ action.name));
            ("action-done", Ok ())
          | Error r ->
            ( "action-failed",
              Error (Global.Local_abort { site = action.site; reason = r }) ))))

let run ?(action_retries = 0) (fed : Federation.t) (spec : Global.mlt_spec) =
  let gid = spec.mlt_gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (a : Action.t) -> a.site) spec.actions)
    ~gid ~protocol:"mlt";
  let obs = obs_begin fed ~gid ~protocol:"mlt" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  let completed = ref [] in
  (* L1 actions run in program order; each one is an L0 transaction that
     commits before the global decision exists. *)
  let rec step seq = function
    | [] -> Ok ()
    | action :: rest ->
      if spec.abort_after = Some seq then Error Global.Intended_abort
      else begin
        match
          (* the L1 manager responsible for the action's site — the owning
             shard coordinator's in a sharded federation, central otherwise *)
          Lock.acquire
            (Federation.l1_table fed ~site:action.Action.site)
            ~owner:gid
            ~obj:(Federation.intern fed (Action.l1_object action))
            ~mode:action.Action.clazz ?timeout:fed.global_lock_timeout ()
        with
        | Lock.Timeout | Lock.Deadlock -> Error Global.Global_cc_denied
        | exception Lock.Lock_revoked -> Error Global.Global_cc_denied
        | Lock.Granted ->
          Metrics.l1_lock_acquired fed.metrics;
          (* An aborted L0 action left no trace, so it can simply be
             re-submitted; only after [action_retries] failures does the
             global transaction abort and compensate. *)
          let rec attempt tries_left =
            match execute_action fed ~gid ~seq action with
            | Ok () ->
              completed := (seq, action) :: !completed;
              fed.central_fail ~gid (("action-" ^ string_of_int seq));
              step (seq + 1) rest
            | Error cause ->
              if tries_left > 0 then begin
                Metrics.repetition fed.metrics;
                Trace.record fed.trace ~actor:action.Action.site (ev gid "action-retry");
                Site.await_up (Federation.site fed action.Action.site);
                attempt (tries_left - 1)
              end
              else Error cause
          in
          attempt action_retries
      end
  in
  let result = obs_phase fed obs ~gid Span.Execute (fun _ -> step 0 spec.actions) in
  let outcome =
    match result with
    | Ok () ->
      Trace.record fed.trace ~actor:coord (ev gid "decision:commit");
      Federation.journal_decide fed ~gid ~commit:true;
      obs_decision fed obs ~gid ~commit:true;
      fed.central_fail ~gid "decided";
      Global.Committed
    | Error cause ->
      Trace.record fed.trace ~actor:coord (ev gid "decision:abort");
      Federation.journal_decide fed ~gid ~commit:false;
      obs_decision fed obs ~gid ~commit:false;
      fed.central_fail ~gid "decided";
      (* Undo completed actions in reverse order via inverse actions. *)
      List.iter
        (fun (seq, action) ->
          decision_rpc fed ~gid ~site:action.Action.site ~label:"undo-action" (fun () ->
              undo_action fed ~gid ~obs ~seq action;
              "finished"))
        !completed;
      Global.Aborted cause
  in
  Action_log.remove fed.mlt_undo_log ~gid;
  Federation.journal_close fed ~gid;
  Federation.release_l1_owner fed ~gid;
  finish fed ~gid ~start ~obs outcome
