module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Span = Icdb_obs.Span
open Protocol_common

type vote = Ready | No of Global.abort_cause

let run (fed : Federation.t) (spec : Global.spec) =
  let gid = spec.gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (b : Global.branch) -> b.site) spec.branches)
    ~gid ~protocol:"2pc";
  let obs = obs_begin fed ~gid ~protocol:"2pc" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  let unsupported =
    List.find_opt
      (fun (b : Global.branch) ->
        not (Db.capabilities (Site.db (Federation.site fed b.site))).supports_prepare)
      spec.branches
  in
  match unsupported with
  | Some b ->
    Federation.journal_close fed ~gid;
    finish fed ~gid ~start ~obs (Aborted (Unsupported_site b.site))
  | None ->
    (* Data phase: ship and run every branch's local transaction. *)
    let results =
      obs_phase fed obs ~gid Span.Execute (fun sp ->
          fanout fed
            (List.map
               (fun (b : Global.branch) ->
                 ( b.site,
                   fun () -> (b, execute_branch fed ~gid ~parent:sp b ~extra_ops:[]) ))
               spec.branches))
    in
    fed.central_fail ~gid "executed";
    let exec_failure =
      List.find_map
        (function
          | (b : Global.branch), Exec_failed r ->
            Some (Global.Local_abort { site = b.site; reason = r })
          | _, Exec_ok _ -> None)
        results
    in
    (match exec_failure with
    | Some cause ->
      (* No commit protocol needed: abort the survivors directly. *)
      Trace.record fed.trace ~actor:coord (ev gid "decision:abort");
      Federation.journal_decide fed ~gid ~commit:false;
      obs_decision fed obs ~gid ~commit:false;
      obs_phase fed obs ~gid Span.Local_commit (fun _ ->
          ignore
            (fanout fed
               (List.filter_map
                  (function
                    | (b : Global.branch), Exec_ok txn ->
                      Some
                        ( b.site,
                          fun () ->
                            let site = Federation.site fed b.site in
                            decision_rpc fed ~gid ~site:b.site ~label:"abort"
                              (fun () ->
                                Db.abort (Site.db site) txn;
                                "finished") )
                    | _, Exec_failed _ -> None)
                  results)));
      Federation.journal_close fed ~gid;
      finish fed ~gid ~start ~obs (Aborted cause)
    | None ->
      (* Phase 1: the inquiry. Locals enter the ready state. *)
      Trace.record fed.trace ~actor:coord (ev gid "inquire");
      let votes =
        obs_phase fed obs ~gid Span.Vote (fun _ ->
            fanout fed
              (List.map
                 (fun (result : Global.branch * exec_status) ->
                   let b, _ = result in
                   ( b.site,
                     fun () ->
                   let b, status = result in
                   let site = Federation.site fed b.site in
                   let db = Site.db site in
                   match status with
                   | Exec_failed r ->
                     (b, No (Global.Local_abort { site = b.site; reason = r }))
                   | Exec_ok txn ->
                     Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                         if not b.vote_commit then begin
                           Db.abort db txn;
                           ("abort-vote", (b, No (Global.Voted_abort b.site)))
                         end
                         else
                           match Db.prepare db txn with
                           | Ok () ->
                             Trace.record fed.trace ~actor:b.site (ev gid "ready");
                             ("ready", (b, Ready))
                           | Error r ->
                             ( "abort-vote",
                               (b, No (Global.Local_abort { site = b.site; reason = r }))
                             )) ))
                 results))
      in
      let abort_cause =
        List.find_map (function _, No cause -> Some cause | _, Ready -> None) votes
      in
      fed.central_fail ~gid "voted";
      let decide_commit = Option.is_none abort_cause in
      Trace.record fed.trace ~actor:coord
        (ev gid (if decide_commit then "decision:commit" else "decision:abort"));
      Federation.journal_decide fed ~gid ~commit:decide_commit;
      obs_decision fed obs ~gid ~commit:decide_commit;
      fed.central_fail ~gid "decided";
      (* Phase 2: apply the decision at every site in the ready state. A
         crashed participant holds the transaction in doubt; the decision
         waits for its recovery. *)
      obs_phase fed obs ~gid Span.Local_commit (fun _ ->
          ignore
            (fanout fed
               (List.filter_map
                  (function
                    | (b : Global.branch), Ready ->
                      Some
                        ( b.site,
                          fun () ->
                            let txn =
                              List.find_map
                                (function
                                  | b', Exec_ok txn when b' == b -> Some txn
                                  | _ -> None)
                                results
                              |> Option.get
                            in
                            let label = if decide_commit then "commit" else "abort" in
                            decision_rpc fed ~gid ~site:b.site ~label (fun () ->
                                resolve_prepared_durably fed ~site:b.site
                                  ~txn_id:(Db.txn_id txn) ~commit:decide_commit;
                                if decide_commit then begin
                                  graph_local fed ~gid ~site:b.site
                                    ~compensation:false txn;
                                  Trace.record fed.trace ~actor:b.site
                                    (ev gid "committed")
                                end
                                else
                                  Trace.record fed.trace ~actor:b.site
                                    (ev gid "aborted");
                                "finished") )
                    | _, No _ -> None)
                  votes)));
      Federation.journal_close fed ~gid;
      let outcome =
        if decide_commit then Global.Committed
        else Global.Aborted (Option.get abort_cause)
      in
      finish fed ~gid ~start ~obs outcome)
