(** Per-run metric collection for the experiment harness.

    Every protocol run updates these counters; the runner and bench targets
    read them out into tables. Lock hold times are fed by the local lock
    tables' hooks (installed by {!Federation.create}); response times are
    recorded by the protocols themselves. *)

type t

(** [create registry] allocates this run's counters and histograms inside
    [registry] — a metrics snapshot of the registry (see
    {!Icdb_obs.Export}) therefore includes everything recorded here;
    there is no second recording path. *)
val create : Icdb_obs.Registry.t -> t

(** The registry the cells live in. *)
val registry : t -> Icdb_obs.Registry.t

(** Zeroes this module's own cells (other registry entries untouched). *)
val reset : t -> unit

(** {2 Recording} *)

val txn_started : t -> unit
val txn_committed : t -> response_time:float -> unit
val txn_aborted : t -> unit

(** One repetition (redo) of an erroneously aborted local (§3.2). *)
val repetition : t -> unit

(** One inverse-transaction execution (§3.3 / §4). *)
val compensation : t -> unit

(** Work done by the {e additional} global CC module (absent with MLT). *)
val global_lock_acquired : t -> unit

(** Work done by the L1 lock manager (inherent to the MLT model). *)
val l1_lock_acquired : t -> unit

val observe_hold_time : t -> float -> unit

(** {2 Reading} *)

val started : t -> int
val committed : t -> int
val aborted : t -> int
val repetitions : t -> int
val compensations : t -> int
val global_lock_acquisitions : t -> int
val l1_lock_acquisitions : t -> int

(** Mean / 95th-percentile local lock hold time ([0.] when no locks were
    released yet). *)
val mean_hold_time : t -> float

val p95_hold_time : t -> float
val hold_time_samples : t -> int
val mean_response_time : t -> float
val p95_response_time : t -> float
