module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Span = Icdb_obs.Span
open Protocol_common

type vote =
  | Ready of Db.txn
  | Read_only  (** already committed at prepare time; no second phase *)
  | No of Global.abort_cause

let run (fed : Federation.t) (spec : Global.spec) =
  let gid = spec.gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (b : Global.branch) -> b.site) spec.branches)
    ~gid ~protocol:"2pc-pa";
  let obs = obs_begin fed ~gid ~protocol:"2pc-pa" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  let unsupported =
    List.find_opt
      (fun (b : Global.branch) ->
        not (Db.capabilities (Site.db (Federation.site fed b.site))).supports_prepare)
      spec.branches
  in
  match unsupported with
  | Some b ->
    Federation.journal_close fed ~gid;
    finish fed ~gid ~start ~obs (Aborted (Unsupported_site b.site))
  | None ->
    let results =
      obs_phase fed obs ~gid Span.Execute (fun sp ->
          fanout fed
            (List.map
               (fun (b : Global.branch) ->
                 ( b.site,
                   fun () -> (b, execute_branch fed ~gid ~parent:sp b ~extra_ops:[]) ))
               spec.branches))
    in
    fed.central_fail ~gid "executed";
    Trace.record fed.trace ~actor:coord (ev gid "inquire");
    let votes =
      obs_phase fed obs ~gid Span.Vote @@ fun _ ->
      fanout fed
        (List.map
           (fun (result : Global.branch * exec_status) ->
             let b, _ = result in
             ( b.site,
               fun () ->
             let b, status = result in
             let site = Federation.site fed b.site in
             let db = Site.db site in
             match status with
             | Exec_failed r -> (b, No (Global.Local_abort { site = b.site; reason = r }))
             | Exec_ok txn ->
               Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                   if not b.vote_commit then begin
                     Db.abort db txn;
                     ("abort-vote", (b, No (Global.Voted_abort b.site)))
                   end
                   else if Program.is_read_only b.program then begin
                     (* Read-only optimization: commit right now, skip the
                        second phase entirely. *)
                     match Db.commit db txn with
                     | Ok () ->
                       graph_local fed ~gid ~site:b.site ~compensation:false txn;
                       Trace.record fed.trace ~actor:b.site (ev gid "read-only");
                       ("read-only-vote", (b, Read_only))
                     | Error r ->
                       ( "abort-vote",
                         (b, No (Global.Local_abort { site = b.site; reason = r })) )
                   end
                   else
                     match Db.prepare db txn with
                     | Ok () ->
                       Trace.record fed.trace ~actor:b.site (ev gid "ready");
                       ("ready", (b, Ready txn))
                     | Error r ->
                       ( "abort-vote",
                         (b, No (Global.Local_abort { site = b.site; reason = r })) ))
             ))
           results)
    in
    let abort_cause =
      List.find_map
        (function _, No cause -> Some cause | _, (Ready _ | Read_only) -> None)
        votes
    in
    fed.central_fail ~gid "voted";
    let decide_commit = Option.is_none abort_cause in
    Trace.record fed.trace ~actor:coord
      (ev gid (if decide_commit then "decision:commit" else "decision:abort"));
    obs_decision fed obs ~gid ~commit:decide_commit;
    if decide_commit then begin
      (* Only commits are force-logged — aborts are presumed. *)
      Federation.journal_decide fed ~gid ~commit:true;
      fed.central_fail ~gid "decided";
      obs_phase fed obs ~gid Span.Local_commit @@ fun _ ->
      ignore
        (fanout fed
           (List.filter_map
              (function
                | (b : Global.branch), Ready txn ->
                  Some
                    ( b.site,
                      fun () ->
                        decision_rpc fed ~gid ~site:b.site ~label:"commit" (fun () ->
                            resolve_prepared_durably fed ~site:b.site
                              ~txn_id:(Db.txn_id txn) ~commit:true;
                            graph_local fed ~gid ~site:b.site ~compensation:false
                              txn;
                            Trace.record fed.trace ~actor:b.site (ev gid "committed");
                            "finished") )
                | _, (Read_only | No _) -> None)
              votes))
    end
    else
      (* Presumed abort: no stable decision record, and the abort messages
         need no acknowledgement. *)
      obs_phase fed obs ~gid Span.Local_commit (fun _ ->
          ignore
            (fanout fed
               (List.filter_map
                  (function
                    | (b : Global.branch), Ready txn ->
                      Some
                        ( b.site,
                          fun () ->
                            decision_send fed ~gid ~site:b.site ~label:"abort"
                              (fun () ->
                                resolve_prepared_durably fed ~site:b.site
                                  ~txn_id:(Db.txn_id txn) ~commit:false;
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "aborted")) )
                    | _, (Read_only | No _) -> None)
                  votes)));
    Federation.journal_close fed ~gid;
    let outcome =
      if decide_commit then Global.Committed else Global.Aborted (Option.get abort_cause)
    in
    finish fed ~gid ~start ~obs outcome
