module Lock = Icdb_lock.Lock_table
module Site = Icdb_net.Site
module Db = Icdb_localdb.Engine
open Protocol_common

type summary = {
  entries_recovered : int;
  decisions_pushed : int;
  locals_aborted : int;
  branches_redone : int;
  branches_undone : int;
}

let pp_summary fmt s =
  Format.fprintf fmt
    "recovered %d entries: %d decisions pushed, %d locals aborted, %d redone, %d undone"
    s.entries_recovered s.decisions_pushed s.locals_aborted s.branches_redone
    s.branches_undone

let crash (fed : Federation.t) =
  Lock.reset fed.global_cc;
  Lock.reset fed.l1_locks;
  (* a central crash takes the whole volatile CC state with it, the shard
     coordinators' tables included; per-shard crashes go through
     {!Federation.shard_crash} instead *)
  Array.iter
    (fun (sh : Federation.shard) ->
      Lock.reset sh.sh_cc;
      Lock.reset sh.sh_l1)
    fed.shards

(* Same marker scheme as Commit_before_mlt. *)
let action_marker ~gid ~seq = "__am:" ^ string_of_int gid ^ ":" ^ string_of_int seq

(* Shared per-entry resolution: push [decision] to the entry's branches and
   action-log records, restricted to sites satisfying [site_ok] (always
   true for whole-federation recovery; a shard's member set when a shard
   coordinator recovers a cross-shard mirror, so it only touches its own
   slice). All paths are marker-guarded/idempotent, so overlapping recovery
   passes — or recovery racing the still-running top-level coordinator —
   converge on the same state. *)
let resolve_entry (fed : Federation.t) ~gid ~(entry : Federation.journal_entry)
    ~decision ~site_ok ~pushed ~aborted ~redone ~undone =
  let resolve_or_abort site_name txn_id =
    let site = Federation.site fed site_name in
    Site.await_up site;
    let db = Site.db site in
    if Db.abort_txn_id db ~txn_id then incr aborted
    else
      match Db.resolve_prepared db ~txn_id ~commit:decision with
      | () -> incr pushed
      | exception Failure _ -> () (* already finished before the crash *)
  in
  let undo_branch site_name =
    let db = Site.db (Federation.site fed site_name) in
    if Db.committed_value db (commit_marker ~gid) = Some 1 then begin
      let inverse =
        match
          List.find_opt
            (fun (e : Action_log.entry) -> e.site = site_name)
            (Action_log.entries fed.undo_log ~gid)
        with
        | Some e -> e.program
        | None -> failwith "Central_recovery: missing undo-log entry"
      in
      if
        persistently_apply fed ~gid ~site:site_name ~marker:(undo_marker ~gid ~seq:0)
          ~compensation:true
          ~on_attempt:(fun () -> Metrics.compensation fed.metrics)
          inverse
      then incr undone
    end
  in
  match entry.j_protocol with
  | "after" when decision ->
    (* Complete phase 2: any still-running original is rolled back and
       the branch re-executed from the redo-log unless its marker shows
       a commit already happened. *)
    List.iter
      (fun (e : Action_log.entry) ->
        if site_ok e.site then begin
          let site = Federation.site fed e.site in
          Site.await_up site;
          let db = Site.db site in
          List.iter
            (fun (s, txn_id) ->
              if s = e.site && Db.abort_txn_id db ~txn_id then incr aborted)
            entry.j_branches;
          if
            persistently_apply fed ~gid ~site:e.site ~marker:(commit_marker ~gid)
              ~compensation:false
              ~on_attempt:(fun () -> Metrics.repetition fed.metrics)
              e.program
          then incr redone
        end)
      (Action_log.entries fed.redo_log ~gid)
  | "mlt" ->
    if not decision then begin
      (* Undo committed actions in reverse order; the per-action marker
         tells which ones committed. *)
      let actions = Action_log.entries fed.mlt_undo_log ~gid in
      List.rev (List.mapi (fun seq e -> (seq, e)) actions)
      |> List.iter (fun (seq, (e : Action_log.entry)) ->
             if site_ok e.site then begin
               let site = Federation.site fed e.site in
               Site.await_up site;
               let db = Site.db site in
               (* roll back a still-running action first *)
               List.iter
                 (fun (s, txn_id) ->
                   if s = e.site && Db.abort_txn_id db ~txn_id then incr aborted)
                 entry.j_branches;
               if Db.committed_value db (action_marker ~gid ~seq) = Some 1 then
                 if
                   persistently_apply fed ~gid ~site:e.site
                     ~marker:(undo_marker ~gid ~seq) ~compensation:true
                     ~on_attempt:(fun () -> Metrics.compensation fed.metrics)
                     e.program
                 then incr undone
             end)
    end
  | _ ->
    (* 2pc and commitment-before shapes (incl. presumed-abort and hybrid
       variants): resolve prepared locals, abort orphaned running ones,
       and on a (presumed) abort compensate unilaterally committed
       commitment-before locals. *)
    List.iter
      (fun (site, txn_id) -> if site_ok site then resolve_or_abort site txn_id)
      entry.j_branches;
    if not decision then
      List.iter
        (fun (e : Action_log.entry) -> if site_ok e.site then undo_branch e.site)
        (Action_log.entries fed.undo_log ~gid)

(* The last word on an in-doubt gid before abort is presumed: with Paxos
   Commit installed, ask the acceptor quorum — an accepted value there is a
   decision the crashed coordinator made durable even though its own journal
   never saw it. *)
let quorum_decision (fed : Federation.t) ~gid =
  match fed.decision_recover with Some read -> read ~gid | None -> None

let recover (fed : Federation.t) =
  let pushed = ref 0 and aborted = ref 0 and redone = ref 0 and undone = ref 0 in
  let entries = Federation.journal_open_entries fed in
  List.iter
    (fun ((gid : int), (entry : Federation.journal_entry)) ->
      let decision =
        match entry.j_phase with
        | Federation.Decided d -> d
        | Federation.Executing -> (
          (* a decision forced at any coordinator (e.g. the top level, with
             the shard-decide push lost) beats the presumption of abort *)
          match Federation.decision fed ~gid with
          | Some d -> d
          | None -> (
            match quorum_decision fed ~gid with
            | Some d -> d
            | None -> false (* presumed abort *)))
      in
      resolve_entry fed ~gid ~entry ~decision
        ~site_ok:(fun _ -> true)
        ~pushed ~aborted ~redone ~undone;
      Action_log.remove fed.redo_log ~gid;
      Action_log.remove fed.undo_log ~gid;
      Action_log.remove fed.mlt_undo_log ~gid;
      Serialization_graph.record_outcome fed.graph ~gid ~committed:decision;
      Federation.journal_close fed ~gid)
    entries;
  {
    entries_recovered = List.length entries;
    decisions_pushed = !pushed;
    locals_aborted = !aborted;
    branches_redone = !redone;
    branches_undone = !undone;
  }

(* Restart recovery of one shard coordinator, independent of the others.

   Two kinds of entries can be open in a shard's journal:

   - The shard's own transactions (single-shard fast path): the shard
     coordinator is their only coordinator, so they are resolved exactly as
     {!recover} would — push a [Decided] phase, presume abort otherwise —
     and closed.

   - Mirrors of cross-shard transactions: the shard is an L1 participant;
     the authority is the top-level decision log. A recorded top decision
     (the crash hit between the top-level force and this shard's
     "shard-decide" ack) is pushed to this shard's branches and the mirror
     retired. No top decision yet means the transaction is in doubt at this
     shard — it stays open for the top-level coordinator to finish (its
     close retires the mirror), which is the blocking window atomic
     commitment cannot avoid. *)
let recover_shard (fed : Federation.t) ~shard =
  if shard < 0 || shard >= Array.length fed.shards then
    invalid_arg "Central_recovery.recover_shard";
  let sh = fed.shards.(shard) in
  let pushed = ref 0 and aborted = ref 0 and redone = ref 0 and undone = ref 0 in
  let entries =
    Hashtbl.fold (fun gid e acc -> (gid, e) :: acc) sh.sh_journal []
    |> List.sort compare
  in
  let recovered = ref 0 in
  List.iter
    (fun ((gid : int), (entry : Federation.journal_entry)) ->
      let local = match Federation.route fed gid with Some [| _ |] -> true | _ -> false in
      let decision =
        match entry.j_phase with
        | Federation.Decided d -> Some d
        | Federation.Executing ->
          let logged =
            match Federation.decision fed ~gid with
            | Some d -> Some d
            | None -> quorum_decision fed ~gid
          in
          if local then Some (Option.value ~default:false logged) else logged
      in
      match decision with
      | None -> () (* cross-shard, in doubt: wait for the top level *)
      | Some d ->
        incr recovered;
        let site_ok site =
          local || List.mem site sh.sh_sites
        in
        resolve_entry fed ~gid ~entry ~decision:d ~site_ok ~pushed ~aborted ~redone
          ~undone;
        (* the shard learns (and keeps) the decision it just applied *)
        Hashtbl.replace sh.sh_decision_log gid d;
        if local then begin
          Action_log.remove fed.redo_log ~gid;
          Action_log.remove fed.undo_log ~gid;
          Action_log.remove fed.mlt_undo_log ~gid;
          Serialization_graph.record_outcome fed.graph ~gid ~committed:d;
          Federation.journal_close fed ~gid
        end
        else
          (* retire only this shard's mirror; the top-level entry, action
             logs and graph outcome belong to the top-level coordinator *)
          Hashtbl.remove sh.sh_journal gid)
    entries;
  {
    entries_recovered = !recovered;
    decisions_pushed = !pushed;
    locals_aborted = !aborted;
    branches_redone = !redone;
    branches_undone = !undone;
  }

(* Completion of ONE in-doubt transaction by a freshly elected Paxos leader,
   without waiting for the crashed coordinator's full restart recovery. The
   caller ({!Paxos_commit}) has already driven the prepare/accept rounds, so
   by the time this runs the decision is durable at the acceptor quorum and
   {!Federation.t.decision_recover} can read it back. Everything below is
   the per-entry tail of {!recover}, restricted to [gid]; marker guards make
   it idempotent and safe to race a later whole-federation [recover]. *)
let takeover (fed : Federation.t) ~gid =
  let entry_opt =
    match Federation.route fed gid with
    | Some [| s |] -> Hashtbl.find_opt fed.shards.(s).sh_journal gid
    | Some _ | None -> Hashtbl.find_opt fed.journal gid
  in
  match entry_opt with
  | None -> false (* already closed: nothing was in doubt *)
  | Some entry ->
    let decision =
      match entry.j_phase with
      | Federation.Decided d -> d
      | Federation.Executing -> (
        match Federation.decision fed ~gid with
        | Some d -> d
        | None -> (
          match quorum_decision fed ~gid with
          | Some d -> d
          | None -> false (* presumed abort, as [recover] would *)))
    in
    let pushed = ref 0 and aborted = ref 0 and redone = ref 0 and undone = ref 0 in
    resolve_entry fed ~gid ~entry ~decision
      ~site_ok:(fun _ -> true)
      ~pushed ~aborted ~redone ~undone;
    Action_log.remove fed.redo_log ~gid;
    Action_log.remove fed.undo_log ~gid;
    Action_log.remove fed.mlt_undo_log ~gid;
    Federation.log_decision fed ~gid ~commit:decision;
    Serialization_graph.record_outcome fed.graph ~gid ~committed:decision;
    Federation.journal_close fed ~gid;
    true
