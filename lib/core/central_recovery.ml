module Lock = Icdb_lock.Lock_table
module Site = Icdb_net.Site
module Db = Icdb_localdb.Engine
open Protocol_common

type summary = {
  entries_recovered : int;
  decisions_pushed : int;
  locals_aborted : int;
  branches_redone : int;
  branches_undone : int;
}

let pp_summary fmt s =
  Format.fprintf fmt
    "recovered %d entries: %d decisions pushed, %d locals aborted, %d redone, %d undone"
    s.entries_recovered s.decisions_pushed s.locals_aborted s.branches_redone
    s.branches_undone

let crash (fed : Federation.t) =
  Lock.reset fed.global_cc;
  Lock.reset fed.l1_locks

(* Same marker scheme as Commit_before_mlt. *)
let action_marker ~gid ~seq = "__am:" ^ string_of_int gid ^ ":" ^ string_of_int seq

let recover (fed : Federation.t) =
  let pushed = ref 0 and aborted = ref 0 and redone = ref 0 and undone = ref 0 in
  let entries = Federation.journal_open_entries fed in
  List.iter
    (fun ((gid : int), (entry : Federation.journal_entry)) ->
      let decision =
        match entry.j_phase with
        | Federation.Decided d -> d
        | Federation.Executing -> false (* presumed abort *)
      in
      let resolve_or_abort site_name txn_id =
        let site = Federation.site fed site_name in
        Site.await_up site;
        let db = Site.db site in
        if Db.abort_txn_id db ~txn_id then incr aborted
        else
          match Db.resolve_prepared db ~txn_id ~commit:decision with
          | () -> incr pushed
          | exception Failure _ -> () (* already finished before the crash *)
      in
      let undo_branch site_name =
        let db = Site.db (Federation.site fed site_name) in
        if Db.committed_value db (commit_marker ~gid) = Some 1 then begin
          let inverse =
            match
              List.find_opt
                (fun (e : Action_log.entry) -> e.site = site_name)
                (Action_log.entries fed.undo_log ~gid)
            with
            | Some e -> e.program
            | None -> failwith "Central_recovery: missing undo-log entry"
          in
          if
            persistently_apply fed ~gid ~site:site_name ~marker:(undo_marker ~gid ~seq:0)
              ~compensation:true
              ~on_attempt:(fun () -> Metrics.compensation fed.metrics)
              inverse
          then incr undone
        end
      in
      (match entry.j_protocol with
      | "after" when decision ->
        (* Complete phase 2: any still-running original is rolled back and
           the branch re-executed from the redo-log unless its marker shows
           a commit already happened. *)
        List.iter
          (fun (e : Action_log.entry) ->
            let site = Federation.site fed e.site in
            Site.await_up site;
            let db = Site.db site in
            List.iter
              (fun (s, txn_id) ->
                if s = e.site && Db.abort_txn_id db ~txn_id then incr aborted)
              entry.j_branches;
            if
              persistently_apply fed ~gid ~site:e.site ~marker:(commit_marker ~gid)
                ~compensation:false
                ~on_attempt:(fun () -> Metrics.repetition fed.metrics)
                e.program
            then incr redone)
          (Action_log.entries fed.redo_log ~gid)
      | "mlt" ->
        if not decision then begin
          (* Undo committed actions in reverse order; the per-action marker
             tells which ones committed. *)
          let actions = Action_log.entries fed.mlt_undo_log ~gid in
          List.rev (List.mapi (fun seq e -> (seq, e)) actions)
          |> List.iter (fun (seq, (e : Action_log.entry)) ->
                 let site = Federation.site fed e.site in
                 Site.await_up site;
                 let db = Site.db site in
                 (* roll back a still-running action first *)
                 List.iter
                   (fun (s, txn_id) ->
                     if s = e.site && Db.abort_txn_id db ~txn_id then incr aborted)
                   entry.j_branches;
                 if Db.committed_value db (action_marker ~gid ~seq) = Some 1 then
                   if
                     persistently_apply fed ~gid ~site:e.site
                       ~marker:(undo_marker ~gid ~seq) ~compensation:true
                       ~on_attempt:(fun () -> Metrics.compensation fed.metrics)
                       e.program
                   then incr undone)
        end
      | _ ->
        (* 2pc and commitment-before shapes (incl. presumed-abort and hybrid
           variants): resolve prepared locals, abort orphaned running ones,
           and on a (presumed) abort compensate unilaterally committed
           commitment-before locals. *)
        List.iter (fun (site, txn_id) -> resolve_or_abort site txn_id) entry.j_branches;
        if not decision then
          List.iter
            (fun (e : Action_log.entry) -> undo_branch e.site)
            (Action_log.entries fed.undo_log ~gid));
      Action_log.remove fed.redo_log ~gid;
      Action_log.remove fed.undo_log ~gid;
      Action_log.remove fed.mlt_undo_log ~gid;
      Serialization_graph.record_outcome fed.graph ~gid ~committed:decision;
      Federation.journal_close fed ~gid)
    entries;
  {
    entries_recovered = List.length entries;
    decisions_pushed = !pushed;
    locals_aborted = !aborted;
    branches_redone = !redone;
    branches_undone = !undone;
  }
