(** Recovery of the {e central} system.

    The paper assumes the global transaction manager survives; this module
    answers the obvious follow-up — what if it does not? The central
    system's stable state is the decision log, the per-transaction protocol
    {!Federation.journal}, and the redo-/undo-logs. Its volatile state —
    the additional CC module's lock table, the L1 lock table, and every
    in-flight protocol fiber — is lost by {!crash}.

    {!recover} then completes every journaled transaction:

    - entries still [Executing] are {b presumed aborted} (no decision was
      ever logged, so no site can have been told to commit … except
      commitment-before locals, which commit unilaterally — those are
      detected via their database-resident commit markers and compensated);
    - [Decided] entries have their outcome {b pushed to completion}:
      prepared locals are resolved, orphaned running locals rolled back,
      missing commitment-after locals re-executed from the redo-log, and
      committed locals of aborted transactions undone from the undo-log.

    All repair work is marker-guarded, so recovering twice — or crashing
    during recovery and recovering again — never double-applies. *)

type summary = {
  entries_recovered : int;  (** journal entries processed *)
  decisions_pushed : int;  (** prepared locals resolved with the decision *)
  locals_aborted : int;  (** orphaned running locals rolled back *)
  branches_redone : int;  (** commitment-after locals completed by redo *)
  branches_undone : int;  (** committed locals compensated *)
}

val pp_summary : Format.formatter -> summary -> unit

(** [crash fed] discards the central system's volatile state: both central
    lock tables are reset (blocked requesters are woken with
    [Lock_revoked]), and in a sharded federation every shard coordinator's
    CC/L1 tables with them (a whole-federation crash subsumes the shard
    coordinators). In-flight protocol fibers are {e not} magically
    stopped — simulate the crash of their control flow by installing a
    raising [fed.central_fail] hook. For a crash of {e one} shard
    coordinator use {!Federation.shard_crash} + {!recover_shard}. *)
val crash : Federation.t -> unit

(** [recover fed] walks the journal — top-level and every shard journal,
    in a sharded federation — and completes every open transaction; must
    run in a fiber (repairs execute local transactions and may wait for
    site recoveries). An [Executing] entry whose decision {e was} forced at
    some coordinator (e.g. the top level decided but the shard-decide push
    was lost) is completed with that decision rather than presumed aborted.
    Idempotent. *)
val recover : Federation.t -> summary

(** [recover_shard fed ~shard] restart-recovers one shard coordinator,
    independent of the rest of the federation. Entries in the shard's
    journal are handled by kind:

    - single-shard transactions (the fast path — this coordinator is their
      only coordinator) are completed exactly as {!recover} would: decided
      entries pushed, [Executing] ones presumed aborted;
    - mirrors of cross-shard transactions defer to the top-level decision
      log: a recorded decision (the crash hit between the top-level force
      and this shard's ack) is pushed to {e this shard's branches only} and
      the mirror retired; without one the entry stays open, in doubt, until
      the top-level coordinator finishes — the blocking window atomic
      commitment cannot avoid.

    [summary.entries_recovered] counts entries completed here, excluding
    in-doubt mirrors left open. Idempotent, and safe to interleave with
    {!recover}. Raises [Invalid_argument] on an out-of-range shard id. *)
val recover_shard : Federation.t -> shard:int -> summary

(** [takeover fed ~gid] completes one in-doubt transaction as a freshly
    elected Paxos leader would: decision from the journal phase, the
    decision logs, or the acceptor quorum ([fed.decision_recover]) — abort
    presumed only when all three are silent — then the entry is resolved,
    logged and closed exactly as {!recover} does per entry. Returns [false]
    (and does nothing) when the entry is already closed. Must run in a
    fiber; idempotent and safe to race a later {!recover}. *)
val takeover : Federation.t -> gid:int -> bool
