module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span

(* Paxos Commit (Gray & Lamport) over the federation's decision log: the
   per-transaction commit/abort record — the one thing 2PC forces at a
   single coordinator — becomes a consensus instance replicated across
   2F+1 acceptor sites. The coordinator of a gid is that instance's initial
   leader and owns ballot 0, so the fault-free fast path is a single accept
   round (no prepare); a crashed leader is replaced by a new one that runs
   the classic prepare/accept rounds at a higher ballot and completes the
   transaction from whatever the acceptor quorum remembers
   ({!Central_recovery.takeover}). Acceptor state is per-site stable
   storage: it survives site crashes exactly like the WAL and decision log
   do, but a down acceptor answers nothing until its restart. *)

module Acceptor = struct
  (* One consensus instance (= one gid) at one acceptor. [promised] is the
     highest ballot this acceptor will still vote in; [accepted] the last
     (ballot, value) it voted for. Both are forced before they are ever
     acknowledged, which is what [forces] counts. *)
  type instance = {
    mutable promised : int;
    mutable accepted : (int * bool) option;
  }

  type t = {
    site : Site.t;
    instances : (int, instance) Hashtbl.t;
    mutable forces : int;
  }

  let create site = { site; instances = Hashtbl.create 64; forces = 0 }
  let name t = Site.name t.site
  let forces t = t.forces

  let instance t ~gid =
    match Hashtbl.find_opt t.instances gid with
    | Some i -> i
    | None ->
      let i = { promised = -1; accepted = None } in
      Hashtbl.add t.instances gid i;
      i

  let accepted t ~gid =
    match Hashtbl.find_opt t.instances gid with
    | Some i -> i.accepted
    | None -> None

  (* Phase 2a/2b: vote for (ballot, value) unless a higher ballot was
     promised. A vote is forced to stable storage before the ack. *)
  let receive_accept t ~gid ~ballot ~value =
    let i = instance t ~gid in
    if ballot >= i.promised then begin
      i.promised <- ballot;
      i.accepted <- Some (ballot, value);
      t.forces <- t.forces + 1;
      true
    end
    else false

  (* Phase 1a/1b: promise [ballot] (forced) and report the last accepted
     vote, or reject if an equal-or-higher ballot was already promised. *)
  type promise = Rejected | Promised of (int * bool) option

  let receive_prepare t ~gid ~ballot =
    let i = instance t ~gid in
    if ballot > i.promised then begin
      i.promised <- ballot;
      t.forces <- t.forces + 1;
      Promised i.accepted
    end
    else Rejected
end

(* An acceptor group: the 2F+1 sites replicating one coordinator's decision
   log. The leader is co-located with the coordinator (the paper's
   co-location optimization: the leader's own vote costs no message), but
   for symmetry and simpler accounting every group member — leader
   included — is reached through its site link. *)
type group = { members : Acceptor.t array }

type t = {
  fed : Federation.t;
  acceptors : int;
  failover_delay : float;
  central_group : group;
  shard_groups : group array;
  ballots : (int, int) Hashtbl.t;  (* gid -> highest ballot issued here *)
  mutable rounds : int;  (* accept rounds driven (ballot 0 and recovery) *)
  mutable failovers : int;
  rounds_c : Registry.counter;
  forces_c : Registry.counter;
  failovers_c : Registry.counter;
}

let quorum group = (Array.length group.members / 2) + 1

(* The group owning a gid's consensus instance mirrors the journal routing:
   the shard group on the single-shard fast path, the central group for
   everything else. *)
let group_for t ~gid =
  match Federation.route t.fed gid with
  | Some [| s |] when s < Array.length t.shard_groups -> t.shard_groups.(s)
  | Some _ | None -> t.central_group

(* Run [call] against every group member in its own fiber; resume the
   caller once [quorum] members voted yes, or — so the wait always ends —
   once every member has answered. Late acks land on a single-use resumer
   and are no-ops; a fiber blocked on a crashed acceptor's [Site.await_up]
   finishes after the site restarts and keeps the engine drainable. *)
let quorum_round group ~call =
  let n = Array.length group.members in
  let need = quorum group in
  Fiber.await (fun resume ->
      let acked = ref 0 and responded = ref 0 in
      Array.iter
        (fun acc ->
          Fiber.spawn
            (Site.engine acc.Acceptor.site)
            (fun () ->
              let ok = try call acc with Link.Unreachable _ -> false in
              if ok then incr acked;
              incr responded;
              if !acked >= need then resume (Ok true)
              else if !responded = n then resume (Ok (!acked >= need))))
        group.members)

(* One accept round at [ballot]: the fault-free commit path when the
   coordinator (ballot 0, phase 1 skipped) calls it from [journal_decide],
   and the second half of a new leader's recovery otherwise. The calling
   fiber blocks until the value is durable at a quorum. *)
let accept_round t ~gid ~ballot ~value =
  t.rounds <- t.rounds + 1;
  Registry.inc t.rounds_c;
  let group = group_for t ~gid in
  ignore
    (quorum_round group ~call:(fun acc ->
         Link.rpc ~gid (Site.link acc.site) ~label:"paxos-accept" (fun () ->
             Site.await_up acc.site;
             let ok = Acceptor.receive_accept acc ~gid ~ballot ~value in
             if ok then Registry.inc t.forces_c;
             ("paxos-accepted", ok))))

let replicate t ~gid ~commit = accept_round t ~gid ~ballot:0 ~value:commit

(* What the acceptor quorum remembers about a gid: the highest-ballot
   accepted value, if any acceptor voted. This is a stable-storage read —
   recovery reading the replicated log — so it costs no messages; the
   message-paying ballot protocol is {!failover} below. *)
let read_decision t ~gid =
  let group = group_for t ~gid in
  let best = ref None in
  Array.iter
    (fun acc ->
      match Acceptor.accepted acc ~gid with
      | Some (b, v) -> (
        match !best with
        | Some (b', _) when b' >= b -> ()
        | _ -> best := Some (b, v))
      | None -> ())
    group.members;
  Option.map snd !best

let next_ballot t ~gid =
  let b = 1 + Option.value ~default:0 (Hashtbl.find_opt t.ballots gid) in
  Hashtbl.replace t.ballots gid b;
  b

(* Is the gid's journal entry still open (anywhere)? A closed entry means
   the transaction finished and there is nothing to fail over. *)
let still_open t ~gid =
  let fed = t.fed in
  match Federation.route fed gid with
  | Some [| s |] -> Hashtbl.mem fed.shards.(s).Federation.sh_journal gid
  | Some _ | None -> Hashtbl.mem fed.Federation.journal gid

(* New-leader election for one in-doubt transaction, triggered by a fault
   injector right after it simulated the coordinator's crash. After a
   failover delay (detection + election), the new leader runs phase 1 at a
   higher ballot over the quorum, re-proposes whatever value the quorum
   remembers (abort when it remembers nothing — presumed abort), makes it
   durable with an accept round, and completes the transaction via
   {!Central_recovery.takeover} — all without waiting for the crashed
   coordinator to restart. *)
let failover t ~gid =
  t.failovers <- t.failovers + 1;
  Registry.inc t.failovers_c;
  let fed = t.fed in
  Fiber.spawn fed.Federation.engine (fun () ->
      Fiber.sleep fed.Federation.engine t.failover_delay;
      if still_open t ~gid then begin
        let ballot = next_ballot t ~gid in
        let group = group_for t ~gid in
        let promised =
          quorum_round group ~call:(fun acc ->
              Link.rpc ~gid (Site.link acc.site) ~label:"paxos-prepare" (fun () ->
                  Site.await_up acc.site;
                  match Acceptor.receive_prepare acc ~gid ~ballot with
                  | Acceptor.Promised _ ->
                    Registry.inc t.forces_c;
                    ("paxos-promise", true)
                  | Acceptor.Rejected -> ("paxos-promise", false)))
        in
        if promised && still_open t ~gid then begin
          (* ballot rule: a value the quorum accepted must be re-proposed;
             a silent quorum leaves the choice free and the new leader
             presumes abort — unless the old leader's stable log already
             decided (it is readable here: the site hosting it survives) *)
          let value =
            match read_decision t ~gid with
            | Some v -> v
            | None ->
              Option.value ~default:false (Federation.decision fed ~gid)
          in
          accept_round t ~gid ~ballot ~value;
          if Tracer.enabled fed.Federation.tracer then
            Tracer.instant fed.Federation.tracer
              ~actor:(Federation.gid_actor fed ~gid)
              (Span.Mark "paxos-failover");
          ignore (Central_recovery.takeover fed ~gid)
        end
      end)

let acceptor_forces t =
  let seen = Hashtbl.create 16 in
  let sum = ref 0 in
  let add g =
    Array.iter
      (fun acc ->
        let n = Acceptor.name acc in
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          sum := !sum + Acceptor.forces acc
        end)
      g.members
  in
  add t.central_group;
  Array.iter add t.shard_groups;
  !sum

let rounds t = t.rounds
let failovers t = t.failovers
let group_size t = t.acceptors

let install ?(failover_delay = 25.0) fed ~acceptors =
  if acceptors < 1 || acceptors mod 2 = 0 then
    invalid_arg "Paxos_commit.install: acceptors must be odd (2F+1)";
  let sites = fed.Federation.sites in
  if acceptors > List.length sites then
    invalid_arg "Paxos_commit.install: more acceptors than sites";
  (* One acceptor object per site, shared between groups: a gid's instance
     lives in exactly one group, so sharing only merges the force counts. *)
  let by_site = Hashtbl.create 16 in
  let acceptor_at (name, site) =
    match Hashtbl.find_opt by_site name with
    | Some a -> a
    | None ->
      let a = Acceptor.create site in
      Hashtbl.add by_site name a;
      a
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  (* Deterministic groups, recomputable with no shared state: the central
     group is the first 2F+1 sites (the central system co-located with
     acceptor 0); a shard's group is the first min(2F+1, |shard|) members,
     led by the shard coordinator. *)
  let central_group =
    { members = Array.of_list (List.map acceptor_at (take acceptors sites)) }
  in
  let shard_groups =
    Array.map
      (fun (sh : Federation.shard) ->
        let members =
          take acceptors sh.sh_sites
          |> List.map (fun name -> acceptor_at (name, Federation.site fed name))
        in
        { members = Array.of_list members })
      fed.Federation.shards
  in
  let registry = fed.Federation.registry in
  let t =
    {
      fed;
      acceptors;
      failover_delay;
      central_group;
      shard_groups;
      ballots = Hashtbl.create 16;
      rounds = 0;
      failovers = 0;
      (* created here, at install: federations without Paxos register no
         paxos metrics and keep their snapshots byte-identical *)
      rounds_c = Registry.counter registry "icdb_paxos_rounds_total";
      forces_c = Registry.counter registry "icdb_paxos_acceptor_forces_total";
      failovers_c = Registry.counter registry "icdb_paxos_failovers_total";
    }
  in
  fed.Federation.decision_replicator <- Some (fun ~gid ~commit -> replicate t ~gid ~commit);
  fed.Federation.decision_recover <- Some (fun ~gid -> read_decision t ~gid);
  fed.Federation.leader_failover <- (fun ~gid -> failover t ~gid);
  t
