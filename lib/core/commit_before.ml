module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Span = Icdb_obs.Span
open Protocol_common

type local_state = Locally_committed | Locally_aborted of Global.abort_cause

(* Run the inverse transaction for a branch until it commits, guarded by the
   undo marker (idempotence across crashes: §3.3's "doubly undone" hazard). *)
let undo_until_done (fed : Federation.t) ~gid ~obs (b : Global.branch) =
  let inverse =
    match
      List.find_opt
        (fun (e : Action_log.entry) -> e.site = b.site)
        (Action_log.entries fed.undo_log ~gid)
    with
    | Some entry -> entry.program
    | None -> failwith "Commit_before: missing undo-log entry"
  in
  obs_phase fed obs ~gid ~actor:b.site Span.Compensate (fun _ ->
      ignore
        (persistently_apply fed ~gid ~site:b.site ~marker:(undo_marker ~gid ~seq:0)
           ~compensation:true
           ~on_attempt:(fun () ->
             Metrics.compensation fed.metrics;
             Trace.record fed.trace ~actor:b.site (ev gid "undo-execution"))
           inverse))

let run (fed : Federation.t) (spec : Global.spec) =
  let gid = spec.gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (b : Global.branch) -> b.site) spec.branches)
    ~gid ~protocol:"before";
  let obs = obs_begin fed ~gid ~protocol:"before" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  if not (acquire_global_locks fed ~gid spec) then begin
    Federation.journal_close fed ~gid;
    finish fed ~gid ~start ~obs (Aborted Global_cc_denied)
  end
  else begin
    (* Execute every branch; the communication manager commits the local
       transaction as soon as its last action finishes. *)
    let results =
      obs_phase fed obs ~gid Span.Execute @@ fun _ ->
      fanout fed
        (List.map
           (fun (b : Global.branch) ->
             ( b.site,
               fun () ->
             let site = Federation.site fed b.site in
             let db = Site.db site in
             Link.rpc ~gid (Site.link site) ~label:"execute" (fun () ->
                 match Db.begin_txn_opt db with
                 | None ->
                   ( "execute-failed",
                     ( b,
                       Locally_aborted
                         (Global.Local_abort { site = b.site; reason = Db.Site_crashed })
                     ) )
                 | Some txn -> (
                   Federation.journal_branch fed ~gid ~site:b.site
                     ~txn_id:(Db.txn_id txn);
                   (* The commit marker materialises "this local committed"
                      inside the local database itself ([WV 90]); recovery —
                      site or central — reads it instead of guessing. *)
                   match
                     Program.run db txn
                       (b.program @ [ Program.Write (commit_marker ~gid, 1) ])
                   with
                   | Error r ->
                     Db.abort db txn;
                     ( "execute-failed",
                       (b, Locally_aborted (Global.Local_abort { site = b.site; reason = r }))
                     )
                   | Ok () ->
                     if not b.vote_commit then begin
                       Db.abort db txn;
                       ("executed-aborted", (b, Locally_aborted (Global.Voted_abort b.site)))
                     end
                     else begin
                       (* Undo-log entry first, then the unilateral local
                          commit. *)
                       let inverse = Program.inverse_of_accesses (Db.accesses txn) in
                       Action_log.append fed.undo_log ~gid
                         { site = b.site; program = inverse; tag = "inverse" };
                       match Db.commit db txn with
                       | Ok () ->
                         graph_local fed ~gid ~site:b.site ~compensation:false txn;
                         Trace.record fed.trace ~actor:b.site (ev gid "locally-committed");
                         ("executed-committed", (b, Locally_committed))
                       | Error r ->
                         ( "execute-failed",
                           ( b,
                             Locally_aborted
                               (Global.Local_abort { site = b.site; reason = r }) ) )
                     end))
             ))
           spec.branches)
    in
    fed.central_fail ~gid "executed";
    (* The inquiry: ask every site for the final state of its local. A
       crashed site answers after recovery. *)
    Trace.record fed.trace ~actor:coord (ev gid "inquire");
    let states =
      obs_phase fed obs ~gid Span.Vote @@ fun _ ->
      fanout fed
        (List.map
           (fun (result : Global.branch * local_state) ->
             let b, st = result in
             ( b.site,
               fun () ->
                 let site = Federation.site fed b.site in
                 Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                     Site.await_up site;
                     match st with
                     | Locally_committed -> ("committed", (b, st))
                     | Locally_aborted _ -> ("aborted", (b, st))) ))
           results)
    in
    let abort_cause =
      List.find_map
        (function _, Locally_aborted cause -> Some cause | _, Locally_committed -> None)
        states
    in
    fed.central_fail ~gid "voted";
    let decide_commit = Option.is_none abort_cause in
    Trace.record fed.trace ~actor:coord
      (ev gid (if decide_commit then "decision:commit" else "decision:abort"));
    Federation.journal_decide fed ~gid ~commit:decide_commit;
    obs_decision fed obs ~gid ~commit:decide_commit;
    fed.central_fail ~gid "decided";
    if not decide_commit then
      (* Mixed outcome: compensate every locally-committed branch. *)
      ignore
        (fanout fed
           (List.filter_map
              (function
                | (b : Global.branch), Locally_committed ->
                  Some
                    ( b.site,
                      fun () ->
                        decision_rpc fed ~gid ~site:b.site ~label:"undo" (fun () ->
                            undo_until_done fed ~gid ~obs b;
                            Trace.record fed.trace ~actor:b.site (ev gid "undone");
                            "finished") )
                | _, Locally_aborted _ -> None)
              states));
    Action_log.remove fed.undo_log ~gid;
    Federation.journal_close fed ~gid;
    release_global_locks fed ~gid;
    let outcome =
      if decide_commit then Global.Committed else Global.Aborted (Option.get abort_cause)
    in
    finish fed ~gid ~start ~obs outcome
  end
