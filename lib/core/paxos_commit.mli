(** Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit") over
    the federation's decision log.

    The commit/abort record that every protocol forces at one coordinator
    becomes a consensus instance replicated across 2F+1 acceptor sites, so
    a decision survives — and an in-doubt transaction can be completed by a
    {e new} leader — as long as F+1 acceptors are reachable. The gid's
    coordinator is its initial leader and owns ballot 0, making the
    fault-free path a single accept round (phase 1 skipped); leader
    recovery runs the classic prepare/accept ballots.

    {!install} wires the three {!Federation.t} hooks:
    [decision_replicator] (accept round replaces the coordinator's log
    force in [journal_decide]), [decision_recover] (quorum read consulted
    by {!Central_recovery} before abort is presumed), and
    [leader_failover] (new-leader election for one in-doubt gid). With
    nothing installed all three hooks stay at their defaults and every run
    is byte-identical to the single-coordinator code. *)

module Acceptor : sig
  (** One acceptor site's replicated decision-log fragment: per-gid
      (promised ballot, accepted vote) pairs on stable storage — they
      survive the site's crashes, but a down acceptor answers nothing until
      restart. *)
  type t

  val create : Icdb_net.Site.t -> t
  val name : t -> string

  (** Log forces this acceptor performed (one per promise, one per vote). *)
  val forces : t -> int

  (** Last accepted (ballot, value) vote for [gid], if any. *)
  val accepted : t -> gid:int -> (int * bool) option

  (** Phase 2b: vote for (ballot, value) and force, unless a higher ballot
      was promised. Returns whether the vote was cast. *)
  val receive_accept : t -> gid:int -> ballot:int -> value:bool -> bool

  type promise = Rejected | Promised of (int * bool) option

  (** Phase 1b: promise [ballot] (forced) and report the last accepted
      vote; [Rejected] if an equal-or-higher ballot was already promised. *)
  val receive_prepare : t -> gid:int -> ballot:int -> promise
end

type t

(** [install fed ~acceptors] replicates every decision over [acceptors]
    (= 2F+1, odd) sites and installs the federation hooks. The central
    group is the first 2F+1 sites; in a sharded federation each shard
    coordinator leads its own group over the shard's first min(2F+1, size)
    members (fast-path decisions replicate there, cross-shard ones at the
    central group). [failover_delay] (default 25.0) models crash detection
    plus election before a new leader acts. Registers the
    [icdb_paxos_*_total] counters — only here, so Paxos-free runs keep
    byte-identical metric snapshots. Raises [Invalid_argument] for an even
    or out-of-range group size. *)
val install : ?failover_delay:float -> Federation.t -> acceptors:int -> t

(** Group size (2F+1) this instance was installed with. *)
val group_size : t -> int

(** [replicate t ~gid ~commit] is the leader's ballot-0 accept round: the
    calling fiber blocks until the value is durable at an acceptor quorum
    (or every acceptor has answered). Exposed for tests; protocols reach it
    through [fed.decision_replicator] from [journal_decide]. *)
val replicate : t -> gid:int -> commit:bool -> unit

(** [read_decision t ~gid] is the quorum's memory of [gid]: the
    highest-ballot accepted value, or [None] when no acceptor ever voted
    (recovery then presumes abort). A stable-storage read; costs no
    messages. *)
val read_decision : t -> gid:int -> bool option

(** [failover t ~gid] elects this instance the gid's new leader: after the
    failover delay it runs prepare/accept at a fresh ballot (re-proposing
    the quorum's value, abort if the quorum is silent) and completes the
    transaction via {!Central_recovery.takeover}. Returns immediately — the
    work runs in its own fiber; a transaction that closes in the meantime
    is left alone. *)
val failover : t -> gid:int -> unit

(** Acceptor log forces across all groups (each acceptor counted once),
    accept rounds driven, and failovers triggered. *)
val acceptor_forces : t -> int

val rounds : t -> int
val failovers : t -> int
