module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Lock = Icdb_lock.Lock_table
module Mode = Icdb_lock.Mode
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Batcher = Icdb_net.Batcher
module Db = Icdb_localdb.Engine
module Log = Icdb_wal.Log
module Conflict = Icdb_mlt.Conflict
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span
module Symbol = Icdb_util.Symbol

type journal_phase = Executing | Decided of bool

type journal_entry = {
  j_protocol : string;
  mutable j_branches : (string * int) list;
  mutable j_phase : journal_phase;
}

(* Lifecycle notifications for the online monitors: the three journal
   choke points every protocol already routes through. *)
type journal_event =
  | J_opened of int
  | J_decided of { gid : int; commit : bool }
  | J_closed of int

(* One shard of a sharded federation: a contiguous group of sites whose
   first member doubles as the shard coordinator. The shard coordinator
   keeps its own stable journal and decision log (the L1 transaction
   manager of the paper's two-level split, acting as L0 coordinator for
   transactions confined to its shard) plus its own volatile CC state, so
   a shard-coordinator crash loses exactly this shard's lock tables and
   recovery can run per shard. *)
type shard = {
  sh_id : int;
  sh_name : string;  (* "shard-<id>": metric label and trace actor *)
  sh_coord : string;  (* coordinator site name (first member) *)
  sh_sites : string list;
  sh_journal : (int, journal_entry) Hashtbl.t;
  sh_decision_log : (int, bool) Hashtbl.t;
  sh_cc : Mode.t Lock.t;
  sh_l1 : Conflict.clazz Lock.t;
  mutable sh_forces : int;
  mutable sh_decisions : int;
  mutable sh_cgc_waiters : unit Fiber.resumer list;
  mutable sh_cgc_scheduled : bool;
  mutable sh_busy_until : float;  (* shard decision-log device (serial) *)
  sh_decided_c : Registry.counter;
  sh_forces_c : Registry.counter;
}

type t = {
  engine : Sim.t;
  engines : Sim.t array;
      (* distinct engines in partition order, central's first; length 1
         unless the simulation is partitioned over domains *)
  sites : (string * Site.t) list;
  by_name : (string, Site.t) Hashtbl.t;
  syms : Symbol.table;
      (* federation-level interner: global-CC and L1 lock objects; one per
         federation, so parallel sweep domains never share a table *)
  trace : Trace.t;
  registry : Registry.t;
  tracer : Tracer.t;
  metrics : Metrics.t;
  global_cc : Mode.t Lock.t;
  conflict : Conflict.t;
  l1_locks : Conflict.clazz Lock.t;
  redo_log : Action_log.t;
  undo_log : Action_log.t;
  mlt_undo_log : Action_log.t;
  decision_log : (int, bool) Hashtbl.t;
  journal : (int, journal_entry) Hashtbl.t;
  graph : Serialization_graph.t;
  mutable next_gid : int;
  mutable global_cc_enabled : bool;
  mutable central_fail : gid:int -> string -> unit;
  mutable journal_hook : journal_event -> unit;
  global_lock_timeout : float option;
  batchers : (string, Batcher.t) Hashtbl.t;
  central_gc_window : float option;
  mutable cgc_waiters : unit Fiber.resumer list;
  mutable cgc_scheduled : bool;
  mutable central_forces : int;
  mutable central_decisions : int;
  mutable central_force_hook : unit -> unit;
  (* protocol name -> per-phase [icdb_phase_time] histogram handles, filled
     lazily per slot so exactly the instruments the run uses exist — the
     hot path then skips the registry's per-call label-key allocation *)
  phase_hists : (string, Registry.histogram option array) Hashtbl.t;
  shards : shard array;  (* [||] = unsharded: every path below is untouched *)
  shard_of_site : (string, int) Hashtbl.t;
  gid_route : (int, int array) Hashtbl.t;
      (* gid -> sorted participating shard ids; a singleton routes the whole
         protocol round to that shard coordinator (the fast path), anything
         longer is a top-level transaction over the shard coordinators.
         Absent entries (and the whole table when unsharded) mean "central". *)
  decision_force_time : float option;
      (* service time of one decision-log force on its serial device; [None]
         models the force as instantaneous (the pre-sharding behavior) *)
  mutable central_busy_until : float;
  mutable decision_replicator : (gid:int -> commit:bool -> unit) option;
      (* Paxos Commit hook: when installed, [journal_decide] makes the
         decision durable by replicating it to the acceptor quorum instead
         of forcing the coordinator's own log. [None] (default) keeps the
         single-coordinator force byte-for-byte. *)
  mutable decision_recover : (gid:int -> bool option) option;
      (* quorum read of the replicated decision log: what a freshly elected
         leader (or restart recovery) can learn from the acceptors about an
         in-doubt gid. [None] when Paxos is off. *)
  mutable leader_failover : gid:int -> unit;
      (* elect-a-new-leader trigger for one in-doubt transaction; fault
         injectors call it right after simulating a coordinator crash.
         Default: no-op (a plain coordinator has no one to fail over to). *)
}

let default_conflict =
  Conflict.of_commuting_pairs
    [
      ("read", "read");
      ("increment", "increment");
      ("increment", "decrement");
      ("decrement", "decrement");
      ("deposit", "deposit");
      ("deposit", "withdraw");
      ("withdraw", "withdraw");
      ("deposit", "transfer-in");
      ("deposit", "transfer-out");
      ("withdraw", "transfer-in");
      ("withdraw", "transfer-out");
      ("transfer-in", "transfer-in");
      ("transfer-in", "transfer-out");
      ("transfer-out", "transfer-out");
      ("read-balance", "read-balance");
    ]

(* --- observability glue --------------------------------------------------

   The lower layers (sim, net, lock, wal, localdb) expose generic hooks and
   know nothing about [icdb_obs]; this is the one place those hooks are
   pointed at the federation's registry and tracer. All handles are created
   once here, so the per-event cost is an increment (counters) or a single
   branch (tracer disabled). *)

(* One handler per lock table, labelled by table name ("global-cc", "l1", or
   the site name for a local database's table). [names] is the symbol table
   the lock table's objects are interned against; an object is resolved back
   to its string only when the tracer is enabled and a span label is
   actually materialized. *)
let lock_handler t ~table ~names =
  let labels = [ ("table", table) ] in
  let wait_h = Registry.histogram t.registry ~labels "icdb_lock_wait_time" in
  let hold_h = Registry.histogram t.registry ~labels "icdb_lock_hold_time" in
  let acquired = Registry.counter t.registry ~labels "icdb_lock_acquisitions_total" in
  let outcome_counter o =
    Registry.counter t.registry
      ~labels:(("outcome", o) :: labels)
      "icdb_lock_wait_outcomes_total"
  in
  let granted_c = outcome_counter "granted"
  and timeout_c = outcome_counter "timeout"
  and deadlock_c = outcome_counter "deadlock"
  and cancelled_c = outcome_counter "cancelled" in
  fun (e : Lock.observer_event) ->
    match e with
    | Lock.Acquired _ -> Registry.inc acquired
    | Lock.Wait_started _ -> ()
    | Lock.Wait_ended { obj; outcome; waited; _ } ->
      Registry.observe wait_h waited;
      Registry.inc
        (match outcome with
        | `Granted -> granted_c
        | `Timeout -> timeout_c
        | `Deadlock -> deadlock_c
        | `Cancelled -> cancelled_c);
      if Tracer.enabled t.tracer then
        Tracer.complete_lock t.tracer ~actor:table
          ~start:(Sim.now t.engine -. waited)
          ~wait:true ~table ~obj:(Symbol.name names obj)
    | Lock.Released { obj; held; _ } ->
      Registry.observe hold_h held;
      if Tracer.enabled t.tracer then
        Tracer.complete_lock t.tracer ~actor:table
          ~start:(Sim.now t.engine -. held)
          ~wait:false ~table ~obj:(Symbol.name names obj)

let observe_site t site_name site =
  let db = Site.db site in
  (* Wire events: per-(site, label) counters cached so the hot path is one
     hashtable probe, not a key allocation. *)
  let sent_cache : (string, Registry.counter) Hashtbl.t = Hashtbl.create 16 in
  let dropped =
    Registry.counter t.registry ~labels:[ ("site", site_name) ]
      "icdb_messages_dropped_total"
  in
  Link.set_observer (Site.link site) (function
    | Link.Msg_sent { label } ->
      let c =
        match Hashtbl.find_opt sent_cache label with
        | Some c -> c
        | None ->
          let c =
            Registry.counter t.registry
              ~labels:[ ("site", site_name); ("label", label) ]
              "icdb_messages_total"
          in
          Hashtbl.replace sent_cache label c;
          c
      in
      Registry.inc c;
      if Tracer.enabled t.tracer then
        Tracer.instant_message t.tracer ~actor:site_name ~label
          ~direction:Span.Send
    | Link.Msg_received { label } ->
      if Tracer.enabled t.tracer then
        Tracer.instant_message t.tracer ~actor:site_name ~label
          ~direction:Span.Recv
    | Link.Msg_dropped { label } ->
      Registry.inc dropped;
      if Tracer.enabled t.tracer then
        Tracer.instant_message t.tracer ~actor:site_name ~label
          ~direction:Span.Drop);
  (* Local lock table (survives restarts via the stored listener). *)
  Db.set_lock_observer db (lock_handler t ~table:site_name ~names:(Db.symbols db));
  (* WAL forces — the log object itself survives crashes, so wiring once is
     enough. *)
  let forces =
    Registry.counter t.registry ~labels:[ ("site", site_name) ]
      "icdb_wal_forces_total"
  in
  (* the kind is per-site constant: build it once, not per force *)
  let wal_kind = Span.Wal_force { site = site_name } in
  Log.set_force_hook (Db.wal db) (fun () ->
      Registry.inc forces;
      Tracer.instant t.tracer ~actor:site_name wal_kind);
  (* Site outages: crash opens the window, recovery closes it with a
     retrospective span. A crash with no later restart stays a bare mark. *)
  let crashes =
    Registry.counter t.registry ~labels:[ ("site", site_name) ]
      "icdb_site_crashes_total"
  in
  let down_since = ref nan in
  Db.set_state_hook db (function
    | `Crash ->
      Registry.inc crashes;
      down_since := Sim.now t.engine;
      Tracer.instant t.tracer ~actor:site_name (Span.Mark "crash")
    | `Recovered ->
      if not (Float.is_nan !down_since) then
        Tracer.complete t.tracer ~actor:site_name ~start:!down_since
          (Span.Outage { site = site_name });
      down_since := nan)

let install_observability t =
  List.iter (fun (name, site) -> observe_site t name site) t.sites;
  Lock.set_observer t.global_cc (lock_handler t ~table:"global-cc" ~names:t.syms);
  Lock.set_observer t.l1_locks (lock_handler t ~table:"l1" ~names:t.syms);
  (* Per-shard CC modules get their own table label, so lock metrics split
     by shard; unsharded federations have no shards and add no metrics. *)
  Array.iter
    (fun sh ->
      Lock.set_observer sh.sh_cc
        (lock_handler t ~table:(sh.sh_name ^ "-cc") ~names:t.syms);
      Lock.set_observer sh.sh_l1
        (lock_handler t ~table:(sh.sh_name ^ "-l1") ~names:t.syms))
    t.shards;
  let sim_events = Registry.counter t.registry "icdb_sim_events_total" in
  (* Every partition engine feeds the same counters — totals aggregate over
     the whole simulation regardless of how it is partitioned. Execution is
     serialized across partitions, so plain increments are race-free. *)
  Array.iter
    (fun eng ->
      Sim.set_observer eng (fun () -> Registry.inc sim_events);
      (* Calendar-mode engine metrics are materialized on the first rebuild:
         seed-scale runs never cross the activation threshold, so creating
         them lazily keeps default-config metric snapshots byte-identical to
         pre-calendar ones. The counter is seeded with the events this
         engine already executed so it reads as a true lifetime total. *)
      let engine_events = ref None in
      Sim.set_resize_hook eng (fun ~buckets ~width:_ ~events ->
          let occupancy =
            Registry.histogram t.registry "icdb_engine_bucket_occupancy"
          in
          Registry.observe occupancy
            (float_of_int events /. float_of_int buckets);
          match !engine_events with
          | Some _ -> ()
          | None ->
            let c = Registry.counter t.registry "icdb_engine_events_total" in
            Registry.inc ~by:(Sim.executed eng) c;
            engine_events := Some c;
            Sim.set_observer eng (fun () ->
                Registry.inc sim_events;
                Registry.inc c)))
    t.engines

(* A window of 0 (or less) means "off": the feature must be byte-invisible
   unless positively enabled, so reports with the default config reproduce
   pre-batching output exactly. *)
let normalize_window = function
  | Some w when w > 0.0 -> Some w
  | Some _ | None -> None

let create engine ?site_engines ?(latency = 1.0) ?(loss = 0.0)
    ?(global_lock_timeout = Some 200.0) ?(conflict = default_conflict)
    ?registry ?tracer ?(msg_batch_window = None) ?(central_gc_window = None)
    ?(shards = 1) ?(decision_force_time = None) configs =
  let msg_batch_window = normalize_window msg_batch_window in
  let central_gc_window = normalize_window central_gc_window in
  let decision_force_time = normalize_window decision_force_time in
  if shards > List.length configs then
    invalid_arg "Federation.create: more shards than sites";
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let tracer =
    match tracer with
    | Some tr -> tr
    | None -> Tracer.create ~clock:(fun () -> Sim.now engine) ()
  in
  let metrics = Metrics.create registry in
  (* Per-site engine placement: under a partitioned simulation each site
     lives on its partition's engine; the central structures (global CC, L1,
     trace, batchers) stay on [engine]. Placement never changes the global
     (time, seq) execution order, only which domain runs an event. *)
  let site_engines =
    match site_engines with
    | None -> Array.make (List.length configs) engine
    | Some a ->
      if Array.length a <> List.length configs then
        invalid_arg "Federation.create: site_engines length <> #configs";
      a
  in
  let sites =
    List.mapi
      (fun i (config : Db.config) ->
        let site = Site.create site_engines.(i) ~latency ~loss config in
        Db.set_hold_time_hook (Site.db site) (fun ~obj:_ ~duration ->
            Metrics.observe_hold_time metrics duration);
        (config.site_name, site))
      configs
  in
  let engines =
    let distinct = ref [ engine ] in
    Array.iter
      (fun e -> if not (List.memq e !distinct) then distinct := e :: !distinct)
      site_engines;
    Array.of_list (List.rev !distinct)
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun (name, site) -> Hashtbl.replace by_name name site) sites;
  let syms = Symbol.create ~capacity:256 () in
  (* The L1 lock manager's compatibility checks run per acquisition; give
     the federation its own memoizing instance of the relation. *)
  let conflict = Conflict.memoized conflict in
  (* Shard layout: contiguous balanced blocks of sites in creation order
     (site i -> shard i*S/n), first member of each block is the shard
     coordinator. [shards = 1] builds nothing at all — the sharded code
     paths below are all behind [Array.length t.shards > 0], so unsharded
     federations take exactly the pre-sharding code. *)
  let shard_of_site = Hashtbl.create 16 in
  let shards_arr =
    if shards <= 1 then [||]
    else begin
      let names = Array.of_list (List.map (fun (c : Db.config) -> c.site_name) configs) in
      let n = Array.length names in
      Array.iteri (fun i name -> Hashtbl.replace shard_of_site name (i * shards / n)) names;
      Array.init shards (fun s ->
          let members =
            Array.to_list names
            |> List.filteri (fun i _ -> i * shards / n = s)
          in
          let sh_name = "shard-" ^ string_of_int s in
          {
            sh_id = s;
            sh_name;
            sh_coord = List.hd members;
            sh_sites = members;
            sh_journal = Hashtbl.create 64;
            sh_decision_log = Hashtbl.create 256;
            sh_cc =
              Lock.create engine ~syms ~compatible:Mode.compatible ~combine:Mode.combine;
            sh_l1 =
              Lock.create engine ~syms ~compatible:(Conflict.compatible conflict)
                ~combine:(Conflict.combine conflict);
            sh_forces = 0;
            sh_decisions = 0;
            sh_cgc_waiters = [];
            sh_cgc_scheduled = false;
            sh_busy_until = 0.0;
            sh_decided_c =
              Registry.counter registry ~labels:[ ("shard", sh_name) ]
                "icdb_shard_decisions_total";
            sh_forces_c =
              Registry.counter registry ~labels:[ ("shard", sh_name) ]
                "icdb_shard_decision_forces_total";
          })
    end
  in
  let t =
    {
      engine;
      engines;
      sites;
      by_name;
      syms;
      trace = Trace.create engine;
      registry;
      tracer;
      metrics;
      global_cc = Lock.create engine ~syms ~compatible:Mode.compatible ~combine:Mode.combine;
      conflict;
      l1_locks =
        Lock.create engine ~syms ~compatible:(Conflict.compatible conflict)
          ~combine:(Conflict.combine conflict);
      redo_log = Action_log.create ();
      undo_log = Action_log.create ();
      mlt_undo_log = Action_log.create ();
      decision_log = Hashtbl.create 256;
      journal = Hashtbl.create 64;
      graph = Serialization_graph.create ();
      next_gid = 0;
      global_cc_enabled = true;
      central_fail = (fun ~gid:_ _ -> ());
      journal_hook = (fun _ -> ());
      global_lock_timeout;
      batchers = Hashtbl.create 16;
      central_gc_window;
      cgc_waiters = [];
      cgc_scheduled = false;
      central_forces = 0;
      central_decisions = 0;
      central_force_hook = ignore;
      phase_hists = Hashtbl.create 8;
      shards = shards_arr;
      shard_of_site;
      gid_route = Hashtbl.create 64;
      decision_force_time;
      central_busy_until = 0.0;
      decision_replicator = None;
      decision_recover = None;
      leader_failover = (fun ~gid:_ -> ());
    }
  in
  install_observability t;
  (* Batching wiring is lazy on purpose: registry metrics exist from the
     moment they are created, so creating them only when the feature is on
     keeps default-config metric snapshots identical to pre-batching ones. *)
  (match msg_batch_window with
  | None -> ()
  | Some window ->
    List.iter
      (fun (name, site) ->
        let b = Batcher.create engine (Site.link site) ~window in
        let h =
          Registry.histogram registry ~labels:[ ("site", name) ]
            "icdb_batch_occupancy"
        in
        Batcher.set_observer b (fun n -> Registry.observe h (float_of_int n));
        Hashtbl.replace t.batchers name b)
      t.sites);
  (match central_gc_window with
  | None -> ()
  | Some _ ->
    let forces =
      Registry.counter registry ~labels:[ ("site", "central") ]
        "icdb_central_decision_forces_total"
    in
    let wal_kind = Span.Wal_force { site = "central" } in
    t.central_force_hook <-
      (fun () ->
        Registry.inc forces;
        Tracer.instant tracer ~actor:"central" wal_kind));
  t

let site t name =
  match Hashtbl.find_opt t.by_name name with
  | Some s -> s
  | None -> raise Not_found

(* Intern a global lock-object name (global-CC "site/key" objects, L1
   objects) against the federation's symbol table. *)
let intern t s = Symbol.intern t.syms s

(* Pre-resolved [icdb_phase_time] handle for a (protocol, phase) pair.
   Slots fill lazily on first use so a run registers exactly the instruments
   it would have before — metric snapshots stay identical — while repeat
   observations skip the registry lookup and its label-list allocation. *)
let phase_histogram t ~protocol phase =
  let slots =
    match Hashtbl.find_opt t.phase_hists protocol with
    | Some slots -> slots
    | None ->
      let slots = Array.make Span.num_phases None in
      Hashtbl.replace t.phase_hists protocol slots;
      slots
  in
  let i = Span.phase_index phase in
  match slots.(i) with
  | Some h -> h
  | None ->
    let h =
      Registry.histogram t.registry
        ~labels:[ ("protocol", protocol); ("phase", Span.phase_name phase) ]
        "icdb_phase_time"
    in
    slots.(i) <- Some h;
    h

let site_names t = List.map fst t.sites

let fresh_gid t =
  t.next_gid <- t.next_gid + 1;
  t.next_gid

let log_decision t ~gid ~commit = Hashtbl.replace t.decision_log gid commit

let sharded t = Array.length t.shards > 0

(* The participating shard ids a gid was opened with (sorted), or [None]
   when the federation is unsharded / the gid was opened without sites. *)
let route t gid = Hashtbl.find_opt t.gid_route gid

let decision t ~gid =
  match Hashtbl.find_opt t.decision_log gid with
  | Some d -> Some d
  | None ->
    let n = Array.length t.shards in
    let rec scan i =
      if i >= n then None
      else
        match Hashtbl.find_opt t.shards.(i).sh_decision_log gid with
        | Some d -> Some d
        | None -> scan (i + 1)
    in
    scan 0

let decision_log_size t =
  Array.fold_left
    (fun acc sh -> acc + Hashtbl.length sh.sh_decision_log)
    (Hashtbl.length t.decision_log)
    t.shards

let journal_open_routed t ~sites ~gid ~protocol =
  let entry () = { j_protocol = protocol; j_branches = []; j_phase = Executing } in
  if not (sharded t) then Hashtbl.replace t.journal gid (entry ())
  else begin
    let route =
      List.filter_map (Hashtbl.find_opt t.shard_of_site) sites
      |> List.sort_uniq compare |> Array.of_list
    in
    match route with
    (* no recognizable member sites: the central system coordinates, as it
       would have before sharding *)
    | [||] -> Hashtbl.replace t.journal gid (entry ())
    | [| s |] ->
      (* single-shard fast path: the journal entry lives at the shard
         coordinator only — no top-level state at all *)
      Hashtbl.replace t.gid_route gid route;
      Hashtbl.replace t.shards.(s).sh_journal gid (entry ())
    | multi ->
      (* top-level transaction: a top entry plus one mirror per shard, each
         holding that shard's branches (what the shard coordinator would
         know as an L1 participant) *)
      Hashtbl.replace t.gid_route gid route;
      Hashtbl.replace t.journal gid (entry ());
      Array.iter (fun s -> Hashtbl.replace t.shards.(s).sh_journal gid (entry ())) multi
  end;
  t.journal_hook (J_opened gid)

(* Legacy entry point: central coordinates (no route), exactly as before
   sharding existed. Tests and hand-built transactions use it. *)
let journal_open t ~gid ~protocol = journal_open_routed t ~sites:[] ~gid ~protocol

let journal_find t gid =
  match Hashtbl.find_opt t.journal gid with
  | Some entry -> entry
  | None -> failwith "Federation: no journal entry for this transaction"

let journal_branch t ~gid ~site ~txn_id =
  match route t gid with
  | None ->
    let entry = journal_find t gid in
    entry.j_branches <- entry.j_branches @ [ (site, txn_id) ]
  | Some [| s |] -> (
    match Hashtbl.find_opt t.shards.(s).sh_journal gid with
    | Some entry -> entry.j_branches <- entry.j_branches @ [ (site, txn_id) ]
    | None -> failwith "Federation: no shard journal entry for this transaction")
  | Some _ ->
    let entry = journal_find t gid in
    entry.j_branches <- entry.j_branches @ [ (site, txn_id) ];
    (match Hashtbl.find_opt t.shard_of_site site with
    | Some s -> (
      match Hashtbl.find_opt t.shards.(s).sh_journal gid with
      | Some mirror -> mirror.j_branches <- mirror.j_branches @ [ (site, txn_id) ]
      | None -> ())
    | None -> ())

(* The decision log as a serial device: forces queue behind each other and
   each occupies the log head for [decision_force_time]. [None] keeps the
   pre-sharding model of an instantaneous force. The device state is one
   [busy_until] watermark per coordinator (central + each shard), so S
   shards really are S independent log heads — the resource the sharding
   experiment varies. *)
let serial_force t ~get ~set =
  match t.decision_force_time with
  | None -> ()
  | Some ft ->
    let now = Sim.now t.engine in
    let start = if get () > now then get () else now in
    let fin = start +. ft in
    set fin;
    Fiber.sleep t.engine (fin -. now)

(* Group commit for the central decision log: every decision made within one
   [central_gc_window] shares a single log force. The caller (always a
   protocol fiber) blocks until the shared force completes, so when
   [journal_decide] returns the decision is durable — same contract as
   today's instantaneous write, just paid for in one force per window
   instead of one per decision. Disabled ([None]): the force costs
   [decision_force_time] on the central log device (zero cost, zero delay
   when that is [None] too — the pre-sharding default). *)
let force_decision t =
  match t.central_gc_window with
  | None ->
    serial_force t
      ~get:(fun () -> t.central_busy_until)
      ~set:(fun v -> t.central_busy_until <- v)
  | Some window ->
    Fiber.await (fun resumer ->
        t.cgc_waiters <- resumer :: t.cgc_waiters;
        if not t.cgc_scheduled then begin
          t.cgc_scheduled <- true;
          ignore
            (Sim.schedule t.engine ~delay:window (fun () ->
                 let waiters = List.rev t.cgc_waiters in
                 t.cgc_waiters <- [];
                 t.cgc_scheduled <- false;
                 t.central_forces <- t.central_forces + 1;
                 t.central_force_hook ();
                 List.iter (fun r -> r (Ok ())) waiters))
        end)

(* Same contract per shard: group commit when the window is on, otherwise
   the shard's own serial log device. *)
let shard_force t sh =
  match t.central_gc_window with
  | None ->
    serial_force t
      ~get:(fun () -> sh.sh_busy_until)
      ~set:(fun v -> sh.sh_busy_until <- v)
  | Some window ->
    Fiber.await (fun resumer ->
        sh.sh_cgc_waiters <- resumer :: sh.sh_cgc_waiters;
        if not sh.sh_cgc_scheduled then begin
          sh.sh_cgc_scheduled <- true;
          ignore
            (Sim.schedule t.engine ~delay:window (fun () ->
                 let waiters = List.rev sh.sh_cgc_waiters in
                 sh.sh_cgc_waiters <- [];
                 sh.sh_cgc_scheduled <- false;
                 sh.sh_forces <- sh.sh_forces + 1;
                 Registry.inc sh.sh_forces_c;
                 List.iter (fun r -> r (Ok ())) waiters))
        end)

(* Record a decision at one shard coordinator: mirror entry (if any) flips
   to [Decided] and the shard's stable decision log and counters advance.
   Runs at the coordinator — callers reach it through
   {!shard_decide_round}'s RPC for top-level transactions, or directly (no
   wire hop) for the shard's own transactions; both force the shard log
   afterwards. *)
let shard_record_decision _t sh ~gid ~commit =
  (match Hashtbl.find_opt sh.sh_journal gid with
  | Some entry -> entry.j_phase <- Decided commit
  | None -> ());
  Hashtbl.replace sh.sh_decision_log gid commit;
  sh.sh_decisions <- sh.sh_decisions + 1;
  Registry.inc sh.sh_decided_c

(* The top-level decision round of a cross-shard transaction: the central
   system pushes the (already durable) decision to every participating shard
   coordinator, which forces its own journal before acknowledging. A shard
   coordinator that is down past the RPC retry budget simply misses the
   round — the decision is durable at the top level, and per-shard recovery
   pushes it when the coordinator comes back ({!Central_recovery}). *)
let shard_decide_round t ~gid ~commit route =
  ignore
    (Fiber.all_on
       (List.map
          (fun s ->
            let sh = t.shards.(s) in
            let coord = Hashtbl.find t.by_name sh.sh_coord in
            ( Site.engine coord,
              fun () ->
                try
                  Link.rpc ~gid (Site.link coord) ~label:"shard-decide" (fun () ->
                      shard_record_decision t sh ~gid ~commit;
                      shard_force t sh;
                      ("shard-decided", ()))
                with Link.Unreachable _ -> () ))
          (Array.to_list route)))

(* Durability step for a freshly recorded decision: the coordinator's own
   log force by default, or — with Paxos Commit installed — an accept round
   over the acceptor quorum (the coordinator's log is then just a cache and
   never forced). *)
let make_durable t ~gid ~commit ~force =
  match t.decision_replicator with
  | Some replicate -> replicate ~gid ~commit
  | None -> force ()

let journal_decide t ~gid ~commit =
  match route t gid with
  | Some [| s |] ->
    (* single-shard fast path: decided and forced entirely at the shard
       coordinator — no top-level journal write, no top-level force, no
       top-level message *)
    let sh = t.shards.(s) in
    shard_record_decision t sh ~gid ~commit;
    t.journal_hook (J_decided { gid; commit });
    make_durable t ~gid ~commit ~force:(fun () -> shard_force t sh)
  | Some multi ->
    (journal_find t gid).j_phase <- Decided commit;
    log_decision t ~gid ~commit;
    t.central_decisions <- t.central_decisions + 1;
    t.journal_hook (J_decided { gid; commit });
    make_durable t ~gid ~commit ~force:(fun () -> force_decision t);
    shard_decide_round t ~gid ~commit multi
  | None ->
    (journal_find t gid).j_phase <- Decided commit;
    log_decision t ~gid ~commit;
    t.central_decisions <- t.central_decisions + 1;
    t.journal_hook (J_decided { gid; commit });
    make_durable t ~gid ~commit ~force:(fun () -> force_decision t)

let journal_close t ~gid =
  (match route t gid with
  | None -> Hashtbl.remove t.journal gid
  | Some [| s |] -> Hashtbl.remove t.shards.(s).sh_journal gid
  | Some multi ->
    Hashtbl.remove t.journal gid;
    Array.iter (fun s -> Hashtbl.remove t.shards.(s).sh_journal gid) multi);
  Hashtbl.remove t.gid_route gid;
  (* The transaction is finished at the coordinator: any receiver-side dedup
     state its wire exchanges left behind (orphans from capped retries) can
     never be consulted again — evict it. *)
  List.iter (fun (_, site) -> Link.evict_gid (Site.link site) ~gid) t.sites;
  (* fired after the removal so a monitor sees the post-close journal *)
  t.journal_hook (J_closed gid)

let batcher t name = Hashtbl.find_opt t.batchers name

(* Central decision-log forces: with group commit on, the shared forces that
   actually happened; off, one (conceptual) force per decision — the §5
   baseline the group-commit numbers are compared against. Under Paxos
   Commit the central log is never forced at all (durability lives at the
   acceptor quorum; see [Paxos_commit.acceptor_forces]). *)
let central_log_forces t =
  if Option.is_some t.decision_replicator then 0
  else if t.central_gc_window <> None then t.central_forces
  else t.central_decisions

let batch_envelopes t =
  Hashtbl.fold (fun _ b acc -> acc + Batcher.envelope_count b) t.batchers 0

let batch_occupancy_mean t =
  let members =
    Hashtbl.fold (fun _ b acc -> acc + Batcher.member_count b) t.batchers 0
  in
  let envelopes = batch_envelopes t in
  if envelopes = 0 then 0.0 else float_of_int members /. float_of_int envelopes

let journal_open_entries t =
  if not (sharded t) then
    Hashtbl.fold (fun gid entry acc -> (gid, entry) :: acc) t.journal []
    |> List.sort compare
  else begin
    (* union over the shard journals and the top journal, one entry per gid;
       the top entry wins for cross-shard transactions (it has every branch
       and the authoritative phase, the mirrors only their shard's slice) *)
    let merged = Hashtbl.create 32 in
    Array.iter
      (fun sh -> Hashtbl.iter (fun gid e -> Hashtbl.replace merged gid e) sh.sh_journal)
      t.shards;
    Hashtbl.iter (fun gid e -> Hashtbl.replace merged gid e) t.journal;
    Hashtbl.fold (fun gid entry acc -> (gid, entry) :: acc) merged []
    |> List.sort compare
  end

(* Raw open-entry count across the top journal and every shard journal
   (cross-shard mirrors counted once per shard they live at) — zero exactly
   when every journal is empty, which is what the quiescence monitors and
   drain checks ask. *)
let total_journal_entries t =
  Array.fold_left
    (fun acc sh -> acc + Hashtbl.length sh.sh_journal)
    (Hashtbl.length t.journal)
    t.shards

(* {2 Sharded lock-table routing}

   The additional CC module and the L1 lock manager live at the shard
   coordinator owning the object's site; unsharded federations (and objects
   at unknown sites) keep the central tables. Lock objects are "site/key"
   strings, disjoint across shards, so routing changes which volatile table
   holds an entry — and therefore what a shard-coordinator crash wipes —
   without changing any grant decision. *)

let shard_for_site t site =
  if not (sharded t) then None else Hashtbl.find_opt t.shard_of_site site

let cc_table t ~site =
  match shard_for_site t site with
  | Some s -> t.shards.(s).sh_cc
  | None -> t.global_cc

let l1_table t ~site =
  match shard_for_site t site with
  | Some s -> t.shards.(s).sh_l1
  | None -> t.l1_locks

(* Release everything a global transaction holds, wherever it holds it.
   [release_all] is a no-op per table when the owner holds nothing there. *)
let release_cc_owner t ~gid =
  Lock.release_all t.global_cc ~owner:gid;
  Array.iter (fun sh -> Lock.release_all sh.sh_cc ~owner:gid) t.shards

let release_l1_owner t ~gid =
  Lock.release_all t.l1_locks ~owner:gid;
  Array.iter (fun sh -> Lock.release_all sh.sh_l1 ~owner:gid) t.shards

(* Trace/span actor for a global transaction's coordinator: the shard
   coordinator on the single-shard fast path, the central system otherwise
   (always "central" when unsharded — traces are byte-identical). *)
let gid_actor t ~gid =
  match route t gid with
  | Some [| s |] -> t.shards.(s).sh_name
  | Some _ | None -> "central"

(* A shard-coordinator crash loses the shard's volatile lock state (its CC
   module and L1 manager), exactly as {!Central_recovery.crash} models for
   the central system; the shard's stable journal and decision log survive.
   Crashing the coordinator {e site} is the caller's separate decision. *)
let shard_crash t ~shard =
  let sh = t.shards.(shard) in
  Lock.reset sh.sh_cc;
  Lock.reset sh.sh_l1

(* Shard decision-log forces, summed: with group commit on, the shared
   forces that happened; off, one per shard decision (same convention as
   {!central_log_forces}, including the Paxos gate: replicated decisions
   count acceptor forces instead). *)
let shard_log_forces t =
  if Option.is_some t.decision_replicator then 0
  else
    Array.fold_left
      (fun acc sh ->
        acc + (if t.central_gc_window <> None then sh.sh_forces else sh.sh_decisions))
      0 t.shards

let shard_decisions t =
  Array.fold_left (fun acc sh -> acc + sh.sh_decisions) 0 t.shards

let total_messages t =
  List.fold_left (fun acc (_, site) -> acc + Link.message_count (Site.link site)) 0 t.sites

let messages_by_label t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun (_, site) ->
      List.iter
        (fun (label, n) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt merged label) in
          Hashtbl.replace merged label (cur + n))
        (Link.messages_by_label (Site.link site)))
    t.sites;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) merged [] |> List.sort compare

let reset_message_counters t =
  List.iter (fun (_, site) -> Link.reset_counters (Site.link site)) t.sites

let internal_key key = String.length key >= 2 && String.sub key 0 2 = "__"

let snapshot t =
  List.concat_map
    (fun (name, site) ->
      let db = Site.db site in
      List.filter_map
        (fun key ->
          if internal_key key then None
          else Option.map (fun v -> (name, key, v)) (Db.committed_value db key))
        (Db.committed_keys db))
    t.sites
  |> List.sort compare
