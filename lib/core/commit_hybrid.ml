module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Span = Icdb_obs.Span
open Protocol_common

(* Per-branch progress after the execution/inquiry rounds. *)
type leg =
  | Prepared_leg of Db.txn  (** 2PC leg in the ready state *)
  | Committed_leg  (** commitment-before leg, locally committed *)
  | Failed_leg of Global.abort_cause

let prepare_capable fed site_name =
  (Db.capabilities (Site.db (Federation.site fed site_name))).supports_prepare

(* Same undo path as Commit_before. *)
let undo_leg (fed : Federation.t) ~gid ~obs (b : Global.branch) =
  let inverse =
    match
      List.find_opt
        (fun (e : Action_log.entry) -> e.site = b.site)
        (Action_log.entries fed.undo_log ~gid)
    with
    | Some entry -> entry.program
    | None -> failwith "Commit_hybrid: missing undo-log entry"
  in
  obs_phase fed obs ~gid ~actor:b.site Span.Compensate (fun _ ->
      ignore
        (persistently_apply fed ~gid ~site:b.site ~marker:(undo_marker ~gid ~seq:0)
           ~compensation:true
           ~on_attempt:(fun () ->
             Metrics.compensation fed.metrics;
             Trace.record fed.trace ~actor:b.site (ev gid "undo-execution"))
           inverse))

let run (fed : Federation.t) (spec : Global.spec) =
  let gid = spec.gid in
  let start = Sim.now fed.engine in
  Metrics.txn_started fed.metrics;
  Federation.journal_open_routed fed
    ~sites:(List.map (fun (b : Global.branch) -> b.site) spec.branches)
    ~gid ~protocol:"hybrid";
  let obs = obs_begin fed ~gid ~protocol:"hybrid" in
  let coord = coordinator_actor obs in
  Trace.record fed.trace ~actor:coord (ev gid "running");
  if not (acquire_global_locks fed ~gid spec) then begin
    Federation.journal_close fed ~gid;
    finish fed ~gid ~start ~obs (Aborted Global_cc_denied)
  end
  else begin
    (* Execution: 2PC legs leave the transaction running; commit-before
       legs commit unilaterally (with marker and undo-log entry). *)
    let results =
      obs_phase fed obs ~gid Span.Execute @@ fun exec_span ->
      fanout fed
        (List.map
           (fun (b : Global.branch) ->
             ( b.site,
               fun () ->
             let site = Federation.site fed b.site in
             let db = Site.db site in
             if prepare_capable fed b.site then
               (b, `Tpc (execute_branch fed ~gid ~parent:exec_span b ~extra_ops:[]))
             else
               ( b,
                 `Before
                   (Link.rpc ~gid (Site.link site) ~label:"execute" (fun () ->
                        match Db.begin_txn_opt db with
                        | None ->
                          ( "execute-failed",
                            Failed_leg
                              (Global.Local_abort
                                 { site = b.site; reason = Db.Site_crashed }) )
                        | Some txn -> (
                          Federation.journal_branch fed ~gid ~site:b.site
                            ~txn_id:(Db.txn_id txn);
                          match
                            Program.run db txn
                              (b.program @ [ Program.Write (commit_marker ~gid, 1) ])
                          with
                          | Error r ->
                            Db.abort db txn;
                            ( "execute-failed",
                              Failed_leg
                                (Global.Local_abort { site = b.site; reason = r }) )
                          | Ok () ->
                            if not b.vote_commit then begin
                              Db.abort db txn;
                              ("executed-aborted", Failed_leg (Global.Voted_abort b.site))
                            end
                            else begin
                              let inverse =
                                Program.inverse_of_accesses (Db.accesses txn)
                              in
                              Action_log.append fed.undo_log ~gid
                                { site = b.site; program = inverse; tag = "inverse" };
                              match Db.commit db txn with
                              | Ok () ->
                                graph_local fed ~gid ~site:b.site ~compensation:false txn;
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "locally-committed");
                                ("executed-committed", Committed_leg)
                              | Error r ->
                                ( "execute-failed",
                                  Failed_leg
                                    (Global.Local_abort { site = b.site; reason = r }) )
                            end))) )
             ))
           spec.branches)
    in
    fed.central_fail ~gid "executed";
    (* Inquiry: prepare the 2PC legs; ask the others for their final state. *)
    Trace.record fed.trace ~actor:coord (ev gid "inquire");
    let legs =
      obs_phase fed obs ~gid Span.Vote @@ fun _ ->
      fanout fed
        (List.map
           (fun (result : Global.branch * [ `Tpc of exec_status | `Before of leg ]) ->
             let b, _ = result in
             ( b.site,
               fun () ->
             let b, progress = result in
             let site = Federation.site fed b.site in
             let db = Site.db site in
             match progress with
             | `Tpc (Exec_failed r) ->
               (b, Failed_leg (Global.Local_abort { site = b.site; reason = r }))
             | `Tpc (Exec_ok txn) ->
               Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                   if not b.vote_commit then begin
                     Db.abort db txn;
                     ("abort-vote", (b, Failed_leg (Global.Voted_abort b.site)))
                   end
                   else
                     match Db.prepare db txn with
                     | Ok () ->
                       Trace.record fed.trace ~actor:b.site (ev gid "ready");
                       ("ready", (b, Prepared_leg txn))
                     | Error r ->
                       ( "abort-vote",
                         (b, Failed_leg (Global.Local_abort { site = b.site; reason = r }))
                       ))
             | `Before leg ->
               Link.rpc ~gid (Site.link site) ~label:"prepare" (fun () ->
                   Site.await_up site;
                   match leg with
                   | Committed_leg -> ("committed", (b, leg))
                   | Failed_leg _ -> ("aborted", (b, leg))
                   | Prepared_leg _ -> assert false))
             )
           results)
    in
    let abort_cause =
      List.find_map
        (function
          | _, Failed_leg cause -> Some cause | _, (Prepared_leg _ | Committed_leg) -> None)
        legs
    in
    fed.central_fail ~gid "voted";
    let decide_commit = Option.is_none abort_cause in
    Trace.record fed.trace ~actor:coord
      (ev gid (if decide_commit then "decision:commit" else "decision:abort"));
    Federation.journal_decide fed ~gid ~commit:decide_commit;
    obs_decision fed obs ~gid ~commit:decide_commit;
    fed.central_fail ~gid "decided";
    (* Apply the decision: resolve the ready legs, compensate committed
       commit-before legs on abort. *)
    obs_phase fed obs ~gid Span.Local_commit (fun _ ->
        ignore
          (fanout fed
             (List.filter_map
                (function
                  | (b : Global.branch), Prepared_leg txn ->
                    Some
                      ( b.site,
                        fun () ->
                          let label = if decide_commit then "commit" else "abort" in
                          decision_rpc fed ~gid ~site:b.site ~label (fun () ->
                              resolve_prepared_durably fed ~site:b.site
                                ~txn_id:(Db.txn_id txn) ~commit:decide_commit;
                              if decide_commit then begin
                                graph_local fed ~gid ~site:b.site ~compensation:false
                                  txn;
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "committed")
                              end
                              else
                                Trace.record fed.trace ~actor:b.site
                                  (ev gid "aborted");
                              "finished") )
                  | b, Committed_leg when not decide_commit ->
                    Some
                      ( b.site,
                        fun () ->
                          decision_rpc fed ~gid ~site:b.site ~label:"undo" (fun () ->
                              undo_leg fed ~gid ~obs b;
                              Trace.record fed.trace ~actor:b.site (ev gid "undone");
                              "finished") )
                  | _, (Committed_leg | Failed_leg _) -> None)
                legs)));
    Action_log.remove fed.undo_log ~gid;
    Federation.journal_close fed ~gid;
    release_global_locks fed ~gid;
    let outcome =
      if decide_commit then Global.Committed else Global.Aborted (Option.get abort_cause)
    in
    finish fed ~gid ~start ~obs outcome
  end
