module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Lock = Icdb_lock.Lock_table
module Mode = Icdb_lock.Mode
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span

(* Plain concatenation, not [Printf.sprintf]: these run once or more per
   transaction and the format machinery allocates an order of magnitude more
   than the result string. *)
let ev gid label = "g" ^ string_of_int gid ^ ":" ^ label
let commit_marker ~gid = "__cm:" ^ string_of_int gid
let undo_marker ~gid ~seq = "__um:" ^ string_of_int gid ^ ":" ^ string_of_int seq

let mode_of_intent = function
  | `Read -> Mode.Shared
  | `Increment -> Mode.Increment
  | `Write -> Mode.Exclusive

let acquire_global_locks (fed : Federation.t) ~gid (spec : Global.spec) =
  if not fed.global_cc_enabled then true
  else begin
    let wanted =
      List.concat_map
        (fun (b : Global.branch) ->
          List.map
            (fun (key, intent) -> (b.site ^ "/" ^ key, b.site, mode_of_intent intent))
            (Program.intents b.program))
        spec.branches
      (* sorted by (object, mode), as before sharding: the globally stable
         acquisition order is what prevents deadlocks between transactions
         spanning several shards' CC tables *)
      |> List.sort (fun (o1, _, m1) (o2, _, m2) -> compare (o1, m1) (o2, m2))
    in
    let rec go = function
      | [] -> true
      | (obj, site, mode) :: rest -> (
        (* sort on names (stable acquisition order), intern at the boundary;
           the table is the owning shard coordinator's (central when
           unsharded) *)
        match
          Lock.acquire (Federation.cc_table fed ~site) ~owner:gid
            ~obj:(Federation.intern fed obj) ~mode ?timeout:fed.global_lock_timeout ()
        with
        | Lock.Granted ->
          Metrics.global_lock_acquired fed.metrics;
          go rest
        | Lock.Timeout | Lock.Deadlock -> false
        (* A central (or shard-coordinator) crash resets the CC module and
           wakes every waiter with [Lock_revoked]; to this transaction that
           is just a denial — it must abort cleanly, not die with an
           escaping exception. *)
        | exception Lock.Lock_revoked -> false)
    in
    let ok = go wanted in
    if not ok then Federation.release_cc_owner fed ~gid;
    ok
  end

let release_global_locks (fed : Federation.t) ~gid =
  Federation.release_cc_owner fed ~gid

(* Per-site fan-out: each branch's fiber is spawned on its site's engine, so
   in a domain-partitioned simulation the branch bodies run on the partition
   owning the site. Placement is exactness-neutral — execution follows the
   global (time, seq) order regardless of which engine holds an event — and
   with every site on the central engine (the unpartitioned case) this is
   exactly [Fiber.all]. *)
let fanout (fed : Federation.t) pairs =
  Fiber.all_on
    (List.map
       (fun (site, f) -> (Site.engine (Federation.site fed site), f))
       pairs)

(* --- span-level observability -------------------------------------------

   Each protocol run opens one [Txn] span and nests its phases under it; the
   phase helper also feeds the per-(protocol, phase) latency histogram. All
   helpers are single-branch no-ops when the tracer is disabled.

   NB: phase bodies can raise — the A4 experiment's [fed.central_fail] hook
   throws [Central_crash] mid-protocol. [Fun.protect] is not effect-safe
   (the finaliser would not survive a fiber suspension), but an explicit
   exception match is: the body either returns or raises, and the span is
   closed on both paths. The enclosing [Txn] span is deliberately {e not}
   closed on exceptions — a dangling span is how a central crash looks in
   the trace. *)

type obs = { txn_span : int; obs_protocol : string; obs_actor : string }

let obs_begin (fed : Federation.t) ~gid ~protocol =
  (* the coordinator actor: "shard-<i>" when the gid routed to a single
     shard (the fast path), "central" otherwise — and always "central" in
     an unsharded federation, so existing traces are unchanged *)
  let actor = Federation.gid_actor fed ~gid in
  let txn_span =
    (* guard at the call site too: the [Span] argument is a record built
       before [begin_span] can decline it *)
    if Tracer.enabled fed.tracer then
      Tracer.begin_span fed.tracer ~actor (Span.Txn { gid; protocol })
    else -1
  in
  { txn_span; obs_protocol = protocol; obs_actor = actor }

let coordinator_actor obs = obs.obs_actor

let obs_phase (fed : Federation.t) obs ~gid ?actor phase f =
  let actor = match actor with Some a -> a | None -> obs.obs_actor in
  let start = Sim.now fed.engine in
  let span =
    if Tracer.enabled fed.tracer then
      Tracer.begin_span fed.tracer ~parent:obs.txn_span ~actor
        (Span.Phase { gid; phase })
    else -1
  in
  let fin () =
    Tracer.end_span fed.tracer span;
    let h = Federation.phase_histogram fed ~protocol:obs.obs_protocol phase in
    Registry.observe h (Sim.now fed.engine -. start)
  in
  match f span with
  | r ->
    fin ();
    r
  | exception e ->
    fin ();
    raise e

let obs_decision (fed : Federation.t) obs ~gid ~commit =
  if Tracer.enabled fed.tracer then
    Tracer.instant fed.tracer ~actor:obs.obs_actor (Span.Decision { gid; commit })

type exec_status = Exec_ok of Db.txn | Exec_failed of Db.abort_reason

let execute_branch (fed : Federation.t) ~gid ?(parent = -1) (b : Global.branch)
    ~extra_ops =
  let site = Federation.site fed b.site in
  let db = Site.db site in
  let bspan =
    if Tracer.enabled fed.tracer then
      Tracer.begin_span fed.tracer ~parent ~actor:b.site
        (Span.Branch { gid; site = b.site })
    else -1
  in
  let body () =
    Link.rpc ~gid (Site.link site) ~label:"execute" (fun () ->
        match Db.begin_txn_opt db with
        | None -> ("execute-failed", Exec_failed Db.Site_crashed)
        | Some txn -> (
          Federation.journal_branch fed ~gid ~site:b.site ~txn_id:(Db.txn_id txn);
          match Program.run db txn (b.program @ extra_ops) with
          | Ok () ->
            Trace.record fed.trace ~actor:b.site (ev gid "executed");
            ("executed", Exec_ok txn)
          | Error r ->
            Db.abort db txn;
            ("execute-failed", Exec_failed r)))
  in
  match body () with
  | r ->
    Tracer.end_span fed.tracer bspan;
    r
  | exception e ->
    Tracer.end_span fed.tracer bspan;
    raise e

(* --- decision-phase traffic ---------------------------------------------

   All post-decision coordinator->site traffic (commit/abort/undo requests
   and their "finished" acks) goes through these two helpers so that, when
   the federation has message batching on, same-window decisions to one site
   share a wire envelope. With batching off they are exactly the plain
   [Link.rpc]/[Link.send] the protocols used before. *)

let decision_rpc (fed : Federation.t) ~gid ~site ~label f =
  match Federation.batcher fed site with
  | Some b -> Icdb_net.Batcher.rpc b ~label f
  | None ->
    let s = Federation.site fed site in
    Link.rpc ~gid (Site.link s) ~label (fun () -> (f (), ()))

let decision_send (fed : Federation.t) ~gid ~site ~label f =
  match Federation.batcher fed site with
  | Some b -> Icdb_net.Batcher.send b ~label f
  | None ->
    let s = Federation.site fed site in
    Link.send ~gid (Site.link s) ~label f

let graph_local (fed : Federation.t) ~gid ~site ~compensation txn =
  Serialization_graph.record_local fed.graph ~gid ~site ~compensation (Db.accesses txn)

let persistently_apply (fed : Federation.t) ~gid ~site ~marker ~compensation ~on_attempt
    program =
  let site_t = Federation.site fed site in
  let db = Site.db site_t in
  let full_program = program @ [ Program.Write (marker, 1) ] in
  let rec loop did_work =
    Site.await_up site_t;
    if Db.committed_value db marker = Some 1 then did_work
    else begin
      (* [begin_txn_opt], not [begin_txn]: another crash event can fire at
         the very instant the restart woke this fiber, and the retry loop —
         not an escaping exception — is the § 3.2/3.3 answer to that. *)
      match Db.begin_txn_opt db with
      | None -> loop did_work
      | Some txn -> (
        on_attempt ();
        match Program.run db txn full_program with
        | Error _ -> loop true
        | Ok () -> (
          match Db.commit db txn with
          | Ok () ->
            graph_local fed ~gid ~site ~compensation txn;
            true
          | Error _ -> loop true))
    end
  in
  loop false

(* Deliver a global decision to a prepared local, riding out crashes: the
   paper's communication manager keeps the decision until the local system
   has durably applied it. [resolve_prepared] can fail if the site crashed
   again between the wake-up from [await_up] and this fiber's resumption
   (the in-doubt table is volatile until restart recovery rebuilds it from
   the log) — in that case wait the outage out and redeliver. A failure
   while the site is up is real (the transaction is already finished) and
   propagates. *)
let resolve_prepared_durably (fed : Federation.t) ~site ~txn_id ~commit =
  let site_t = Federation.site fed site in
  let db = Site.db site_t in
  let rec deliver () =
    Site.await_up site_t;
    match Db.resolve_prepared db ~txn_id ~commit with
    | () -> ()
    | exception Failure _ when not (Db.is_up db) -> deliver ()
  in
  deliver ()

let finish (fed : Federation.t) ~gid ~start ?obs outcome =
  let actor = match obs with Some o -> o.obs_actor | None -> "central" in
  (match obs with
  | Some o -> Tracer.end_span fed.tracer o.txn_span
  | None -> ());
  (match outcome with
  | Global.Committed ->
    Metrics.txn_committed fed.metrics ~response_time:(Sim.now fed.engine -. start);
    Serialization_graph.record_outcome fed.graph ~gid ~committed:true;
    Trace.record fed.trace ~actor (ev gid "committed")
  | Global.Aborted cause ->
    Metrics.txn_aborted fed.metrics;
    Serialization_graph.record_outcome fed.graph ~gid ~committed:false;
    Trace.record fed.trace ~actor
      (ev gid (Format.asprintf "aborted (%a)" Global.pp_abort_cause cause)));
  outcome
