(** Plumbing shared by the three atomic-commitment protocols. *)

module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program

(** [ev gid label] — trace label namespaced by global transaction. *)
val ev : int -> string -> string

(** The per-site key recording "this global transaction's local commit
    happened here" — the [WV 90]-style redo-log-in-the-database marker that
    makes the repetition of §3.2 idempotent across crashes. *)
val commit_marker : gid:int -> string

(** The per-site key recording "this global transaction's local effects were
    compensated here" — prevents double undo (§3.3). [seq] distinguishes
    multiple actions of one global transaction at the same site. *)
val undo_marker : gid:int -> seq:int -> string

(** Lock mode for the additional global CC module, per access intent. *)
val mode_of_intent : [ `Read | `Increment | `Write ] -> Icdb_lock.Mode.t

(** [acquire_global_locks fed ~gid spec] takes the additional CC module's
    locks for every key the spec touches (sorted order, deadlock-detected,
    bounded by the federation's global lock timeout). Returns [false] —
    with everything released again — when denied. Counted in metrics. When
    the federation's [global_cc_enabled] is off (experiment V7), this is a
    no-op returning [true]. *)
val acquire_global_locks : Federation.t -> gid:int -> Global.spec -> bool

val release_global_locks : Federation.t -> gid:int -> unit

(** [fanout fed pairs] runs each [(site, thunk)] pair as a fiber on that
    site's engine and waits for all, preserving input order — the protocols'
    per-branch fan-out. On a domain-partitioned simulation this places each
    branch body on the partition owning its site; unpartitioned it is
    exactly [Fiber.all]. Same result-order and first-error semantics as
    {!Icdb_sim.Fiber.all}. *)
val fanout : Federation.t -> (string * (unit -> 'a)) list -> 'a list

(** {2 Span-level observability}

    One {!obs} context per protocol run: a [Txn] root span with the
    protocol's phases nested under it. Every helper is a single-branch
    no-op when the federation's tracer is disabled. *)

type obs

(** [obs_begin fed ~gid ~protocol] opens the root span. [protocol] is the
    stable observability name ("2pc", "2pc-pa", "after", "before", "mlt",
    "hybrid") used as the histogram label. Call it after the journal is
    open: the run's coordinator actor ({!coordinator_actor}) is resolved
    from the gid's registered shard route. *)
val obs_begin : Federation.t -> gid:int -> protocol:string -> obs

(** The run's coordinator actor for traces and spans: "shard-<i>" on the
    single-shard fast path of a sharded federation, "central" otherwise. *)
val coordinator_actor : obs -> string

(** [obs_phase fed obs ~gid ?actor phase f] runs [f span] inside a [Phase]
    span (child of the run's [Txn] span; [span] is its id, for parenting
    per-branch work) and records the phase duration in the
    [icdb_phase_time{protocol, phase}] histogram. The span is closed and
    the duration recorded even when [f] raises (central-crash injection);
    the exception is re-raised. [actor] defaults to the run's coordinator
    actor. *)
val obs_phase :
  Federation.t -> obs -> gid:int -> ?actor:string -> Icdb_obs.Span.phase ->
  (int -> 'a) -> 'a

(** Instant marking the commit/abort decision point, at the run's
    coordinator actor. *)
val obs_decision : Federation.t -> obs -> gid:int -> commit:bool -> unit

(** Result of executing one branch's program (transaction left running). *)
type exec_status = Exec_ok of Db.txn | Exec_failed of Db.abort_reason

(** [execute_branch fed ~gid ?parent b ~extra_ops] sends the branch's
    program to the site's communication manager and runs it in a fresh
    local transaction, {e without} committing or preparing. [extra_ops] are
    appended (marker writes). One request/reply message pair. The work is
    wrapped in a [Branch] span under [parent] (a phase span id; default:
    root). *)
val execute_branch :
  Federation.t -> gid:int -> ?parent:int -> Global.branch -> extra_ops:Program.t ->
  exec_status

(** {2 Decision-phase traffic}

    Post-decision coordinator->site messages (commit/abort/undo requests and
    their "finished" acks). With the federation's [msg_batch_window] set,
    same-window messages to one site ride a shared {!Icdb_net.Batcher}
    envelope (one wire message, one latency charge, coalesced acks); off,
    these are exactly [Link.rpc] / [Link.send]. *)

(** [decision_rpc fed ~gid ~site ~label f] — request/reply; [f] runs at the
    site and returns the reply label (usually ["finished"]). [gid] tags the
    wire exchange with its global transaction (retry-cap orphan
    accounting, see {!Icdb_net.Link}). *)
val decision_rpc :
  Federation.t -> gid:int -> site:string -> label:string -> (unit -> string) -> unit

(** [decision_send fed ~gid ~site ~label f] — one-way, no acknowledgement
    (presumed-abort's abort path). *)
val decision_send :
  Federation.t -> gid:int -> site:string -> label:string -> (unit -> unit) -> unit

(** Record a committed local transaction in the serialization graph. *)
val graph_local :
  Federation.t -> gid:int -> site:string -> compensation:bool -> Db.txn -> unit

(** [persistently_apply fed ~gid ~site ~marker ~compensation ~on_attempt
    program] runs [program @ \[write marker\]] as a local transaction at
    [site], retrying (and waiting out site downtime) until an incarnation
    commits — unless [marker] is already committed, in which case nothing
    runs. This is the shared engine of §3.2's repetition and §3.3's undo:
    the marker in the local database makes the loop idempotent across both
    site and central crashes. [on_attempt] fires before each execution
    (metrics); the committed incarnation is recorded in the serialization
    graph with the [compensation] flag. Returns [true] if this call did the
    work, [false] if the marker showed it already done. *)
val persistently_apply :
  Federation.t ->
  gid:int ->
  site:string ->
  marker:string ->
  compensation:bool ->
  on_attempt:(unit -> unit) ->
  Program.t ->
  bool

(** [resolve_prepared_durably fed ~site ~txn_id ~commit] delivers the global
    decision to a prepared local transaction, waiting out site outages and
    redelivering when a crash raced the delivery (the in-doubt table is
    volatile until restart recovery rebuilds it from the log, so a
    [resolve_prepared] that fails on a down site just means "deliver
    again"). A failure with the site up propagates — the local really has
    finished. *)
val resolve_prepared_durably :
  Federation.t -> site:string -> txn_id:int -> commit:bool -> unit

(** [finish fed ~gid ~start ?obs outcome] records metrics, the graph outcome
    and the trace end-marker, closes the run's [Txn] span when [obs] is
    given, then returns [outcome]. *)
val finish :
  Federation.t -> gid:int -> start:float -> ?obs:obs -> Global.outcome ->
  Global.outcome
