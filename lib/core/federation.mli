(** The integrated database system: central system + local systems (Fig. 1).

    A federation bundles everything the global transaction manager needs:
    the simulated sites with their links, the additional global
    concurrency-control module (§3.2/§3.3), the L1 lock manager and conflict
    relation for multi-level transactions (§4), the central redo-/undo-logs,
    the stable decision log, metrics, the protocol trace and the
    serialization-graph recorder. *)

(** How far a global transaction's protocol run had progressed, as recorded
    in the central system's stable journal. Central-crash recovery presumes
    abort for [Executing] entries and pushes the decision for [Decided]
    ones. *)
type journal_phase = Executing | Decided of bool

(** One journal entry per in-flight global transaction. [branches] collects
    [(site, local transaction id)] pairs as they become known — enough for
    recovery to find in-doubt locals and abort orphaned running ones. *)
type journal_entry = {
  j_protocol : string;  (** "2pc" | "after" | "before" | "mlt" | ... *)
  mutable j_branches : (string * int) list;
  mutable j_phase : journal_phase;
}

(** Journal lifecycle notifications, fired at the three choke points every
    protocol routes through ({!journal_open}, {!journal_decide},
    {!journal_close} — the latter after the entry is removed). The online
    monitors ({!Monitor}) listen here; default listener is a no-op. *)
type journal_event =
  | J_opened of int
  | J_decided of { gid : int; commit : bool }
  | J_closed of int

(** One shard of a sharded federation: a contiguous group of sites whose
    first member is the shard coordinator. The coordinator keeps the
    shard's own stable journal and decision log — it is simultaneously an
    L1 participant of top-level (cross-shard) transactions and the L0
    coordinator of transactions confined to its shard (the paper's
    two-level split, one level down). Volatile per-shard lock tables model
    the CC state a shard-coordinator crash loses. *)
type shard = {
  sh_id : int;
  sh_name : string;  (** "shard-<id>": metric label and trace actor *)
  sh_coord : string;  (** coordinator site name (first member) *)
  sh_sites : string list;
  sh_journal : (int, journal_entry) Hashtbl.t;
  sh_decision_log : (int, bool) Hashtbl.t;
  sh_cc : Icdb_lock.Mode.t Icdb_lock.Lock_table.t;
  sh_l1 : Icdb_mlt.Conflict.clazz Icdb_lock.Lock_table.t;
  mutable sh_forces : int;
  mutable sh_decisions : int;
  mutable sh_cgc_waiters : unit Icdb_sim.Fiber.resumer list;
  mutable sh_cgc_scheduled : bool;
  mutable sh_busy_until : float;
  sh_decided_c : Icdb_obs.Registry.counter;
  sh_forces_c : Icdb_obs.Registry.counter;
}

type t = {
  engine : Icdb_sim.Engine.t;
  engines : Icdb_sim.Engine.t array;
      (** the distinct engines the federation's sites are spread over,
          central's ([engine]) first; length 1 unless [site_engines] placed
          sites on partition engines. Drain checks must sum over all of
          them. *)
  sites : (string * Icdb_net.Site.t) list;  (** in creation order *)
  by_name : (string, Icdb_net.Site.t) Hashtbl.t;
  syms : Icdb_util.Symbol.table;
      (** federation-level interner: the global-CC and L1 lock tables key
          their objects by symbols of this table (each site's local table
          uses the site engine's own) *)
  trace : Icdb_sim.Trace.t;
  registry : Icdb_obs.Registry.t;
      (** all numeric observations (metrics, message / lock / WAL counts,
          protocol phase latencies) land here *)
  tracer : Icdb_obs.Tracer.t;
      (** span recorder; disabled unless the caller passed an enabled one *)
  metrics : Metrics.t;
  global_cc : Icdb_lock.Mode.t Icdb_lock.Lock_table.t;
      (** the additional CC module: strict global 2PL on (site/key) *)
  conflict : Icdb_mlt.Conflict.t;
  l1_locks : Icdb_mlt.Conflict.clazz Icdb_lock.Lock_table.t;
      (** L1 lock manager: commutativity-based compatibility *)
  redo_log : Action_log.t;  (** commitment-after (§3.2) *)
  undo_log : Action_log.t;  (** commitment-before standalone (§3.3) *)
  mlt_undo_log : Action_log.t;
      (** the L1 transaction manager's own undo-log, reused by
          commitment-before under multi-level transactions (§4.3) *)
  decision_log : (int, bool) Hashtbl.t;  (** gid -> global decision (stable) *)
  journal : (int, journal_entry) Hashtbl.t;
      (** stable per-transaction protocol journal for central recovery *)
  graph : Serialization_graph.t;
  mutable next_gid : int;
  mutable global_cc_enabled : bool;
      (** V7 switches this off to demonstrate the serializability
          requirements; never disable it otherwise *)
  mutable central_fail : gid:int -> string -> unit;
      (** fault-injection hook called by protocols at named points
          ("executed", "decided", ...); tests make it raise to simulate a
          central-system crash mid-protocol. Default: no-op. *)
  mutable journal_hook : journal_event -> unit;
      (** journal lifecycle listener (see {!journal_event}); installing
          replaces the previous listener. Default: no-op. *)
  global_lock_timeout : float option;
  batchers : (string, Icdb_net.Batcher.t) Hashtbl.t;
      (** per-site decision-traffic batchers; empty unless
          [msg_batch_window] was set at creation *)
  central_gc_window : float option;
      (** group-commit window for the central decision log; [None] = every
          decision is durable instantly (the pre-batching model) *)
  mutable cgc_waiters : unit Icdb_sim.Fiber.resumer list;
  mutable cgc_scheduled : bool;
  mutable central_forces : int;
  mutable central_decisions : int;
  mutable central_force_hook : unit -> unit;
  phase_hists : (string, Icdb_obs.Registry.histogram option array) Hashtbl.t;
      (** lazily filled per-(protocol, phase) handle cache behind
          {!phase_histogram} *)
  shards : shard array;
      (** [[||]] when unsharded — every journal/lock/decision path is then
          exactly the pre-sharding code *)
  shard_of_site : (string, int) Hashtbl.t;
  gid_route : (int, int array) Hashtbl.t;
      (** gid -> sorted participating shard ids, registered by
          {!journal_open}; a singleton is the single-shard fast path *)
  decision_force_time : float option;
      (** service time of one decision-log force on its coordinator's
          serial log device; [None] (default) = instantaneous forces, the
          pre-sharding model. Ignored while [central_gc_window] batches
          forces. *)
  mutable central_busy_until : float;
  mutable decision_replicator : (gid:int -> commit:bool -> unit) option;
      (** Paxos Commit hook ({!Paxos_commit.install}): when set,
          {!journal_decide} makes a decision durable by replicating it to
          the acceptor quorum instead of forcing the coordinator's own log.
          [None] (default) keeps single-coordinator forces byte-for-byte. *)
  mutable decision_recover : (gid:int -> bool option) option;
      (** quorum read of the replicated decision log, consulted by
          {!Central_recovery} for in-doubt entries before presuming abort;
          [None] when Paxos is off. *)
  mutable leader_failover : gid:int -> unit;
      (** new-leader election trigger for one in-doubt transaction; fault
          injectors call it right after simulating a coordinator crash.
          Default: no-op. *)
}

(** [create engine ?latency ?loss ?global_lock_timeout ?conflict configs]
    builds one site per config. [latency] is the per-direction link delay
    (default 1.0); [loss] the per-message-copy drop probability (default 0,
    see {!Icdb_net.Link}); [global_lock_timeout] bounds waits in the
    additional CC module and the L1 lock manager (default [Some 200.]);
    [conflict] is the L1 commutativity relation (default
    {!Icdb_mlt.Conflict.banking} merged with read/write/increment classes —
    see {!default_conflict}).

    [registry] lets several runs share one metrics registry (e.g. [icdb
    check]'s combined snapshot); default is a fresh one. [tracer] installs a
    span recorder; default is a disabled tracer on the engine's virtual
    clock, whose per-event cost is a single branch. Either way, the
    federation wires the sim engine, every link, every lock table (global
    CC, L1, and each site's local table — across restarts), every WAL, and
    the site crash/recovery transitions into them.

    [msg_batch_window] (default [None]) turns on per-site decision-message
    piggybacking: one {!Icdb_net.Batcher} per site with that window, plus an
    [icdb_batch_occupancy{site}] histogram. [central_gc_window] (default
    [None]) turns on group commit for the central decision log:
    {!journal_decide} calls within one window share a single log force,
    counted by [icdb_central_decision_forces_total]. Both treat a
    non-positive window as [None], and when off add no metrics and no
    behavior change — default-config runs are byte-identical to before.

    [site_engines] (default: every site on the central engine) places site
    [i] on [site_engines.(i)] for a domain-partitioned simulation; the
    engines must all be coupled to the same {!Icdb_sim.Parallel} scheduler.
    Placement is exactness-neutral: events execute in global (time, seq)
    order no matter which engine holds them. Raises [Invalid_argument] if
    the array length differs from the config count.

    [shards] (default 1) groups the sites into that many contiguous
    balanced shards, each coordinated by its first site; 1 builds no shard
    state at all and reproduces unsharded runs byte-for-byte.
    [decision_force_time] (default [None]) gives every decision-log force a
    service time on its coordinator's serial log device — the knob the S2
    sharding lab turns to expose the central log as the bottleneck. Raises
    [Invalid_argument] when [shards] exceeds the site count. *)
val create :
  Icdb_sim.Engine.t ->
  ?site_engines:Icdb_sim.Engine.t array ->
  ?latency:float ->
  ?loss:float ->
  ?global_lock_timeout:float option ->
  ?conflict:Icdb_mlt.Conflict.t ->
  ?registry:Icdb_obs.Registry.t ->
  ?tracer:Icdb_obs.Tracer.t ->
  ?msg_batch_window:float option ->
  ?central_gc_window:float option ->
  ?shards:int ->
  ?decision_force_time:float option ->
  Icdb_localdb.Engine.config list ->
  t

(** The relation used when [?conflict] is omitted: banking classes plus
    read/write/increment. *)
val default_conflict : Icdb_mlt.Conflict.t

(** [site t name]. Raises [Not_found] for unknown names. *)
val site : t -> string -> Icdb_net.Site.t

(** [intern t s] interns a global lock-object name against the federation's
    symbol table (use for global-CC and L1 lock objects). *)
val intern : t -> string -> Icdb_util.Symbol.t

(** Pre-resolved handle on the [icdb_phase_time{protocol, phase}] histogram:
    first use registers the instrument (exactly as the direct registry call
    would), repeat uses are an array index. *)
val phase_histogram :
  t -> protocol:string -> Icdb_obs.Span.phase -> Icdb_obs.Registry.histogram

val site_names : t -> string list
val fresh_gid : t -> int

(** Record a decision in the central system's stable log. *)
val log_decision : t -> gid:int -> commit:bool -> unit

(** [decision t ~gid] looks the decision up in the central log first, then
    in every shard's log — a decision is a decision no matter which
    coordinator forced it. *)
val decision : t -> gid:int -> bool option

(** Stable decision records across the central and all shard logs. *)
val decision_log_size : t -> int

(** {2 Sharding} *)

(** Whether the federation was created with [shards > 1]. *)
val sharded : t -> bool

(** [route t gid] is the sorted participating shard ids {!journal_open}
    registered for [gid]; [None] when unsharded or opened without sites
    (central coordinates either way). *)
val route : t -> int -> int array option

(** The shard owning a site, or [None] when unsharded / unknown. *)
val shard_for_site : t -> string -> int option

(** The CC-module / L1 lock table responsible for objects at [site]: the
    owning shard's table, or the central one when unsharded. *)
val cc_table : t -> site:string -> Icdb_lock.Mode.t Icdb_lock.Lock_table.t

val l1_table : t -> site:string -> Icdb_mlt.Conflict.clazz Icdb_lock.Lock_table.t

(** Release a global transaction's locks across the central and every
    shard table (no-op per table where it holds nothing). *)
val release_cc_owner : t -> gid:int -> unit

val release_l1_owner : t -> gid:int -> unit

(** Coordinator actor for a gid's spans and traces: "shard-<i>" on the
    single-shard fast path, "central" otherwise. *)
val gid_actor : t -> gid:int -> string

(** [shard_crash t ~shard] wipes the shard's volatile lock tables (CC
    module + L1 manager), the shard-coordinator analogue of
    {!Central_recovery.crash}; stable shard state survives. Crashing the
    coordinator site itself is the caller's separate step. *)
val shard_crash : t -> shard:int -> unit

(** Shard decision-log forces summed over shards (group-commit forces when
    the window is on, one per shard decision otherwise), and total shard
    decisions. Both 0 when unsharded. *)
val shard_log_forces : t -> int

val shard_decisions : t -> int

(** {2 Central journal (used by the protocols and central recovery)} *)

(** [journal_open_routed t ~sites ~gid ~protocol] adds an [Executing]
    entry. In a sharded federation [sites] (the member sites the
    transaction will touch) routes the entry: one shard — the entry lives
    only in that shard's journal and the whole commit round stays there;
    several — a top-level entry plus a mirror at each participating shard.
    An empty/unknown site list (or an unsharded federation) keeps the
    central journal, as before. *)
val journal_open_routed :
  t -> sites:string list -> gid:int -> protocol:string -> unit

(** [journal_open t ~gid ~protocol] = [journal_open_routed ~sites:[]]: the
    central system coordinates. *)
val journal_open : t -> gid:int -> protocol:string -> unit

(** [journal_branch t ~gid ~site ~txn_id] records one local transaction
    (routed to the gid's journal entry; cross-shard transactions also
    record it in the owning shard's mirror). *)
val journal_branch : t -> gid:int -> site:string -> txn_id:int -> unit

(** [journal_decide t ~gid ~commit] flips the entry to [Decided] {e and}
    writes the decision log. With [central_gc_window] set the caller (a
    protocol fiber) blocks until the window's shared log force completes —
    the decision is durable on return either way. Routed: a single-shard
    transaction decides entirely at its shard coordinator (no top-level
    write, force or message); a cross-shard one decides at the top level
    and then runs a "shard-decide" RPC round over the participating shard
    coordinators, each forcing its own journal before acknowledging (a
    coordinator down past the retry budget misses the round and is caught
    up by per-shard recovery). *)
val journal_decide : t -> gid:int -> commit:bool -> unit

(** [journal_close t ~gid] removes the entry (and any shard mirrors) once
    every site has applied the outcome. *)
val journal_close : t -> gid:int -> unit

(** Open entries (recovery's work list), sorted by gid: the union over the
    top journal and every shard journal, one entry per gid (the top entry,
    which has every branch, wins for cross-shard transactions). *)
val journal_open_entries : t -> (int * journal_entry) list

(** Raw open-entry count over the top and shard journals (mirrors counted
    per shard); 0 exactly when every journal is empty — the quiescence
    check the monitors and drain probes use. *)
val total_journal_entries : t -> int

(** Sum of message counts over all links, and the per-label breakdown. *)
val total_messages : t -> int

val messages_by_label : t -> (string * int) list

val reset_message_counters : t -> unit

(** {2 Commit-overhead batching} *)

(** [batcher t site] is the site's decision-traffic batcher, or [None] when
    message batching is off. Protocols route decision-phase traffic through
    it via {!Protocol_common}. *)
val batcher : t -> string -> Icdb_net.Batcher.t option

(** Central decision-log forces: with group commit on, the shared forces
    that actually happened; off, one per decision (the baseline they are
    compared against). Always 0 while a [decision_replicator] is installed —
    durability then lives at the acceptor quorum. *)
val central_log_forces : t -> int

(** Batch envelopes put on the wire across all sites, and members per
    envelope on average (0 with batching off). *)
val batch_envelopes : t -> int

val batch_occupancy_mean : t -> float

(** Committed state across all sites, protocol marker keys filtered out:
    [(site, key, value)] sorted. The invariant checks of the test-suite and
    the V6 crash matrix compare these snapshots. *)
val snapshot : t -> (string * string * int) list
