module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Rng = Icdb_util.Rng
module Table = Icdb_util.Table
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Federation = Icdb_core.Federation
module Central_recovery = Icdb_core.Central_recovery
module Action_log = Icdb_core.Action_log
module Metrics = Icdb_core.Metrics
module Monitor = Icdb_core.Monitor
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Span = Icdb_obs.Span
module Export = Icdb_obs.Export
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol

exception Central_crash_injected

(* Virtual-time window fault events are drawn from. *)
let horizon = 300.0

(* One fixed chaos workload: small federation, hot accounts (skewed zipf on
   few accounts per site), commuting increments so the federation-wide
   balance is an atomicity invariant, a healthy intended-abort rate so the
   compensation paths run, and short local lock waits so in-doubt locals
   stall neighbours briefly instead of forever. *)
let base_config ?(sim_domains = 1) ?(shards = 1) ?(acceptors = 1) protocol ~seed =
  {
    Runner.default with
    protocol;
    seed;
    sim_domains;
    shards;
    acceptors;
    (* four sites shard evenly into 2 or 4; a healthy cross-shard rate so
       both the fast path and the two-level round face the chaos. With
       [shards = 1] every field below equals the pre-sharding config. *)
    n_sites = (if shards > 1 then 4 else 3);
    cross_shard_fraction = (if shards > 1 then 0.25 else 0.0);
    accounts_per_site = 12;
    initial_balance = 500;
    n_txns = 40;
    concurrency = 6;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.8;
    use_increments = true;
    p_intended_abort = 0.15;
    lock_wait_timeout = Some 50.0;
  }

let inject (fed : Federation.t) kind =
  Registry.inc
    (Registry.counter fed.registry ~labels:[ ("kind", kind) ]
       "icdb_fault_injected_total");
  Tracer.instant fed.tracer ~actor:"fault" (Span.Mark ("fault:" ^ kind))

(* Arm every event of the plan against a freshly built federation. Runs as
   the runner's [on_setup] hook: time 0, nothing spawned yet. Shards whose
   coordinator a [Shard_crash] takes down are pushed onto [crashed]: their
   restart recovery must run at drain, like central recovery — a mid-run
   [recover_shard] would presume abort on transactions whose coordinator
   fibers are still alive. *)
let arm engine (fed : Federation.t) ~base_latency ~base_loss ~mlt ~crashed
    (plan : Plan.t) =
  let n_sites = List.length fed.sites in
  let site_of idx = snd (List.nth fed.sites (idx mod n_sites)) in
  let gid_base = fed.next_gid in
  let armed : (int, string) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (ev : Plan.event) ->
      match ev with
      | Site_crash { site; at; duration } ->
        let s = site_of site in
        ignore
          (Sim.schedule engine ~delay:at (fun () ->
               if Site.is_up s then begin
                 inject fed "site-crash";
                 Site.crash_for s ~duration
               end))
      | Central_crash { txn; phase_idx } ->
        (* gids are handed out sequentially, so the [txn]-th issued global
           transaction is addressable before the run starts. *)
        Hashtbl.replace armed (gid_base + txn + 1) (Plan.phase_name ~mlt phase_idx)
      | Loss_burst { site; at; duration; loss } ->
        let link = Site.link (site_of site) in
        ignore
          (Sim.schedule engine ~delay:at (fun () ->
               inject fed "loss";
               Link.set_loss link loss));
        ignore
          (Sim.schedule engine ~delay:(at +. duration) (fun () ->
               Link.set_loss link base_loss))
      | Latency_spike { site; at; duration; factor } ->
        let link = Site.link (site_of site) in
        ignore
          (Sim.schedule engine ~delay:at (fun () ->
               inject fed "latency";
               Link.set_latency link (base_latency *. factor)));
        ignore
          (Sim.schedule engine ~delay:(at +. duration) (fun () ->
               Link.set_latency link base_latency))
      | Duplication { site; at; duration; probability } ->
        let link = Site.link (site_of site) in
        ignore
          (Sim.schedule engine ~delay:at (fun () ->
               inject fed "duplication";
               Link.set_duplication link probability));
        ignore
          (Sim.schedule engine ~delay:(at +. duration) (fun () ->
               Link.set_duplication link 0.0))
      | Shard_crash { shard; at; duration } ->
        if Federation.sharded fed then begin
          let shard = shard mod Array.length fed.shards in
          let coord = Federation.site fed fed.shards.(shard).sh_coord in
          ignore
            (Sim.schedule engine ~delay:at (fun () ->
                 inject fed "shard-crash";
                 (* the coordinator site goes down and the shard's volatile
                    CC/L1 state dies with it; restart recovery runs at
                    drain, once the in-flight fibers have settled *)
                 Federation.shard_crash fed ~shard;
                 crashed := shard :: !crashed;
                 if Site.is_up coord then Site.crash_for coord ~duration))
        end
      | Acceptor_crash { acceptor; at; duration } ->
        (* Paxos groups are the federation's first-sites prefix, so acceptor
           [i] lives on site [i]. Its stable acceptor log survives the crash
           (like a WAL); the site just answers nothing until restart — the
           fault Paxos Commit's quorum is there to mask. *)
        let s = site_of acceptor in
        ignore
          (Sim.schedule engine ~delay:at (fun () ->
               if Site.is_up s then begin
                 inject fed "acceptor-crash";
                 Site.crash_for s ~duration
               end)))
    plan.events;
  if Hashtbl.length armed > 0 then begin
    let fired : (int, unit) Hashtbl.t = Hashtbl.create 7 in
    fed.central_fail <-
      (fun ~gid phase ->
        match Hashtbl.find_opt armed gid with
        | Some p when p = phase && not (Hashtbl.mem fired gid) ->
          Hashtbl.add fired gid ();
          inject fed "central-crash";
          (* Volatile central state dies with the coordinator fiber. *)
          Central_recovery.crash fed;
          (* With Paxos Commit installed a new leader takes over the
             in-doubt instance from the acceptor quorum; a no-op otherwise
             (drain-time recovery resolves it, as before). *)
          fed.leader_failover ~gid;
          raise Central_crash_injected
        | _ -> ())
  end

type violation =
  | Money_not_conserved of { before : int; after : int }
  | Not_serializable of string list
  | Journal_not_empty of int
  | Log_not_drained of { log : string; pending : int }
  | Marker_rule of { site : string; gid : int; detail : string }
  | Pins_leaked of { site : string; pins : int }
  | Accounting of { started : int; committed : int; aborted : int; killed : int }
  | Recovery_not_idempotent of string
  | Engine_not_drained of { live : int; stored : int }
  | Run_crashed of string

let pp_violation ppf = function
  | Money_not_conserved { before; after } ->
    Format.fprintf ppf "money not conserved: %d before, %d after" before after
  | Not_serializable vs ->
    Format.fprintf ppf "not serializable: %s" (String.concat "; " vs)
  | Journal_not_empty n -> Format.fprintf ppf "%d journal entries open after recovery" n
  | Log_not_drained { log; pending } ->
    Format.fprintf ppf "%s log holds %d undrained entries" log pending
  | Marker_rule { site; gid; detail } ->
    Format.fprintf ppf "marker rule at %s, gid %d: %s" site gid detail
  | Pins_leaked { site; pins } ->
    Format.fprintf ppf "%d buffer pins leaked at %s" pins site
  | Accounting { started; committed; aborted; killed } ->
    Format.fprintf ppf "accounting: started %d <> committed %d + aborted %d + killed %d"
      started committed aborted killed
  | Recovery_not_idempotent s ->
    Format.fprintf ppf "second recovery repaired again: %s" s
  | Engine_not_drained { live; stored } ->
    Format.fprintf ppf "engine not drained: %d live, %d stored events" live stored
  | Run_crashed s -> Format.fprintf ppf "run crashed: %s" s

(* Protocol markers left in the committed local states, keyed by gid. *)
let marker_of_key key =
  match String.split_on_char ':' key with
  | [ "__cm"; g ] -> Option.map (fun g -> `Cm g) (int_of_string_opt g)
  | [ "__um"; g; s ] -> (
    match (int_of_string_opt g, int_of_string_opt s) with
    | Some g, Some s -> Some (`Um (g, s))
    | _ -> None)
  | [ "__am"; g; s ] -> (
    match (int_of_string_opt g, int_of_string_opt s) with
    | Some g, Some s -> Some (`Am (g, s))
    | _ -> None)
  | _ -> None

(* The §3.2/§3.3 no-double-work rules, checked from the database-resident
   markers after the run has drained and the central system recovered:

   - 2PC and presumed abort write no markers at all;
   - commitment-after: a commit marker implies a logged commit decision
     (locals commit only after the decision), never an undo marker;
   - commitment-before (and the hybrid's before legs): a locally committed
     branch of a transaction that did not commit globally must carry the
     undo marker, and no globally committed transaction may be compensated;
   - MLT: the same, per action sequence number. *)
let marker_violations (fed : Federation.t) protocol =
  let decision gid = Federation.decision fed ~gid in
  let acc = ref [] in
  List.iter
    (fun (site_name, site) ->
      let db = Site.db site in
      let cms = ref [] and ums = ref [] and ams = ref [] in
      List.iter
        (fun key ->
          match marker_of_key key with
          | Some (`Cm g) -> cms := g :: !cms
          | Some (`Um (g, s)) -> ums := (g, s) :: !ums
          | Some (`Am (g, s)) -> ams := (g, s) :: !ams
          | None -> ())
        (Db.committed_keys db);
      let add gid detail = acc := Marker_rule { site = site_name; gid; detail } :: !acc in
      let has_um g s = List.mem (g, s) !ums in
      let no_markers reason =
        List.iter (fun g -> add g (reason ^ " wrote a commit marker")) !cms;
        List.iter (fun (g, _) -> add g (reason ^ " wrote an undo marker")) !ums;
        List.iter (fun (g, _) -> add g (reason ^ " wrote an action marker")) !ams
      in
      match (protocol : Protocol.t) with
      | Two_phase | Presumed_abort -> no_markers "the 2PC family"
      | After ->
        List.iter
          (fun g ->
            if decision g <> Some true then
              add g "commit marker without a logged commit decision")
          !cms;
        List.iter (fun (g, _) -> add g "commitment-after wrote an undo marker") !ums;
        List.iter (fun (g, _) -> add g "commitment-after wrote an action marker") !ams
      | Before | Hybrid ->
        List.iter
          (fun g ->
            if decision g <> Some true && not (has_um g 0) then
              add g "locally committed, globally not committed, not compensated")
          !cms;
        List.iter
          (fun (g, _) ->
            if decision g = Some true then
              add g "compensated a globally committed transaction")
          !ums;
        List.iter (fun (g, _) -> add g "flat protocol wrote an action marker") !ams
      | Before_mlt ->
        List.iter (fun g -> add g "MLT wrote a flat commit marker") !cms;
        List.iter
          (fun (g, s) ->
            if decision g <> Some true && not (has_um g s) then
              add g
                (Printf.sprintf "action %d committed, globally aborted, not compensated"
                   s))
          !ams;
        List.iter
          (fun (g, _) ->
            if decision g = Some true then
              add g "compensated an action of a committed transaction")
          !ums)
    fed.sites;
  List.rev !acc

let zero_summary (s : Central_recovery.summary) =
  s.entries_recovered = 0 && s.decisions_pushed = 0 && s.locals_aborted = 0
  && s.branches_redone = 0 && s.branches_undone = 0

let check_invariants (fed : Federation.t) (report : Runner.report) ~protocol ~killed
    ~recover2 =
  let acc = ref [] in
  let push x = acc := x :: !acc in
  if not report.money_conserved then
    push
      (Money_not_conserved { before = report.money_before; after = report.money_after });
  if not report.serializable then push (Not_serializable report.violations);
  let open_entries = List.length (Federation.journal_open_entries fed) in
  if open_entries > 0 then push (Journal_not_empty open_entries);
  List.iter
    (fun (name, log) ->
      let pending = Action_log.pending log in
      if pending > 0 then push (Log_not_drained { log = name; pending }))
    [ ("redo", fed.redo_log); ("undo", fed.undo_log); ("mlt-undo", fed.mlt_undo_log) ];
  List.iter
    (fun (name, site) ->
      let pins = Db.buffer_pins (Site.db site) in
      if pins <> 0 then push (Pins_leaked { site = name; pins }))
    fed.sites;
  if report.started <> report.committed + report.aborted + killed then
    push
      (Accounting
         {
           started = report.started;
           committed = report.committed;
           aborted = report.aborted;
           killed;
         });
  (* After the run and the recovery drains, the event queue must be truly
     empty: no live timers left behind by a crashed fiber, and no cancelled
     carcasses the queue failed to compact away. Summed over every
     partition engine — a partitioned run must drain all of them. *)
  let sum_engines f = Array.fold_left (fun acc e -> acc + f e) 0 fed.engines in
  let live = sum_engines Sim.pending and stored = sum_engines Sim.stored in
  if live <> 0 || stored <> 0 then push (Engine_not_drained { live; stored });
  (match recover2 with
  | Some s2 when not (zero_summary s2) ->
    push
      (Recovery_not_idempotent (Format.asprintf "%a" Central_recovery.pp_summary s2))
  | _ -> ());
  List.iter push (marker_violations fed protocol);
  List.rev !acc

type outcome = {
  plan : Plan.t;
  report : Runner.report option;
  killed : int;  (** coordinator fibers killed by injected central crashes *)
  violations : violation list;
  trips : Monitor.trip list;
  flight : string option;
}

(* Every chaos run flies with the recorder on: a ring this size holds the
   last ~dozen transactions' worth of events — plenty of tail for a
   forensic read, negligible memory. *)
let flight_capacity = 512

let run_plan ?registry ?(seed = 42L) ?sim_domains ?shards ?acceptors ?extra_setup
    ~protocol (plan : Plan.t) =
  let cfg = base_config ?sim_domains ?shards ?acceptors protocol ~seed in
  let mlt = not (Protocol.is_flat protocol) in
  let killed = ref 0 in
  let fed_ref = ref None in
  let monitor_ref = ref None in
  let recover2 = ref None in
  let drain_error = ref None in
  let crashed_shards = ref [] in
  (* The runner re-points the clock onto its own engine. *)
  let tracer = Tracer.create ~enabled:true ~limit:flight_capacity ~clock:(fun () -> 0.0) () in
  let on_setup engine (fed : Federation.t) =
    fed_ref := Some fed;
    arm engine fed ~base_latency:cfg.latency ~base_loss:cfg.message_loss ~mlt
      ~crashed:crashed_shards plan;
    (* A Paxos leader failover legitimately pauses a transaction for the
       failover delay plus two quorum rounds over possibly-crashed
       acceptors; the watchdog horizon is widened so a healthy failover
       never reads as a stuck transaction (and clean Paxos runs stay
       monitor-silent). *)
    let monitor_config =
      if cfg.acceptors > 1 then { Monitor.default_config with stuck_after = 240.0 }
      else Monitor.default_config
    in
    monitor_ref :=
      Some
        (Monitor.attach ~config:monitor_config fed ~finished:(fun () ->
             (* Every transaction settled: committed, aborted, or its
                coordinator killed by an injected central crash. Killed
                coordinators leave open journal entries by design — central
                recovery (run at drain) resolves them, so the watchdog must
                not read them as stuck. A genuinely wedged transaction is
                none of the three and keeps this false. *)
             Metrics.started fed.metrics >= cfg.n_txns
             && Metrics.committed fed.metrics + Metrics.aborted fed.metrics
                + !killed
                >= Metrics.started fed.metrics));
    match extra_setup with None -> () | Some f -> f engine fed
  in
  let on_txn_exn = function
    | Central_crash_injected ->
      incr killed;
      true
    | _ -> false
  in
  let on_drain () =
    (match !fed_ref with
    | None -> ()
    | Some fed -> (
      (* The crash already happened (or never will); recovery and the
         invariant probes must not trip the hook again. *)
      fed.central_fail <- (fun ~gid:_ _ -> ());
      try
        (* Per-shard restart recovery first, for every shard whose
           coordinator crashed: resolves its fast-path entries and any
           cross-shard mirror whose top decision is logged. The full
           recovery then settles what's left — the two are promised to
           compose idempotently. *)
        List.iter
          (fun shard -> ignore (Central_recovery.recover_shard fed ~shard))
          (List.sort_uniq compare !crashed_shards);
        ignore (Central_recovery.recover fed);
        (* Recovering twice is promised to be a no-op — check it every run. *)
        recover2 := Some (Central_recovery.recover fed)
      with e -> drain_error := Some e));
    (* Last monitor sweep at drain time, after recovery settled the state. *)
    match !monitor_ref with None -> () | Some m -> Monitor.finalize m
  in
  let trips () =
    match !monitor_ref with None -> [] | Some m -> Monitor.trips m
  in
  match Runner.run ?registry ~tracer ~on_setup ~on_txn_exn ~on_drain cfg with
  | exception e ->
    {
      plan;
      report = None;
      killed = !killed;
      violations = [ Run_crashed (Printexc.to_string e) ];
      trips = trips ();
      (* the ring holds the last events before the escape — dump it *)
      flight = Some (Export.flight_dump tracer);
    }
  | report ->
    let fed = Option.get !fed_ref in
    let violations =
      match !drain_error with
      | Some e -> [ Run_crashed ("recovery: " ^ Printexc.to_string e) ]
      | None -> check_invariants fed report ~protocol ~killed:!killed ~recover2:!recover2
    in
    {
      plan;
      report = Some report;
      killed = !killed;
      violations;
      trips = trips ();
      flight = (if violations <> [] then Some (Export.flight_dump tracer) else None);
    }

(* Greedy minimisation: drop one event at a time as long as the plan still
   violates; fixpoint is a locally minimal reproducer. *)
let shrink ?(seed = 42L) ?sim_domains ?shards ?acceptors ~protocol (plan : Plan.t) =
  let violates p =
    (run_plan ~seed ?sim_domains ?shards ?acceptors ~protocol p).violations <> []
  in
  let rec go plan =
    let n = Plan.length plan in
    let rec try_remove i =
      if i >= n then plan
      else
        let candidate = Plan.remove_nth plan i in
        if violates candidate then go candidate else try_remove (i + 1)
    in
    if n = 0 then plan else try_remove 0
  in
  go plan

type protocol_stats = {
  cp_protocol : Protocol.t;
  cp_plans : int;
  cp_events : int;
  cp_by_class : (string * int) list;  (** events injected per fault class *)
  cp_failures : outcome list;  (** outcomes with at least one violation *)
  cp_trips : (string * int * float) list;
      (** per monitor: (name, plans that tripped it, earliest first-trip
          virtual time over those plans) *)
}

let plan_seed ~seed i = Int64.add seed (Int64.mul 1000003L (Int64.of_int i))

let run_protocol ?(shrink_failures = false) ?(seed = 42L) ?sim_domains ?shards
    ?acceptors ~plans protocol =
  let cfg = base_config ?sim_domains ?shards ?acceptors protocol ~seed in
  let sharded = match shards with Some s -> s > 1 | None -> false in
  let paxos = match acceptors with Some a -> a > 1 | None -> false in
  let classes =
    match (sharded, paxos) with
    | true, true -> Plan.fault_classes_sharded_acceptors
    | true, false -> Plan.fault_classes_sharded
    | false, true -> Plan.fault_classes_acceptors
    | false, false -> Plan.fault_classes
  in
  let failures = ref [] in
  let events = ref 0 in
  let by_class = List.map (fun c -> (c, ref 0)) classes in
  let trip_tally : (string, int * float) Hashtbl.t = Hashtbl.create 4 in
  let tally_trips outcome =
    List.iter
      (fun (tr : Monitor.trip) ->
        let plans_hit, earliest =
          Option.value ~default:(0, infinity)
            (Hashtbl.find_opt trip_tally tr.m_monitor)
        in
        Hashtbl.replace trip_tally tr.m_monitor
          (plans_hit + 1, Float.min earliest tr.m_time))
      outcome.trips
  in
  for i = 0 to plans - 1 do
    let plan =
      Plan.generate ?shards ?acceptors ~seed:(plan_seed ~seed i) ~n_sites:cfg.n_sites
        ~n_txns:cfg.n_txns ~horizon ()
    in
    events := !events + Plan.length plan;
    List.iter (fun e -> incr (List.assoc (Plan.classify e) by_class)) plan.events;
    let outcome = run_plan ~seed ?sim_domains ?shards ?acceptors ~protocol plan in
    tally_trips outcome;
    if outcome.violations <> [] then begin
      let outcome =
        if shrink_failures then
          run_plan ~seed ?sim_domains ?shards ?acceptors ~protocol
            (shrink ~seed ?sim_domains ?shards ?acceptors ~protocol plan)
        else outcome
      in
      failures := outcome :: !failures
    end
  done;
  {
    cp_protocol = protocol;
    cp_plans = plans;
    cp_events = !events;
    cp_by_class = List.map (fun (c, r) -> (c, !r)) by_class;
    cp_failures = List.rev !failures;
    cp_trips =
      Hashtbl.fold (fun m (n, t) acc -> (m, n, t) :: acc) trip_tally []
      |> List.sort compare;
  }

let run_campaign ?shrink_failures ?seed ?sim_domains ?shards ?acceptors ~plans
    protocols =
  List.map
    (run_protocol ?shrink_failures ?seed ?sim_domains ?shards ?acceptors ~plans)
    protocols

let stats_table ~plans ~seed stats =
  (* column set follows the campaign's class tally: the plain 5 classes
     unsharded, + shard-crash when the campaign ran sharded *)
  let classes =
    match stats with
    | s :: _ -> List.map fst s.cp_by_class
    | [] -> Plan.fault_classes
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "R1: fault-injection campaign (%d plans/protocol, seed %Ld)"
           plans seed)
      ([ "protocol"; "plans"; "events" ] @ classes @ [ "violations" ])
  in
  List.iter
    (fun s ->
      Table.add_row tbl
        ([
           Protocol.obs_name s.cp_protocol;
           string_of_int s.cp_plans;
           string_of_int s.cp_events;
         ]
        @ List.map (fun c -> string_of_int (List.assoc c s.cp_by_class)) classes
        @ [ string_of_int (List.length s.cp_failures) ]))
    stats;
  tbl

let total_violations stats =
  List.fold_left (fun acc s -> acc + List.length s.cp_failures) 0 stats

(* Online-monitor first trips across a campaign; empty string when no
   monitor tripped anywhere (the expected healthy case — and then R1 and
   chaos output is byte-identical to the pre-monitor runs). *)
let trips_summary stats =
  let lines =
    List.concat_map
      (fun s ->
        List.map
          (fun (monitor, plans_hit, earliest) ->
            Printf.sprintf "  %-10s %-10s tripped in %d plan(s), earliest at t=%.2f"
              (Protocol.obs_name s.cp_protocol)
              monitor plans_hit earliest)
          s.cp_trips)
      stats
  in
  if lines = [] then ""
  else
    "monitor first trips (plans tripped, earliest virtual time):\n"
    ^ String.concat "\n" lines ^ "\n"

let experiment_r1 ?(plans = 25) ?(seed = 42L) ?sim_domains ?shards ?acceptors () =
  let stats = run_campaign ~seed ?sim_domains ?shards ?acceptors ~plans Protocol.all in
  Table.print (stats_table ~plans ~seed stats);
  (match trips_summary stats with
  | "" -> ()
  | s -> Printf.printf "\n%s" s);
  List.iter
    (fun s ->
      List.iter
        (fun o ->
          Printf.printf "\n%s violation under %s\n" (Protocol.obs_name s.cp_protocol)
            (Plan.to_string o.plan);
          List.iter
            (fun v -> Printf.printf "  %s\n" (Format.asprintf "%a" pp_violation v))
            o.violations)
        s.cp_failures)
    stats;
  stats
