(** Seeded fault plans: the campaign's unit of chaos.

    A plan is a small list of fault events to arm against one workload run —
    site crashes and restarts, central-system crashes at named protocol
    instants, message-loss bursts, latency spikes, and duplicated
    deliveries. Plans are generated deterministically from a seed, printed
    for reproducers, and shrunk by removing events one at a time. *)

type event =
  | Site_crash of { site : int; at : float; duration : float }
      (** crash site [site mod n_sites] at virtual time [at]; a restart is
          scheduled [duration] later *)
  | Central_crash of { txn : int; phase_idx : int }
      (** crash the central system when the [txn]-th issued global
          transaction reaches protocol instant [phase_idx] (0 = after
          execution, 1 = after the votes / second action, 2 = after the
          decision) *)
  | Loss_burst of { site : int; at : float; duration : float; loss : float }
      (** raise the site link's per-copy drop probability to [loss] during
          [\[at, at+duration)] *)
  | Latency_spike of { site : int; at : float; duration : float; factor : float }
      (** multiply the site link's latency by [factor] during the window *)
  | Duplication of { site : int; at : float; duration : float; probability : float }
      (** deliver each message twice with [probability] during the window *)
  | Shard_crash of { shard : int; at : float; duration : float }
      (** crash shard [shard mod shards]'s coordinator at [at]: its site
          goes down for [duration], its volatile CC/L1 state is wiped
          ({!Icdb_core.Federation.shard_crash}), and per-shard restart
          recovery runs once the site is back. Only generated for sharded
          federations *)
  | Acceptor_crash of { acceptor : int; at : float; duration : float }
      (** crash the site hosting Paxos acceptor [acceptor mod acceptors]
          (the federation's first 2F+1 sites) at [at] for [duration]: its
          stable acceptor log survives, but it answers no prepare/accept
          until restart. Only generated for Paxos campaigns
          ([acceptors > 1]) *)

type t = { plan_seed : int64; events : event list }

val empty : t
val length : t -> int

(** [phase_name ~mlt idx] — the [central_fail] instant name a
    {!Central_crash} with [phase_idx = idx] targets. Flat protocols:
    "executed" / "voted" / "decided"; MLT: "action-0" / "action-1" /
    "decided". *)
val phase_name : mlt:bool -> int -> string

val n_phases : int

(** Fault class of one event ("site-crash", "central-crash", "loss",
    "latency", "duplication") — the columns of the R1 table. *)
val classify : event -> string

val fault_classes : string list

(** [fault_classes] plus ["shard-crash"] — the sharded campaign's table
    columns; kept separate so the unsharded R1 table is unchanged. *)
val fault_classes_sharded : string list

(** [fault_classes] (resp. [fault_classes_sharded]) plus ["acceptor-crash"]
    — the Paxos campaign's table columns. *)
val fault_classes_acceptors : string list

val fault_classes_sharded_acceptors : string list

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [generate ~seed ~n_sites ~n_txns ~horizon ()] draws 0–6 events from the
    seed. Deterministic. With [shards] > 1 the event space gains
    {!Shard_crash}, with [acceptors] > 1 {!Acceptor_crash} (widening the
    draw by one arm each); the defaults keep the exact historical draw
    sequences, reproducing earlier plans byte for byte. *)
val generate :
  ?shards:int ->
  ?acceptors:int ->
  seed:int64 ->
  n_sites:int ->
  n_txns:int ->
  horizon:float ->
  unit ->
  t

(** Plan with the [n]-th event removed (shrinking step). *)
val remove_nth : t -> int -> t
