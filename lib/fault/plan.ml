module Rng = Icdb_util.Rng

type event =
  | Site_crash of { site : int; at : float; duration : float }
  | Central_crash of { txn : int; phase_idx : int }
  | Loss_burst of { site : int; at : float; duration : float; loss : float }
  | Latency_spike of { site : int; at : float; duration : float; factor : float }
  | Duplication of { site : int; at : float; duration : float; probability : float }
  | Shard_crash of { shard : int; at : float; duration : float }
  | Acceptor_crash of { acceptor : int; at : float; duration : float }

type t = { plan_seed : int64; events : event list }

let empty = { plan_seed = 0L; events = [] }
let length t = List.length t.events

(* Protocol-instant names the central-crash injector targets. The flat
   protocols call [central_fail] at "executed" / "voted" / "decided"; MLT
   calls it after each action and at the decision. *)
let flat_phases = [| "executed"; "voted"; "decided" |]
let mlt_phases = [| "action-0"; "action-1"; "decided" |]
let n_phases = 3

let phase_name ~mlt idx =
  let table = if mlt then mlt_phases else flat_phases in
  table.(idx mod n_phases)

let classify = function
  | Site_crash _ -> "site-crash"
  | Central_crash _ -> "central-crash"
  | Loss_burst _ -> "loss"
  | Latency_spike _ -> "latency"
  | Duplication _ -> "duplication"
  | Shard_crash _ -> "shard-crash"
  | Acceptor_crash _ -> "acceptor-crash"

let fault_classes = [ "site-crash"; "central-crash"; "loss"; "latency"; "duplication" ]

(* The sharded campaign's extra column; kept out of [fault_classes] so the
   unsharded R1 table keeps its exact pre-sharding shape. *)
let fault_classes_sharded = fault_classes @ [ "shard-crash" ]

(* Same convention for the Paxos campaign: the acceptor-crash column only
   appears when acceptor faults can actually be generated. *)
let fault_classes_acceptors = fault_classes @ [ "acceptor-crash" ]
let fault_classes_sharded_acceptors = fault_classes_sharded @ [ "acceptor-crash" ]

let pp_event ppf = function
  | Site_crash { site; at; duration } ->
    Format.fprintf ppf "site-crash site=%d at=%.1f dur=%.1f" site at duration
  | Central_crash { txn; phase_idx } ->
    Format.fprintf ppf "central-crash txn=%d phase=%d" txn phase_idx
  | Loss_burst { site; at; duration; loss } ->
    Format.fprintf ppf "loss-burst site=%d at=%.1f dur=%.1f p=%.2f" site at duration loss
  | Latency_spike { site; at; duration; factor } ->
    Format.fprintf ppf "latency-spike site=%d at=%.1f dur=%.1f x=%.1f" site at duration
      factor
  | Duplication { site; at; duration; probability } ->
    Format.fprintf ppf "duplication site=%d at=%.1f dur=%.1f p=%.2f" site at duration
      probability
  | Shard_crash { shard; at; duration } ->
    Format.fprintf ppf "shard-crash shard=%d at=%.1f dur=%.1f" shard at duration
  | Acceptor_crash { acceptor; at; duration } ->
    Format.fprintf ppf "acceptor-crash acceptor=%d at=%.1f dur=%.1f" acceptor at
      duration

let pp ppf t =
  Format.fprintf ppf "plan seed=%Ld events=%d" t.plan_seed (List.length t.events);
  List.iter (fun e -> Format.fprintf ppf "@\n  %a" pp_event e) t.events

let to_string t = Format.asprintf "%a" pp t

(* Seeded generator. Event times land inside [0, horizon); durations are
   short relative to the horizon so faults overlap the workload rather than
   outlasting it. *)
let gen_event rng ~n_sites ~n_txns ~horizon ~shards ~acceptors =
  let site = Rng.int rng n_sites in
  let at = Rng.float rng horizon in
  (* Extra arms exist only for the feature that can use them: the shard arm
     when [shards > 1], the acceptor arm when [acceptors > 1]. With both
     off the draw stays the exact 5-way [Rng.int rng 5] of the original
     generator, so earlier plans are reproduced byte for byte (and the
     sharded 6-way draw likewise). *)
  let bound = 5 + (if shards > 1 then 1 else 0) + (if acceptors > 1 then 1 else 0) in
  match Rng.int rng bound with
  | 0 -> Site_crash { site; at; duration = 10.0 +. Rng.float rng 40.0 }
  | 1 -> Central_crash { txn = Rng.int rng n_txns; phase_idx = Rng.int rng n_phases }
  | 2 ->
    Loss_burst
      { site; at; duration = 10.0 +. Rng.float rng 30.0; loss = 0.1 +. Rng.float rng 0.4 }
  | 3 ->
    Latency_spike
      {
        site;
        at;
        duration = 10.0 +. Rng.float rng 30.0;
        factor = 2.0 +. Rng.float rng 8.0;
      }
  | 4 ->
    Duplication
      {
        site;
        at;
        duration = 10.0 +. Rng.float rng 30.0;
        probability = 0.1 +. Rng.float rng 0.4;
      }
  | 5 when shards > 1 ->
    Shard_crash { shard = site mod shards; at; duration = 10.0 +. Rng.float rng 40.0 }
  | _ ->
    Acceptor_crash
      { acceptor = site mod acceptors; at; duration = 10.0 +. Rng.float rng 40.0 }

let generate ?(shards = 1) ?(acceptors = 1) ~seed ~n_sites ~n_txns ~horizon () =
  let rng = Rng.create seed in
  let n_events = Rng.int rng 7 in
  {
    plan_seed = seed;
    events =
      List.init n_events (fun _ ->
          gen_event rng ~n_sites ~n_txns ~horizon ~shards ~acceptors);
  }

let remove_nth t n =
  { t with events = List.filteri (fun i _ -> i <> n) t.events }
