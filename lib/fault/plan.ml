module Rng = Icdb_util.Rng

type event =
  | Site_crash of { site : int; at : float; duration : float }
  | Central_crash of { txn : int; phase_idx : int }
  | Loss_burst of { site : int; at : float; duration : float; loss : float }
  | Latency_spike of { site : int; at : float; duration : float; factor : float }
  | Duplication of { site : int; at : float; duration : float; probability : float }
  | Shard_crash of { shard : int; at : float; duration : float }

type t = { plan_seed : int64; events : event list }

let empty = { plan_seed = 0L; events = [] }
let length t = List.length t.events

(* Protocol-instant names the central-crash injector targets. The flat
   protocols call [central_fail] at "executed" / "voted" / "decided"; MLT
   calls it after each action and at the decision. *)
let flat_phases = [| "executed"; "voted"; "decided" |]
let mlt_phases = [| "action-0"; "action-1"; "decided" |]
let n_phases = 3

let phase_name ~mlt idx =
  let table = if mlt then mlt_phases else flat_phases in
  table.(idx mod n_phases)

let classify = function
  | Site_crash _ -> "site-crash"
  | Central_crash _ -> "central-crash"
  | Loss_burst _ -> "loss"
  | Latency_spike _ -> "latency"
  | Duplication _ -> "duplication"
  | Shard_crash _ -> "shard-crash"

let fault_classes = [ "site-crash"; "central-crash"; "loss"; "latency"; "duplication" ]

(* The sharded campaign's extra column; kept out of [fault_classes] so the
   unsharded R1 table keeps its exact pre-sharding shape. *)
let fault_classes_sharded = fault_classes @ [ "shard-crash" ]

let pp_event ppf = function
  | Site_crash { site; at; duration } ->
    Format.fprintf ppf "site-crash site=%d at=%.1f dur=%.1f" site at duration
  | Central_crash { txn; phase_idx } ->
    Format.fprintf ppf "central-crash txn=%d phase=%d" txn phase_idx
  | Loss_burst { site; at; duration; loss } ->
    Format.fprintf ppf "loss-burst site=%d at=%.1f dur=%.1f p=%.2f" site at duration loss
  | Latency_spike { site; at; duration; factor } ->
    Format.fprintf ppf "latency-spike site=%d at=%.1f dur=%.1f x=%.1f" site at duration
      factor
  | Duplication { site; at; duration; probability } ->
    Format.fprintf ppf "duplication site=%d at=%.1f dur=%.1f p=%.2f" site at duration
      probability
  | Shard_crash { shard; at; duration } ->
    Format.fprintf ppf "shard-crash shard=%d at=%.1f dur=%.1f" shard at duration

let pp ppf t =
  Format.fprintf ppf "plan seed=%Ld events=%d" t.plan_seed (List.length t.events);
  List.iter (fun e -> Format.fprintf ppf "@\n  %a" pp_event e) t.events

let to_string t = Format.asprintf "%a" pp t

(* Seeded generator. Event times land inside [0, horizon); durations are
   short relative to the horizon so faults overlap the workload rather than
   outlasting it. *)
let gen_event rng ~n_sites ~n_txns ~horizon ~shards =
  let site = Rng.int rng n_sites in
  let at = Rng.float rng horizon in
  (* The sixth arm exists only for sharded federations; when [shards <= 1]
     the draw stays the exact 5-way [Rng.int rng 5] of the unsharded
     generator, so pre-sharding plans are reproduced byte for byte. *)
  match Rng.int rng (if shards > 1 then 6 else 5) with
  | 0 -> Site_crash { site; at; duration = 10.0 +. Rng.float rng 40.0 }
  | 1 -> Central_crash { txn = Rng.int rng n_txns; phase_idx = Rng.int rng n_phases }
  | 2 ->
    Loss_burst
      { site; at; duration = 10.0 +. Rng.float rng 30.0; loss = 0.1 +. Rng.float rng 0.4 }
  | 3 ->
    Latency_spike
      {
        site;
        at;
        duration = 10.0 +. Rng.float rng 30.0;
        factor = 2.0 +. Rng.float rng 8.0;
      }
  | 4 ->
    Duplication
      {
        site;
        at;
        duration = 10.0 +. Rng.float rng 30.0;
        probability = 0.1 +. Rng.float rng 0.4;
      }
  | _ -> Shard_crash { shard = site mod shards; at; duration = 10.0 +. Rng.float rng 40.0 }

let generate ?(shards = 1) ~seed ~n_sites ~n_txns ~horizon () =
  let rng = Rng.create seed in
  let n_events = Rng.int rng 7 in
  {
    plan_seed = seed;
    events = List.init n_events (fun _ -> gen_event rng ~n_sites ~n_txns ~horizon ~shards);
  }

let remove_nth t n =
  { t with events = List.filteri (fun i _ -> i <> n) t.events }
