(** Fault-injection campaign: runs seeded {!Plan}s against the banking
    workload over every protocol and checks a global invariant suite after
    each run — global atomicity (money conservation), serializability,
    journal/decision-log agreement, the §3.2/§3.3 no-double-work marker
    rules, log drainage, buffer-pin balance, transaction accounting, and
    the idempotence of {!Icdb_core.Central_recovery.recover}. Violating
    plans can be shrunk to locally minimal reproducers. Deterministic in
    the seed: same seed, byte-identical results. *)

exception Central_crash_injected
(** Raised inside a coordinator fiber when an armed {!Plan.Central_crash}
    fires; the runner's worker counts and swallows it. *)

(** Fixed chaos workload for one protocol (small federation, hot accounts,
    commuting increments, intended aborts). [sim_domains] (default 1)
    partitions the simulation over that many domains — outcomes, summaries
    and invariant verdicts are byte-identical for any value. [shards]
    (default 1) runs the chaos workload on a sharded federation (4 sites, a
    25% cross-shard rate); 1 keeps the exact pre-sharding config.
    [acceptors] (default 1) installs Paxos Commit with that group size;
    1 keeps the single-coordinator decision log, byte-identical to the
    pre-Paxos campaign. *)
val base_config :
  ?sim_domains:int -> ?shards:int -> ?acceptors:int ->
  Icdb_workload.Protocol.t -> seed:int64 -> Icdb_workload.Runner.config

(** Virtual-time window plan events are drawn from. *)
val horizon : float

type violation =
  | Money_not_conserved of { before : int; after : int }
  | Not_serializable of string list
  | Journal_not_empty of int
  | Log_not_drained of { log : string; pending : int }
  | Marker_rule of { site : string; gid : int; detail : string }
  | Pins_leaked of { site : string; pins : int }
  | Accounting of { started : int; committed : int; aborted : int; killed : int }
  | Recovery_not_idempotent of string
  | Engine_not_drained of { live : int; stored : int }
      (** The event queue still holds events after the drain: [live] pending
          ones, or cancelled carcasses compaction missed ([stored]). *)
  | Run_crashed of string

val pp_violation : Format.formatter -> violation -> unit

type outcome = {
  plan : Plan.t;
  report : Icdb_workload.Runner.report option;  (** [None] when the run crashed *)
  killed : int;  (** coordinator fibers killed by injected central crashes *)
  violations : violation list;  (** empty = all invariants held *)
  trips : Icdb_core.Monitor.trip list;
      (** online-monitor first trips observed during the run *)
  flight : string option;
      (** flight-recorder dump ({!Icdb_obs.Export.flight_dump} of the run's
          ring tracer); [Some] exactly when [violations <> []] — the last
          [flight_capacity] events before things went wrong *)
}

(** Ring size of the flight recorder every chaos run flies with. *)
val flight_capacity : int

(** [run_plan ~protocol plan] runs the chaos workload with the plan armed,
    the flight recorder on and the online monitors ({!Icdb_core.Monitor})
    attached, recovers the central system (twice — idempotence is an
    invariant) and evaluates the invariant suite. [extra_setup] runs after
    the plan is armed and the monitors attached (tests use it to
    re-introduce bugs at the fault hook). *)
val run_plan :
  ?registry:Icdb_obs.Registry.t ->
  ?seed:int64 ->
  ?sim_domains:int ->
  ?shards:int ->
  ?acceptors:int ->
  ?extra_setup:(Icdb_sim.Engine.t -> Icdb_core.Federation.t -> unit) ->
  protocol:Icdb_workload.Protocol.t ->
  Plan.t ->
  outcome

(** Greedy one-event-removal minimisation of a violating plan, to fixpoint. *)
val shrink :
  ?seed:int64 -> ?sim_domains:int -> ?shards:int -> ?acceptors:int ->
  protocol:Icdb_workload.Protocol.t -> Plan.t -> Plan.t

type protocol_stats = {
  cp_protocol : Icdb_workload.Protocol.t;
  cp_plans : int;
  cp_events : int;
  cp_by_class : (string * int) list;  (** events injected per fault class *)
  cp_failures : outcome list;  (** outcomes with at least one violation *)
  cp_trips : (string * int * float) list;
      (** per monitor: (name, plans that tripped it, earliest first-trip
          virtual time) — across {e all} the protocol's plans, violating or
          not *)
}

(** [run_protocol ~plans p] generates and runs [plans] plans against
    protocol [p]; with [shrink_failures] each violating plan is re-reported
    shrunk. *)
val run_protocol :
  ?shrink_failures:bool ->
  ?seed:int64 ->
  ?sim_domains:int ->
  ?shards:int ->
  ?acceptors:int ->
  plans:int ->
  Icdb_workload.Protocol.t ->
  protocol_stats

val run_campaign :
  ?shrink_failures:bool ->
  ?seed:int64 ->
  ?sim_domains:int ->
  ?shards:int ->
  ?acceptors:int ->
  plans:int ->
  Icdb_workload.Protocol.t list ->
  protocol_stats list

(** Violations per protocol × fault class — the R1 table. *)
val stats_table : plans:int -> seed:int64 -> protocol_stats list -> Icdb_util.Table.t

val total_violations : protocol_stats list -> int

(** Rendered monitor first-trip lines across a campaign; [""] when no
    monitor tripped anywhere (the healthy case — output then stays
    byte-identical to the pre-monitor campaigns). *)
val trips_summary : protocol_stats list -> string

(** Experiment R1: the campaign over all six protocols (expected all-zero
    violation column). Prints the table plus any violating plans. *)
val experiment_r1 :
  ?plans:int -> ?seed:int64 -> ?sim_domains:int -> ?shards:int ->
  ?acceptors:int -> unit ->
  protocol_stats list
