module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine

type t = {
  engine : Sim.t;
  db : Db.t;
  link : Link.t;
  mutable up_waiters : unit Fiber.resumer list;
  (* Crash-schedule guarding: [crash_for] schedules a delayed restart, but a
     second crash can land before it fires. The pending event is cancelled on
     every up/down transition, and the incarnation stamp makes any event that
     escaped cancellation a no-op — a stale restart must never revive a site
     that a later schedule step just crashed. *)
  mutable pending_restart : Sim.event_id option;
  mutable incarnation : int;
}

let create engine ?(latency = 1.0) ?(loss = 0.0) config =
  {
    engine;
    db = Db.create engine config;
    link =
      Link.create engine ~latency ~loss
        ~loss_seed:(Int64.add config.Db.seed 77L) ();
    up_waiters = [];
    pending_restart = None;
    incarnation = 0;
  }

let name t = Db.name t.db
let db t = t.db
let link t = t.link
let engine t = t.engine

let cancel_pending_restart t =
  match t.pending_restart with
  | None -> ()
  | Some ev ->
    Sim.cancel t.engine ev;
    t.pending_restart <- None

let crash t =
  cancel_pending_restart t;
  t.incarnation <- t.incarnation + 1;
  Db.crash t.db

let restart t =
  cancel_pending_restart t;
  t.incarnation <- t.incarnation + 1;
  let outcome = Db.restart t.db in
  let waiters = List.rev t.up_waiters in
  t.up_waiters <- [];
  List.iter (fun resume -> resume (Ok ())) waiters;
  outcome

let crash_for t ~duration =
  crash t;
  let inc = t.incarnation in
  t.pending_restart <-
    Some
      (Sim.schedule t.engine ~delay:duration (fun () ->
           t.pending_restart <- None;
           if t.incarnation = inc && not (Db.is_up t.db) then ignore (restart t)))

let await_up t =
  if not (Db.is_up t.db) then
    Fiber.await (fun resume -> t.up_waiters <- resume :: t.up_waiters)

let is_up t = Db.is_up t.db
