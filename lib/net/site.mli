(** One local system of the federation: a communication manager's endpoint
    bundling the local database engine with its link to the central system.

    The communication manager of the paper "listens on the net for global
    calls and passes them to the existing database system"; here the
    protocol code in [Icdb_core] runs its per-site logic through
    {!Link.rpc}, and [Site] supplies the pieces that logic needs — the
    engine, the link, and crash orchestration ({!crash_for},
    {!await_up}: the paper's "the global transaction manager has to wait
    for the local system to come up again"). *)

type t

val create :
  Icdb_sim.Engine.t ->
  ?latency:float ->
  ?loss:float ->
  Icdb_localdb.Engine.config ->
  t

val name : t -> string
val db : t -> Icdb_localdb.Engine.t
val link : t -> Link.t
val engine : t -> Icdb_sim.Engine.t

(** [crash t] takes the site down immediately (volatile state lost). Any
    restart still pending from an earlier {!crash_for} is cancelled: the new
    outage is in force until somebody restarts the site again. *)
val crash : t -> unit

(** [restart t] runs restart recovery, reopens the site and wakes every
    fiber blocked in {!await_up}. Returns the recovery report. Cancels a
    pending {!crash_for} restart (the site is already up). *)
val restart : t -> Icdb_wal.Recovery.outcome

(** [crash_for t ~duration] crashes now and schedules the restart [duration]
    virtual-time units later. Callable from anywhere (no fiber needed).

    Overlapping schedules are safe: a later {!crash} or {!crash_for} cancels
    the pending restart (and an incarnation stamp neutralises it even if the
    event was already dispatched), so a stale restart can neither revive a
    site that a newer step just crashed nor double-restart an up site. *)
val crash_for : t -> duration:float -> unit

(** [await_up t] returns immediately when the site is up, otherwise blocks
    the calling fiber until the next {!restart}. *)
val await_up : t -> unit

val is_up : t -> bool
