module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber

type kind = Rpc | Oneway

type member = {
  m_label : string;
  m_kind : kind;
  m_run : unit -> string option; (* [Some reply_label] for Rpc, [None] for Oneway *)
  m_resume : unit Fiber.resumer;
}

type t = {
  engine : Sim.t;
  link : Link.t;
  window : float;
  mutable queue : member list; (* newest first *)
  mutable scheduled : bool;
  mutable envelopes : int;
  mutable members_total : int;
  mutable observer : int -> unit;
}

let create engine link ~window =
  if window < 0.0 then invalid_arg "Batcher.create: negative window";
  {
    engine;
    link;
    window;
    queue = [];
    scheduled = false;
    envelopes = 0;
    members_total = 0;
    observer = ignore;
  }

(* Run one member, capturing its result so that one failing handler cannot
   take the rest of the batch (or the flush fiber) down with it. Mirrors the
   unbatched behavior: the exception surfaces at the member's call site, and
   no reply is accounted for a handler that raised. *)
let run_member m = match m.m_run () with v -> Ok v | exception e -> Error e

(* Deliver one envelope carrying [members]. Each member's logical request is
   piggyback-counted up front (it is on the wire, inside the envelope); reply
   labels are piggyback-counted once the handlers have run. If every member
   is one-way, the envelope itself is one-way ("batch", no reply message) —
   this preserves presumed-abort's ack elimination. Otherwise it is an rpc
   ("batch" out, "batch-reply" back). Handlers run sequentially at the
   destination in enqueue order; they may suspend (the envelope delivery
   fiber waits). Under loss, [Link.rpc]'s receiver-side dedup guarantees the
   handlers still run exactly once across retransmissions. *)
let flush t =
  let members = List.rev t.queue in
  t.queue <- [];
  t.scheduled <- false;
  match members with
  | [] -> ()
  | _ ->
    let n = List.length members in
    t.envelopes <- t.envelopes + 1;
    t.members_total <- t.members_total + n;
    t.observer n;
    List.iter (fun m -> Link.count_piggyback t.link ~label:m.m_label) members;
    let results =
      if List.for_all (fun m -> m.m_kind = Oneway) members then begin
        let results = ref [] in
        Link.send t.link ~label:"batch" (fun () ->
            results := List.map run_member members);
        !results
      end
      else
        Link.rpc t.link ~label:"batch" (fun () ->
            ("batch-reply", List.map run_member members))
    in
    List.iter2
      (fun m result ->
        (match result with
        | Ok (Some reply_label) -> Link.count_piggyback t.link ~label:reply_label
        | Ok None | Error _ -> ());
        match result with
        | Ok _ -> m.m_resume (Ok ())
        | Error e -> m.m_resume (Error e))
      members results

let enqueue t kind ~label run =
  Fiber.await (fun resumer ->
      t.queue <- { m_label = label; m_kind = kind; m_run = run; m_resume = resumer } :: t.queue;
      if not t.scheduled then begin
        t.scheduled <- true;
        ignore
          (Sim.schedule t.engine ~delay:t.window (fun () ->
               Fiber.spawn t.engine (fun () -> flush t)))
      end)

let rpc t ~label f = enqueue t Rpc ~label (fun () -> Some (f ()))
let send t ~label f = enqueue t Oneway ~label (fun () -> f (); None)
let envelope_count t = t.envelopes
let member_count t = t.members_total

let mean_occupancy t =
  if t.envelopes = 0 then 0.0
  else float_of_int t.members_total /. float_of_int t.envelopes

let window t = t.window
let set_observer t f = t.observer <- f
