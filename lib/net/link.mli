(** Point-to-point link between the central system and one local system.

    Figure 1 of the paper: local systems talk only to the central system, so
    the topology is a star and one link per site suffices. A link delays
    traffic by a fixed virtual latency per direction and counts every
    message by label — the raw data of the V5 message-complexity
    experiment.

    {1 Loss}

    With [?loss] set, each message copy is dropped with that probability.
    {!rpc} then behaves as an {b at-least-once} request/reply: the sender
    retransmits after a timeout, and the receiver deduplicates by request
    id, caching the reply — so the handler [f] runs exactly once no matter
    how many copies of the request arrive, while the wire carries (and the
    counters show) every retransmission. This is the regime in which the
    protocols' database-resident markers earn their keep. One-way
    {!send}s are retransmitted blindly until one copy gets through (no
    acknowledgement — the receiver-side effect runs once).

    {1 Retry bound}

    By default the sender retransmits forever — the right model for
    decision-phase traffic, whose eventual delivery atomicity depends on.
    With [?max_retries] set, an exchange still undelivered after that many
    retransmissions raises {!Unreachable} instead: a timeout outcome the
    caller must handle. A receiver that saw a request copy of an abandoned
    exchange still holds the memoized reply for its request id; such
    orphaned dedup entries are tracked per global transaction (the [?gid]
    argument of {!rpc}) and reclaimed by {!evict_gid} when the transaction's
    journal entry closes.

    {1 Fault injection}

    {!set_loss}, {!set_latency} and {!set_duplication} retune the wire at
    run time (loss bursts, latency spikes, duplicated deliveries). All
    default to the values given at creation ([0] for duplication); while
    they are at their defaults the random stream is untouched, so runs
    without injected faults are byte-identical to earlier builds. *)

type t

exception Unreachable of string
(** Raised by {!rpc}/{!send} when [max_retries] retransmissions were
    exhausted without completing the exchange; carries the request label. *)

(** [create engine ~latency] with [latency >= 0] per direction.
    [loss] is the per-copy drop probability (default [0.]); [loss_seed]
    makes drops deterministic. [retry_timeout] is the sender's
    retransmission deadline (default [6 x latency + 1]). [max_retries]
    bounds retransmissions per exchange (default: unbounded). *)
val create :
  Icdb_sim.Engine.t ->
  latency:float ->
  ?loss:float ->
  ?loss_seed:int64 ->
  ?retry_timeout:float ->
  ?max_retries:int ->
  unit ->
  t

(** [rpc t ~label f] models "central sends a request labelled [label]; the
    site processes it with [f]; the site replies". Costs two messages and
    two latencies on a clean wire (more under loss). The reply is counted
    with the label returned by [f] (so a "prepare" request can be answered
    by "ready" or "aborted"). Must run in a fiber. [gid] tags the exchange
    with its global transaction for {!evict_gid} accounting. Raises
    {!Unreachable} when a retry cap is set and exhausted. *)
val rpc : ?gid:int -> t -> label:string -> (unit -> string * 'a) -> 'a

(** [send t ~label f] is a one-way message; [f] runs once when the first
    copy arrives. Returns after the effect has happened (retransmissions
    are simulated inline). Raises {!Unreachable} when a retry cap is set
    and every copy was lost. *)
val send : ?gid:int -> t -> label:string -> (unit -> unit) -> unit

(** Total messages carried (including retransmitted copies), and per-label
    counts (sorted by label). *)
val message_count : t -> int

val messages_by_label : t -> (string * int) list

(** [count_piggyback t ~label] accounts for one {e logical} message labelled
    [label] that rode inside a batch envelope: the per-label counter is
    incremented and [Msg_sent] fires, but {!message_count} (physical wire
    messages) is untouched — the envelope already paid for the wire. Used by
    {!Batcher}. *)
val count_piggyback : t -> label:string -> unit

(** Copies dropped by the lossy wire. *)
val dropped_count : t -> int

val reset_counters : t -> unit
val latency : t -> float

(** Run-time fault injection; see the module preamble. [set_latency] does
    not retune the retransmission deadline fixed at creation. *)
val set_latency : t -> float -> unit

val set_loss : t -> float -> unit
val set_duplication : t -> float -> unit
val set_max_retries : t -> int option -> unit

(** Orphaned receiver-side dedup entries (abandoned exchanges whose request
    reached the receiver), and their eviction once the owning global
    transaction's journal entry closes. *)
val orphan_count : t -> int

val evict_gid : t -> gid:int -> unit

(** Wire-level events for the observability layer: a copy entering the wire,
    a copy delivered after the latency, a copy dropped by the lossy wire.
    Retransmissions emit fresh events per copy, matching the counters. *)
type observer_event =
  | Msg_sent of { label : string }
  | Msg_received of { label : string }
  | Msg_dropped of { label : string }

(** [set_observer t f] installs a wire-event listener. Default: no-op;
    installing replaces the previous listener. *)
val set_observer : t -> (observer_event -> unit) -> unit
