(** Point-to-point link between the central system and one local system.

    Figure 1 of the paper: local systems talk only to the central system, so
    the topology is a star and one link per site suffices. A link delays
    traffic by a fixed virtual latency per direction and counts every
    message by label — the raw data of the V5 message-complexity
    experiment.

    {1 Loss}

    With [?loss] set, each message copy is dropped with that probability.
    {!rpc} then behaves as an {b at-least-once} request/reply: the sender
    retransmits after a timeout, and the receiver deduplicates by request
    id, caching the reply — so the handler [f] runs exactly once no matter
    how many copies of the request arrive, while the wire carries (and the
    counters show) every retransmission. This is the regime in which the
    protocols' database-resident markers earn their keep. One-way
    {!send}s are retransmitted blindly until one copy gets through (no
    acknowledgement — the receiver-side effect runs once). *)

type t

(** [create engine ~latency] with [latency >= 0] per direction.
    [loss] is the per-copy drop probability (default [0.]); [loss_seed]
    makes drops deterministic. [retry_timeout] is the sender's
    retransmission deadline (default [6 x latency + 1]). *)
val create :
  Icdb_sim.Engine.t ->
  latency:float ->
  ?loss:float ->
  ?loss_seed:int64 ->
  ?retry_timeout:float ->
  unit ->
  t

(** [rpc t ~label f] models "central sends a request labelled [label]; the
    site processes it with [f]; the site replies". Costs two messages and
    two latencies on a clean wire (more under loss). The reply is counted
    with the label returned by [f] (so a "prepare" request can be answered
    by "ready" or "aborted"). Must run in a fiber. *)
val rpc : t -> label:string -> (unit -> string * 'a) -> 'a

(** [send t ~label f] is a one-way message; [f] runs once when the first
    copy arrives. Returns after the effect has happened (retransmissions
    are simulated inline). *)
val send : t -> label:string -> (unit -> unit) -> unit

(** Total messages carried (including retransmitted copies), and per-label
    counts (sorted by label). *)
val message_count : t -> int

val messages_by_label : t -> (string * int) list

(** [count_piggyback t ~label] accounts for one {e logical} message labelled
    [label] that rode inside a batch envelope: the per-label counter is
    incremented and [Msg_sent] fires, but {!message_count} (physical wire
    messages) is untouched — the envelope already paid for the wire. Used by
    {!Batcher}. *)
val count_piggyback : t -> label:string -> unit

(** Copies dropped by the lossy wire. *)
val dropped_count : t -> int

val reset_counters : t -> unit
val latency : t -> float

(** Wire-level events for the observability layer: a copy entering the wire,
    a copy delivered after the latency, a copy dropped by the lossy wire.
    Retransmissions emit fresh events per copy, matching the counters. *)
type observer_event =
  | Msg_sent of { label : string }
  | Msg_received of { label : string }
  | Msg_dropped of { label : string }

(** [set_observer t f] installs a wire-event listener. Default: no-op;
    installing replaces the previous listener. *)
val set_observer : t -> (observer_event -> unit) -> unit
