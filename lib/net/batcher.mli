(** Same-destination message piggybacking on top of {!Link}.

    A batcher coalesces the messages issued to one site within a [window] of
    virtual time into a single wire envelope that pays one latency charge —
    the classic piggybacking lever for commit overhead (Gray & Lamport's
    message/stable-write cost model). The protocols route their
    decision-phase traffic (commit/abort/undo requests and the "finished"
    acks coming back) through here when batching is on.

    {1 Accounting}

    The envelope is the only {e physical} message: it is counted under the
    label ["batch"] (reply: ["batch-reply"]) and contributes to
    {!Link.message_count}. Every coalesced {e logical} message still
    increments its own per-label counter and fires the [Msg_sent] observer
    via {!Link.count_piggyback}, so [messages_by_label] remains a truthful
    protocol-level tally while the physical count drops.

    {1 Semantics}

    Members enqueue with {!rpc} / {!send} and suspend; when the window
    closes, one envelope is delivered and the member handlers run
    sequentially at the destination in enqueue order (they may themselves
    suspend — e.g. waiting out a site outage). An envelope whose members are
    all one-way is itself one-way (no reply message), preserving
    presumed-abort's ack elimination; otherwise the acks are coalesced into
    one ["batch-reply"]. A handler that raises fails only its own member:
    the exception resurfaces at that member's {!rpc} call, the rest of the
    batch proceeds. Under a lossy link the envelope is retransmitted by
    {!Link}, and receiver-side dedup keeps every handler exactly-once. *)

type t

(** [create engine link ~window] batches messages issued within [window]
    virtual-time units of the first queued member. [window = 0.] still
    coalesces messages enqueued at the same instant. *)
val create : Icdb_sim.Engine.t -> Link.t -> window:float -> t

(** [rpc t ~label f] enqueues a logical request labelled [label]; [f] runs at
    the destination when the envelope arrives and returns the reply label
    (e.g. ["finished"]). Returns once the envelope round-trip completes.
    Must run in a fiber. *)
val rpc : t -> label:string -> (unit -> string) -> unit

(** [send t ~label f] enqueues a one-way logical message; no reply label is
    accounted. Returns once the envelope has been delivered and [f] ran. *)
val send : t -> label:string -> (unit -> unit) -> unit

(** Envelopes put on the wire, total members carried, and members per
    envelope on average. *)
val envelope_count : t -> int

val member_count : t -> int
val mean_occupancy : t -> float
val window : t -> float

(** [set_observer t f] calls [f occupancy] at each flush with the number of
    members in the envelope (feeds the [icdb_batch_occupancy] histogram). *)
val set_observer : t -> (int -> unit) -> unit
