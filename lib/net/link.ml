module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Rng = Icdb_util.Rng

type observer_event =
  | Msg_sent of { label : string }
  | Msg_received of { label : string }
  | Msg_dropped of { label : string }

type t = {
  engine : Sim.t;
  latency : float;
  loss : float;
  rng : Rng.t;
  retry_timeout : float;
  counts : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable dropped : int;
  mutable observer : observer_event -> unit;
}

let create engine ~latency ?(loss = 0.0) ?(loss_seed = 7L) ?retry_timeout () =
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.create: loss must be in [0,1)";
  {
    engine;
    latency;
    loss;
    rng = Rng.create loss_seed;
    retry_timeout =
      (match retry_timeout with Some r -> r | None -> (6.0 *. latency) +. 1.0);
    counts = Hashtbl.create 16;
    total = 0;
    dropped = 0;
    observer = (fun _ -> ());
  }

(* The per-label counter is a cached [int ref]: after the first message with
   a given label the hot path is a [Hashtbl.find] (no option allocation) and
   an in-place increment — no per-message allocation. *)
let counter t label =
  match Hashtbl.find t.counts label with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.add t.counts label r;
    r

let count t label =
  t.total <- t.total + 1;
  incr (counter t label);
  t.observer (Msg_sent { label })

(* A logical message riding inside a batch envelope: visible in the
   per-label counts and to observers, but not a wire message of its own
   (the envelope already paid for the wire). *)
let count_piggyback t ~label =
  incr (counter t label);
  t.observer (Msg_sent { label })

let lost t ~label =
  t.loss > 0.0
  &&
  let drop = Rng.bernoulli t.rng t.loss in
  if drop then begin
    t.dropped <- t.dropped + 1;
    t.observer (Msg_dropped { label })
  end;
  drop

(* At-least-once request/reply with receiver-side dedup: the handler runs on
   the first request copy that arrives; later copies replay the memoized
   reply. Every copy pays a latency and is counted. *)
let rpc t ~label f =
  let executed = ref None in
  let rec attempt () =
    count t label;
    if lost t ~label then begin
      (* request copy dropped: wait out the retransmission timer *)
      Fiber.sleep t.engine t.retry_timeout;
      attempt ()
    end
    else begin
      Fiber.sleep t.engine t.latency;
      t.observer (Msg_received { label });
      let reply_label, value =
        match !executed with
        | Some reply -> reply
        | None ->
          let reply = f () in
          executed := Some reply;
          reply
      in
      count t reply_label;
      if lost t ~label:reply_label then begin
        (* reply copy dropped *)
        Fiber.sleep t.engine t.retry_timeout;
        attempt ()
      end
      else begin
        Fiber.sleep t.engine t.latency;
        t.observer (Msg_received { label = reply_label });
        value
      end
    end
  in
  attempt ()

(* One-way datagram, retransmitted blindly until a copy gets through; the
   effect runs once (on the first delivered copy). *)
let send t ~label f =
  let rec attempt () =
    count t label;
    if lost t ~label then begin
      Fiber.sleep t.engine t.retry_timeout;
      attempt ()
    end
    else begin
      Fiber.sleep t.engine t.latency;
      t.observer (Msg_received { label });
      f ()
    end
  in
  attempt ()

let message_count t = t.total

let messages_by_label t =
  Hashtbl.fold
    (fun label r acc -> if !r = 0 then acc else (label, !r) :: acc)
    t.counts []
  |> List.sort compare

let dropped_count t = t.dropped

let reset_counters t =
  (* Zero the refs in place (rather than [Hashtbl.reset]) so refs cached by
     long-lived senders keep counting into the same cells. *)
  Hashtbl.iter (fun _ r -> r := 0) t.counts;
  t.total <- 0;
  t.dropped <- 0

let latency t = t.latency
let set_observer t f = t.observer <- f
