module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Rng = Icdb_util.Rng

type observer_event =
  | Msg_sent of { label : string }
  | Msg_received of { label : string }
  | Msg_dropped of { label : string }

exception Unreachable of string

type t = {
  engine : Sim.t;
  mutable latency : float;
  mutable loss : float;
  mutable dup : float;
  mutable max_retries : int option;
  rng : Rng.t;
  retry_timeout : float;
  counts : (string, int ref) Hashtbl.t;
  (* Receiver-side dedup state orphaned by a sender that exhausted its retry
     budget: the receiver keeps the memoized reply for the abandoned request
     id (a late copy could still arrive) until the owning global transaction
     closes its journal entry and {!evict_gid} reclaims it. gid -> label,
     multi-binding. *)
  orphans : (int, string) Hashtbl.t;
  mutable total : int;
  mutable dropped : int;
  mutable observer : observer_event -> unit;
}

let create engine ~latency ?(loss = 0.0) ?(loss_seed = 7L) ?retry_timeout
    ?max_retries () =
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Link.create: loss must be in [0,1)";
  (match max_retries with
  | Some n when n < 0 -> invalid_arg "Link.create: negative max_retries"
  | Some _ | None -> ());
  {
    engine;
    latency;
    loss;
    dup = 0.0;
    max_retries;
    rng = Rng.create loss_seed;
    retry_timeout =
      (match retry_timeout with Some r -> r | None -> (6.0 *. latency) +. 1.0);
    counts = Hashtbl.create 16;
    orphans = Hashtbl.create 4;
    total = 0;
    dropped = 0;
    observer = (fun _ -> ());
  }

(* The per-label counter is a cached [int ref]: after the first message with
   a given label the hot path is a [Hashtbl.find] (no option allocation) and
   an in-place increment — no per-message allocation. *)
let counter t label =
  match Hashtbl.find t.counts label with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.add t.counts label r;
    r

let count t label =
  t.total <- t.total + 1;
  incr (counter t label);
  t.observer (Msg_sent { label })

(* A logical message riding inside a batch envelope: visible in the
   per-label counts and to observers, but not a wire message of its own
   (the envelope already paid for the wire). *)
let count_piggyback t ~label =
  incr (counter t label);
  t.observer (Msg_sent { label })

let lost t ~label =
  t.loss > 0.0
  &&
  let drop = Rng.bernoulli t.rng t.loss in
  if drop then begin
    t.dropped <- t.dropped + 1;
    t.observer (Msg_dropped { label })
  end;
  drop

(* Fault injection: a duplicated delivery is an extra copy of a message that
   already got through — counted on the wire and delivered, but deduplicated
   by the receiver (no second handler run, no extra latency charge: the copy
   travels alongside the original). The guard keeps the rng untouched when
   duplication is off, so default runs are byte-identical. *)
let maybe_duplicate t ~label =
  if t.dup > 0.0 && Rng.bernoulli t.rng t.dup then begin
    count t label;
    t.observer (Msg_received { label })
  end

(* [retry ~gid ~delivered label n] either waits out the retransmission timer
   or — with the retry budget exhausted — gives the exchange up. A receiver
   that did see a request copy keeps its memoized reply; record the orphan so
   journal-close can evict it. *)
let check_budget t ?gid ~delivered label n =
  match t.max_retries with
  | Some cap when n > cap ->
    (match gid with
    | Some g when delivered -> Hashtbl.add t.orphans g label
    | Some _ | None -> ());
    raise (Unreachable label)
  | Some _ | None -> ()

(* At-least-once request/reply with receiver-side dedup: the handler runs on
   the first request copy that arrives; later copies replay the memoized
   reply. Every copy pays a latency and is counted. *)
let rpc ?gid t ~label f =
  let executed = ref None in
  let delivered = ref false in
  let rec attempt n =
    count t label;
    if lost t ~label then begin
      (* request copy dropped: wait out the retransmission timer *)
      check_budget t ?gid ~delivered:!delivered label n;
      Fiber.sleep t.engine t.retry_timeout;
      attempt (n + 1)
    end
    else begin
      Fiber.sleep t.engine t.latency;
      t.observer (Msg_received { label });
      delivered := true;
      maybe_duplicate t ~label;
      let reply_label, value =
        match !executed with
        | Some reply -> reply
        | None ->
          let reply = f () in
          executed := Some reply;
          reply
      in
      count t reply_label;
      if lost t ~label:reply_label then begin
        (* reply copy dropped *)
        check_budget t ?gid ~delivered:!delivered label n;
        Fiber.sleep t.engine t.retry_timeout;
        attempt (n + 1)
      end
      else begin
        Fiber.sleep t.engine t.latency;
        t.observer (Msg_received { label = reply_label });
        maybe_duplicate t ~label:reply_label;
        value
      end
    end
  in
  attempt 1

(* One-way datagram, retransmitted blindly until a copy gets through; the
   effect runs once (on the first delivered copy). An exhausted retry budget
   leaves no receiver state behind (nothing was ever delivered), so no
   orphan is recorded. *)
let send ?gid t ~label f =
  ignore gid;
  let rec attempt n =
    count t label;
    if lost t ~label then begin
      check_budget t ~delivered:false label n;
      Fiber.sleep t.engine t.retry_timeout;
      attempt (n + 1)
    end
    else begin
      Fiber.sleep t.engine t.latency;
      t.observer (Msg_received { label });
      maybe_duplicate t ~label;
      f ()
    end
  in
  attempt 1

let message_count t = t.total

let messages_by_label t =
  Hashtbl.fold
    (fun label r acc -> if !r = 0 then acc else (label, !r) :: acc)
    t.counts []
  |> List.sort compare

let dropped_count t = t.dropped

let reset_counters t =
  (* Zero the refs in place (rather than [Hashtbl.reset]) so refs cached by
     long-lived senders keep counting into the same cells. *)
  Hashtbl.iter (fun _ r -> r := 0) t.counts;
  t.total <- 0;
  t.dropped <- 0

let latency t = t.latency

let set_latency t l =
  if l < 0.0 then invalid_arg "Link.set_latency: negative latency";
  t.latency <- l

let set_loss t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Link.set_loss: loss must be in [0,1)";
  t.loss <- p

let set_duplication t p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Link.set_duplication: probability must be in [0,1)";
  t.dup <- p

let set_max_retries t n =
  (match n with
  | Some n when n < 0 -> invalid_arg "Link.set_max_retries: negative cap"
  | Some _ | None -> ());
  t.max_retries <- n

let orphan_count t = Hashtbl.length t.orphans

let evict_gid t ~gid =
  while Hashtbl.mem t.orphans gid do
    Hashtbl.remove t.orphans gid
  done

let set_observer t f = t.observer <- f
