(** Write-ahead log for a local database.

    The log is the site's second piece of stable storage (next to the
    {!Icdb_storage.Disk}): records appended and then {!flush}ed survive a
    crash; the unflushed tail is lost. LSNs are dense positive integers;
    [0] is the null LSN.

    Record vocabulary follows ARIES: per-transaction [Begin]/[Commit]/
    [Abort], physical [Op] records chained through [prev] for rollback,
    compensation ([Clr]) records so that undo work itself is never undone
    twice, fuzzy [Checkpoint]s, and [Prepare] — the persisted ready state
    that only 2PC-capable local systems ever write (the paper's premise is
    that most existing systems {e cannot}). *)

type lsn = int

val null_lsn : lsn

type txn_id = int

(** Operation on a record, with before-images where undo needs them.

    [Incr] is logged {e logically} (the delta, not before/after images): two
    increments commute, so undoing one by restoring a before-image would
    wipe out the other — the very anomaly the paper's Figure 8 discussion
    uses to motivate undo by inverse actions. Its inverse is the negated
    delta. *)
type op =
  | Insert of { rid : Icdb_storage.Heap.rid; key : string; value : int }
  | Delete of { rid : Icdb_storage.Heap.rid; key : string; value : int }
  | Update of { rid : Icdb_storage.Heap.rid; key : string; before : int; after : int }
  | Incr of { rid : Icdb_storage.Heap.rid; key : string; delta : int }

type record =
  | Begin of txn_id
  | Op of { txn : txn_id; op : op; prev : lsn }
  | Commit of txn_id
  | Abort of txn_id
  | Clr of { txn : txn_id; op : op; next_undo : lsn }
  | Prepare of { txn : txn_id; last : lsn }
  | Checkpoint of { active : (txn_id * lsn) list; dirty : Icdb_storage.Disk.page_id list }

val pp_record : Format.formatter -> record -> unit

type t

val create : unit -> t

(** [append t r] adds [r] to the volatile tail and returns its LSN. *)
val append : t -> record -> lsn

(** [flush t] makes the whole log durable (group force). *)
val flush : t -> unit

(** [flush_to t lsn] makes records up to [lsn] durable; used by the buffer
    pool's WAL hook. No-op when already durable. *)
val flush_to : t -> lsn -> unit

(** Highest LSN appended / made durable. *)
val last_lsn : t -> lsn

val flushed_lsn : t -> lsn

(** [get t lsn] reads a record. Raises [Invalid_argument] for LSNs outside
    [\[1, last_lsn\]]. *)
val get : t -> lsn -> record

(** [crash t] discards the unflushed tail — the volatile loss that happens
    when the site fails. *)
val crash : t -> unit

(** [truncate_prefix t ~keep_from] discards records with LSN < [keep_from]
    (checkpointing: everything older is known to be on disk and belongs to
    no live transaction). LSNs of retained records are unchanged; reading a
    purged LSN raises [Invalid_argument]. [keep_from] above [last_lsn + 1]
    or below the current first retained LSN is clamped. *)
val truncate_prefix : t -> keep_from:lsn -> unit

(** Lowest retained LSN ([1] until the first truncation); [last_lsn + 1]
    when the retained log is empty. *)
val first_lsn : t -> lsn

(** [iter t f] applies [f lsn record] to every (durable or not) record in
    LSN order. After {!crash}, only durable records remain. *)
val iter : t -> (lsn -> record -> unit) -> unit

(** Number of force (flush) operations performed, an overhead metric the
    V4 ablation reports. *)
val force_count : t -> int

(** [set_force_hook t f] installs [f], invoked once per actual force (a
    {!flush} / {!flush_to} that made new records durable — no-op flushes do
    not fire it). Default: no-op; installing replaces the previous hook. *)
val set_force_hook : t -> (unit -> unit) -> unit

(** Total records appended since creation (not reduced by truncation). *)
val record_count : t -> int

(** Records currently retained (reduced by {!truncate_prefix}). *)
val retained_count : t -> int
