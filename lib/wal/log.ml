type lsn = int

let null_lsn = 0

type txn_id = int

type op =
  | Insert of { rid : Icdb_storage.Heap.rid; key : string; value : int }
  | Delete of { rid : Icdb_storage.Heap.rid; key : string; value : int }
  | Update of { rid : Icdb_storage.Heap.rid; key : string; before : int; after : int }
  | Incr of { rid : Icdb_storage.Heap.rid; key : string; delta : int }

type record =
  | Begin of txn_id
  | Op of { txn : txn_id; op : op; prev : lsn }
  | Commit of txn_id
  | Abort of txn_id
  | Clr of { txn : txn_id; op : op; next_undo : lsn }
  | Prepare of { txn : txn_id; last : lsn }
  | Checkpoint of { active : (txn_id * lsn) list; dirty : Icdb_storage.Disk.page_id list }

let pp_op fmt = function
  | Insert { rid; key; value } ->
    Format.fprintf fmt "insert %a %s=%d" Icdb_storage.Heap.pp_rid rid key value
  | Delete { rid; key; value } ->
    Format.fprintf fmt "delete %a %s=%d" Icdb_storage.Heap.pp_rid rid key value
  | Update { rid; key; before; after } ->
    Format.fprintf fmt "update %a %s: %d->%d" Icdb_storage.Heap.pp_rid rid key before after
  | Incr { rid; key; delta } ->
    Format.fprintf fmt "incr %a %s %+d" Icdb_storage.Heap.pp_rid rid key delta

let pp_record fmt = function
  | Begin txn -> Format.fprintf fmt "BEGIN t%d" txn
  | Op { txn; op; prev } -> Format.fprintf fmt "OP t%d prev=%d %a" txn prev pp_op op
  | Commit txn -> Format.fprintf fmt "COMMIT t%d" txn
  | Abort txn -> Format.fprintf fmt "ABORT t%d" txn
  | Clr { txn; op; next_undo } ->
    Format.fprintf fmt "CLR t%d next_undo=%d %a" txn next_undo pp_op op
  | Prepare { txn; last } -> Format.fprintf fmt "PREPARE t%d last=%d" txn last
  | Checkpoint { active; dirty } ->
    Format.fprintf fmt "CHECKPOINT active=[%a] dirty=[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         (fun f (t, l) -> Format.fprintf f "t%d@%d" t l))
      active
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         Format.pp_print_int)
      dirty

(* [base] records discarded by truncation: the record with LSN [l] lives at
   index [l - base - 1]; [len] counts retained records. *)
type t = {
  mutable records : record array;
  mutable base : int;
  mutable len : int;
  mutable flushed : lsn;
  mutable forces : int;
  mutable force_hook : unit -> unit;
}

let dummy = Begin (-1)

let create () =
  { records = Array.make 64 dummy; base = 0; len = 0; flushed = 0; forces = 0;
    force_hook = (fun () -> ()) }

let last_lsn t = t.base + t.len

let append t r =
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * max 1 t.len) dummy in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  last_lsn t

let flush t =
  if t.flushed < last_lsn t then begin
    t.flushed <- last_lsn t;
    t.forces <- t.forces + 1;
    t.force_hook ()
  end

let flush_to t lsn =
  if lsn > t.flushed then begin
    t.flushed <- min lsn (last_lsn t);
    t.forces <- t.forces + 1;
    t.force_hook ()
  end

let flushed_lsn t = t.flushed

let get t lsn =
  if lsn <= t.base || lsn > last_lsn t then invalid_arg "Log.get: LSN out of range";
  t.records.(lsn - t.base - 1)

let crash t = t.len <- max 0 (t.flushed - t.base)

let first_lsn t = t.base + 1

let truncate_prefix t ~keep_from =
  let keep_from = max keep_from (first_lsn t) in
  let keep_from = min keep_from (last_lsn t + 1) in
  let drop = keep_from - t.base - 1 in
  if drop > 0 then begin
    let remaining = t.len - drop in
    let fresh = Array.make (max 64 remaining) dummy in
    Array.blit t.records drop fresh 0 remaining;
    t.records <- fresh;
    t.base <- t.base + drop;
    t.len <- remaining;
    if t.flushed < t.base then t.flushed <- t.base
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f (t.base + i + 1) t.records.(i)
  done

let set_force_hook t f = t.force_hook <- f
let force_count t = t.forces
let record_count t = last_lsn t
let retained_count t = t.len
