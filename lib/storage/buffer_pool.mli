(** Buffer pool with LRU replacement and a write-ahead-log hook.

    The pool caches page images between the engine and the {!Disk}. It
    implements a steal/no-force policy: dirty pages may be evicted before
    their transaction commits (steal), and commit does not force data pages
    to disk (no-force) — exactly the regime that makes both redo and undo
    recovery necessary, which the paper's protocols then build upon.

    Before a dirty page is written to disk (eviction or explicit flush), the
    [wal_hook] is invoked with the page's LSN so the owning engine can force
    its log first — the WAL rule. *)

type t

(** [create ~capacity disk] builds a pool of [capacity] frames.
    Raises [Invalid_argument] if [capacity <= 0]. *)
val create : capacity:int -> Disk.t -> t

(** [set_wal_hook t f] installs [f], called as [f ~lsn] immediately before
    any dirty page with page-LSN [lsn] is written to disk. *)
val set_wal_hook : t -> (lsn:int64 -> unit) -> unit

(** [with_page t pid ~write f] pins the page (fetching from disk on a miss),
    applies [f], marks the frame dirty when [write], unpins, and returns
    [f]'s result. The page value must not escape [f]. Raises [Failure] if
    every frame is pinned. Exception-safe: when [f] raises, the pin is
    released (and the frame still marked dirty under [write] — [f] may have
    touched the page before failing) and the exception is re-raised
    unwrapped. *)
val with_page : t -> Disk.page_id -> write:bool -> (Page.t -> 'a) -> 'a

(** Outstanding pins summed over all frames. Zero between operations: every
    pin is scoped to a {!with_page} call, so a persistent nonzero count is a
    pin leak (and will eventually make eviction fail). *)
val pin_count : t -> int

(** [flush_page t pid] writes the frame to disk if present and dirty. *)
val flush_page : t -> Disk.page_id -> unit

(** [flush_all t] writes every dirty frame to disk (used by checkpoints). *)
val flush_all : t -> unit

(** [drop_all t] discards every frame {e without} writing — this is the
    crash: all volatile page state is lost. *)
val drop_all : t -> unit

(** Dirty page ids currently cached (checkpointing reports these). *)
val dirty_pages : t -> Disk.page_id list

val capacity : t -> int
val hit_count : t -> int
val miss_count : t -> int
val eviction_count : t -> int
