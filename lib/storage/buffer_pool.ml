type frame = {
  pid : Disk.page_id;
  page : Page.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_used : int; (* logical clock for LRU *)
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (Disk.page_id, frame) Hashtbl.t;
  mutable wal_hook : lsn:int64 -> unit;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity disk =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    wal_hook = (fun ~lsn:_ -> ());
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let set_wal_hook t f = t.wal_hook <- f

let write_back t frame =
  if frame.dirty then begin
    t.wal_hook ~lsn:(Page.lsn frame.page);
    Disk.write t.disk frame.pid frame.page;
    frame.dirty <- false
  end

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | None -> Some frame
          | Some b -> if frame.last_used < b.last_used then Some frame else best)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some frame ->
    write_back t frame;
    Hashtbl.remove t.frames frame.pid;
    t.evictions <- t.evictions + 1

let fetch t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    t.hits <- t.hits + 1;
    frame
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.frames >= t.capacity then evict_one t;
    let frame = { pid; page = Disk.read t.disk pid; dirty = false; pins = 0; last_used = 0 } in
    Hashtbl.replace t.frames pid frame;
    frame

(* Unpin via an explicit exception match, not [Fun.protect]: the finaliser
   pattern is not effect-safe (a fiber suspending inside [f] would leave the
   pin held if the continuation were dropped), and [Finally_raised] would
   mask the original exception. [f] either returns or raises; the pin is
   balanced — and the frame marked dirty, its content may have been touched —
   on both paths. *)
let with_page t pid ~write f =
  let frame = fetch t pid in
  frame.pins <- frame.pins + 1;
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick;
  match f frame.page with
  | v ->
    frame.pins <- frame.pins - 1;
    if write then frame.dirty <- true;
    v
  | exception e ->
    frame.pins <- frame.pins - 1;
    if write then frame.dirty <- true;
    raise e

let flush_page t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some frame -> write_back t frame
  | None -> ()

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let drop_all t = Hashtbl.reset t.frames

let dirty_pages t =
  Hashtbl.fold (fun pid frame acc -> if frame.dirty then pid :: acc else acc) t.frames []
  |> List.sort compare

(* Outstanding pins across every frame. Steady-state invariant: zero — every
   pin is scoped to a [with_page] call, so a nonzero count between
   operations is a leak. *)
let pin_count t = Hashtbl.fold (fun _ frame acc -> acc + frame.pins) t.frames 0

let capacity t = t.capacity
let hit_count t = t.hits
let miss_count t = t.misses
let eviction_count t = t.evictions
