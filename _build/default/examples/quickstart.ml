(* Quickstart: an integrated database system of three unmodifiable local
   systems, one global transfer committed with the paper's protocol
   (commitment before the global decision), and the full message trace.

   Run with:  dune exec examples/quickstart.exe *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Before = Icdb_core.Commit_before

let () =
  (* 1. One simulation engine drives everything deterministically. *)
  let engine = Sim.create () in

  (* 2. Three existing local systems. None of them supports a prepared
     state — the situation the paper is about. *)
  let fed =
    Federation.create engine
      [
        Db.default_config ~site_name:"berlin";
        Db.default_config ~site_name:"paris";
        Db.default_config ~site_name:"rome";
      ]
  in

  (* 3. Preload some accounts at each site. *)
  List.iter
    (fun (name, site) ->
      Db.load (Site.db site) [ ("checking", 1000); ("savings", 5000) ];
      Printf.printf "loaded %s\n" name)
    fed.sites;

  (* 4. A global transaction: move 250 from Berlin checking to Paris
     savings, and log a fee of 10 at Rome. Each branch is one local
     transaction; the commitment protocol makes the whole thing atomic. *)
  let spec =
    {
      Global.gid = Federation.fresh_gid fed;
      branches =
        [
          Global.branch ~site:"berlin" [ Program.Increment ("checking", -250) ];
          Global.branch ~site:"paris" [ Program.Increment ("savings", 250) ];
          Global.branch ~site:"rome" [ Program.Increment ("checking", -10) ];
        ];
    }
  in
  let outcome = ref None in
  Fiber.spawn engine (fun () -> outcome := Some (Before.run fed spec));
  Sim.run engine;

  (* 5. Inspect the result. *)
  Printf.printf "\noutcome: %s\n\n"
    (Global.outcome_to_string (Option.get !outcome));
  print_string (Trace.render fed.trace);
  Printf.printf "\nfinal balances:\n";
  List.iter
    (fun (name, site) ->
      let v key = Option.value ~default:0 (Db.committed_value (Site.db site) key) in
      Printf.printf "  %-8s checking=%-5d savings=%d\n" name (v "checking") (v "savings"))
    fed.sites;
  Printf.printf "\nmessages: %d (%s)\n" (Federation.total_messages fed)
    (String.concat ", "
       (List.map
          (fun (l, n) -> Printf.sprintf "%s=%d" l n)
          (Federation.messages_by_label fed)))
