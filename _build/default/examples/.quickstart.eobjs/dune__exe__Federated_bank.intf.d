examples/federated_bank.mli:
