examples/mlt_increments.ml: Float Hashtbl Icdb_core Icdb_localdb Icdb_mlt Icdb_net Icdb_sim List Option Printf
