examples/quickstart.mli:
