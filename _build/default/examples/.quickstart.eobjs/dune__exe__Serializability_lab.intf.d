examples/serializability_lab.mli:
