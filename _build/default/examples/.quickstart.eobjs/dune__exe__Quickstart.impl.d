examples/quickstart.ml: Icdb_core Icdb_localdb Icdb_net Icdb_sim List Option Printf String
