examples/federated_bank.ml: Icdb_workload List Printf
