examples/travel_booking.ml: Icdb_core Icdb_localdb Icdb_mlt Icdb_net Icdb_sim Option Printf
