examples/mlt_increments.mli:
