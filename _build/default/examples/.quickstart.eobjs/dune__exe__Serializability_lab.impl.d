examples/serializability_lab.ml: Format Icdb_core Icdb_localdb Icdb_net Icdb_sim List Printf String
