(* Figure 8, replayed.

   Two counters x and y live on the same page of a single-level (page
   granularity) database. Two transactions increment them concurrently.

   - As flat transactions, each holds the page's exclusive lock from its
     first access to the end of the global commit protocol: they serialize.
   - As two-level transactions, each increment runs as its own short L0
     transaction (the page lock is released at L0 commit) while commuting
     L1 increment locks keep the schedule serializable: they overlap.

   Run with:  dune exec examples/mlt_increments.exe *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Tpc = Icdb_core.Two_phase_commit
module Mlt = Icdb_core.Commit_before_mlt

let page_level_config name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = true;
        supports_increment_locks = false;
        granularity = Db.Page_level;
        cc = Locking { wait_timeout = Some 200.0 };
      };
  }

let run_variant label make_txn =
  let engine = Sim.create () in
  let fed = Federation.create engine [ page_level_config "s0" ] in
  (* x and y are loaded together: they share a slotted page. *)
  Db.load (Site.db (Federation.site fed "s0")) [ ("x", 0); ("y", 0) ];
  let finish = Hashtbl.create 2 in
  List.iter
    (fun name ->
      Fiber.spawn engine (fun () ->
          make_txn fed;
          Hashtbl.replace finish name (Sim.now engine)))
    [ "T1"; "T2" ];
  Sim.run engine;
  let v key = Option.value ~default:0 (Db.committed_value (Site.db (Federation.site fed "s0")) key) in
  Printf.printf "%s\n  T1 finished at t=%.1f, T2 at t=%.1f; x=%d y=%d\n" label
    (Hashtbl.find finish "T1") (Hashtbl.find finish "T2") (v "x") (v "y");
  Float.max (Hashtbl.find finish "T1") (Hashtbl.find finish "T2")

let () =
  print_endline "Figure 8: incr(x); incr(y) by two concurrent transactions,";
  print_endline "x and y stored on the same page.\n";
  let flat =
    run_variant "single-level (flat transaction, page locks held to commit):"
      (fun fed ->
        ignore
          (Tpc.run fed
             {
               Global.gid = Federation.fresh_gid fed;
               branches =
                 [
                   Global.branch ~site:"s0"
                     [ Program.Increment ("x", 1); Program.Increment ("y", 1) ];
                 ];
             }))
  in
  let mlt =
    run_variant "\ntwo-level (each increment its own L0 transaction):"
      (fun fed ->
        ignore
          (Mlt.run fed
             {
               Global.mlt_gid = Federation.fresh_gid fed;
               actions =
                 [
                   Action.increment ~site:"s0" ~key:"x" 1;
                   Action.increment ~site:"s0" ~key:"y" 1;
                 ];
               abort_after = None;
             }))
  in
  Printf.printf
    "\nmakespan: %.1f (single-level) vs %.1f (two-level) - the L1 increment\n\
     locks commute, so the two-level transactions overlap on the hot page.\n"
    flat mlt
