(* Travel booking across heterogeneous reservation systems.

   A trip books a flight seat, a hotel room and a rental car, each managed
   by a different existing system — the airline runs an optimistic
   scheduler, the others lock. The global transaction is a multi-level
   transaction: every booking step is an L1 action with a compensating
   inverse (cancel), committed locally before the global decision (§4).

   The second trip fails at the car-rental step; the already-committed
   flight and hotel bookings are undone by inverse actions — the sagas-like
   behaviour the paper contrasts with in §5, but with L1 locks preserving
   global serializability.

   Run with:  dune exec examples/travel_booking.exe *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Mlt = Icdb_core.Commit_before_mlt
module Metrics = Icdb_core.Metrics

let airline_config =
  {
    (Db.default_config ~site_name:"airline") with
    capabilities =
      {
        supports_prepare = false;
        supports_increment_locks = false;
        granularity = Db.Record_level;
        cc = Db.Optimistic;
      };
  }

let booking_actions ~trip =
  (* Reserving = withdrawing one unit of inventory; the inverse releases
     it. Withdraw/deposit commute, so concurrent bookings of different
     trips do not serialize on the inventory counters. *)
  [
    Action.withdraw ~site:"airline" ~account:"flight-LH123-seats" 1;
    Action.withdraw ~site:"hotel" ~account:"rooms-double" 1;
    Action.withdraw ~site:"cars" ~account:"compact-fleet" 1;
    Action.increment ~site:"hotel" ~key:(Printf.sprintf "folio-%s" trip) 1;
  ]

let inventory fed =
  let v site key =
    Option.value ~default:0 (Db.committed_value (Site.db (Federation.site fed site)) key)
  in
  Printf.printf
    "  inventory: seats=%d rooms=%d cars=%d\n"
    (v "airline" "flight-LH123-seats")
    (v "hotel" "rooms-double") (v "cars" "compact-fleet")

let () =
  let engine = Sim.create () in
  let fed =
    Federation.create engine
      [
        airline_config;
        Db.default_config ~site_name:"hotel";
        Db.default_config ~site_name:"cars";
      ]
  in
  Db.load (Site.db (Federation.site fed "airline")) [ ("flight-LH123-seats", 2) ];
  Db.load
    (Site.db (Federation.site fed "hotel"))
    [ ("rooms-double", 5); ("folio-alice", 0); ("folio-bob", 0) ];
  Db.load (Site.db (Federation.site fed "cars")) [ ("compact-fleet", 1) ];
  print_endline "initial state:";
  inventory fed;

  let book ~trip ~sabotage =
    Printf.printf "\nbooking trip for %s...\n" trip;
    (* The car-rental site goes down mid-booking for the sabotaged trip:
       its L0 transaction fails and the completed steps are compensated. *)
    if sabotage then
      ignore
        (Sim.schedule engine ~delay:1.0 (fun () ->
             Site.crash_for (Federation.site fed "cars") ~duration:200.0));
    let outcome = ref None in
    Fiber.spawn engine (fun () ->
        let spec =
          {
            Global.mlt_gid = Federation.fresh_gid fed;
            actions = booking_actions ~trip;
            abort_after = None;
          }
        in
        outcome := Some (Mlt.run fed spec));
    Sim.run engine;
    Printf.printf "  outcome: %s\n" (Global.outcome_to_string (Option.get !outcome));
    inventory fed
  in

  book ~trip:"alice" ~sabotage:false;
  book ~trip:"bob" ~sabotage:true;
  Printf.printf "\ncompensating (inverse) actions executed: %d\n"
    (Metrics.compensations fed.metrics);
  Printf.printf "alice keeps her bookings; bob's partial bookings were undone.\n"
