(* A federated bank under fire.

   Four branch databases, a stream of inter-branch transfers, and a branch
   that crashes mid-run. The example runs the same workload under
   commitment-after and commitment-before and shows that both keep the
   federation's total balance invariant — one by repeating erroneously
   aborted locals, the other by compensating committed locals — while their
   repair work differs exactly as §4.3 predicts.

   Run with:  dune exec examples/federated_bank.exe *)

module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol

let () =
  let base =
    {
      Runner.default with
      n_sites = 4;
      accounts_per_site = 16;
      n_txns = 300;
      concurrency = 10;
      (* a kill probability: branch systems abort transactions on their own
         authority (timeouts, validation failures) *)
      p_spontaneous = 0.15;
      (* roughly one crash per branch per run *)
      crash_rate = 4.0;
      crash_duration = 30.0;
      zipf_theta = 0.8;
    }
  in
  Printf.printf "%-18s %9s %8s %6s %6s %6s  %-14s %s\n" "protocol" "committed"
    "aborted" "reps" "comps" "msgs" "total balance" "serializable";
  List.iter
    (fun protocol ->
      let r = Runner.run { base with protocol } in
      Printf.printf "%-18s %9d %8d %6d %6d %6d  %7d->%-7d %b\n"
        (Protocol.name protocol) r.committed r.aborted r.repetitions r.compensations
        r.messages r.money_before r.money_after r.serializable;
      assert r.money_conserved)
    [ Protocol.After; Protocol.Before; Protocol.Before_mlt ];
  print_endline "\nall protocols preserved the federation-wide balance through";
  print_endline "spontaneous local aborts and site crashes - atomicity holds."
