(* The serializability requirements, demonstrated live (§3.2 / §3.3).

   Both non-2PC protocols need an "additional concurrency control module"
   at the central system, and the paper spends two careful paragraphs on
   why. This lab runs each of the two offending schedules twice — with the
   module disabled and enabled — and lets the global serialization-graph
   checker report what goes wrong.

   Run with:  dune exec examples/serializability_lab.exe *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Graph = Icdb_core.Serialization_graph
module After = Icdb_core.Commit_after
module Before = Icdb_core.Commit_before
module Site = Icdb_net.Site

let make_fed eng =
  Federation.create eng
    [ Db.default_config ~site_name:"s0"; Db.default_config ~site_name:"s1" ]

let report title violations =
  Printf.printf "  %-22s -> %s\n" title
    (if violations = [] then "serializable"
     else
       String.concat "; "
         (List.map (Format.asprintf "%a" Graph.pp_violation) violations))

(* §3.3: G1 commits locally at s0 and is later compensated (its other
   branch votes abort); G2 reads s0/x inside that window. *)
let dirty_read_schedule ~cc =
  let eng = Sim.create () in
  let fed = make_fed eng in
  fed.global_cc_enabled <- cc;
  List.iter (fun (_, s) -> Db.load (Site.db s) [ ("x", 100) ]) fed.sites;
  Fiber.spawn eng (fun () ->
      let g1 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Increment ("x", 50) ];
              Global.branch ~vote_commit:false ~site:"s1" [ Program.Increment ("x", -50) ];
            ];
        }
      in
      ignore (Before.run fed g1));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 6.0;
      let g2 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches = [ Global.branch ~site:"s0" [ Program.Read "x" ] ];
        }
      in
      ignore (Before.run fed g2));
  Sim.run eng;
  Graph.violations fed.graph

(* §3.2: G1's local at s0 is killed after answering ready; G2 writes the
   same object before the repetition runs, flipping the order at s0 while
   s1 orders them the other way round. *)
let order_flip_schedule ~cc =
  let eng = Sim.create () in
  let fed = make_fed eng in
  fed.global_cc_enabled <- cc;
  List.iter (fun (_, s) -> Db.load (Site.db s) [ ("x", 100); ("y", 100) ]) fed.sites;
  Fiber.spawn eng (fun () ->
      let g1 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Read "x" ];
              Global.branch ~site:"s1" [ Program.Increment ("y", 1) ];
            ];
        }
      in
      ignore (After.run fed g1));
  ignore
    (Sim.schedule eng ~delay:5.5 (fun () ->
         let db = Site.db (Federation.site fed "s0") in
         List.iter (Db.kill db) (Db.running_transactions db)));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 4.6;
      let g2 =
        {
          Global.gid = Federation.fresh_gid fed;
          branches =
            [
              Global.branch ~site:"s0" [ Program.Write ("x", 999) ];
              Global.branch ~site:"s1" [ Program.Read "y" ];
            ];
        }
      in
      ignore (Before.run fed g2));
  Sim.run eng;
  Graph.violations fed.graph

let () =
  print_endline "The serializability requirements of sections 3.2 and 3.3.\n";
  print_endline
    "Commit-before (§3.3): G2 reads data G1 committed locally, then G1 is\n\
     compensated. 'A local transaction must not occur in the serialization\n\
     order between an erroneously committed transaction and its inverse':";
  report "without additional CC" (dirty_read_schedule ~cc:false);
  report "with additional CC" (dirty_read_schedule ~cc:true);
  print_endline
    "\nCommit-after (§3.2): G1's local is erroneously aborted after 'ready';\n\
     G2 slips between the first execution and the repetition. 'The global\n\
     serialization order determined by the first execution must not change':";
  report "without additional CC" (order_flip_schedule ~cc:false);
  report "with additional CC" (order_flip_schedule ~cc:true);
  print_endline
    "\nThe multi-level variant needs no such module: commuting L1 actions\n\
     cannot invalidate an undo, and non-commuting ones are delayed by the\n\
     L1 lock (see `icdb exp v4`)."
