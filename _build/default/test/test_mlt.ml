(* Tests for Icdb_mlt: commutativity-based conflict relations and L1 action
   specifications, plus Program (local transaction scripts). *)

module Conflict = Icdb_mlt.Conflict
module Action = Icdb_mlt.Action
module Program = Icdb_localdb.Program
module Db = Icdb_localdb.Engine
module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber

(* --- Conflict --- *)

let test_conflict_rwi () =
  let c = Conflict.read_write_increment in
  Alcotest.(check bool) "read/read commute" true (Conflict.commute c "read" "read");
  Alcotest.(check bool) "incr/incr commute" true (Conflict.commute c "increment" "increment");
  Alcotest.(check bool) "read/incr conflict" false (Conflict.commute c "read" "increment");
  Alcotest.(check bool) "write conflicts with write" false (Conflict.commute c "write" "write");
  Alcotest.(check bool) "write conflicts with read" false (Conflict.commute c "write" "read");
  Alcotest.(check bool) "unknown conflicts" false (Conflict.commute c "mystery" "mystery")

let test_conflict_banking () =
  let c = Conflict.banking in
  Alcotest.(check bool) "deposit/withdraw commute" true
    (Conflict.commute c "deposit" "withdraw");
  Alcotest.(check bool) "deposit/deposit commute" true (Conflict.commute c "deposit" "deposit");
  Alcotest.(check bool) "read-balance/deposit conflict" false
    (Conflict.commute c "read-balance" "deposit");
  Alcotest.(check bool) "read-balance/read-balance commute" true
    (Conflict.commute c "read-balance" "read-balance")

let test_conflict_symmetry () =
  let c = Conflict.of_commuting_pairs [ ("a", "b") ] in
  Alcotest.(check bool) "listed direction" true (Conflict.commute c "a" "b");
  Alcotest.(check bool) "symmetric closure" true (Conflict.commute c "b" "a");
  Alcotest.(check bool) "self not implied" false (Conflict.commute c "a" "a")

let test_conflict_combined_classes () =
  let c = Conflict.banking in
  let combined = Conflict.combine c "deposit" "withdraw" in
  (* The combined class behaves like the union: still commutes with
     deposits, still conflicts with read-balance. *)
  Alcotest.(check bool) "combined commutes with deposit" true
    (Conflict.compatible c combined "deposit");
  Alcotest.(check bool) "combined conflicts with read-balance" false
    (Conflict.compatible c combined "read-balance");
  Alcotest.(check string) "same class collapses" "deposit"
    (Conflict.combine c "deposit" "deposit")

(* --- Action --- *)

let test_action_l1_object () =
  let a = Action.deposit ~site:"s1" ~account:"acct-1" 50 in
  Alcotest.(check string) "namespaced by site" "s1/acct-1" (Action.l1_object a);
  let b = Action.deposit ~site:"s2" ~account:"acct-1" 50 in
  Alcotest.(check bool) "same account, other site, different object" true
    (Action.l1_object a <> Action.l1_object b)

let test_action_inverses () =
  let check_inverse (a : Action.t) expected =
    Alcotest.(check bool)
      (Printf.sprintf "inverse of %s" a.name)
      true (a.inverse = expected)
  in
  check_inverse (Action.deposit ~site:"s" ~account:"x" 50) [ Program.Increment ("x", -50) ];
  check_inverse (Action.withdraw ~site:"s" ~account:"x" 50) [ Program.Increment ("x", 50) ];
  check_inverse (Action.increment ~site:"s" ~key:"x" 7) [ Program.Increment ("x", -7) ];
  check_inverse (Action.read_balance ~site:"s" ~account:"x") [];
  check_inverse
    (Action.write ~site:"s" ~key:"x" ~before:(Some 3) ~after:9)
    [ Program.Write ("x", 3) ];
  check_inverse (Action.write ~site:"s" ~key:"x" ~before:None ~after:9) [ Program.Delete "x" ]

let test_action_program_undo_roundtrip () =
  (* Executing an action's program then its inverse restores the state. *)
  let eng = Sim.create () in
  let db = Db.create eng (Db.default_config ~site_name:"s") in
  Db.load db [ ("x", 100) ];
  let a = Action.withdraw ~site:"s" ~account:"x" 30 in
  Fiber.spawn eng (fun () ->
      let t1 = Db.begin_txn db in
      (match Program.run db t1 a.program with Ok () -> () | Error _ -> Alcotest.fail "run");
      (match Db.commit db t1 with Ok () -> () | Error _ -> Alcotest.fail "commit");
      Alcotest.(check (option int)) "withdrawn" (Some 70) (Db.committed_value db "x");
      let t2 = Db.begin_txn db in
      (match Program.run db t2 a.inverse with Ok () -> () | Error _ -> Alcotest.fail "undo");
      match Db.commit db t2 with Ok () -> () | Error _ -> Alcotest.fail "commit undo");
  Sim.run eng;
  Alcotest.(check (option int)) "restored" (Some 100) (Db.committed_value db "x")

(* --- Program --- *)

let test_program_keys_and_intents () =
  let p =
    [
      Program.Read "a";
      Program.Write ("b", 1);
      Program.Increment ("a", 2);
      Program.Read "b";
      Program.Delete "c";
    ]
  in
  Alcotest.(check (list string)) "keys" [ "a"; "b"; "c" ] (Program.keys p);
  let intents = Program.intents p in
  Alcotest.(check bool) "a strongest incr" true (List.assoc "a" intents = `Increment);
  Alcotest.(check bool) "b strongest write" true (List.assoc "b" intents = `Write);
  Alcotest.(check bool) "c write" true (List.assoc "c" intents = `Write)

let test_program_is_read_only () =
  Alcotest.(check bool) "reads only" true (Program.is_read_only [ Read "a"; Read "b" ]);
  Alcotest.(check bool) "with write" false
    (Program.is_read_only [ Read "a"; Write ("b", 1) ])

let test_program_inverse_of_accesses () =
  let accesses =
    [
      Db.Read { key = "r"; value = Some 1 };
      Db.Wrote { key = "ins"; before = None; after = Some 5 };
      Db.Wrote { key = "upd"; before = Some 2; after = Some 9 };
      Db.Wrote { key = "del"; before = Some 7; after = None };
      Db.Incremented { key = "ctr"; delta = 4 };
    ]
  in
  let inverse = Program.inverse_of_accesses accesses in
  (* Inverse is in reverse order of the accesses. *)
  Alcotest.(check bool) "inverse program" true
    (inverse
    = [
        Program.Increment ("ctr", -4);
        Program.Write ("del", 7);
        Program.Write ("upd", 2);
        Program.Delete "ins";
      ])

let test_program_inverse_executes () =
  (* The derived inverse program actually restores the database. *)
  let eng = Sim.create () in
  let db = Db.create eng (Db.default_config ~site_name:"s") in
  Db.load db [ ("upd", 2); ("del", 7); ("ctr", 10) ];
  let forward =
    [
      Program.Write ("ins", 5);
      Program.Write ("upd", 9);
      Program.Delete "del";
      Program.Increment ("ctr", 4);
    ]
  in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      (match Program.run db t forward with Ok () -> () | Error _ -> Alcotest.fail "fwd");
      let inverse = Program.inverse_of_accesses (Db.accesses t) in
      (match Db.commit db t with Ok () -> () | Error _ -> Alcotest.fail "commit");
      let t2 = Db.begin_txn db in
      (match Program.run db t2 inverse with Ok () -> () | Error _ -> Alcotest.fail "inv");
      match Db.commit db t2 with Ok () -> () | Error _ -> Alcotest.fail "commit2");
  Sim.run eng;
  Alcotest.(check (option int)) "ins gone" None (Db.committed_value db "ins");
  Alcotest.(check (option int)) "upd restored" (Some 2) (Db.committed_value db "upd");
  Alcotest.(check (option int)) "del restored" (Some 7) (Db.committed_value db "del");
  Alcotest.(check (option int)) "ctr restored" (Some 10) (Db.committed_value db "ctr")

let prop_inverse_restores =
  QCheck2.Test.make ~name:"derived inverse restores committed state" ~count:80
    QCheck2.Gen.(
      list_size (int_range 1 10)
        (triple (int_range 0 3) (int_range 0 3) (int_range (-20) 20)))
    (fun steps ->
      let eng = Sim.create () in
      let db = Db.create eng (Db.default_config ~site_name:"p") in
      let initial = [ ("k0", 5); ("k1", 10); ("k2", 15); ("k3", 20) ] in
      Db.load db initial;
      (* Incrementing a key deleted earlier in the same program would abort
         (increment requires an existing key), so those become reads. *)
      let deleted = Hashtbl.create 4 in
      let forward =
        List.map
          (fun (op, ki, v) ->
            let key = Printf.sprintf "k%d" ki in
            match op with
            | 0 ->
              Hashtbl.remove deleted key;
              Program.Write (key, v)
            | 1 ->
              if Hashtbl.mem deleted key then Program.Read key
              else Program.Increment (key, v)
            | 2 ->
              Hashtbl.replace deleted key ();
              Program.Delete key
            | _ -> Program.Read key)
          steps
      in
      let result = ref true in
      Fiber.spawn eng (fun () ->
          let t = Db.begin_txn db in
          match Program.run db t forward with
          | Error _ -> Db.abort db t
          | Ok () -> (
            let inverse = Program.inverse_of_accesses (Db.accesses t) in
            match Db.commit db t with
            | Error _ -> result := false
            | Ok () -> (
              let t2 = Db.begin_txn db in
              match Program.run db t2 inverse with
              | Error _ -> result := false
              | Ok () -> (
                match Db.commit db t2 with Error _ -> result := false | Ok () -> ()))));
      Sim.run eng;
      !result
      && List.for_all (fun (k, v) -> Db.committed_value db k = Some v) initial
      && List.length (Db.committed_keys db) = List.length initial)

let () =
  Alcotest.run "mlt"
    [
      ( "conflict",
        [
          Alcotest.test_case "read/write/increment" `Quick test_conflict_rwi;
          Alcotest.test_case "banking" `Quick test_conflict_banking;
          Alcotest.test_case "symmetry" `Quick test_conflict_symmetry;
          Alcotest.test_case "combined classes" `Quick test_conflict_combined_classes;
        ] );
      ( "action",
        [
          Alcotest.test_case "l1 object" `Quick test_action_l1_object;
          Alcotest.test_case "inverses" `Quick test_action_inverses;
          Alcotest.test_case "undo roundtrip" `Quick test_action_program_undo_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "keys and intents" `Quick test_program_keys_and_intents;
          Alcotest.test_case "is_read_only" `Quick test_program_is_read_only;
          Alcotest.test_case "inverse of accesses" `Quick test_program_inverse_of_accesses;
          Alcotest.test_case "inverse executes" `Quick test_program_inverse_executes;
          QCheck_alcotest.to_alcotest prop_inverse_restores;
        ] );
    ]
