(* Tests for Icdb_wal: log durability semantics and restart recovery. *)

module Disk = Icdb_storage.Disk
module Bp = Icdb_storage.Buffer_pool
module Heap = Icdb_storage.Heap
module Log = Icdb_wal.Log
module Recovery = Icdb_wal.Recovery

(* --- Log --- *)

let test_log_append_get () =
  let log = Log.create () in
  let l1 = Log.append log (Begin 1) in
  let l2 = Log.append log (Commit 1) in
  Alcotest.(check int) "dense lsns" 1 l1;
  Alcotest.(check int) "dense lsns" 2 l2;
  (match Log.get log l1 with
  | Begin 1 -> ()
  | _ -> Alcotest.fail "wrong record");
  Alcotest.check_raises "lsn 0" (Invalid_argument "Log.get: LSN out of range") (fun () ->
      ignore (Log.get log 0))

let test_log_crash_truncates_unflushed () =
  let log = Log.create () in
  ignore (Log.append log (Begin 1));
  Log.flush log;
  ignore (Log.append log (Commit 1));
  Alcotest.(check int) "two appended" 2 (Log.last_lsn log);
  Alcotest.(check int) "one durable" 1 (Log.flushed_lsn log);
  Log.crash log;
  Alcotest.(check int) "tail lost" 1 (Log.last_lsn log);
  let n = ref 0 in
  Log.iter log (fun _ _ -> incr n);
  Alcotest.(check int) "iter sees only durable" 1 !n

let test_log_flush_to () =
  let log = Log.create () in
  ignore (Log.append log (Begin 1));
  ignore (Log.append log (Begin 2));
  ignore (Log.append log (Begin 3));
  Log.flush_to log 2;
  Alcotest.(check int) "partial durability" 2 (Log.flushed_lsn log);
  Log.flush_to log 1;
  Alcotest.(check int) "no regress" 2 (Log.flushed_lsn log);
  Alcotest.(check int) "force counted once" 1 (Log.force_count log)

let test_log_grows () =
  let log = Log.create () in
  for i = 1 to 1000 do
    ignore (Log.append log (Begin i))
  done;
  Alcotest.(check int) "1000 records" 1000 (Log.record_count log)

(* --- truncation --- *)

let test_log_truncate_prefix () =
  let log = Log.create () in
  for i = 1 to 10 do
    ignore (Log.append log (Begin i))
  done;
  Log.flush log;
  Log.truncate_prefix log ~keep_from:6;
  Alcotest.(check int) "first retained" 6 (Log.first_lsn log);
  Alcotest.(check int) "last unchanged" 10 (Log.last_lsn log);
  Alcotest.(check int) "retained" 5 (Log.retained_count log);
  Alcotest.(check int) "record_count keeps history" 10 (Log.record_count log);
  (match Log.get log 6 with
  | Begin 6 -> ()
  | _ -> Alcotest.fail "wrong record at 6");
  Alcotest.check_raises "purged lsn" (Invalid_argument "Log.get: LSN out of range")
    (fun () -> ignore (Log.get log 5));
  (* LSNs keep flowing after truncation. *)
  Alcotest.(check int) "append continues" 11 (Log.append log (Begin 11));
  let seen = ref [] in
  Log.iter log (fun lsn _ -> seen := lsn :: !seen);
  Alcotest.(check (list int)) "iter over retained" [ 6; 7; 8; 9; 10; 11 ] (List.rev !seen)

let test_log_truncate_clamps () =
  let log = Log.create () in
  ignore (Log.append log (Begin 1));
  Log.flush log;
  Log.truncate_prefix log ~keep_from:100;
  Alcotest.(check int) "clamped to end" 2 (Log.first_lsn log);
  Alcotest.(check int) "nothing retained" 0 (Log.retained_count log);
  ignore (Log.append log (Begin 2));
  Alcotest.(check int) "append after full truncation" 2 (Log.last_lsn log);
  Log.truncate_prefix log ~keep_from:1;
  Alcotest.(check int) "cannot un-truncate" 2 (Log.first_lsn log)

let test_log_crash_after_truncate () =
  let log = Log.create () in
  for i = 1 to 5 do
    ignore (Log.append log (Begin i))
  done;
  Log.flush log;
  Log.truncate_prefix log ~keep_from:3;
  ignore (Log.append log (Begin 6));
  Log.crash log;
  Alcotest.(check int) "unflushed tail lost" 5 (Log.last_lsn log);
  Alcotest.(check int) "retained prefix intact" 3 (Log.retained_count log)

(* --- inverse --- *)

let rid : Heap.rid = { page = 0; slot = 0 }

let test_inverse_involutive () =
  let ops =
    [
      Log.Insert { rid; key = "k"; value = 5 };
      Log.Delete { rid; key = "k"; value = 5 };
      Log.Update { rid; key = "k"; before = 1; after = 2 };
      Log.Incr { rid; key = "k"; delta = 7 };
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "inverse . inverse = id" true
        (Recovery.inverse (Recovery.inverse op) = op))
    ops

let test_inverse_incr_negates () =
  match Recovery.inverse (Log.Incr { rid; key = "k"; delta = 7 }) with
  | Log.Incr { delta = -7; _ } -> ()
  | _ -> Alcotest.fail "incr inverse should negate delta"

(* --- recovery scenarios ---------------------------------------------------

   Each scenario builds a small database, simulates a crash by dropping the
   buffer pool and truncating the unflushed log, then runs restart and checks
   the surviving state. *)

type db = {
  disk : Disk.t;
  mutable pool : Bp.t;
  mutable heap : Heap.t;
  log : Log.t;
}

let make_db () =
  let disk = Disk.create () in
  let pool = Bp.create ~capacity:8 disk in
  let heap = Heap.create disk pool in
  let log = Log.create () in
  Bp.set_wal_hook pool (fun ~lsn -> Log.flush_to log (Int64.to_int lsn));
  { disk; pool; heap; log }

let crash_and_restart db =
  Log.crash db.log;
  Bp.drop_all db.pool;
  db.pool <- Bp.create ~capacity:8 db.disk;
  Bp.set_wal_hook db.pool (fun ~lsn -> Log.flush_to db.log (Int64.to_int lsn));
  db.heap <- Heap.recover db.disk db.pool;
  Recovery.restart db.log db.pool

(* Run one insert as txn [id], returning the rid. *)
let logged_insert db ~txn ~prev ~key ~value =
  let lsn = Log.last_lsn db.log + 1 in
  let rid = Heap.insert db.heap ~lsn:(Int64.of_int lsn) ~key ~value in
  let lsn' = Log.append db.log (Op { txn; op = Insert { rid; key; value }; prev }) in
  assert (lsn = lsn');
  (rid, lsn)

let logged_update db ~txn ~prev rid ~key ~before ~after =
  let lsn = Log.append db.log (Op { txn; op = Update { rid; key; before; after }; prev }) in
  Recovery.apply_op db.pool ~lsn (Update { rid; key; before; after });
  lsn

let value_of db rid = Option.map snd (Heap.read db.heap rid)

let test_committed_txn_survives_crash () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, l1 = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:10 in
  ignore (logged_update db ~txn:1 ~prev:l1 rid ~key:"a" ~before:10 ~after:20);
  ignore (Log.append db.log (Commit 1));
  Log.flush db.log;
  (* Pages were never flushed: redo must reconstruct them. *)
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "committed" [ 1 ] outcome.committed;
  Alcotest.(check (list int)) "no losers" [] outcome.rolled_back;
  Alcotest.(check bool) "redo happened" true (outcome.redo_count > 0);
  Alcotest.(check (option int)) "value restored" (Some 20) (value_of db rid)

let test_uncommitted_txn_rolled_back () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:10 in
  (* The dirty page reaches disk (steal!) but the txn never commits. *)
  Bp.flush_all db.pool;
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "loser rolled back" [ 1 ] outcome.rolled_back;
  Alcotest.(check bool) "undo happened" true (outcome.undo_count > 0);
  Alcotest.(check (option int)) "insert undone" None (value_of db rid)

let test_unflushed_uncommitted_txn_vanishes () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  Log.flush db.log;
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:10 in
  (* Neither the op record nor the page reached stable storage. *)
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "loser (begin only)" [ 1 ] outcome.rolled_back;
  Alcotest.(check int) "nothing to undo" 0 outcome.undo_count;
  Alcotest.(check (option int)) "no trace" None (value_of db rid)

let test_update_undo_restores_before_image () =
  let db = make_db () in
  (* Committed base value. *)
  ignore (Log.append db.log (Begin 1));
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:100 in
  ignore (Log.append db.log (Commit 1));
  Log.flush db.log;
  (* Loser updates it. *)
  ignore (Log.append db.log (Begin 2));
  ignore (logged_update db ~txn:2 ~prev:0 rid ~key:"a" ~before:100 ~after:999);
  Bp.flush_all db.pool;
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "loser" [ 2 ] outcome.rolled_back;
  Alcotest.(check (option int)) "before image restored" (Some 100) (value_of db rid)

let test_logical_incr_undo_preserves_concurrent_increment () =
  (* The Figure-8 recovery anomaly: T1 and T2 both increment x; T1 is a
     loser. Undoing T1 must not wipe out T2's committed increment. *)
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"x" ~value:0 in
  ignore (Log.append db.log (Commit 1));
  (* T2 (loser) increments by 5; T3 (committed) increments by 3. *)
  ignore (Log.append db.log (Begin 2));
  let l2 = Log.append db.log (Op { txn = 2; op = Incr { rid; key = "x"; delta = 5 }; prev = 0 }) in
  Recovery.apply_op db.pool ~lsn:l2 (Incr { rid; key = "x"; delta = 5 });
  ignore (Log.append db.log (Begin 3));
  let l3 = Log.append db.log (Op { txn = 3; op = Incr { rid; key = "x"; delta = 3 }; prev = 0 }) in
  Recovery.apply_op db.pool ~lsn:l3 (Incr { rid; key = "x"; delta = 3 });
  ignore (Log.append db.log (Commit 3));
  Log.flush db.log;
  Bp.flush_all db.pool;
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "T2 rolled back" [ 2 ] outcome.rolled_back;
  Alcotest.(check (option int)) "T3's increment preserved" (Some 3) (value_of db rid)

let test_prepared_txn_left_in_doubt () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, l1 = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:7 in
  ignore (Log.append db.log (Prepare { txn = 1; last = l1 }));
  Log.flush db.log;
  let outcome = crash_and_restart db in
  Alcotest.(check (list (pair int int))) "in doubt with last lsn" [ (1, l1) ] outcome.in_doubt;
  Alcotest.(check (list int)) "not rolled back" [] outcome.rolled_back;
  Alcotest.(check (option int)) "writes redone and kept" (Some 7) (value_of db rid);
  (* Global decision arrives: abort. *)
  ignore (Recovery.undo_chain db.log db.pool ~txn:1 ~from:l1);
  Alcotest.(check (option int)) "undone after decision" None (value_of db rid)

let test_recovery_idempotent () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:10 in
  Bp.flush_all db.pool;
  let o1 = crash_and_restart db in
  Alcotest.(check (list int)) "first restart undoes" [ 1 ] o1.rolled_back;
  (* Crash again immediately: the CLRs are replayed, nothing is undone twice. *)
  let o2 = crash_and_restart db in
  Alcotest.(check (list int)) "second restart finds no losers" [] o2.rolled_back;
  Alcotest.(check int) "no double undo" 0 o2.undo_count;
  Alcotest.(check (option int)) "still absent" None (value_of db rid)

let test_crash_during_undo_resumes () =
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid_a, l1 = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:1 in
  let rid_b, _l2 = logged_insert db ~txn:1 ~prev:l1 ~key:"b" ~value:2 in
  Bp.flush_all db.pool;
  (* Simulate a partial rollback: one CLR written and applied, then crash. *)
  let comp = Recovery.inverse (Log.Delete { rid = rid_b; key = "b"; value = 2 }) in
  ignore comp;
  let clr_lsn = Log.append db.log (Clr { txn = 1; op = Delete { rid = rid_b; key = "b"; value = 2 }; next_undo = l1 }) in
  Recovery.apply_op db.pool ~lsn:clr_lsn (Delete { rid = rid_b; key = "b"; value = 2 });
  Log.flush db.log;
  Bp.flush_all db.pool;
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "rollback resumed" [ 1 ] outcome.rolled_back;
  Alcotest.(check int) "only the remaining op undone" 1 outcome.undo_count;
  Alcotest.(check (option int)) "a undone" None (value_of db rid_a);
  Alcotest.(check (option int)) "b stays undone" None (value_of db rid_b)

let test_wal_rule_protects_steal () =
  (* A dirty page evicted before commit must force the log first, otherwise
     the on-disk page would contain changes recovery cannot undo. *)
  let db = make_db () in
  ignore (Log.append db.log (Begin 1));
  let rid, _ = logged_insert db ~txn:1 ~prev:0 ~key:"a" ~value:10 in
  (* Eviction via explicit flush (same code path as replacement). *)
  Bp.flush_all db.pool;
  Alcotest.(check bool) "log forced up to page lsn" true (Log.flushed_lsn db.log >= 2);
  let outcome = crash_and_restart db in
  Alcotest.(check (list int)) "undoable" [ 1 ] outcome.rolled_back;
  Alcotest.(check (option int)) "clean state" None (value_of db rid)

let () =
  Alcotest.run "wal"
    [
      ( "log",
        [
          Alcotest.test_case "append/get" `Quick test_log_append_get;
          Alcotest.test_case "crash truncates" `Quick test_log_crash_truncates_unflushed;
          Alcotest.test_case "flush_to" `Quick test_log_flush_to;
          Alcotest.test_case "grows" `Quick test_log_grows;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "truncate_prefix" `Quick test_log_truncate_prefix;
          Alcotest.test_case "clamping" `Quick test_log_truncate_clamps;
          Alcotest.test_case "crash after truncate" `Quick test_log_crash_after_truncate;
        ] );
      ( "inverse",
        [
          Alcotest.test_case "involutive" `Quick test_inverse_involutive;
          Alcotest.test_case "incr negates" `Quick test_inverse_incr_negates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "committed survives" `Quick test_committed_txn_survives_crash;
          Alcotest.test_case "uncommitted rolled back" `Quick test_uncommitted_txn_rolled_back;
          Alcotest.test_case "unflushed vanishes" `Quick test_unflushed_uncommitted_txn_vanishes;
          Alcotest.test_case "update before-image" `Quick test_update_undo_restores_before_image;
          Alcotest.test_case "logical incr undo" `Quick
            test_logical_incr_undo_preserves_concurrent_increment;
          Alcotest.test_case "prepared in doubt" `Quick test_prepared_txn_left_in_doubt;
          Alcotest.test_case "idempotent restart" `Quick test_recovery_idempotent;
          Alcotest.test_case "crash during undo" `Quick test_crash_during_undo_resumes;
          Alcotest.test_case "wal rule on steal" `Quick test_wal_rule_protects_steal;
        ] );
    ]
