(* Tests for Icdb_sim: event engine, fibers, ivars, mailboxes, traces. *)

module Engine = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace

(* --- Engine --- *)

let test_engine_time_order () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> seen := 5 :: !seen));
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> seen := 1 :: !seen));
  ignore (Engine.schedule eng ~delay:3.0 (fun () -> seen := 3 :: !seen));
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "clock at last event" 5.0 (Engine.now eng)

let test_engine_fifo_same_time () =
  let eng = Engine.create () in
  let seen = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:2.0 (fun () -> seen := i :: !seen))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] (List.rev !seen)

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         times := Engine.now eng :: !times;
         ignore (Engine.schedule eng ~delay:2.0 (fun () -> times := Engine.now eng :: !times))));
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "relative delays" [ 1.0; 3.0 ] (List.rev !times)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel eng id;
  Alcotest.(check int) "pending drops" 0 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_negative_delay () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule eng ~delay:(-1.0) (fun () -> ())))

let test_engine_run_until () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> seen := 1 :: !seen));
  ignore (Engine.schedule eng ~delay:10.0 (fun () -> seen := 10 :: !seen));
  Engine.run_until eng 5.0;
  Alcotest.(check (list int)) "only due events" [ 1 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5.0 (Engine.now eng);
  Alcotest.(check int) "late event still pending" 1 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list int)) "late event eventually fires" [ 1; 10 ] (List.rev !seen)

let test_engine_step () =
  let eng = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> incr count));
  ignore (Engine.schedule eng ~delay:2.0 (fun () -> incr count));
  Alcotest.(check bool) "step fires one" true (Engine.step eng);
  Alcotest.(check int) "one fired" 1 !count;
  Alcotest.(check bool) "second step" true (Engine.step eng);
  Alcotest.(check bool) "exhausted" false (Engine.step eng)

(* --- Fibers --- *)

let test_fiber_sleep_interleaving () =
  let eng = Engine.create () in
  let order = ref [] in
  Fiber.spawn eng (fun () ->
      order := "a0" :: !order;
      Fiber.sleep eng 3.0;
      order := "a1" :: !order);
  Fiber.spawn eng (fun () ->
      order := "b0" :: !order;
      Fiber.sleep eng 1.0;
      order := "b1" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "interleaving" [ "a0"; "b0"; "b1"; "a1" ] (List.rev !order)

let test_fiber_yield () =
  let eng = Engine.create () in
  let order = ref [] in
  Fiber.spawn eng (fun () ->
      order := 1 :: !order;
      Fiber.yield eng;
      order := 3 :: !order);
  Fiber.spawn eng (fun () -> order := 2 :: !order);
  Engine.run eng;
  Alcotest.(check (list int)) "yield lets others run" [ 1; 2; 3 ] (List.rev !order)

let test_fiber_on_error () =
  let eng = Engine.create () in
  let caught = ref "" in
  Fiber.spawn eng
    ~on_error:(fun e -> caught := Printexc.to_string e)
    (fun () -> failwith "boom");
  Engine.run eng;
  Alcotest.(check bool) "error handler ran" true (!caught <> "")

let test_fiber_error_after_suspension () =
  let eng = Engine.create () in
  let caught = ref false in
  Fiber.spawn eng
    ~on_error:(fun _ -> caught := true)
    (fun () ->
      Fiber.sleep eng 1.0;
      failwith "late boom");
  Engine.run eng;
  Alcotest.(check bool) "handler catches post-suspend raise" true !caught

let test_fiber_await_resume_once () =
  let eng = Engine.create () in
  let stash = ref None in
  let resumed = ref 0 in
  Fiber.spawn eng (fun () ->
      let v = Fiber.await (fun resume -> stash := Some resume) in
      resumed := v);
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         let resume = Option.get !stash in
         resume (Ok 7);
         resume (Ok 99) (* must be ignored *)));
  Engine.run eng;
  Alcotest.(check int) "first resume wins" 7 !resumed

let test_fiber_await_error () =
  let eng = Engine.create () in
  let result = ref "no" in
  Fiber.spawn eng (fun () ->
      match Fiber.await (fun resume -> resume (Error Exit)) with
      | () -> result := "returned"
      | exception Exit -> result := "raised");
  Engine.run eng;
  Alcotest.(check string) "error resumes as exception" "raised" !result

(* --- Ivar --- *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  Fiber.Ivar.fill iv 42;
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.Ivar.read iv);
  Engine.run eng;
  Alcotest.(check int) "read filled" 42 !got

let test_ivar_read_blocks_until_fill () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  let got = ref [] in
  Fiber.spawn eng (fun () ->
      let v = Fiber.Ivar.read iv in
      got := ("r1", v) :: !got);
  Fiber.spawn eng (fun () ->
      let v = Fiber.Ivar.read iv in
      got := ("r2", v) :: !got);
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 5.0;
      Fiber.Ivar.fill iv 9);
  Engine.run eng;
  Alcotest.(check int) "both woken" 2 (List.length !got);
  List.iter (fun (_, v) -> Alcotest.(check int) "value" 9 v) !got

let test_ivar_double_fill () =
  let eng = Engine.create () in
  let iv = Fiber.Ivar.create eng in
  Fiber.Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Fiber.Ivar.fill: already filled")
    (fun () -> Fiber.Ivar.fill iv 2);
  Alcotest.(check bool) "is_filled" true (Fiber.Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 1) (Fiber.Ivar.peek iv)

(* --- Mailbox --- *)

let test_mailbox_send_recv () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let got = ref [] in
  Fiber.spawn eng (fun () ->
      got := Fiber.Mailbox.recv mb :: !got;
      got := Fiber.Mailbox.recv mb :: !got);
  Fiber.spawn eng (fun () ->
      Fiber.Mailbox.send mb "x";
      Fiber.sleep eng 1.0;
      Fiber.Mailbox.send mb "y");
  Engine.run eng;
  Alcotest.(check (list string)) "fifo delivery" [ "x"; "y" ] (List.rev !got)

let test_mailbox_buffered () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  Fiber.Mailbox.send mb 1;
  Fiber.Mailbox.send mb 2;
  Alcotest.(check int) "length" 2 (Fiber.Mailbox.length mb);
  Alcotest.(check (option int)) "try_recv" (Some 1) (Fiber.Mailbox.try_recv mb);
  Alcotest.(check (option int)) "try_recv again" (Some 2) (Fiber.Mailbox.try_recv mb);
  Alcotest.(check (option int)) "empty" None (Fiber.Mailbox.try_recv mb)

let test_mailbox_recv_timeout_expires () =
  let eng = Engine.create () in
  let mb : int Fiber.Mailbox.t = Fiber.Mailbox.create eng in
  let got = ref (Some 0) in
  Fiber.spawn eng (fun () -> got := Fiber.Mailbox.recv_timeout mb 5.0);
  Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !got;
  Alcotest.(check (float 1e-9)) "waited full timeout" 5.0 (Engine.now eng)

let test_mailbox_recv_timeout_delivers () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let got = ref None in
  Fiber.spawn eng (fun () -> got := Fiber.Mailbox.recv_timeout mb 5.0);
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Fiber.Mailbox.send mb 3));
  Engine.run eng;
  Alcotest.(check (option int)) "delivered" (Some 3) !got

let test_mailbox_message_not_lost_after_timeout () =
  let eng = Engine.create () in
  let mb = Fiber.Mailbox.create eng in
  let first = ref (Some 0) and second = ref None in
  Fiber.spawn eng (fun () ->
      first := Fiber.Mailbox.recv_timeout mb 2.0;
      (* message arrives after our timeout; a later recv must still get it *)
      Fiber.sleep eng 10.0;
      second := Fiber.Mailbox.recv_timeout mb 1.0);
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> Fiber.Mailbox.send mb 8));
  Engine.run eng;
  Alcotest.(check (option int)) "first timed out" None !first;
  Alcotest.(check (option int)) "second received buffered msg" (Some 8) !second

(* --- Trace --- *)

let test_trace_basic () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Fiber.spawn eng (fun () ->
      Trace.record tr ~actor:"a" "start";
      Fiber.sleep eng 2.0;
      Trace.record tr ~actor:"a" "done");
  Engine.run eng;
  Alcotest.(check int) "two entries" 2 (Trace.length tr);
  Alcotest.(check (option (float 1e-9))) "find start" (Some 0.0)
    (Trace.find tr ~actor:"a" ~label:"start");
  Alcotest.(check (option (float 1e-9))) "find done" (Some 2.0)
    (Trace.find tr ~actor:"a" ~label:"done");
  Alcotest.(check bool) "ordering" true (Trace.before tr ~first:"start" ~then_:"done");
  Alcotest.(check bool) "no reverse ordering" false (Trace.before tr ~first:"done" ~then_:"start")

let test_trace_find_all_and_clear () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Trace.record tr ~actor:"x" "m";
  Trace.record tr ~actor:"y" "m";
  Alcotest.(check int) "find_all" 2 (List.length (Trace.find_all tr ~label:"m"));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "sleep interleaving" `Quick test_fiber_sleep_interleaving;
          Alcotest.test_case "yield" `Quick test_fiber_yield;
          Alcotest.test_case "on_error" `Quick test_fiber_on_error;
          Alcotest.test_case "error after suspension" `Quick test_fiber_error_after_suspension;
          Alcotest.test_case "resume once" `Quick test_fiber_await_resume_once;
          Alcotest.test_case "await error" `Quick test_fiber_await_error;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks until fill" `Quick test_ivar_read_blocks_until_fill;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "send/recv" `Quick test_mailbox_send_recv;
          Alcotest.test_case "buffered" `Quick test_mailbox_buffered;
          Alcotest.test_case "timeout expires" `Quick test_mailbox_recv_timeout_expires;
          Alcotest.test_case "timeout delivers" `Quick test_mailbox_recv_timeout_delivers;
          Alcotest.test_case "no message loss after timeout" `Quick
            test_mailbox_message_not_lost_after_timeout;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "find_all and clear" `Quick test_trace_find_all_and_clear;
        ] );
    ]
