(* Tests for the beyond-the-paper extensions: presumed-abort 2PC with the
   read-only optimization, the hybrid protocol for mixed-capability
   federations, MLT action retries, and central-crash recovery. *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Trace = Icdb_sim.Trace
module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program
module Site = Icdb_net.Site
module Action = Icdb_mlt.Action
module Federation = Icdb_core.Federation
module Global = Icdb_core.Global
module Metrics = Icdb_core.Metrics
module Action_log = Icdb_core.Action_log
module Graph = Icdb_core.Serialization_graph
module Tpc = Icdb_core.Two_phase_commit
module Pa = Icdb_core.Presumed_abort
module After = Icdb_core.Commit_after
module Before = Icdb_core.Commit_before
module Mlt = Icdb_core.Commit_before_mlt
module Hybrid = Icdb_core.Commit_hybrid
module Recovery = Icdb_core.Central_recovery

let outcome_testable = Alcotest.testable Global.pp_outcome ( = )

let site_cfg ~prepare name =
  {
    (Db.default_config ~site_name:name) with
    capabilities = { Db.default_capabilities with supports_prepare = prepare };
  }

(* s0 prepare-capable, s1 not (unless [uniform]). *)
let make_fed ?(uniform_prepare = None) eng =
  let prepare i = match uniform_prepare with Some p -> p | None -> i = 0 in
  Federation.create eng
    [ site_cfg ~prepare:(prepare 0) "s0"; site_cfg ~prepare:(prepare 1) "s1" ]

let load fed rows =
  List.iter (fun (_, site) -> Db.load (Site.db site) rows) fed.Federation.sites

let in_sim eng f =
  let result = ref None in
  Fiber.spawn eng (fun () -> result := Some (f ()));
  Sim.run eng;
  Option.get !result

let transfer_spec fed ?(vote0 = true) ?(vote1 = true) key =
  {
    Global.gid = Federation.fresh_gid fed;
    branches =
      [
        Global.branch ~vote_commit:vote0 ~site:"s0" [ Program.Increment (key, 5) ];
        Global.branch ~vote_commit:vote1 ~site:"s1" [ Program.Increment (key, -5) ];
      ];
  }

let value fed site key = Db.committed_value (Site.db (Federation.site fed site)) key

(* --- presumed-abort 2PC --- *)

let test_pa_commit () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Pa.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1" (Some 95) (value fed "s1" "x");
  Alcotest.(check int) "same messages as 2pc on commit" 12 (Federation.total_messages fed)

let test_pa_read_only_optimization () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  let spec =
    {
      Global.gid = Federation.fresh_gid fed;
      branches =
        [
          Global.branch ~site:"s0" [ Program.Increment ("x", 5) ];
          Global.branch ~site:"s1" [ Program.Read "x" ];
        ];
    }
  in
  let outcome = in_sim eng (fun () -> Pa.run fed spec) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  (* The read-only branch skips phase 2: 12 - 2 = 10 messages. *)
  Alcotest.(check int) "read-only leg saves a round" 10 (Federation.total_messages fed);
  Alcotest.(check bool) "read-only vote on the wire" true
    (List.mem_assoc "read-only-vote" (Federation.messages_by_label fed))

let test_pa_abort_cheaper_and_unlogged () =
  let run_abort use_pa =
    let eng = Sim.create () in
    let fed = make_fed ~uniform_prepare:(Some true) eng in
    load fed [ ("x", 100) ];
    let spec = transfer_spec fed ~vote1:false "x" in
    let gid = spec.Global.gid in
    let outcome =
      in_sim eng (fun () -> if use_pa then Pa.run fed spec else Tpc.run fed spec)
    in
    (match outcome with
    | Global.Aborted (Voted_abort "s1") -> ()
    | o -> Alcotest.failf "unexpected %s" (Global.outcome_to_string o));
    Alcotest.(check (option int)) "clean" (Some 100) (value fed "s0" "x");
    (Federation.total_messages fed, Federation.decision fed ~gid)
  in
  let std_msgs, std_decision = run_abort false in
  let pa_msgs, pa_decision = run_abort true in
  Alcotest.(check bool) "abort costs fewer messages" true (pa_msgs < std_msgs);
  Alcotest.(check (option bool)) "standard logs the abort" (Some false) std_decision;
  Alcotest.(check (option bool)) "presumed abort logs nothing" None pa_decision

let test_pa_crash_matrix () =
  List.iter
    (fun crash_at ->
      let eng = Sim.create () in
      let fed = make_fed ~uniform_prepare:(Some true) eng in
      load fed [ ("x", 100) ];
      ignore
        (Sim.schedule eng ~delay:crash_at (fun () ->
             Site.crash_for (Federation.site fed "s0") ~duration:30.0));
      let outcome = in_sim eng (fun () -> Pa.run fed (transfer_spec fed "x")) in
      List.iter
        (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
        fed.sites;
      let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
      let consistent =
        match outcome with
        | Global.Committed -> v0 = Some 105 && v1 = Some 95
        | Global.Aborted _ -> v0 = Some 100 && v1 = Some 100
      in
      if not consistent then Alcotest.failf "crash at %.1f breaks atomicity" crash_at)
    (List.init 22 (fun i -> 0.5 +. float_of_int i))

(* --- hybrid protocol --- *)

let test_hybrid_commit_mixed_legs () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check (option int)) "s0" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1" (Some 95) (value fed "s1" "x");
  (* s0 went through the ready state; s1 committed unilaterally. *)
  Alcotest.(check bool) "s0 prepared" true
    (Option.is_some (Trace.find fed.trace ~actor:"s0" ~label:"g1:ready"));
  Alcotest.(check bool) "s1 committed locally" true
    (Option.is_some (Trace.find fed.trace ~actor:"s1" ~label:"g1:locally-committed"));
  Alcotest.(check int) "undo log cleaned" 0 (Action_log.pending fed.undo_log)

let test_hybrid_abort_compensates_before_leg () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load fed [ ("x", 100) ];
  (* The 2PC leg votes no; the commit-before leg already committed. *)
  let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed ~vote0:false "x")) in
  Alcotest.check outcome_testable "aborted" (Global.Aborted (Voted_abort "s0")) outcome;
  Alcotest.(check bool) "compensation ran" true (Metrics.compensations fed.metrics >= 1);
  Alcotest.(check (option int)) "s0 clean" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 compensated" (Some 100) (value fed "s1" "x")

let test_hybrid_before_leg_failure_aborts_tpc_leg () =
  let eng = Sim.create () in
  let fed = make_fed eng in
  load fed [ ("x", 100) ];
  Site.crash (Federation.site fed "s1");
  ignore
    (Sim.schedule eng ~delay:40.0 (fun () ->
         ignore (Site.restart (Federation.site fed "s1"))));
  let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed "x")) in
  (match outcome with
  | Global.Aborted (Local_abort { site = "s1"; _ }) -> ()
  | o -> Alcotest.failf "unexpected %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "2pc leg rolled back" (Some 100) (value fed "s0" "x")

let test_hybrid_crash_matrix () =
  List.iter
    (fun crash_at ->
      let eng = Sim.create () in
      let fed = make_fed eng in
      load fed [ ("x", 100) ];
      ignore
        (Sim.schedule eng ~delay:crash_at (fun () ->
             Site.crash_for (Federation.site fed "s1") ~duration:25.0));
      let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed "x")) in
      List.iter
        (fun (_, site) -> if not (Site.is_up site) then ignore (Site.restart site))
        fed.sites;
      let v0 = value fed "s0" "x" and v1 = value fed "s1" "x" in
      let consistent =
        match outcome with
        | Global.Committed -> v0 = Some 105 && v1 = Some 95
        | Global.Aborted _ -> v0 = Some 100 && v1 = Some 100
      in
      if not consistent then Alcotest.failf "crash at %.1f breaks atomicity" crash_at)
    (List.init 26 (fun i -> 0.5 +. float_of_int i))

(* --- MLT action retries --- *)

let test_mlt_retry_masks_transient_failure () =
  let run retries =
    let eng = Sim.create () in
    let fed = make_fed ~uniform_prepare:(Some false) eng in
    load fed [ ("x", 100) ];
    (* s1 is down briefly; its action fails on the first submission. *)
    Site.crash_for (Federation.site fed "s1") ~duration:10.0;
    let spec =
      {
        Global.mlt_gid = Federation.fresh_gid fed;
        actions =
          [
            Action.withdraw ~site:"s0" ~account:"x" 30;
            Action.deposit ~site:"s1" ~account:"x" 30;
          ];
        abort_after = None;
      }
    in
    let outcome = in_sim eng (fun () -> Mlt.run ~action_retries:retries fed spec) in
    (fed, outcome)
  in
  let fed0, o0 = run 0 in
  (match o0 with
  | Global.Aborted (Local_abort { site = "s1"; _ }) -> ()
  | o -> Alcotest.failf "no retries should abort, got %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "compensated" (Some 100) (value fed0 "s0" "x");
  let fed3, o3 = run 3 in
  Alcotest.check outcome_testable "retries mask the outage" Global.Committed o3;
  Alcotest.(check (option int)) "transfer applied" (Some 70) (value fed3 "s0" "x");
  Alcotest.(check (option int)) "deposit applied" (Some 130) (value fed3 "s1" "x");
  Alcotest.(check bool) "retries counted" true (Metrics.repetitions fed3.metrics >= 1)

(* --- deterministic protocol runs over a lossy wire --- *)

let lossy_fed eng =
  Federation.create eng ~loss:0.25
    [ site_cfg ~prepare:true "s0"; site_cfg ~prepare:true "s1" ]

let test_protocols_atomic_under_loss () =
  (* Each protocol commits a transfer over a 25%-loss wire; retransmission
     plus receiver-side dedup must leave the effect applied exactly once.
     (A short run can get lucky and lose nothing, so drops are asserted in
     aggregate at the end.) *)
  let total_drops = ref 0 in
  let check name run =
    let eng = Sim.create () in
    let fed = lossy_fed eng in
    load fed [ ("x", 100) ];
    let outcome = in_sim eng (fun () -> run fed) in
    Alcotest.check outcome_testable (name ^ " committed") Global.Committed outcome;
    Alcotest.(check (option int)) (name ^ " s0 once") (Some 105) (value fed "s0" "x");
    Alcotest.(check (option int)) (name ^ " s1 once") (Some 95) (value fed "s1" "x");
    total_drops :=
      !total_drops
      + Icdb_net.Link.dropped_count (Site.link (Federation.site fed "s0"))
      + Icdb_net.Link.dropped_count (Site.link (Federation.site fed "s1"))
  in
  check "2pc" (fun fed -> Tpc.run fed (transfer_spec fed "x"));
  check "pa" (fun fed -> Pa.run fed (transfer_spec fed "x"));
  check "after" (fun fed -> After.run fed (transfer_spec fed "x"));
  check "before" (fun fed -> Before.run fed (transfer_spec fed "x"));
  check "hybrid" (fun fed -> Hybrid.run fed (transfer_spec fed "x"));
  check "mlt" (fun fed ->
      Mlt.run fed
        {
          Global.mlt_gid = Federation.fresh_gid fed;
          actions =
            [
              Action.deposit ~site:"s0" ~account:"x" 5;
              Action.withdraw ~site:"s1" ~account:"x" 5;
            ];
          abort_after = None;
        });
  Alcotest.(check bool) "retransmissions occurred across the runs" true (!total_drops > 0)

let test_undo_not_duplicated_under_loss () =
  (* A mixed outcome over a lossy wire: the undo message may be
     retransmitted; the compensation must apply exactly once. *)
  let eng = Sim.create () in
  let fed = lossy_fed eng in
  load fed [ ("x", 100) ];
  let outcome =
    in_sim eng (fun () -> Before.run fed (transfer_spec fed ~vote1:false "x"))
  in
  (match outcome with
  | Global.Aborted (Voted_abort "s1") -> ()
  | o -> Alcotest.failf "unexpected %s" (Global.outcome_to_string o));
  Alcotest.(check (option int)) "compensated exactly once" (Some 100) (value fed "s0" "x")

(* --- hybrid degenerate federations --- *)

let test_hybrid_no_capable_sites_behaves_like_before () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  (* Both legs committed unilaterally: the 2n happy-path message count. *)
  Alcotest.(check int) "commit-before message pattern" 8 (Federation.total_messages fed);
  Alcotest.(check bool) "no prepared legs" true
    (Option.is_none (Trace.find fed.trace ~actor:"s0" ~label:"g1:ready"))

let test_hybrid_all_capable_behaves_like_2pc () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  let outcome = in_sim eng (fun () -> Hybrid.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  Alcotest.(check int) "2pc message pattern" 12 (Federation.total_messages fed);
  Alcotest.(check bool) "both legs prepared" true
    (Option.is_some (Trace.find fed.trace ~actor:"s0" ~label:"g1:ready")
    && Option.is_some (Trace.find fed.trace ~actor:"s1" ~label:"g1:ready"))

(* --- presumed-abort: all-read-only transaction --- *)

let test_pa_fully_read_only_transaction () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  let spec =
    {
      Global.gid = Federation.fresh_gid fed;
      branches =
        [
          Global.branch ~site:"s0" [ Program.Read "x" ];
          Global.branch ~site:"s1" [ Program.Read "x" ];
        ];
    }
  in
  let outcome = in_sim eng (fun () -> Pa.run fed spec) in
  Alcotest.check outcome_testable "committed" Global.Committed outcome;
  (* No second phase at all: execute (4) + prepare/read-only-vote (4). *)
  Alcotest.(check int) "no phase two" 8 (Federation.total_messages fed);
  (* Purely read-only: nothing to decide, nothing logged. *)
  Alcotest.(check (option bool)) "commit still logged" (Some true)
    (Federation.decision fed ~gid:spec.Global.gid)

(* --- central-crash recovery --- *)

exception Central_crash

(* Run [f] with the central system failing at [phase]; return whether the
   simulated crash fired. The protocol fiber unwinds; volatile central
   state is dropped. *)
let with_central_crash eng fed ~phase f =
  let crashed = ref false in
  fed.Federation.central_fail <-
    (fun ~gid:_ p -> if p = phase then raise Central_crash);
  Fiber.spawn eng
    ~on_error:(function
      | Central_crash ->
        crashed := true;
        Recovery.crash fed
      | e -> raise e)
    (fun () -> ignore (f ()));
  Sim.run eng;
  fed.Federation.central_fail <- (fun ~gid:_ _ -> ());
  !crashed

let recover eng fed = in_sim eng (fun () -> Recovery.recover fed)

let test_central_2pc_presumed_abort () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  (* Crash after the votes, before any decision: locals are prepared. *)
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"voted" (fun () ->
         Tpc.run fed (transfer_spec fed "x")));
  let s = recover eng fed in
  Alcotest.(check int) "one entry" 1 s.entries_recovered;
  Alcotest.(check int) "both prepared locals resolved" 2 s.decisions_pushed;
  Alcotest.(check (option int)) "s0 rolled back" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 rolled back" (Some 100) (value fed "s1" "x")

let test_central_2pc_decided_commit_pushed () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some true) eng in
  load fed [ ("x", 100) ];
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"decided" (fun () ->
         Tpc.run fed (transfer_spec fed "x")));
  let s = recover eng fed in
  Alcotest.(check int) "decision pushed to both" 2 s.decisions_pushed;
  Alcotest.(check (option int)) "s0 committed" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 committed" (Some 95) (value fed "s1" "x")

let test_central_after_decided_commit_redoes () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  (* Crash right after the commit decision: locals still running. *)
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"decided" (fun () ->
         After.run fed (transfer_spec fed "x")));
  let s = recover eng fed in
  Alcotest.(check int) "both branches redone" 2 s.branches_redone;
  Alcotest.(check (option int)) "s0 committed" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 committed" (Some 95) (value fed "s1" "x")

let test_central_after_undecided_aborts () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"executed" (fun () ->
         After.run fed (transfer_spec fed "x")));
  let s = recover eng fed in
  Alcotest.(check int) "running locals aborted" 2 s.locals_aborted;
  Alcotest.(check (option int)) "s0 clean" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 clean" (Some 100) (value fed "s1" "x")

let test_central_before_undecided_compensates () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  (* Crash after execution: both locals committed unilaterally. Presumed
     abort must undo them both. *)
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"executed" (fun () ->
         Before.run fed (transfer_spec fed "x")));
  Alcotest.(check (option int)) "s0 committed before recovery" (Some 105)
    (value fed "s0" "x");
  let s = recover eng fed in
  Alcotest.(check int) "both compensated" 2 s.branches_undone;
  Alcotest.(check (option int)) "s0 restored" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 restored" (Some 100) (value fed "s1" "x")

let test_central_before_decided_commit_stays () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"decided" (fun () ->
         Before.run fed (transfer_spec fed "x")));
  let s = recover eng fed in
  Alcotest.(check int) "nothing undone" 0 s.branches_undone;
  Alcotest.(check (option int)) "s0 stays committed" (Some 105) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 stays committed" (Some 95) (value fed "s1" "x")

let test_central_mlt_partial_compensates () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  let spec =
    {
      Global.mlt_gid = Federation.fresh_gid fed;
      actions =
        [
          Action.withdraw ~site:"s0" ~account:"x" 30;
          Action.deposit ~site:"s1" ~account:"x" 30;
        ];
      abort_after = None;
    }
  in
  (* Crash after the first action committed, before the second ran. *)
  Alcotest.(check bool) "crashed" true
    (with_central_crash eng fed ~phase:"action-0" (fun () -> Mlt.run fed spec));
  Alcotest.(check (option int)) "first action applied" (Some 70) (value fed "s0" "x");
  let s = recover eng fed in
  Alcotest.(check int) "one action undone" 1 s.branches_undone;
  Alcotest.(check (option int)) "s0 restored" (Some 100) (value fed "s0" "x");
  Alcotest.(check (option int)) "s1 untouched" (Some 100) (value fed "s1" "x")

let test_central_recovery_idempotent () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  ignore
    (with_central_crash eng fed ~phase:"executed" (fun () ->
         Before.run fed (transfer_spec fed "x")));
  let s1 = recover eng fed in
  let s2 = recover eng fed in
  Alcotest.(check int) "first does the work" 2 s1.branches_undone;
  Alcotest.(check int) "second finds nothing" 0 s2.entries_recovered;
  Alcotest.(check (option int)) "not doubly undone" (Some 100) (value fed "s0" "x")

let test_central_recovery_releases_locks () =
  let eng = Sim.create () in
  let fed = make_fed ~uniform_prepare:(Some false) eng in
  load fed [ ("x", 100) ];
  ignore
    (with_central_crash eng fed ~phase:"executed" (fun () ->
         Before.run fed (transfer_spec fed "x")));
  ignore (recover eng fed);
  (* A fresh transaction on the same keys must get through. *)
  let outcome = in_sim eng (fun () -> Before.run fed (transfer_spec fed "x")) in
  Alcotest.check outcome_testable "locks are free again" Global.Committed outcome

let () =
  Alcotest.run "extensions"
    [
      ( "presumed-abort",
        [
          Alcotest.test_case "commit" `Quick test_pa_commit;
          Alcotest.test_case "read-only optimization" `Quick test_pa_read_only_optimization;
          Alcotest.test_case "abort cheaper and unlogged" `Quick
            test_pa_abort_cheaper_and_unlogged;
          Alcotest.test_case "crash matrix" `Quick test_pa_crash_matrix;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "commit with mixed legs" `Quick test_hybrid_commit_mixed_legs;
          Alcotest.test_case "abort compensates before-leg" `Quick
            test_hybrid_abort_compensates_before_leg;
          Alcotest.test_case "before-leg failure aborts 2pc leg" `Quick
            test_hybrid_before_leg_failure_aborts_tpc_leg;
          Alcotest.test_case "crash matrix" `Quick test_hybrid_crash_matrix;
        ] );
      ( "lossy-wire",
        [
          Alcotest.test_case "protocols atomic under loss" `Quick
            test_protocols_atomic_under_loss;
          Alcotest.test_case "undo not duplicated" `Quick test_undo_not_duplicated_under_loss;
        ] );
      ( "hybrid-degenerate",
        [
          Alcotest.test_case "no capable sites = commit-before" `Quick
            test_hybrid_no_capable_sites_behaves_like_before;
          Alcotest.test_case "all capable = 2pc" `Quick test_hybrid_all_capable_behaves_like_2pc;
        ] );
      ( "pa-read-only",
        [ Alcotest.test_case "fully read-only txn" `Quick test_pa_fully_read_only_transaction ]
      );
      ( "mlt-retries",
        [ Alcotest.test_case "retry masks transient failure" `Quick
            test_mlt_retry_masks_transient_failure ] );
      ( "central-recovery",
        [
          Alcotest.test_case "2pc presumed abort" `Quick test_central_2pc_presumed_abort;
          Alcotest.test_case "2pc decided commit pushed" `Quick
            test_central_2pc_decided_commit_pushed;
          Alcotest.test_case "after: decided commit redone" `Quick
            test_central_after_decided_commit_redoes;
          Alcotest.test_case "after: undecided aborts" `Quick
            test_central_after_undecided_aborts;
          Alcotest.test_case "before: undecided compensates" `Quick
            test_central_before_undecided_compensates;
          Alcotest.test_case "before: decided commit stays" `Quick
            test_central_before_decided_commit_stays;
          Alcotest.test_case "mlt: partial compensates" `Quick
            test_central_mlt_partial_compensates;
          Alcotest.test_case "idempotent" `Quick test_central_recovery_idempotent;
          Alcotest.test_case "releases locks" `Quick test_central_recovery_releases_locks;
        ] );
    ]
