test/test_util.ml: Alcotest Array Float Fun Icdb_util Int64 List Map Printf QCheck2 QCheck_alcotest String
