test/test_mlt.ml: Alcotest Hashtbl Icdb_localdb Icdb_mlt Icdb_sim List Printf QCheck2 QCheck_alcotest
