test/test_core.ml: Alcotest Float Gen Hashtbl Icdb_core Icdb_localdb Icdb_mlt Icdb_net Icdb_sim List Option Printf QCheck2 QCheck_alcotest
