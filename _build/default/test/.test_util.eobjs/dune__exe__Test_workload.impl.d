test/test_workload.ml: Alcotest Icdb_workload Int64 List QCheck2 QCheck_alcotest Result
