test/test_localdb.ml: Alcotest Icdb_localdb Icdb_sim Icdb_wal List Option Printf QCheck2 QCheck_alcotest
