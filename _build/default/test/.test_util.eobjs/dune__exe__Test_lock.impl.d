test/test_lock.ml: Alcotest Format Icdb_lock Icdb_sim List Printf QCheck2 QCheck_alcotest
