test/test_extensions.ml: Alcotest Icdb_core Icdb_localdb Icdb_mlt Icdb_net Icdb_sim List Option
