test/test_net.ml: Alcotest Icdb_localdb Icdb_net Icdb_sim List
