test/test_sim.ml: Alcotest Icdb_sim List Option Printexc
