test/test_mlt.mli:
