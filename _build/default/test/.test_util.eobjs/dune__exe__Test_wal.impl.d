test/test_wal.ml: Alcotest Icdb_storage Icdb_wal Int64 List Option
