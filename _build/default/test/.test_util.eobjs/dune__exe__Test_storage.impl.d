test/test_storage.ml: Alcotest Bytes Format Hashtbl Icdb_storage Int64 List Map Option Printf QCheck2 QCheck_alcotest String
