lib/localdb/engine.ml: Float Format Hashtbl Icdb_lock Icdb_sim Icdb_storage Icdb_util Icdb_wal Int64 List Option String
