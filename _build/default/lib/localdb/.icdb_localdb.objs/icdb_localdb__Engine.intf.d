lib/localdb/engine.mli: Format Icdb_sim Icdb_wal
