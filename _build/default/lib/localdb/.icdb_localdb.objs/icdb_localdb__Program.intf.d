lib/localdb/program.mli: Engine Format
