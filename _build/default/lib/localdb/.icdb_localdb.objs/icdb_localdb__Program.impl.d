lib/localdb/program.ml: Engine Format Hashtbl List Result
