(** Local transaction programs.

    A program is the script of one local transaction: the sequence of
    operations a global transaction's decomposition assigns to one existing
    database system. Programs are plain data, so the central system can ship
    them to a communication manager, store them in a redo-log for the
    repetition of erroneously aborted locals (§3.2), or derive the inverse
    program that undoes a committed local (§3.3). *)

type op =
  | Read of string
  | Write of string * int
  | Increment of string * int
  | Delete of string

type t = op list

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [run db txn p] executes the operations in order, stopping at the first
    local abort. *)
val run : Engine.t -> Engine.txn -> t -> (unit, Engine.abort_reason) result

(** Keys touched, de-duplicated, sorted — the lock set the additional global
    concurrency-control module acquires before submission. *)
val keys : t -> string list

(** Strongest access intent per key ([`Read] < [`Increment] < [`Write]),
    for global lock acquisition. *)
val intents : t -> (string * [ `Read | `Increment | `Write ]) list

(** [inverse_of_accesses accesses] builds the compensating program from the
    access trace of an executed transaction: writes restore before-images,
    inserts become deletes, deletes re-insert, increments negate. The result
    undoes the accesses when applied in the returned (already reversed)
    order. Reads contribute nothing. *)
val inverse_of_accesses : Engine.access list -> t

(** [is_read_only p] — true when the program contains only [Read]s. *)
val is_read_only : t -> bool
