type op =
  | Read of string
  | Write of string * int
  | Increment of string * int
  | Delete of string

type t = op list

let pp_op fmt = function
  | Read k -> Format.fprintf fmt "read(%s)" k
  | Write (k, v) -> Format.fprintf fmt "write(%s,%d)" k v
  | Increment (k, d) -> Format.fprintf fmt "incr(%s,%+d)" k d
  | Delete k -> Format.fprintf fmt "delete(%s)" k

let pp fmt p =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_op)
    p

let to_string p = Format.asprintf "%a" pp p

let run db txn p =
  let rec go = function
    | [] -> Ok ()
    | op :: rest -> (
      let result =
        match op with
        | Read k -> Result.map (fun _ -> ()) (Engine.read db txn k)
        | Write (k, v) -> Engine.write db txn ~key:k ~value:v
        | Increment (k, d) -> Engine.increment db txn ~key:k ~delta:d
        | Delete k -> Engine.delete db txn k
      in
      match result with Ok () -> go rest | Error _ as e -> e)
  in
  go p

let key_of = function Read k | Write (k, _) | Increment (k, _) | Delete k -> k

let keys p = List.sort_uniq compare (List.map key_of p)

let intent_rank = function `Read -> 0 | `Increment -> 1 | `Write -> 2

let intents p =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let key = key_of op in
      let intent =
        match op with
        | Read _ -> `Read
        | Increment _ -> `Increment
        | Write _ | Delete _ -> `Write
      in
      match Hashtbl.find_opt tbl key with
      | Some old when intent_rank old >= intent_rank intent -> ()
      | _ -> Hashtbl.replace tbl key intent)
    p;
  Hashtbl.fold (fun k i acc -> (k, i) :: acc) tbl [] |> List.sort compare

let inverse_of_accesses accesses =
  List.fold_left
    (fun acc access ->
      match access with
      | Engine.Read _ -> acc
      | Engine.Incremented { key; delta } -> Increment (key, -delta) :: acc
      | Engine.Wrote { key; before = Some b; after = _ } -> Write (key, b) :: acc
      | Engine.Wrote { key; before = None; after = Some _ } -> Delete key :: acc
      | Engine.Wrote { before = None; after = None; _ } -> acc)
    [] accesses

let is_read_only p = List.for_all (function Read _ -> true | _ -> false) p
