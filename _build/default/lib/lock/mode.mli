(** Record-level lock modes for the local databases.

    Beyond the classical shared/exclusive pair there is an [Increment] mode:
    increments commute with each other, so concurrent increment locks on the
    same object are compatible — the key enabler of the paper's Figure 8
    example at level L1, and usable at L0 by engines that expose an
    increment primitive. *)

type t = Shared | Exclusive | Increment

(** Compatibility matrix:
    {v
                 S      X      I
         S      yes     no     no
         X       no     no     no
         I       no     no    yes
    v} *)
val compatible : t -> t -> bool

(** [combine a b] is the weakest mode at least as strong as both — the mode
    an owner ends up holding after a re-entrant request ([S]+[I] or any mix
    involving incompatibility collapses to [Exclusive]). *)
val combine : t -> t -> t

(** [covers ~held ~want]: a holder of [held] may perform actions requiring
    [want] without a new request. *)
val covers : held:t -> want:t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
