type t = Shared | Exclusive | Increment

let compatible a b =
  match (a, b) with
  | Shared, Shared -> true
  | Increment, Increment -> true
  | Shared, (Exclusive | Increment)
  | Exclusive, (Shared | Exclusive | Increment)
  | Increment, (Shared | Exclusive) ->
    false

let combine a b =
  match (a, b) with
  | Shared, Shared -> Shared
  | Increment, Increment -> Increment
  | Shared, (Exclusive | Increment)
  | Exclusive, (Shared | Exclusive | Increment)
  | Increment, (Shared | Exclusive) ->
    Exclusive

let covers ~held ~want =
  match (held, want) with
  | Exclusive, (Shared | Exclusive | Increment) -> true
  | Shared, Shared -> true
  | Increment, Increment -> true
  | Shared, (Exclusive | Increment) | Increment, (Shared | Exclusive) -> false

let to_string = function Shared -> "S" | Exclusive -> "X" | Increment -> "I"
let pp fmt t = Format.pp_print_string fmt (to_string t)
