lib/lock/lock_table.ml: Hashtbl Icdb_sim List Option Queue
