lib/lock/lock_table.mli: Icdb_sim
