lib/mlt/action.mli: Conflict Format Icdb_localdb
