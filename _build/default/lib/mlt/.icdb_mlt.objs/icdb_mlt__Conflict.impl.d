lib/mlt/conflict.ml: Hashtbl List String
