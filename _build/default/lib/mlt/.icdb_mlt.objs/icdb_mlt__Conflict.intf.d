lib/mlt/conflict.mli:
