lib/mlt/action.ml: Conflict Format Icdb_localdb Printf
