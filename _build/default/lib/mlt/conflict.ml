type clazz = string

type t = { commuting : (clazz * clazz, unit) Hashtbl.t }

let of_commuting_pairs pairs =
  let commuting = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace commuting (a, b) ();
      Hashtbl.replace commuting (b, a) ())
    pairs;
  { commuting }

let commute_base t a b = Hashtbl.mem t.commuting (a, b)

(* Re-entrant L1 requests merge classes into a '+'-joined synthetic class
   that conflicts like the union of its parts. *)
let parts c = String.split_on_char '+' c

let commute t c1 c2 =
  List.for_all (fun a -> List.for_all (fun b -> commute_base t a b) (parts c2)) (parts c1)

let compatible = commute

let combine _t c1 c2 =
  if c1 = c2 then c1
  else String.concat "+" (List.sort_uniq compare (parts c1 @ parts c2))

let read_write_increment =
  of_commuting_pairs
    [
      ("read", "read");
      ("increment", "increment");
      ("increment", "decrement");
      ("decrement", "decrement");
    ]

let banking =
  of_commuting_pairs
    [
      ("deposit", "deposit");
      ("deposit", "withdraw");
      ("withdraw", "withdraw");
      ("deposit", "transfer-in");
      ("deposit", "transfer-out");
      ("withdraw", "transfer-in");
      ("withdraw", "transfer-out");
      ("transfer-in", "transfer-in");
      ("transfer-in", "transfer-out");
      ("transfer-out", "transfer-out");
      ("read-balance", "read-balance");
    ]
