lib/net/link.mli: Icdb_sim
