lib/net/site.ml: Icdb_localdb Icdb_sim Int64 Link List
