lib/net/site.mli: Icdb_localdb Icdb_sim Icdb_wal Link
