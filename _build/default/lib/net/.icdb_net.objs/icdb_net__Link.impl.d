lib/net/link.ml: Hashtbl Icdb_sim Icdb_util List Option
