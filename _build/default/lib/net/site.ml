module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine

type t = {
  engine : Sim.t;
  db : Db.t;
  link : Link.t;
  mutable up_waiters : unit Fiber.resumer list;
}

let create engine ?(latency = 1.0) ?(loss = 0.0) config =
  {
    engine;
    db = Db.create engine config;
    link =
      Link.create engine ~latency ~loss
        ~loss_seed:(Int64.add config.Db.seed 77L) ();
    up_waiters = [];
  }

let name t = Db.name t.db
let db t = t.db
let link t = t.link
let engine t = t.engine

let crash t = Db.crash t.db

let restart t =
  let outcome = Db.restart t.db in
  let waiters = List.rev t.up_waiters in
  t.up_waiters <- [];
  List.iter (fun resume -> resume (Ok ())) waiters;
  outcome

let crash_for t ~duration =
  crash t;
  ignore (Sim.schedule t.engine ~delay:duration (fun () -> ignore (restart t)))

let await_up t =
  if not (Db.is_up t.db) then
    Fiber.await (fun resume -> t.up_waiters <- resume :: t.up_waiters)

let is_up t = Db.is_up t.db
