lib/wal/log.mli: Format Icdb_storage
