lib/wal/log.ml: Array Format Icdb_storage
