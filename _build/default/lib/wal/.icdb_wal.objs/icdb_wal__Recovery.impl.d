lib/wal/recovery.ml: Hashtbl Icdb_storage Int64 List Log
