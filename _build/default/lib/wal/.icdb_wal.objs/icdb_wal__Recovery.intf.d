lib/wal/recovery.mli: Icdb_storage Log
