(** Restart recovery (ARIES-style analysis / redo / undo).

    After a site crash the stable state is: the disk pages as last written,
    plus the durable prefix of the log. [restart] brings the database back to
    a transaction-consistent state:

    - {b Analysis} scans the log and classifies transactions: finished,
      in-doubt (a durable [Prepare] but no outcome — only possible on
      2PC-capable sites), or losers.
    - {b Redo} replays every physical operation whose effect did not reach
      the disk, using the page-LSN test — redo is idempotent, so recovering
      twice (or crashing during recovery) is harmless.
    - {b Undo} rolls back the losers, logging a compensation record per
      undone operation so a crash mid-undo never undoes twice.

    In-doubt transactions are {e not} rolled back: they wait for the global
    decision, exactly the blocking behaviour of 2PC the paper discusses. *)

type outcome = {
  rolled_back : Log.txn_id list;  (** losers undone by this restart *)
  in_doubt : (Log.txn_id * Log.lsn) list;
      (** prepared transactions awaiting a global decision, with the LSN of
          their last undoable record *)
  committed : Log.txn_id list;  (** transactions whose commit was durable *)
  redo_count : int;  (** physical operations re-applied *)
  undo_count : int;  (** compensation records written *)
}

(** [inverse op] is the physical operation that cancels [op]; inverses are
    their own inverses. *)
val inverse : Log.op -> Log.op

(** [apply_op pool ~lsn op] applies [op] to the buffered page {e iff} the
    page LSN is older than [lsn], then stamps [lsn] — the idempotent-redo
    primitive shared by restart and by the engine's forward path. *)
val apply_op : Icdb_storage.Buffer_pool.t -> lsn:Log.lsn -> Log.op -> unit

(** [undo_chain log pool ~txn ~from] rolls back one transaction from LSN
    [from] following its [prev] chain, writing CLRs; returns the number of
    operations undone. Used by restart and by a live engine resolving an
    in-doubt transaction with a global abort. *)
val undo_chain : Log.t -> Icdb_storage.Buffer_pool.t -> txn:Log.txn_id -> from:Log.lsn -> int

(** [restart log pool] runs the three passes and forces the log. *)
val restart : Log.t -> Icdb_storage.Buffer_pool.t -> outcome
