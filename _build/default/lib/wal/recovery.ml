module Bp = Icdb_storage.Buffer_pool
module Page = Icdb_storage.Page
module Record = Icdb_storage.Record

type outcome = {
  rolled_back : Log.txn_id list;
  in_doubt : (Log.txn_id * Log.lsn) list;
  committed : Log.txn_id list;
  redo_count : int;
  undo_count : int;
}

let inverse = function
  | Log.Insert { rid; key; value } -> Log.Delete { rid; key; value }
  | Log.Delete { rid; key; value } -> Log.Insert { rid; key; value }
  | Log.Update { rid; key; before; after } -> Log.Update { rid; key; before = after; after = before }
  | Log.Incr { rid; key; delta } -> Log.Incr { rid; key; delta = -delta }

let rid_of = function
  | Log.Insert { rid; _ } | Log.Delete { rid; _ } | Log.Update { rid; _ } | Log.Incr { rid; _ } ->
    rid

(* Applies the physical effect directly at the page level. The engine
   guarantees ops are well-formed against the state they were logged in, so
   a failed page primitive here indicates log corruption. *)
let apply_unconditionally page (op : Log.op) =
  let ok =
    match op with
    | Insert { rid; key; value } ->
      Page.insert_at page ~slot:rid.slot ~payload:(Record.encode ~key ~value)
    | Delete { rid; _ } -> Page.delete page ~slot:rid.slot
    | Update { rid; key; after; _ } ->
      Page.update page ~slot:rid.slot ~payload:(Record.encode ~key ~value:after)
    | Incr { rid; key; delta } -> (
      match Page.read page ~slot:rid.slot with
      | None -> false
      | Some payload ->
        let _, current = Record.decode payload in
        Page.update page ~slot:rid.slot ~payload:(Record.encode ~key ~value:(current + delta)))
  in
  if not ok then failwith "Recovery: physical operation not applicable (corrupt log?)"

let apply_op pool ~lsn op =
  let rid = rid_of op in
  Bp.with_page pool rid.page ~write:true (fun page ->
      if Int64.to_int (Page.lsn page) < lsn then begin
        apply_unconditionally page op;
        Page.set_lsn page (Int64.of_int lsn)
      end)

let undo_chain log pool ~txn ~from =
  let undone = ref 0 in
  let cursor = ref from in
  while !cursor <> Log.null_lsn do
    match Log.get log !cursor with
    | Op { txn = t; op; prev } ->
      assert (t = txn);
      let comp = inverse op in
      let clr_lsn = Log.append log (Clr { txn; op = comp; next_undo = prev }) in
      apply_op pool ~lsn:clr_lsn comp;
      incr undone;
      cursor := prev
    | Clr { txn = t; next_undo; _ } ->
      assert (t = txn);
      cursor := next_undo
    | Begin _ | Commit _ | Abort _ | Prepare _ | Checkpoint _ ->
      failwith "Recovery.undo_chain: chain points at a non-undoable record"
  done;
  ignore (Log.append log (Abort txn));
  Log.flush log;
  !undone

type status = Active of Log.lsn | Prepared of Log.lsn

let restart log pool =
  (* Analysis. *)
  let table : (Log.txn_id, status) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref [] in
  Log.iter log (fun lsn record ->
      match record with
      | Begin txn -> Hashtbl.replace table txn (Active Log.null_lsn)
      | Op { txn; _ } -> Hashtbl.replace table txn (Active lsn)
      | Clr { txn; next_undo; _ } -> Hashtbl.replace table txn (Active next_undo)
      | Prepare { txn; last } -> Hashtbl.replace table txn (Prepared last)
      | Commit txn ->
        Hashtbl.remove table txn;
        committed := txn :: !committed
      | Abort txn -> Hashtbl.remove table txn
      | Checkpoint _ -> ());
  (* Redo: replay history. The page-LSN condition inside [apply_op] skips
     effects that reached the disk before the crash. *)
  let redo_count = ref 0 in
  Log.iter log (fun lsn record ->
      match record with
      | Op { op; _ } | Clr { op; _ } ->
        let rid = rid_of op in
        let needed =
          Bp.with_page pool rid.page ~write:false (fun page ->
              Int64.to_int (Page.lsn page) < lsn)
        in
        if needed then begin
          apply_op pool ~lsn op;
          incr redo_count
        end
      | Begin _ | Commit _ | Abort _ | Prepare _ | Checkpoint _ -> ());
  (* Undo the losers; keep the in-doubt transactions suspended. *)
  let losers, in_doubt =
    Hashtbl.fold
      (fun txn status (losers, doubt) ->
        match status with
        | Active last -> ((txn, last) :: losers, doubt)
        | Prepared last -> (losers, (txn, last) :: doubt))
      table ([], [])
  in
  let losers = List.sort compare losers in
  let undo_count = ref 0 in
  List.iter
    (fun (txn, last) -> undo_count := !undo_count + undo_chain log pool ~txn ~from:last)
    losers;
  Log.flush log;
  {
    rolled_back = List.map fst losers;
    in_doubt = List.sort compare in_doubt;
    committed = List.sort compare !committed;
    redo_count = !redo_count;
    undo_count = !undo_count;
  }
