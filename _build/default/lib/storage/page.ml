type t = bytes

let size = 4096
let header_bytes = 12
let dir_entry_bytes = 4

let lsn t = Bytes.get_int64_be t 0
let set_lsn t v = Bytes.set_int64_be t 0 v

let slot_count t = Bytes.get_uint16_be t 8
let set_slot_count t n = Bytes.set_uint16_be t 8 n

(* Lowest byte occupied by payload data; free space is
   [dir_end, data_floor). *)
let data_floor t = Bytes.get_uint16_be t 10
let set_data_floor t v = Bytes.set_uint16_be t 10 v

let create () =
  let t = Bytes.make size '\000' in
  set_data_floor t size;
  t

let copy t = Bytes.copy t

let dir_offset slot = header_bytes + (slot * dir_entry_bytes)
let dir_end t = dir_offset (slot_count t)

let slot_entry t slot =
  let off = Bytes.get_uint16_be t (dir_offset slot) in
  let len = Bytes.get_uint16_be t (dir_offset slot + 2) in
  (off, len)

let set_slot_entry t slot ~off ~len =
  Bytes.set_uint16_be t (dir_offset slot) off;
  Bytes.set_uint16_be t (dir_offset slot + 2) len

let is_live t slot =
  slot >= 0 && slot < slot_count t && fst (slot_entry t slot) <> 0

let read t ~slot =
  if not (is_live t slot) then None
  else begin
    let off, len = slot_entry t slot in
    Some (Bytes.sub t off len)
  end

let live_payload_bytes t =
  let acc = ref 0 in
  for s = 0 to slot_count t - 1 do
    let off, len = slot_entry t s in
    if off <> 0 then acc := !acc + len
  done;
  !acc

(* Rewrites all live payloads against the end of the page, eliminating the
   holes left by deletes and relocating updates. Slot numbers are stable. *)
let compact t =
  let records =
    List.filter_map
      (fun s ->
        let off, len = slot_entry t s in
        if off = 0 then None else Some (s, Bytes.sub t off len))
      (List.init (slot_count t) Fun.id)
  in
  let floor = ref size in
  List.iter
    (fun (s, payload) ->
      let len = Bytes.length payload in
      floor := !floor - len;
      Bytes.blit payload 0 t !floor len;
      set_slot_entry t s ~off:!floor ~len)
    records;
  set_data_floor t !floor

let free_space t =
  size - dir_end t - dir_entry_bytes - live_payload_bytes t

let contiguous_free t = data_floor t - dir_end t

(* Places a payload in [want_slot] (revival by rollback/redo) or in a fresh
   directory slot. Returns [None] if even compaction cannot make room. *)
let place t ~payload ~want_slot =
  let len = Bytes.length payload in
  if len = 0 || len > size - header_bytes - dir_entry_bytes then
    invalid_arg "Page.insert: bad payload size";
  (* Fresh inserts never reuse a dead slot: a tombstoned slot may still be
     the target of some transaction's rollback or of restart redo
     ([insert_at]), so it stays reserved forever (ghost-record rule). *)
  let slot, needs_dir_entry =
    match want_slot with
    | Some s -> (s, s >= slot_count t)
    | None -> (slot_count t, true)
  in
  let dir_growth =
    if needs_dir_entry then dir_entry_bytes * (slot + 1 - slot_count t) else 0
  in
  let usable = size - dir_end t - dir_growth - live_payload_bytes t in
  if usable < len then None
  else begin
    if contiguous_free t - dir_growth < len then compact t;
    if needs_dir_entry then begin
      (* Zero any intermediate new slots so they read as dead. *)
      for s = slot_count t to slot do
        set_slot_entry t s ~off:0 ~len:0
      done;
      set_slot_count t (slot + 1)
    end;
    let floor = data_floor t - len in
    Bytes.blit payload 0 t floor len;
    set_slot_entry t slot ~off:floor ~len;
    set_data_floor t floor;
    Some slot
  end

let insert t ~payload = place t ~payload ~want_slot:None

let insert_at t ~slot ~payload =
  if slot < 0 then invalid_arg "Page.insert_at: negative slot";
  if is_live t slot then false
  else
    match place t ~payload ~want_slot:(Some slot) with
    | Some _ -> true
    | None -> false

let delete t ~slot =
  if not (is_live t slot) then false
  else begin
    set_slot_entry t slot ~off:0 ~len:0;
    true
  end

let update t ~slot ~payload =
  if not (is_live t slot) then false
  else begin
    let off, len = slot_entry t slot in
    let new_len = Bytes.length payload in
    if new_len = len then begin
      Bytes.blit payload 0 t off len;
      true
    end
    else begin
      (* Relocate within the page; roll back the tombstone on failure. *)
      set_slot_entry t slot ~off:0 ~len:0;
      match place t ~payload ~want_slot:(Some slot) with
      | Some _ -> true
      | None ->
        set_slot_entry t slot ~off ~len;
        false
    end
  end

let live t =
  List.filter_map
    (fun s ->
      match read t ~slot:s with
      | Some payload -> Some (s, payload)
      | None -> None)
    (List.init (slot_count t) Fun.id)
