type page_id = int

type t = {
  mutable pages : Page.t array;
  mutable count : int;
  mutable reads : int;
  mutable writes : int;
}

let create () = { pages = Array.make 16 (Page.create ()); count = 0; reads = 0; writes = 0 }

let allocate t =
  if t.count = Array.length t.pages then begin
    let bigger = Array.make (2 * t.count) (Page.create ()) in
    Array.blit t.pages 0 bigger 0 t.count;
    t.pages <- bigger
  end;
  let pid = t.count in
  t.pages.(pid) <- Page.create ();
  t.count <- t.count + 1;
  pid

let check t pid =
  if pid < 0 || pid >= t.count then invalid_arg "Disk: unallocated page id"

let read t pid =
  check t pid;
  t.reads <- t.reads + 1;
  Page.copy t.pages.(pid)

let write t pid page =
  check t pid;
  t.writes <- t.writes + 1;
  t.pages.(pid) <- Page.copy page

let page_count t = t.count
let read_count t = t.reads
let write_count t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0
