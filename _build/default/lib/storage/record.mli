(** Record payload encoding.

    The local databases store keyed integer records (account balances,
    counters, booking rows). A payload is [key length (2 bytes, big-endian);
    key bytes; value (8 bytes, big-endian)]. *)

(** [encode ~key ~value]. Raises [Invalid_argument] if the key is empty or
    longer than 255 bytes. *)
val encode : key:string -> value:int -> bytes

(** [decode payload] is [(key, value)]. Raises [Invalid_argument] on a
    malformed payload. *)
val decode : bytes -> string * int

(** Payload size for a given key (values are fixed-width). *)
val encoded_size : key:string -> int
