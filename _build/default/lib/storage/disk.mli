(** Simulated stable storage.

    A disk is an append-allocated array of page images. Contents written here
    survive site crashes (the buffer pool and all other in-memory state do
    not). Reads and writes hand out/store {e copies}, so a cached page being
    mutated in the buffer pool never changes stable state until it is
    explicitly written back — this is what makes the crash-window tests of
    DESIGN.md experiment V6 meaningful. *)

type t

type page_id = int

val create : unit -> t

(** [allocate t] extends the disk by one zeroed page and returns its id. *)
val allocate : t -> page_id

(** [read t pid] is a private copy of the stable image.
    Raises [Invalid_argument] on an unallocated id. *)
val read : t -> page_id -> Page.t

(** [write t pid page] replaces the stable image with a copy of [page]. *)
val write : t -> page_id -> Page.t -> unit

val page_count : t -> int

(** I/O accounting, reported by the experiment runner. *)
val read_count : t -> int

val write_count : t -> int
val reset_counters : t -> unit
