(** Slotted pages.

    Each local database stores its records in fixed-size slotted pages: a
    header carrying the page LSN (for idempotent redo), a slot directory
    growing upward, and record payloads growing downward from the end of the
    page. Dead slots are tombstoned so record ids (page, slot) stay stable —
    restart recovery re-inserts into the very same slot.

    Layout (big-endian):
    {v
      0..7    page LSN
      8..9    slot count
      10..11  offset of the lowest payload byte (free space ends there)
      12..    slot directory, 4 bytes per slot: payload offset, payload length
              (offset = 0 marks a dead slot)
    v} *)

type t

(** Page capacity in bytes. *)
val size : int

(** A fresh, empty page with LSN 0. *)
val create : unit -> t

(** Deep copy (the disk stores copies so that buffer-pool mutations do not
    leak into "stable storage"). *)
val copy : t -> t

val lsn : t -> int64
val set_lsn : t -> int64 -> unit

(** [insert t ~payload] places a record in a {e fresh} slot (compacting
    fragmented payload space if needed) and returns it; [None] when the
    page cannot fit the payload. Dead slots are never reused: a tombstoned
    slot may still be the target of a rollback's or restart-redo's
    {!insert_at}, so it stays reserved (ghost-record rule; the 4-byte
    directory entry is the price). Raises [Invalid_argument] on an empty or
    oversized payload. *)
val insert : t -> payload:bytes -> int option

(** [insert_at t ~slot ~payload] places a record in a specific (currently
    dead or beyond-directory) slot; used by redo/undo to restore a record at
    its original rid. [false] if the slot is live or space is insufficient. *)
val insert_at : t -> slot:int -> payload:bytes -> bool

(** [read t ~slot] is the payload, or [None] for dead/out-of-range slots. *)
val read : t -> slot:int -> bytes option

(** [update t ~slot ~payload] overwrites a live record. Same-size payloads
    are updated in place; size changes relocate within the page. [false] if
    the slot is dead or space is insufficient. *)
val update : t -> slot:int -> payload:bytes -> bool

(** [delete t ~slot] tombstones a live slot; [false] if already dead or out
    of range. *)
val delete : t -> slot:int -> bool

(** Contiguous free bytes available for one more insert (accounting for the
    4-byte directory entry a fresh slot needs); compaction is considered,
    i.e. this reports usable — not necessarily contiguous — space. *)
val free_space : t -> int

(** Number of directory entries (live and dead). *)
val slot_count : t -> int

(** Live [(slot, payload)] pairs in slot order. *)
val live : t -> (int * bytes) list
