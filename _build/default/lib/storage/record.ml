let check_key key =
  let n = String.length key in
  if n = 0 || n > 255 then invalid_arg "Record: key must be 1..255 bytes"

let encoded_size ~key =
  check_key key;
  2 + String.length key + 8

let encode ~key ~value =
  check_key key;
  let klen = String.length key in
  let buf = Bytes.create (2 + klen + 8) in
  Bytes.set_uint16_be buf 0 klen;
  Bytes.blit_string key 0 buf 2 klen;
  Bytes.set_int64_be buf (2 + klen) (Int64.of_int value);
  buf

let decode payload =
  if Bytes.length payload < 10 then invalid_arg "Record.decode: too short";
  let klen = Bytes.get_uint16_be payload 0 in
  if Bytes.length payload <> 2 + klen + 8 then invalid_arg "Record.decode: bad length";
  let key = Bytes.sub_string payload 2 klen in
  let value = Int64.to_int (Bytes.get_int64_be payload (2 + klen)) in
  (key, value)
