(** Heap file: keyed integer records across slotted pages.

    The heap owns every page of its disk and keeps a volatile free-space hint
    so inserts fill pages densely — consecutive inserts co-locate on a page,
    which is exactly the situation of the paper's Figure 8 ("x is stored on
    the same page p as y").

    All mutators take the LSN of the log record describing them and stamp it
    into the page, enabling idempotent physical redo. The heap itself is
    volatile metadata: after a crash, rebuild it with {!recover} over the
    same disk and buffer pool. *)

type t

(** Stable record identifier. *)
type rid = { page : Disk.page_id; slot : int }

val pp_rid : Format.formatter -> rid -> unit
val rid_equal : rid -> rid -> bool

val create : Disk.t -> Buffer_pool.t -> t

(** [recover disk pool] rebuilds heap metadata by scanning every allocated
    page of [disk]; stable record contents are untouched. *)
val recover : Disk.t -> Buffer_pool.t -> t

(** [insert t ~lsn ~key ~value] places a record, allocating a fresh page when
    none of the known pages fits, and returns its rid. *)
val insert : t -> lsn:int64 -> key:string -> value:int -> rid

(** [insert_at t ~lsn rid ~key ~value] re-creates a record at a specific rid
    (redo of an insert / undo of a delete). [false] if the slot is live. *)
val insert_at : t -> lsn:int64 -> rid -> key:string -> value:int -> bool

(** [read t rid] is [Some (key, value)] for a live record. *)
val read : t -> rid -> (string * int) option

(** [update t ~lsn rid ~value] overwrites the record's value in place.
    [false] if the rid is dead. *)
val update : t -> lsn:int64 -> rid -> value:int -> bool

(** [delete t ~lsn rid] tombstones the record. [false] if already dead. *)
val delete : t -> lsn:int64 -> rid -> bool

(** [iter t f] applies [f rid key value] to every live record. *)
val iter : t -> (rid -> string -> int -> unit) -> unit

(** Live record count (scans). *)
val count : t -> int

(** Pages currently owned by the heap. *)
val page_ids : t -> Disk.page_id list
