type rid = { page : Disk.page_id; slot : int }

let pp_rid fmt rid = Format.fprintf fmt "(%d,%d)" rid.page rid.slot
let rid_equal a b = a.page = b.page && a.slot = b.slot

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  mutable pages : Disk.page_id list; (* newest first *)
}

let create disk pool = { disk; pool; pages = [] }

let recover disk pool =
  let pages = List.init (Disk.page_count disk) Fun.id |> List.rev in
  { disk; pool; pages }

let stamp page lsn = if Int64.compare lsn (Page.lsn page) > 0 then Page.set_lsn page lsn

let insert t ~lsn ~key ~value =
  let payload = Record.encode ~key ~value in
  let try_page pid =
    Buffer_pool.with_page t.pool pid ~write:true (fun page ->
        match Page.insert page ~payload with
        | Some slot ->
          stamp page lsn;
          Some { page = pid; slot }
        | None -> None)
  in
  (* Try the most recently used page first, then the rest, then allocate. *)
  let rec scan = function
    | [] ->
      let pid = Disk.allocate t.disk in
      t.pages <- pid :: t.pages;
      (match try_page pid with
      | Some rid -> rid
      | None -> failwith "Heap.insert: record does not fit an empty page")
    | pid :: rest -> (
      match try_page pid with
      | Some rid -> rid
      | None -> scan rest)
  in
  scan t.pages

let insert_at t ~lsn rid ~key ~value =
  let payload = Record.encode ~key ~value in
  Buffer_pool.with_page t.pool rid.page ~write:true (fun page ->
      let ok = Page.insert_at page ~slot:rid.slot ~payload in
      if ok then stamp page lsn;
      ok)

let read t rid =
  Buffer_pool.with_page t.pool rid.page ~write:false (fun page ->
      Option.map Record.decode (Page.read page ~slot:rid.slot))

let update t ~lsn rid ~value =
  Buffer_pool.with_page t.pool rid.page ~write:true (fun page ->
      match Page.read page ~slot:rid.slot with
      | None -> false
      | Some payload ->
        let key, _ = Record.decode payload in
        let ok = Page.update page ~slot:rid.slot ~payload:(Record.encode ~key ~value) in
        if ok then stamp page lsn;
        ok)

let delete t ~lsn rid =
  Buffer_pool.with_page t.pool rid.page ~write:true (fun page ->
      let ok = Page.delete page ~slot:rid.slot in
      if ok then stamp page lsn;
      ok)

let iter t f =
  List.iter
    (fun pid ->
      Buffer_pool.with_page t.pool pid ~write:false (fun page ->
          List.iter
            (fun (slot, payload) ->
              let key, value = Record.decode payload in
              f { page = pid; slot } key value)
            (Page.live page)))
    (List.rev t.pages)

let count t =
  let n = ref 0 in
  iter t (fun _ _ _ -> incr n);
  !n

let page_ids t = List.rev t.pages
