lib/storage/heap.mli: Buffer_pool Disk Format
