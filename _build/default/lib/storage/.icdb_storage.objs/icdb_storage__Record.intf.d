lib/storage/record.mli:
