lib/storage/page.ml: Bytes Fun List
