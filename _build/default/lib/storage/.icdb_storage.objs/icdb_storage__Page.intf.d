lib/storage/page.mli:
