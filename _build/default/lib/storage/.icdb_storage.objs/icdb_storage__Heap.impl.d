lib/storage/heap.ml: Buffer_pool Disk Format Fun Int64 List Option Page Record
