lib/storage/disk.mli: Page
