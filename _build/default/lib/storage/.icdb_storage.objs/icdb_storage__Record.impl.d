lib/storage/record.ml: Bytes Int64 String
