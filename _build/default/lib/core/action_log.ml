type entry = { site : string; program : Icdb_localdb.Program.t; tag : string }

type t = {
  table : (int, entry list) Hashtbl.t; (* gid -> reversed entries *)
  mutable writes : int;
}

let create () = { table = Hashtbl.create 64; writes = 0 }

let append t ~gid entry =
  let current = Option.value ~default:[] (Hashtbl.find_opt t.table gid) in
  Hashtbl.replace t.table gid (entry :: current);
  t.writes <- t.writes + 1

let entries t ~gid = List.rev (Option.value ~default:[] (Hashtbl.find_opt t.table gid))

let remove t ~gid = Hashtbl.remove t.table gid
let write_count t = t.writes
let pending t = Hashtbl.length t.table
