(** Global serializability checking.

    Protocol runs record every committed local transaction in per-site
    commit order together with its data accesses and the global transaction
    it belongs to. Because all local sites schedule strictly (strict 2PL or
    commit-ordered optimistic validation), the local serialization order of
    two conflicting locals equals their commit order, so the global
    serialization graph can be built from commit order alone:

    an edge [g1 -> g2] exists when some site committed a local of [g1]
    before a conflicting local of [g2].

    Two violation classes are reported (experiment V7):
    - [Cycle]: the committed global transactions are not serializable —
      e.g. commitment-after {e without} the additional CC module lets a
      repetition flip the order (§3.2's serializability requirement);
    - [Dirty_read]: a committed global conflicts with a local of an aborted
      global {e between} that local's commit and its compensation — §3.3's
      serializability requirement violated. *)

type t

type violation =
  | Cycle of int list  (** gids forming a cycle, in path order *)
  | Dirty_read of { reader : int; aborted_writer : int; site : string }

val pp_violation : Format.formatter -> violation -> unit

val create : unit -> t

(** [record_local t ~gid ~site ~compensation accesses] — call at the moment
    a local (or inverse local) transaction of [gid] commits at [site]; call
    order defines the per-site commit order. *)
val record_local :
  t -> gid:int -> site:string -> compensation:bool -> Icdb_localdb.Engine.access list -> unit

(** [record_outcome t ~gid ~committed] — the global decision. *)
val record_outcome : t -> gid:int -> committed:bool -> unit

(** [conflict a b] — do two access lists contain a non-commuting pair on the
    same key? Reads commute with reads, increments with increments;
    everything else on a shared key conflicts. Keys starting with ["__"]
    (protocol markers) are ignored. *)
val conflict :
  Icdb_localdb.Engine.access list -> Icdb_localdb.Engine.access list -> bool

(** Run the checks over everything recorded. *)
val violations : t -> violation list

(** Convenience: [true] iff {!violations} is empty. *)
val serializable : t -> bool

(** Number of local commits recorded (sanity checks in tests). *)
val recorded_locals : t -> int
