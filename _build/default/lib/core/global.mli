(** Global transaction specifications and outcomes.

    A {e flat} global transaction ({!spec}) decomposes into one local
    transaction per site ({!branch}) — the shape the 2PC, commitment-after
    and commitment-before protocols operate on. A {e multi-level} global
    transaction ({!mlt_spec}) is a sequence of L1 actions (§4), each of
    which runs as its own L0 transaction. *)

type branch = {
  site : string;
  program : Icdb_localdb.Program.t;
  vote_commit : bool;
      (** [false] models an {e intended} local abort: the branch executes
          but then votes/decides abort — the case §4.3 says commitment-after
          handles better. *)
}

val branch : ?vote_commit:bool -> site:string -> Icdb_localdb.Program.t -> branch

type spec = { gid : int; branches : branch list }

type mlt_spec = {
  mlt_gid : int;
  actions : Icdb_mlt.Action.t list;
  abort_after : int option;
      (** [Some k]: intended global abort after [k] actions completed *)
}

(** Why a global transaction aborted. *)
type abort_cause =
  | Local_abort of { site : string; reason : Icdb_localdb.Engine.abort_reason }
      (** a local system aborted its transaction on its own authority *)
  | Voted_abort of string  (** this site's branch requested the abort *)
  | Global_cc_denied
      (** the additional global concurrency-control module refused the lock
          set (deadlock or timeout at the global level) *)
  | Intended_abort  (** the transaction program itself decided to abort *)
  | Unsupported_site of string
      (** 2PC was attempted against a site with no ready state *)

type outcome = Committed | Aborted of abort_cause

val pp_abort_cause : Format.formatter -> abort_cause -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string
val is_committed : outcome -> bool
