(** Presumed-abort two-phase commit ([ML 83], discussed in the paper's §5
    as the classic way to cut 2PC's log and message costs).

    Two optimizations over {!Two_phase_commit}:

    - {b presumed abort}: an abort decision is never force-logged by the
      central system and abort messages carry no acknowledgement — if
      anyone later asks about a transaction the coordinator has no record
      of, the answer is "abort". Central recovery gets this for free: a
      journal entry still [Executing] is presumed aborted.
    - {b read-only optimization}: a branch whose program only reads votes
      "read-only" at prepare time and commits immediately — it needs no
      second phase at all (nothing to redo or undo either way).

    Requires prepare-capable sites, like standard 2PC. Message cost per
    committed transaction with [n] branches of which [r] are read-only:
    [6n - 2r]; per aborted transaction: [4n + (n - r)] instead of [6n]. *)

val run : Federation.t -> Global.spec -> Global.outcome
