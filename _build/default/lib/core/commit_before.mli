(** Local commitment {e before} the global decision (§3.3) — the paper's
    protocol, here in its standalone form (the additional components built
    on top of the existing systems; see {!Commit_before_mlt} for the
    variant fused with multi-level transactions).

    Each local transaction executes and {b commits immediately},
    independently of the global transaction manager — local locks are
    released at the end of the {e local} transaction. The global manager
    then inquires about every local's final state ([prepare]); a crashed
    site is simply waited for ("the global transaction manager has to wait
    for the local system to come up again"). If every local committed, the
    global transaction commits with no further messages. If outcomes are
    mixed, the committed locals are {b undone by inverse transactions} from
    the undo-log, each made idempotent by a marker record so a crash between
    an undo's commit and its acknowledgement can never cause a double undo.

    The standalone form needs the same additional global CC module as
    commitment-after (§3.3's serializability requirement: nothing may read
    data of a not-yet-globally-committed transaction that an inverse might
    take back), plus the undo-log — both of which §4.3 shows come for free
    under multi-level transactions. *)

val run : Federation.t -> Global.spec -> Global.outcome
