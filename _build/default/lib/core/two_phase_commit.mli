(** Two-phase commit (§3.1) — the homogeneous-systems baseline.

    Requires every participating site to expose a persisted ready state
    ([supports_prepare]); running against any other site aborts with
    [Unsupported_site] — the paper's core observation that 2PC "has to be
    implemented inside of the participating transaction managers" and
    therefore cannot be used in an integrated heterogeneous system.

    Message pattern per global transaction with [n] branches (beyond the
    [execute] data phase): [prepare] × n, [ready]/[abort-vote] × n,
    [commit]/[abort] × n, [finished] × n — the 4n the V5 experiment
    reports. Local locks are held from first access until the decision is
    applied: the global decision falls {e in the middle} of every local
    commitment (Figure 3). *)

val run : Federation.t -> Global.spec -> Global.outcome
