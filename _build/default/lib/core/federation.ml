module Sim = Icdb_sim.Engine
module Trace = Icdb_sim.Trace
module Lock = Icdb_lock.Lock_table
module Mode = Icdb_lock.Mode
module Site = Icdb_net.Site
module Link = Icdb_net.Link
module Db = Icdb_localdb.Engine
module Conflict = Icdb_mlt.Conflict

type journal_phase = Executing | Decided of bool

type journal_entry = {
  j_protocol : string;
  mutable j_branches : (string * int) list;
  mutable j_phase : journal_phase;
}

type t = {
  engine : Sim.t;
  sites : (string * Site.t) list;
  by_name : (string, Site.t) Hashtbl.t;
  trace : Trace.t;
  metrics : Metrics.t;
  global_cc : Mode.t Lock.t;
  conflict : Conflict.t;
  l1_locks : Conflict.clazz Lock.t;
  redo_log : Action_log.t;
  undo_log : Action_log.t;
  mlt_undo_log : Action_log.t;
  decision_log : (int, bool) Hashtbl.t;
  journal : (int, journal_entry) Hashtbl.t;
  graph : Serialization_graph.t;
  mutable next_gid : int;
  mutable global_cc_enabled : bool;
  mutable central_fail : gid:int -> string -> unit;
  global_lock_timeout : float option;
}

let default_conflict =
  Conflict.of_commuting_pairs
    [
      ("read", "read");
      ("increment", "increment");
      ("increment", "decrement");
      ("decrement", "decrement");
      ("deposit", "deposit");
      ("deposit", "withdraw");
      ("withdraw", "withdraw");
      ("deposit", "transfer-in");
      ("deposit", "transfer-out");
      ("withdraw", "transfer-in");
      ("withdraw", "transfer-out");
      ("transfer-in", "transfer-in");
      ("transfer-in", "transfer-out");
      ("transfer-out", "transfer-out");
      ("read-balance", "read-balance");
    ]

let create engine ?(latency = 1.0) ?(loss = 0.0) ?(global_lock_timeout = Some 200.0)
    ?(conflict = default_conflict) configs =
  let metrics = Metrics.create () in
  let sites =
    List.map
      (fun (config : Db.config) ->
        let site = Site.create engine ~latency ~loss config in
        Db.set_hold_time_hook (Site.db site) (fun ~obj:_ ~duration ->
            Metrics.observe_hold_time metrics duration);
        (config.site_name, site))
      configs
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun (name, site) -> Hashtbl.replace by_name name site) sites;
  {
    engine;
    sites;
    by_name;
    trace = Trace.create engine;
    metrics;
    global_cc = Lock.create engine ~compatible:Mode.compatible ~combine:Mode.combine;
    conflict;
    l1_locks =
      Lock.create engine ~compatible:(Conflict.compatible conflict)
        ~combine:(Conflict.combine conflict);
    redo_log = Action_log.create ();
    undo_log = Action_log.create ();
    mlt_undo_log = Action_log.create ();
    decision_log = Hashtbl.create 256;
    journal = Hashtbl.create 64;
    graph = Serialization_graph.create ();
    next_gid = 0;
    global_cc_enabled = true;
    central_fail = (fun ~gid:_ _ -> ());
    global_lock_timeout;
  }

let site t name =
  match Hashtbl.find_opt t.by_name name with
  | Some s -> s
  | None -> raise Not_found

let site_names t = List.map fst t.sites

let fresh_gid t =
  t.next_gid <- t.next_gid + 1;
  t.next_gid

let log_decision t ~gid ~commit = Hashtbl.replace t.decision_log gid commit
let decision t ~gid = Hashtbl.find_opt t.decision_log gid

let journal_open t ~gid ~protocol =
  Hashtbl.replace t.journal gid
    { j_protocol = protocol; j_branches = []; j_phase = Executing }

let journal_find t gid =
  match Hashtbl.find_opt t.journal gid with
  | Some entry -> entry
  | None -> failwith "Federation: no journal entry for this transaction"

let journal_branch t ~gid ~site ~txn_id =
  let entry = journal_find t gid in
  entry.j_branches <- entry.j_branches @ [ (site, txn_id) ]

let journal_decide t ~gid ~commit =
  (journal_find t gid).j_phase <- Decided commit;
  log_decision t ~gid ~commit

let journal_close t ~gid = Hashtbl.remove t.journal gid

let journal_open_entries t =
  Hashtbl.fold (fun gid entry acc -> (gid, entry) :: acc) t.journal []
  |> List.sort compare

let total_messages t =
  List.fold_left (fun acc (_, site) -> acc + Link.message_count (Site.link site)) 0 t.sites

let messages_by_label t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun (_, site) ->
      List.iter
        (fun (label, n) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt merged label) in
          Hashtbl.replace merged label (cur + n))
        (Link.messages_by_label (Site.link site)))
    t.sites;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) merged [] |> List.sort compare

let reset_message_counters t =
  List.iter (fun (_, site) -> Link.reset_counters (Site.link site)) t.sites

let internal_key key = String.length key >= 2 && String.sub key 0 2 = "__"

let snapshot t =
  List.concat_map
    (fun (name, site) ->
      let db = Site.db site in
      List.filter_map
        (fun key ->
          if internal_key key then None
          else Option.map (fun v -> (name, key, v)) (Db.committed_value db key))
        (Db.committed_keys db))
    t.sites
  |> List.sort compare
