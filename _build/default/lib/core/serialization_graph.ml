module Db = Icdb_localdb.Engine

type local = { gid : int; compensation : bool; accesses : Db.access list }

type t = {
  histories : (string, local list ref) Hashtbl.t; (* site -> reversed commit order *)
  outcomes : (int, bool) Hashtbl.t; (* gid -> committed *)
  mutable locals : int;
}

type violation =
  | Cycle of int list
  | Dirty_read of { reader : int; aborted_writer : int; site : string }

let pp_violation fmt = function
  | Cycle gids ->
    Format.fprintf fmt "cycle: %a"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
         (fun f g -> Format.fprintf f "G%d" g))
      gids
  | Dirty_read { reader; aborted_writer; site } ->
    Format.fprintf fmt "dirty access at %s: G%d used data of aborted G%d before compensation"
      site reader aborted_writer

let create () = { histories = Hashtbl.create 16; outcomes = Hashtbl.create 64; locals = 0 }

let record_local t ~gid ~site ~compensation accesses =
  let hist =
    match Hashtbl.find_opt t.histories site with
    | Some h -> h
    | None ->
      let h = ref [] in
      Hashtbl.replace t.histories site h;
      h
  in
  hist := { gid; compensation; accesses } :: !hist;
  t.locals <- t.locals + 1

let record_outcome t ~gid ~committed = Hashtbl.replace t.outcomes gid committed

(* Access classification on one key: the strongest kind decides conflicts. *)
type kind = KRead | KIncr | KWrite

let kinds_of accesses =
  let tbl = Hashtbl.create 8 in
  let strengthen key kind =
    if String.length key >= 2 && String.sub key 0 2 = "__" then ()
    else
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key [ kind ]
      | Some kinds -> if not (List.mem kind kinds) then Hashtbl.replace tbl key (kind :: kinds)
  in
  List.iter
    (function
      | Db.Read { key; _ } -> strengthen key KRead
      | Db.Wrote { key; _ } -> strengthen key KWrite
      | Db.Incremented { key; _ } -> strengthen key KIncr)
    accesses;
  tbl

let kinds_conflict k1 k2 =
  match (k1, k2) with
  | KRead, KRead -> false
  | KIncr, KIncr -> false
  | KRead, (KIncr | KWrite)
  | KIncr, (KRead | KWrite)
  | KWrite, (KRead | KIncr | KWrite) ->
    true

let conflict_kinds a b =
  Hashtbl.fold
    (fun key kinds_a hit ->
      hit
      ||
      match Hashtbl.find_opt b key with
      | None -> false
      | Some kinds_b ->
        List.exists (fun ka -> List.exists (fun kb -> kinds_conflict ka kb) kinds_b) kinds_a)
    a false

let conflict a b = conflict_kinds (kinds_of a) (kinds_of b)

let committed_of t gid = Option.value ~default:false (Hashtbl.find_opt t.outcomes gid)

(* Build edges among committed globals from per-site commit order. *)
let edges t =
  let edges = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _site hist ->
      let ordered = List.rev !hist in
      let with_kinds =
        List.filter_map
          (fun l ->
            if committed_of t l.gid && not l.compensation then
              Some (l.gid, kinds_of l.accesses)
            else None)
          ordered
      in
      let rec pairs = function
        | [] -> ()
        | (g1, k1) :: rest ->
          List.iter
            (fun (g2, k2) ->
              if g1 <> g2 && conflict_kinds k1 k2 then Hashtbl.replace edges (g1, g2) ())
            rest;
          pairs rest
      in
      pairs with_kinds)
    t.histories;
  edges

let find_cycle t =
  let edge_tbl = edges t in
  let succ = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) () ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt succ a) in
      Hashtbl.replace succ a (b :: cur))
    edge_tbl;
  let state = Hashtbl.create 64 in
  (* 0 = in progress, 1 = done *)
  let exception Found of int list in
  let rec dfs path node =
    match Hashtbl.find_opt state node with
    | Some 1 -> ()
    | Some _ ->
      (* back edge: extract the cycle from the path *)
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = node then [ x ] else x :: cut rest
      in
      raise (Found (List.rev (cut path)))
    | None ->
      Hashtbl.replace state node 0;
      List.iter (dfs (node :: path)) (Option.value ~default:[] (Hashtbl.find_opt succ node));
      Hashtbl.replace state node 1
  in
  try
    Hashtbl.iter (fun node _ -> dfs [ node ] node) succ;
    None
  with Found cycle -> Some cycle

(* A committed local conflicting with an aborted global's original local,
   positioned after it and before its compensation, read or overwrote data
   that was later compensated away. *)
let dirty_reads t =
  let found = ref [] in
  Hashtbl.iter
    (fun site hist ->
      let ordered = Array.of_list (List.rev !hist) in
      let n = Array.length ordered in
      for i = 0 to n - 1 do
        let l = ordered.(i) in
        if (not l.compensation) && not (committed_of t l.gid) then begin
          (* window end: this gid's compensation at this site, if any *)
          let window_end = ref n in
          (try
             for j = i + 1 to n - 1 do
               if ordered.(j).gid = l.gid && ordered.(j).compensation then begin
                 window_end := j;
                 raise Exit
               end
             done
           with Exit -> ());
          (* Only data the aborted local *changed* can be dirty; its pure
             reads are harmless (read-only optimization). *)
          let k1 = kinds_of l.accesses in
          Hashtbl.iter
            (fun key kinds ->
              if List.for_all (( = ) KRead) kinds then Hashtbl.remove k1 key)
            (Hashtbl.copy k1);
          for j = i + 1 to !window_end - 1 do
            let m = ordered.(j) in
            if m.gid <> l.gid && committed_of t m.gid && not m.compensation then
              if conflict_kinds k1 (kinds_of m.accesses) then
                found := Dirty_read { reader = m.gid; aborted_writer = l.gid; site } :: !found
          done
        end
      done)
    t.histories;
  List.rev !found

let violations t =
  let cycle = match find_cycle t with Some c -> [ Cycle c ] | None -> [] in
  cycle @ dirty_reads t

let serializable t = violations t = []
let recorded_locals t = t.locals
