(** Local commitment before the global decision, fused with multi-level
    transactions (§4) — the paper's main contribution.

    A global transaction is a two-level transaction: each L1 action runs as
    one L0 transaction at one local system and {b commits immediately}
    (early release of L0 locks — the concurrency advantage of multi-level
    transactions is preserved, Figure 8). Serializability across global
    transactions comes from the {b L1 lock manager}: an action's conflict
    class is locked on its target object, with commutativity-based
    compatibility, and held until the end of the global transaction.

    Atomic commitment needs {e no additional components}: on a global
    abort, the committed L0 transactions are undone by executing the
    actions' {b inverse actions} from the L1 undo-log — exactly the
    recovery mechanism the multi-level transaction model maintains anyway.
    The §3.3 serializability requirement holds by construction: a
    transaction scheduled between an action and its inverse either commutes
    with it (and then cannot invalidate the undo) or was delayed by the L1
    lock (§4.3's argument).

    The metrics report zero additional-CC acquisitions and zero
    additional-log writes for this protocol — the V4 ablation. *)

(** [run ?action_retries fed spec]. [action_retries] (default 0) retries a
    failed L0 action that many times before giving up and aborting the
    global transaction — exploiting L1 atomicity: an aborted L0 action left
    no trace, so re-running it is always safe (a cheaper first line of
    defence than compensating the whole transaction; see the A3 ablation).
    Retries are counted as repetitions in the metrics. *)
val run : ?action_retries:int -> Federation.t -> Global.mlt_spec -> Global.outcome
