(** Local commitment {e after} the global decision (§3.2).

    For local systems without a ready state. The communication manager
    answers the prepare inquiry while its local transaction is still
    {e running} — a "ready" vote is a promise, not a persisted state. The
    global decision is therefore made {e before} any local commit
    (Figure 5), and two extra components compensate for the missing ready
    state:

    - a {b redo-log} (the original local programs, here also materialised as
      per-site marker records in the local databases, following the [WV 90]
      technique) — if a local transaction is erroneously aborted {e after}
      voting ready (timeout, validation failure, crash), it is {b repeated}
      until it commits;
    - an {b additional global concurrency-control module} that holds global
      locks on every accessed object until the global transaction ends, so
      a repetition can never observe a different serialization order than
      the first execution (§3.2's serializability requirement).

    Cost profile (§4.3): two logs maintained, and every local lock is held
    until the end of the {e global} transaction — the concurrency advantage
    of multi-level transactions is lost. *)

val run : Federation.t -> Global.spec -> Global.outcome
