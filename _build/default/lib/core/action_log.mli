(** Stable logs of local-transaction programs kept by the central system.

    Two instances exist per federation:
    - the {e redo-log} of commitment-after (§3.2): the original local
      programs, replayed when a local transaction is erroneously aborted
      after its "ready" answer;
    - the {e undo-log} of commitment-before (§3.3) and of the L1 recovery
      component of multi-level transactions (§4): inverse programs, executed
      to compensate committed locals after a global abort.

    Write counts are the V4 ablation's overhead metric: with multi-level
    transactions, the undo-log is {e already} maintained by the L1
    transaction manager, so the commitment protocol adds zero writes. *)

type entry = {
  site : string;
  program : Icdb_localdb.Program.t;
  tag : string;  (** free-form: action name, "branch", ... (for traces) *)
}

type t

val create : unit -> t

(** [append t ~gid entry] — a stable write, counted. *)
val append : t -> gid:int -> entry -> unit

(** Entries for one global transaction, in append order. *)
val entries : t -> gid:int -> entry list

(** [remove t ~gid] discards entries once the global outcome is final. *)
val remove : t -> gid:int -> unit

(** Total appends since creation (not reduced by {!remove}). *)
val write_count : t -> int

(** Global transactions currently holding entries. *)
val pending : t -> int
