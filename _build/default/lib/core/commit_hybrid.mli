(** Hybrid commitment for mixed-capability federations (an extension the
    paper's architecture invites: "the integration of additional systems
    into the existing heterogeneous environment does not cause further
    problems").

    Real federations are rarely uniform: some existing systems happen to
    expose a prepared state, most do not. This protocol uses the best
    mechanism each site offers:

    - {b prepare-capable sites} run a 2PC leg: execute, enter the ready
      state at the inquiry, apply the decision — no redo, no undo, crash
      safety from the persisted prepare;
    - {b all other sites} run a commitment-before leg: execute and commit
      unilaterally; on a global abort they are compensated by inverse
      transactions from the undo-log.

    The decision commits iff every 2PC leg voted ready and every
    commitment-before leg committed. The additional global CC module is
    required (the commitment-before legs import §3.3's serializability
    requirement), and the undo-log only carries entries for the
    commitment-before legs. *)

val run : Federation.t -> Global.spec -> Global.outcome
