type branch = {
  site : string;
  program : Icdb_localdb.Program.t;
  vote_commit : bool;
}

let branch ?(vote_commit = true) ~site program = { site; program; vote_commit }

type spec = { gid : int; branches : branch list }

type mlt_spec = {
  mlt_gid : int;
  actions : Icdb_mlt.Action.t list;
  abort_after : int option;
}

type abort_cause =
  | Local_abort of { site : string; reason : Icdb_localdb.Engine.abort_reason }
  | Voted_abort of string
  | Global_cc_denied
  | Intended_abort
  | Unsupported_site of string

type outcome = Committed | Aborted of abort_cause

let pp_abort_cause fmt = function
  | Local_abort { site; reason } ->
    Format.fprintf fmt "local abort at %s (%a)" site Icdb_localdb.Engine.pp_abort_reason reason
  | Voted_abort site -> Format.fprintf fmt "voted abort at %s" site
  | Global_cc_denied -> Format.pp_print_string fmt "global concurrency control denied"
  | Intended_abort -> Format.pp_print_string fmt "intended abort"
  | Unsupported_site site -> Format.fprintf fmt "site %s has no ready state" site

let pp_outcome fmt = function
  | Committed -> Format.pp_print_string fmt "committed"
  | Aborted cause -> Format.fprintf fmt "aborted: %a" pp_abort_cause cause

let outcome_to_string o = Format.asprintf "%a" pp_outcome o
let is_committed = function Committed -> true | Aborted _ -> false
