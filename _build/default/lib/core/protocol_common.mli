(** Plumbing shared by the three atomic-commitment protocols. *)

module Db = Icdb_localdb.Engine
module Program = Icdb_localdb.Program

(** [ev gid label] — trace label namespaced by global transaction. *)
val ev : int -> string -> string

(** The per-site key recording "this global transaction's local commit
    happened here" — the [WV 90]-style redo-log-in-the-database marker that
    makes the repetition of §3.2 idempotent across crashes. *)
val commit_marker : gid:int -> string

(** The per-site key recording "this global transaction's local effects were
    compensated here" — prevents double undo (§3.3). [seq] distinguishes
    multiple actions of one global transaction at the same site. *)
val undo_marker : gid:int -> seq:int -> string

(** Lock mode for the additional global CC module, per access intent. *)
val mode_of_intent : [ `Read | `Increment | `Write ] -> Icdb_lock.Mode.t

(** [acquire_global_locks fed ~gid spec] takes the additional CC module's
    locks for every key the spec touches (sorted order, deadlock-detected,
    bounded by the federation's global lock timeout). Returns [false] —
    with everything released again — when denied. Counted in metrics. When
    the federation's [global_cc_enabled] is off (experiment V7), this is a
    no-op returning [true]. *)
val acquire_global_locks : Federation.t -> gid:int -> Global.spec -> bool

val release_global_locks : Federation.t -> gid:int -> unit

(** Result of executing one branch's program (transaction left running). *)
type exec_status = Exec_ok of Db.txn | Exec_failed of Db.abort_reason

(** [execute_branch fed ~gid b ~extra_ops] sends the branch's program to the
    site's communication manager and runs it in a fresh local transaction,
    {e without} committing or preparing. [extra_ops] are appended (marker
    writes). One request/reply message pair. *)
val execute_branch :
  Federation.t -> gid:int -> Global.branch -> extra_ops:Program.t -> exec_status

(** Record a committed local transaction in the serialization graph. *)
val graph_local :
  Federation.t -> gid:int -> site:string -> compensation:bool -> Db.txn -> unit

(** [persistently_apply fed ~gid ~site ~marker ~compensation ~on_attempt
    program] runs [program @ \[write marker\]] as a local transaction at
    [site], retrying (and waiting out site downtime) until an incarnation
    commits — unless [marker] is already committed, in which case nothing
    runs. This is the shared engine of §3.2's repetition and §3.3's undo:
    the marker in the local database makes the loop idempotent across both
    site and central crashes. [on_attempt] fires before each execution
    (metrics); the committed incarnation is recorded in the serialization
    graph with the [compensation] flag. Returns [true] if this call did the
    work, [false] if the marker showed it already done. *)
val persistently_apply :
  Federation.t ->
  gid:int ->
  site:string ->
  marker:string ->
  compensation:bool ->
  on_attempt:(unit -> unit) ->
  Program.t ->
  bool

(** [finish fed ~gid ~start outcome] records metrics, the graph outcome and
    the trace end-marker, then returns [outcome]. *)
val finish : Federation.t -> gid:int -> start:float -> Global.outcome -> Global.outcome
