module Stats = Icdb_util.Stats

type t = {
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable repetitions : int;
  mutable compensations : int;
  mutable global_locks : int;
  mutable l1_locks : int;
  mutable hold : Stats.Sample.t;
  mutable response : Stats.Sample.t;
}

let create () =
  {
    started = 0;
    committed = 0;
    aborted = 0;
    repetitions = 0;
    compensations = 0;
    global_locks = 0;
    l1_locks = 0;
    hold = Stats.Sample.create ();
    response = Stats.Sample.create ();
  }

let reset t =
  t.started <- 0;
  t.committed <- 0;
  t.aborted <- 0;
  t.repetitions <- 0;
  t.compensations <- 0;
  t.global_locks <- 0;
  t.l1_locks <- 0;
  t.hold <- Stats.Sample.create ();
  t.response <- Stats.Sample.create ()

let txn_started t = t.started <- t.started + 1

let txn_committed t ~response_time =
  t.committed <- t.committed + 1;
  Stats.Sample.add t.response response_time

let txn_aborted t = t.aborted <- t.aborted + 1
let repetition t = t.repetitions <- t.repetitions + 1
let compensation t = t.compensations <- t.compensations + 1
let global_lock_acquired t = t.global_locks <- t.global_locks + 1
let l1_lock_acquired t = t.l1_locks <- t.l1_locks + 1
let observe_hold_time t d = Stats.Sample.add t.hold d

let started t = t.started
let committed t = t.committed
let aborted t = t.aborted
let repetitions t = t.repetitions
let compensations t = t.compensations
let global_lock_acquisitions t = t.global_locks
let l1_lock_acquisitions t = t.l1_locks

let safe_stat f sample = if Stats.Sample.count sample = 0 then 0.0 else f sample

let mean_hold_time t = safe_stat Stats.Sample.mean t.hold
let p95_hold_time t = safe_stat (fun s -> Stats.Sample.percentile s 95.0) t.hold
let hold_time_samples t = Stats.Sample.count t.hold
let mean_response_time t = safe_stat Stats.Sample.mean t.response
let p95_response_time t = safe_stat (fun s -> Stats.Sample.percentile s 95.0) t.response
