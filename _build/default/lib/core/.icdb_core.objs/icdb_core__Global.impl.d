lib/core/global.ml: Format Icdb_localdb Icdb_mlt
