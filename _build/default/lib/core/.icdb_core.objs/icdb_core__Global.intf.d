lib/core/global.mli: Format Icdb_localdb Icdb_mlt
