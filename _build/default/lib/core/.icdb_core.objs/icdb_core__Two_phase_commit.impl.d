lib/core/two_phase_commit.ml: Federation Global Icdb_localdb Icdb_net Icdb_sim List Metrics Option Protocol_common
