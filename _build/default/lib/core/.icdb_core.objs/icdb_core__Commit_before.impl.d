lib/core/commit_before.ml: Action_log Federation Global Icdb_localdb Icdb_net Icdb_sim List Metrics Option Protocol_common
