lib/core/federation.mli: Action_log Hashtbl Icdb_localdb Icdb_lock Icdb_mlt Icdb_net Icdb_sim Metrics Serialization_graph
