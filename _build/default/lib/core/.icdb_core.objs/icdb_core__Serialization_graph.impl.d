lib/core/serialization_graph.ml: Array Format Hashtbl Icdb_localdb List Option String
