lib/core/presumed_abort.ml: Federation Global Icdb_localdb Icdb_net Icdb_sim List Metrics Option Protocol_common
