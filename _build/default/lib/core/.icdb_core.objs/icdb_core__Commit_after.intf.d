lib/core/commit_after.mli: Federation Global
