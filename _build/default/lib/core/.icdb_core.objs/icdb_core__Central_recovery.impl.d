lib/core/central_recovery.ml: Action_log Federation Format Icdb_localdb Icdb_lock Icdb_net List Metrics Printf Protocol_common Serialization_graph
