lib/core/action_log.ml: Hashtbl Icdb_localdb List Option
