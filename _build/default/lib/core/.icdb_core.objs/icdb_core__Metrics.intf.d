lib/core/metrics.mli:
