lib/core/protocol_common.mli: Federation Global Icdb_localdb Icdb_lock
