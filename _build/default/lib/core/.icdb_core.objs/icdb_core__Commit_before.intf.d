lib/core/commit_before.mli: Federation Global
