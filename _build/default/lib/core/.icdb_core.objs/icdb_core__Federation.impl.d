lib/core/federation.ml: Action_log Hashtbl Icdb_localdb Icdb_lock Icdb_mlt Icdb_net Icdb_sim List Metrics Option Serialization_graph String
