lib/core/commit_hybrid.mli: Federation Global
