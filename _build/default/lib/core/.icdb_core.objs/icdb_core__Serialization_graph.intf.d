lib/core/serialization_graph.mli: Format Icdb_localdb
