lib/core/commit_before_mlt.mli: Federation Global
