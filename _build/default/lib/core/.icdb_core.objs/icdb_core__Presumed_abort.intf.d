lib/core/presumed_abort.mli: Federation Global
