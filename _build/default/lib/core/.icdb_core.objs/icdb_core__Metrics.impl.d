lib/core/metrics.ml: Icdb_util
