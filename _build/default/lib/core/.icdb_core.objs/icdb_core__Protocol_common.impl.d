lib/core/protocol_common.ml: Federation Format Global Icdb_localdb Icdb_lock Icdb_net Icdb_sim List Metrics Printf Serialization_graph
