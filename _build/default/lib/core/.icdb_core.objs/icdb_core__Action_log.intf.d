lib/core/action_log.mli: Icdb_localdb
