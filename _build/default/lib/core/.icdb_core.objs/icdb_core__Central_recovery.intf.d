lib/core/central_recovery.mli: Federation Format
