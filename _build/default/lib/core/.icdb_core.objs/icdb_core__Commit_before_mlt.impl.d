lib/core/commit_before_mlt.ml: Action_log Federation Global Icdb_localdb Icdb_lock Icdb_mlt Icdb_net Icdb_sim List Metrics Printf Protocol_common
