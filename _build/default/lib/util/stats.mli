(** Small statistics toolkit used by the experiment runner and benches.

    Two flavours: {!Summary} is a constant-memory accumulator for streams of
    observations (counts, mean, variance, min/max), and {!Sample} retains all
    observations so that exact percentiles can be reported in experiment
    tables. *)

module Summary : sig
  type t

  (** A fresh, empty accumulator. *)
  val create : unit -> t

  (** [add t x] records one observation. Welford's algorithm keeps the mean
      and variance numerically stable. *)
  val add : t -> float -> unit

  val count : t -> int
  val mean : t -> float

  (** Sample variance (Bessel-corrected); [0.] with fewer than 2 points. *)
  val variance : t -> float

  val stddev : t -> float

  (** [min t], [max t]: raise [Invalid_argument] when empty. *)
  val min : t -> float

  val max : t -> float

  (** Total of all observations. *)
  val total : t -> float
end

module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** [percentile t p] with [p] in [\[0,100\]], linear interpolation between
      order statistics. Raises [Invalid_argument] when empty or [p] is out of
      range. *)
  val percentile : t -> float -> float

  val median : t -> float

  (** All observations in insertion order. *)
  val values : t -> float array
end

(** [histogram ~buckets values] splits the value range into [buckets]
    equal-width bins and returns [(lower_bound, count)] pairs; used by the
    CLI's trace summaries. Raises [Invalid_argument] if [buckets <= 0]. *)
val histogram : buckets:int -> float array -> (float * int) array
