type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  arity : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~title headers =
  let arity = List.length headers in
  if arity = 0 then invalid_arg "Table.create: no columns";
  let aligns = List.mapi (fun i _ -> if i = 0 then Left else Right) headers in
  { title; headers; arity; aligns; rows = [] }

let set_aligns t aligns =
  if List.length aligns <> t.arity then invalid_arg "Table.set_aligns: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Separator -> ()
    | Cells cells ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells cells -> emit_cells cells | Separator -> emit_rule ()) rows;
  emit_rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_int n = string_of_int n

let fmt_ratio a b =
  if b = 0.0 then "-" else Printf.sprintf "%.2fx" (a /. b)
