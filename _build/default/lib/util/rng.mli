(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible bit-for-bit from a seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny
    state, excellent statistical quality for simulation purposes, and a
    well-defined [split] operation for handing independent streams to
    sub-components. *)

type t

(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Equal seeds yield equal streams. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Use it to
    give each site / workload its own stream so that adding draws in one
    component does not perturb another. *)
val split : t -> t

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    Raises [Invalid_argument] if [hi < lo]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples an exponential distribution with the given
    mean; used for inter-arrival and service times. *)
val exponential : t -> mean:float -> float

(** [pick t arr] returns a uniformly random element of [arr].
    Raises [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_distinct t ~n ~bound] returns [n] distinct integers drawn
    uniformly from [\[0, bound)]. Raises [Invalid_argument] if
    [n > bound] or [n < 0]. *)
val sample_distinct : t -> n:int -> bound:int -> int list
