(** In-memory B+-tree with string keys.

    The local database engines use it as their key index: point lookups,
    ordered iteration (index rebuild after restart, sorted key listings)
    and range scans. Values live only in the leaves; leaves are linked for
    cheap in-order traversal. The fanout is fixed at a classic node size;
    the structure invariants (sortedness, occupancy, balanced height) are
    checked by [invariant_check] and exercised by property tests. *)

type 'a t

val create : unit -> 'a t

(** [insert t key v] adds or replaces the binding. *)
val insert : 'a t -> string -> 'a -> unit

val find : 'a t -> string -> 'a option
val mem : 'a t -> string -> bool

(** [remove t key] deletes the binding; [false] when absent. *)
val remove : 'a t -> string -> bool

val size : 'a t -> int
val is_empty : 'a t -> bool

(** Smallest / largest key. *)
val min_binding : 'a t -> (string * 'a) option

val max_binding : 'a t -> (string * 'a) option

(** In-order iteration over all bindings. *)
val iter : 'a t -> (string -> 'a -> unit) -> unit

val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b

(** [range t ~lo ~hi f] applies [f] to bindings with [lo <= key <= hi], in
    order. [None] bounds are open ends. *)
val range : 'a t -> lo:string option -> hi:string option -> (string -> 'a -> unit) -> unit

(** All bindings in key order. *)
val to_list : 'a t -> (string * 'a) list

(** Sorted key list. *)
val keys : 'a t -> string list

(** Tree height (leaf = 1); exposed for balance tests. *)
val height : 'a t -> int

(** [invariant_check t] raises [Failure] describing the first violated
    structural invariant (key order, separator correctness, occupancy,
    uniform leaf depth); returns [()] on a well-formed tree. *)
val invariant_check : 'a t -> unit
