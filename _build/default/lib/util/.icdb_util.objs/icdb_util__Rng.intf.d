lib/util/rng.mli:
