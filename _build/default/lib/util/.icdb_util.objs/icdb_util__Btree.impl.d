lib/util/btree.ml: Array List Option Printf
