lib/util/table.mli:
