lib/util/btree.mli:
