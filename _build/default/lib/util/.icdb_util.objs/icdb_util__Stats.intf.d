lib/util/stats.mli:
