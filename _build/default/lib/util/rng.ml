type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step plus two xor-shift-multiply
   mixing rounds (variant "mix64" from the reference implementation). *)
let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_state t)

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniformly distributed mantissa bits. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t ~n ~bound =
  if n < 0 || n > bound then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: O(n) expected draws, no O(bound) allocation. *)
  let seen = Hashtbl.create (2 * n) in
  let acc = ref [] in
  for j = bound - n to bound - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    acc := v :: !acc
  done;
  !acc
