(* Nodes hold exact-size sorted arrays; structural edits copy them. With a
   small fixed order the per-operation copying is O(order) and keeps every
   invariant locally obvious. Separator convention: a separator equals the
   smallest key of its right subtree, so lookups go right on equality. *)

let order = 16 (* maximum keys per node *)
let min_keys = order / 2

type 'a node = Leaf of 'a leaf | Internal of 'a internal

and 'a leaf = {
  mutable lkeys : string array;
  mutable lvals : 'a array;
  mutable next : 'a leaf option;
}

and 'a internal = { mutable seps : string array; mutable children : 'a node array }

type 'a t = { mutable root : 'a node; mutable count : int }

let new_leaf () = { lkeys = [||]; lvals = [||]; next = None }
let create () = { root = Leaf (new_leaf ()); count = 0 }

(* --- array helpers --- *)

let insert_at arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let remove_at arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let sub arr lo len = Array.sub arr lo len

(* Number of separators <= key = index of the child to descend into. *)
let child_index seps key =
  let n = Array.length seps in
  let rec go i = if i < n && seps.(i) <= key then go (i + 1) else i in
  go 0

(* Position of key in a sorted key array: [Found i] or [Insert i]. *)
let search keys key =
  let n = Array.length keys in
  let rec go i =
    if i >= n then `Insert i
    else if keys.(i) = key then `Found i
    else if keys.(i) > key then `Insert i
    else go (i + 1)
  in
  go 0

(* --- find --- *)

let rec find_node node key =
  match node with
  | Leaf l -> ( match search l.lkeys key with `Found i -> Some l.lvals.(i) | `Insert _ -> None)
  | Internal n -> find_node n.children.(child_index n.seps key) key

let find t key = find_node t.root key
let mem t key = Option.is_some (find t key)

(* --- insert --- *)

type 'a split = No_split | Split of string * 'a node

let split_leaf l =
  let n = Array.length l.lkeys in
  let half = n / 2 in
  let right =
    { lkeys = sub l.lkeys half (n - half); lvals = sub l.lvals half (n - half); next = l.next }
  in
  l.lkeys <- sub l.lkeys 0 half;
  l.lvals <- sub l.lvals 0 half;
  l.next <- Some right;
  Split (right.lkeys.(0), Leaf right)

let split_internal node =
  let n = Array.length node.seps in
  let mid = n / 2 in
  let up = node.seps.(mid) in
  let right =
    {
      seps = sub node.seps (mid + 1) (n - mid - 1);
      children = sub node.children (mid + 1) (n - mid);
    }
  in
  node.seps <- sub node.seps 0 mid;
  node.children <- sub node.children 0 (mid + 1);
  Split (up, Internal right)

(* Returns (added a fresh key?, split). *)
let rec insert_node node key v =
  match node with
  | Leaf l -> (
    match search l.lkeys key with
    | `Found i ->
      l.lvals.(i) <- v;
      (false, No_split)
    | `Insert i ->
      l.lkeys <- insert_at l.lkeys i key;
      l.lvals <- insert_at l.lvals i v;
      if Array.length l.lkeys > order then (true, split_leaf l) else (true, No_split))
  | Internal n -> (
    let i = child_index n.seps key in
    let added, split = insert_node n.children.(i) key v in
    match split with
    | No_split -> (added, No_split)
    | Split (sep, right) ->
      n.seps <- insert_at n.seps i sep;
      n.children <- insert_at n.children (i + 1) right;
      if Array.length n.seps > order then (added, split_internal n) else (added, No_split))

let insert t key v =
  let added, split = insert_node t.root key v in
  (match split with
  | No_split -> ()
  | Split (sep, right) ->
    t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] });
  if added then t.count <- t.count + 1

(* --- remove --- *)

let underfull = function
  | Leaf l -> Array.length l.lkeys < min_keys
  | Internal n -> Array.length n.seps < min_keys

(* Rebalance parent's child [i], which is underfull: borrow from a sibling
   when it has spare keys, merge otherwise. *)
let rebalance parent i =
  let left_idx = i - 1 and right_idx = i + 1 in
  let child = parent.children.(i) in
  let has_left = left_idx >= 0 in
  let has_right = right_idx < Array.length parent.children in
  let spare = function
    | Leaf l -> Array.length l.lkeys > min_keys
    | Internal n -> Array.length n.seps > min_keys
  in
  match child with
  | Leaf l ->
    let borrow_left () =
      match parent.children.(left_idx) with
      | Leaf left ->
        let n = Array.length left.lkeys in
        l.lkeys <- insert_at l.lkeys 0 left.lkeys.(n - 1);
        l.lvals <- insert_at l.lvals 0 left.lvals.(n - 1);
        left.lkeys <- sub left.lkeys 0 (n - 1);
        left.lvals <- sub left.lvals 0 (n - 1);
        parent.seps.(left_idx) <- l.lkeys.(0)
      | Internal _ -> assert false
    and borrow_right () =
      match parent.children.(right_idx) with
      | Leaf right ->
        l.lkeys <- insert_at l.lkeys (Array.length l.lkeys) right.lkeys.(0);
        l.lvals <- insert_at l.lvals (Array.length l.lvals) right.lvals.(0);
        right.lkeys <- remove_at right.lkeys 0;
        right.lvals <- remove_at right.lvals 0;
        parent.seps.(i) <- right.lkeys.(0)
      | Internal _ -> assert false
    and merge_into_left () =
      match parent.children.(left_idx) with
      | Leaf left ->
        left.lkeys <- Array.append left.lkeys l.lkeys;
        left.lvals <- Array.append left.lvals l.lvals;
        left.next <- l.next;
        parent.seps <- remove_at parent.seps left_idx;
        parent.children <- remove_at parent.children i
      | Internal _ -> assert false
    and merge_right_into_child () =
      match parent.children.(right_idx) with
      | Leaf right ->
        l.lkeys <- Array.append l.lkeys right.lkeys;
        l.lvals <- Array.append l.lvals right.lvals;
        l.next <- right.next;
        parent.seps <- remove_at parent.seps i;
        parent.children <- remove_at parent.children right_idx
      | Internal _ -> assert false
    in
    if has_left && spare parent.children.(left_idx) then borrow_left ()
    else if has_right && spare parent.children.(right_idx) then borrow_right ()
    else if has_left then merge_into_left ()
    else merge_right_into_child ()
  | Internal c ->
    let borrow_left () =
      match parent.children.(left_idx) with
      | Internal left ->
        let n = Array.length left.seps in
        c.seps <- insert_at c.seps 0 parent.seps.(left_idx);
        c.children <- insert_at c.children 0 left.children.(n);
        parent.seps.(left_idx) <- left.seps.(n - 1);
        left.seps <- sub left.seps 0 (n - 1);
        left.children <- sub left.children 0 n
      | Leaf _ -> assert false
    and borrow_right () =
      match parent.children.(right_idx) with
      | Internal right ->
        c.seps <- insert_at c.seps (Array.length c.seps) parent.seps.(i);
        c.children <- insert_at c.children (Array.length c.children) right.children.(0);
        parent.seps.(i) <- right.seps.(0);
        right.seps <- remove_at right.seps 0;
        right.children <- remove_at right.children 0
      | Leaf _ -> assert false
    and merge_into_left () =
      match parent.children.(left_idx) with
      | Internal left ->
        left.seps <- Array.concat [ left.seps; [| parent.seps.(left_idx) |]; c.seps ];
        left.children <- Array.append left.children c.children;
        parent.seps <- remove_at parent.seps left_idx;
        parent.children <- remove_at parent.children i
      | Leaf _ -> assert false
    and merge_right_into_child () =
      match parent.children.(right_idx) with
      | Internal right ->
        c.seps <- Array.concat [ c.seps; [| parent.seps.(i) |]; right.seps ];
        c.children <- Array.append c.children right.children;
        parent.seps <- remove_at parent.seps i;
        parent.children <- remove_at parent.children right_idx
      | Leaf _ -> assert false
    in
    if has_left && spare parent.children.(left_idx) then borrow_left ()
    else if has_right && spare parent.children.(right_idx) then borrow_right ()
    else if has_left then merge_into_left ()
    else merge_right_into_child ()

let rec remove_node node key =
  match node with
  | Leaf l -> (
    match search l.lkeys key with
    | `Found i ->
      l.lkeys <- remove_at l.lkeys i;
      l.lvals <- remove_at l.lvals i;
      true
    | `Insert _ -> false)
  | Internal n ->
    let i = child_index n.seps key in
    let removed = remove_node n.children.(i) key in
    if removed && underfull n.children.(i) then rebalance n i;
    removed

let remove t key =
  let removed = remove_node t.root key in
  if removed then begin
    t.count <- t.count - 1;
    match t.root with
    | Internal n when Array.length n.children = 1 -> t.root <- n.children.(0)
    | Internal _ | Leaf _ -> ()
  end;
  removed

(* --- traversal --- *)

let rec leftmost = function
  | Leaf l -> l
  | Internal n -> leftmost n.children.(0)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some l ->
      Array.iteri (fun i key -> f key l.lvals.(i)) l.lkeys;
      walk l.next
  in
  walk (Some (leftmost t.root))

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun key v -> acc := f !acc key v);
  !acc

let range t ~lo ~hi f =
  let start =
    match lo with
    | None -> leftmost t.root
    | Some key ->
      let rec descend = function
        | Leaf l -> l
        | Internal n -> descend n.children.(child_index n.seps key)
      in
      descend t.root
  in
  let above_lo key = match lo with None -> true | Some b -> key >= b in
  let below_hi key = match hi with None -> true | Some b -> key <= b in
  let exception Done in
  let rec walk = function
    | None -> ()
    | Some l ->
      Array.iteri
        (fun i key ->
          if not (below_hi key) then raise Done
          else if above_lo key then f key l.lvals.(i))
        l.lkeys;
      walk l.next
  in
  try walk (Some start) with Done -> ()

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc key v -> (key, v) :: acc))
let keys t = List.rev (fold t ~init:[] ~f:(fun acc key _ -> key :: acc))

let size t = t.count
let is_empty t = t.count = 0

let min_binding t =
  let rec first = function
    | None -> None
    | Some l -> if Array.length l.lkeys > 0 then Some (l.lkeys.(0), l.lvals.(0)) else first l.next
  in
  first (Some (leftmost t.root))

let max_binding t =
  let rec rightmost = function
    | Leaf l ->
      let n = Array.length l.lkeys in
      if n = 0 then None else Some (l.lkeys.(n - 1), l.lvals.(n - 1))
    | Internal n -> rightmost n.children.(Array.length n.children - 1)
  in
  rightmost t.root

let height t =
  let rec depth = function Leaf _ -> 1 | Internal n -> 1 + depth n.children.(0) in
  depth t.root

(* --- invariants --- *)

let invariant_check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let check_sorted keys where =
    Array.iteri
      (fun i k -> if i > 0 && keys.(i - 1) >= k then fail "%s: keys out of order at %d" where i)
      keys
  in
  let leaf_depth = ref (-1) in
  let counted = ref 0 in
  (* Bounds are exclusive lo / exclusive hi; separators tighten them. *)
  let rec walk node ~lo ~hi ~depth ~is_root =
    let in_bounds k =
      (match lo with None -> true | Some b -> k >= b)
      && match hi with None -> true | Some b -> k < b
    in
    match node with
    | Leaf l ->
      check_sorted l.lkeys "leaf";
      Array.iter (fun k -> if not (in_bounds k) then fail "leaf key %s out of bounds" k) l.lkeys;
      if (not is_root) && Array.length l.lkeys < min_keys then fail "leaf underfull";
      if !leaf_depth = -1 then leaf_depth := depth
      else if !leaf_depth <> depth then fail "unbalanced leaves";
      counted := !counted + Array.length l.lkeys
    | Internal n ->
      check_sorted n.seps "internal";
      if Array.length n.children <> Array.length n.seps + 1 then fail "child count mismatch";
      if (not is_root) && Array.length n.seps < min_keys then fail "internal underfull";
      if is_root && Array.length n.seps < 1 then fail "internal root empty";
      Array.iter (fun s -> if not (in_bounds s) then fail "separator %s out of bounds" s) n.seps;
      Array.iteri
        (fun i child ->
          let lo' = if i = 0 then lo else Some n.seps.(i - 1) in
          let hi' = if i = Array.length n.seps then hi else Some n.seps.(i) in
          walk child ~lo:lo' ~hi:hi' ~depth:(depth + 1) ~is_root:false)
        n.children
  in
  walk t.root ~lo:None ~hi:None ~depth:0 ~is_root:true;
  if !counted <> t.count then fail "size mismatch: counted %d, recorded %d" !counted t.count;
  (* The leaf chain must enumerate exactly the in-order keys. *)
  let chain = ref [] in
  let rec follow = function
    | None -> ()
    | Some l ->
      Array.iter (fun k -> chain := k :: !chain) l.lkeys;
      follow l.next
  in
  follow (Some (leftmost t.root));
  let chain = List.rev !chain in
  if List.length chain <> t.count then fail "leaf chain misses keys";
  ignore
    (List.fold_left
       (fun prev k ->
         (match prev with Some p when p >= k -> fail "leaf chain out of order" | _ -> ());
         Some k)
       None chain)
