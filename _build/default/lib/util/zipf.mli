(** Zipf-distributed sampling over [\[0, n)].

    Database workloads exhibit skewed access: a few hot records receive most
    of the traffic. The experiment runner uses a Zipf sampler to control
    conflict rates in the V1-V3 sweeps (see DESIGN.md section 4). *)

type t

(** [create ~n ~theta] prepares a sampler over [\[0, n)] with skew parameter
    [theta >= 0]. [theta = 0] is the uniform distribution; [theta ~ 0.99] is
    the classical YCSB-style hot-spot skew. Raises [Invalid_argument] if
    [n <= 0] or [theta < 0]. *)
val create : n:int -> theta:float -> t

(** [n t] is the size of the sampled domain. *)
val n : t -> int

(** [theta t] is the skew parameter the sampler was built with. *)
val theta : t -> float

(** [sample t rng] draws one value; rank 0 is the most popular. *)
val sample : t -> Rng.t -> int

(** [probability t k] is the exact probability of drawing [k]; handy for
    tests. Raises [Invalid_argument] if [k] is out of range. *)
val probability : t -> int -> float
