lib/sim/engine.mli:
