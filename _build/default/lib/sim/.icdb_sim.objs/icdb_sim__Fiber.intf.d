lib/sim/fiber.mli: Engine
