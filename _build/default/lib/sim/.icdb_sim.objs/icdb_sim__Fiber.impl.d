lib/sim/fiber.ml: Effect Engine List Queue
