lib/sim/trace.ml: Buffer Engine List Printf
