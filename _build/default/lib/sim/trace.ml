type entry = { time : float; actor : string; label : string }

type t = { engine : Engine.t; mutable entries : entry list (* reversed *) }

let create engine = { engine; entries = [] }

let record t ~actor label =
  t.entries <- { time = Engine.now t.engine; actor; label } :: t.entries

let entries t = List.rev t.entries

let find t ~actor ~label =
  let rec scan = function
    | [] -> None
    | e :: rest ->
      if e.actor = actor && e.label = label then Some e.time else scan rest
  in
  scan (entries t)

let find_all t ~label =
  List.filter_map
    (fun e -> if e.label = label then Some (e.time, e.actor) else None)
    (entries t)

let before t ~first ~then_ =
  let rec scan seen_first = function
    | [] -> false
    | e :: rest ->
      if e.label = first && not seen_first then scan true rest
      else if e.label = then_ then seen_first
      else scan seen_first rest
  in
  scan false (entries t)

let length t = List.length t.entries
let clear t = t.entries <- []

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "t=%8.2f  [%-12s] %s\n" e.time e.actor e.label))
    (entries t);
  Buffer.contents buf
