(** Timestamped event traces.

    Protocol runs record one entry per interesting transition (message sent,
    state entered, commit point reached). The figure-reproduction benches
    (F2-F7) print these traces, and tests assert ordering properties on them
    — e.g. "the global decision lies strictly between every site's ready
    point and its commit point" for Figure 3. *)

type entry = { time : float; actor : string; label : string }

type t

val create : Engine.t -> t

(** [record t ~actor label] appends an entry stamped with the current virtual
    time. *)
val record : t -> actor:string -> string -> unit

(** Entries in recording order. *)
val entries : t -> entry list

(** [find t ~actor ~label] is the time of the first matching entry. *)
val find : t -> actor:string -> label:string -> float option

(** [find_all t ~label] is every [(time, actor)] whose label matches. *)
val find_all : t -> label:string -> (float * string) list

(** [before t ~first ~then_] checks that the first entry labelled [first]
    precedes the first entry labelled [then_]; [false] when either is
    missing. Actor is ignored. *)
val before : t -> first:string -> then_:string -> bool

val length : t -> int
val clear : t -> unit

(** Multi-line rendering ["t=12.00 [actor] label"], for demos and benches. *)
val render : t -> string
