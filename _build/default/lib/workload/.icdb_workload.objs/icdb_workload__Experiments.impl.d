lib/workload/experiments.ml: Array Buffer Format Icdb_core Icdb_localdb Icdb_mlt Icdb_net Icdb_sim Icdb_util List Option Printf Protocol Runner String
