lib/workload/runner.ml: Array Format Hashtbl Icdb_core Icdb_localdb Icdb_lock Icdb_mlt Icdb_net Icdb_sim Icdb_util Icdb_wal Int64 List Printf Protocol
