lib/workload/protocol.ml: Icdb_core Printf
