lib/workload/experiments.mli:
