lib/workload/runner.mli: Icdb_localdb Protocol
