lib/workload/protocol.mli: Icdb_core
