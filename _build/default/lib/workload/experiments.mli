(** The paper's evaluation, regenerated.

    One entry per figure (F2-F8) and per §4.3 validation claim (V1-V7), as
    indexed in DESIGN.md §4 and EXPERIMENTS.md. Each experiment builds its
    own deterministic federation(s), runs the workload, and renders the
    resulting trace or table as text. [dune exec bench/main.exe] prints all
    of them; [icdb exp <id>] prints one. *)

(** [(id, one-line description)] for every experiment, in paper order. *)
val all : (string * string) list

(** [run id] executes one experiment and returns its printable report.
    Raises [Not_found] for unknown ids. *)
val run : string -> string

(** Runs every experiment in order and concatenates the reports. *)
val run_all : unit -> string
