(* BENCH.json regression diff.

   Usage: diff.exe BASELINE FRESH [--max-ratio R]

   Compares the "kernels" (ms/run) and "alloc" (minor words/txn) sections of
   two BENCH.json files, prints every kernel present in both, and flags
   regressions. Exit status is 1 only when some kernel regressed by more
   than the ratio (default 2.0) — bench machines are noisy, so anything
   below that is a warning, not a failure. The parser is deliberately
   minimal: it reads the fixed format [write_bench_json] emits, not general
   JSON. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* All occurrences of ["name": <float>] pairs between [start_marker] and the
   next "]," / "}," closing line, as an assoc list. *)
let section text start_marker =
  let start =
    let rec find i =
      if i + String.length start_marker > String.length text then None
      else if String.sub text i (String.length start_marker) = start_marker then
        Some (i + String.length start_marker)
      else find (i + 1)
    in
    find 0
  in
  match start with
  | None -> []
  | Some s ->
      let e =
        let rec find i depth =
          if i >= String.length text then i
          else
            match text.[i] with
            | '{' | '[' -> find (i + 1) (depth + 1)
            | '}' | ']' -> if depth = 0 then i else find (i + 1) (depth - 1)
            | _ -> find (i + 1) depth
        in
        find s 0
      in
      let body = String.sub text s (e - s) in
      (* pick out "key" : number pairs *)
      let out = ref [] in
      let n = String.length body in
      let i = ref 0 in
      while !i < n do
        if body.[!i] = '"' then begin
          let close = String.index_from body (!i + 1) '"' in
          let key = String.sub body (!i + 1) (close - !i - 1) in
          let j = ref (close + 1) in
          while !j < n && (body.[!j] = ':' || body.[!j] = ' ') do
            incr j
          done;
          if !j < n && (body.[!j] = '-' || body.[!j] = '.' || (body.[!j] >= '0' && body.[!j] <= '9'))
          then begin
            let k = ref !j in
            while
              !k < n
              && (body.[!k] = '-' || body.[!k] = '.' || body.[!k] = 'e' || body.[!k] = '+'
                 || (body.[!k] >= '0' && body.[!k] <= '9'))
            do
              incr k
            done;
            (match float_of_string_opt (String.sub body !j (!k - !j)) with
            | Some v -> out := (key, v) :: !out
            | None -> ());
            i := !k
          end
          else i := close + 1
        end
        else incr i
      done;
      List.rev !out

(* "alloc" entries are one-line objects with the kernel name as a string
   value (which [section] skips); scan for the entries directly and pull
   each line's minor-words figure. *)
let alloc_section text =
  let entries = ref [] in
  let marker = "{\"kernel\":\"" in
  let ml = String.length marker in
  let n = String.length text in
  let rec scan i =
    if i + ml >= n then ()
    else if String.sub text i ml = marker then begin
      let close = String.index_from text (i + ml) '"' in
      let kernel = String.sub text (i + ml) (close - i - ml) in
      let eol = try String.index_from text close '\n' with Not_found -> n in
      (* skip the kernel name's closing quote so the line has balanced quotes *)
      let line = String.sub text (close + 1) (eol - close - 1) in
      (match List.assoc_opt "minor_words_per_txn" (section ("[" ^ line ^ "]") "[") with
      | Some v -> entries := (kernel, v) :: !entries
      | None -> ());
      scan eol
    end
    else scan (i + 1)
  in
  scan 0;
  List.rev !entries

let () =
  let args = Array.to_list Sys.argv in
  let max_ratio = ref 2.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: r :: rest ->
      (match float_of_string_opt r with Some v -> max_ratio := v | None -> ());
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl args);
  match List.rev !files with
  | [ baseline; fresh ] ->
    let base_text = read_file baseline and fresh_text = read_file fresh in
    let failures = ref 0 and warnings = ref 0 in
    let compare_section label unit base fresh =
      List.iter
        (fun (name, fv) ->
          match List.assoc_opt name base with
          | None -> ()
          | Some bv when bv <= 0.0 -> ()
          | Some bv ->
            let ratio = fv /. bv in
            let verdict =
              if ratio > !max_ratio then begin
                incr failures;
                "REGRESSION"
              end
              else if ratio > 1.25 then begin
                incr warnings;
                "warn"
              end
              else "ok"
            in
            Printf.printf "%-10s %-30s %12.3f -> %12.3f %s  %5.2fx  %s\n" label name bv fv
              unit ratio verdict)
        fresh
    in
    compare_section "kernel" "ms/run" (section base_text "\"kernels\": {")
      (section fresh_text "\"kernels\": {");
    compare_section "alloc" "w/txn" (alloc_section base_text) (alloc_section fresh_text);
    if !failures > 0 then begin
      Printf.printf "\n%d kernel(s) regressed by more than %.1fx\n" !failures !max_ratio;
      exit 1
    end
    else
      Printf.printf "\nno hard regressions (threshold %.1fx, %d warning(s))\n" !max_ratio
        !warnings
  | _ ->
    prerr_endline "usage: diff.exe BASELINE.json FRESH.json [--max-ratio R]";
    exit 2
