(* BENCH.json regression diff.

   Usage: diff.exe BASELINE FRESH [--max-ratio R]

   Compares the "kernels" (ms/run) and "alloc" (minor words/txn) sections of
   two BENCH.json files — plus the throughput sections ("scaling",
   "parallel", "sharding"), where the ratio direction flips: higher is
   better, so a regression is fresh *below* base by the ratio. Prints every
   entry present in both files and flags regressions. Exit status is 1 only
   when something regressed by more than the ratio (default 2.0) — bench
   machines are noisy, so anything below that is a warning, not a failure.
   The "parallel" rows are only compared when both recordings come from a
   host with the same core count (the speedup regime differs otherwise).
   The parser is deliberately minimal: it reads the fixed format
   [write_bench_json] emits, not general JSON. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* All occurrences of ["name": <float>] pairs between [start_marker] and the
   next "]," / "}," closing line, as an assoc list. *)
let section text start_marker =
  let start =
    let rec find i =
      if i + String.length start_marker > String.length text then None
      else if String.sub text i (String.length start_marker) = start_marker then
        Some (i + String.length start_marker)
      else find (i + 1)
    in
    find 0
  in
  match start with
  | None -> []
  | Some s ->
      let e =
        let rec find i depth =
          if i >= String.length text then i
          else
            match text.[i] with
            | '{' | '[' -> find (i + 1) (depth + 1)
            | '}' | ']' -> if depth = 0 then i else find (i + 1) (depth - 1)
            | _ -> find (i + 1) depth
        in
        find s 0
      in
      let body = String.sub text s (e - s) in
      (* pick out "key" : number pairs *)
      let out = ref [] in
      let n = String.length body in
      let i = ref 0 in
      while !i < n do
        if body.[!i] = '"' then begin
          let close = String.index_from body (!i + 1) '"' in
          let key = String.sub body (!i + 1) (close - !i - 1) in
          let j = ref (close + 1) in
          while !j < n && (body.[!j] = ':' || body.[!j] = ' ') do
            incr j
          done;
          if !j < n && (body.[!j] = '-' || body.[!j] = '.' || (body.[!j] >= '0' && body.[!j] <= '9'))
          then begin
            let k = ref !j in
            while
              !k < n
              && (body.[!k] = '-' || body.[!k] = '.' || body.[!k] = 'e' || body.[!k] = '+'
                 || (body.[!k] >= '0' && body.[!k] <= '9'))
            do
              incr k
            done;
            (match float_of_string_opt (String.sub body !j (!k - !j)) with
            | Some v -> out := (key, v) :: !out
            | None -> ());
            i := !k
          end
          else i := close + 1
        end
        else incr i
      done;
      List.rev !out

(* "alloc" entries are one-line objects with the kernel name as a string
   value (which [section] skips); scan for the entries directly and pull
   each line's minor-words figure. *)
let alloc_section text =
  let entries = ref [] in
  let marker = "{\"kernel\":\"" in
  let ml = String.length marker in
  let n = String.length text in
  let rec scan i =
    if i + ml >= n then ()
    else if String.sub text i ml = marker then begin
      let close = String.index_from text (i + ml) '"' in
      let kernel = String.sub text (i + ml) (close - i - ml) in
      let eol = try String.index_from text close '\n' with Not_found -> n in
      (* skip the kernel name's closing quote so the line has balanced quotes *)
      let line = String.sub text (close + 1) (eol - close - 1) in
      (match List.assoc_opt "minor_words_per_txn" (section ("[" ^ line ^ "]") "[") with
      | Some v -> entries := (kernel, v) :: !entries
      | None -> ());
      scan eol
    end
    else scan (i + 1)
  in
  scan 0;
  List.rev !entries

(* --- keyed row sections --------------------------------------------------

   "scaling", "parallel" and "sharding" hold one-line row objects whose
   identity is a combination of fields ("calendar" at 10^6 pending, 4
   domains, 2 shards at 5% cross). [rows_section] finds every line starting
   with [marker] and lets the caller build a (key, value) pair from it. *)

let str_field line name =
  let marker = "\"" ^ name ^ "\":\"" in
  let ml = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + ml > n then None
    else if String.sub line i ml = marker then
      let close = String.index_from line (i + ml) '"' in
      Some (String.sub line (i + ml) (close - i - ml))
    else find (i + 1)
  in
  find 0

let num_field line name =
  let marker = "\"" ^ name ^ "\":" in
  let ml = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + ml > n then None
    else if String.sub line i ml = marker then begin
      let k = ref (i + ml) in
      while
        !k < n
        && (line.[!k] = '-' || line.[!k] = '.' || line.[!k] = 'e' || line.[!k] = '+'
           || (line.[!k] >= '0' && line.[!k] <= '9'))
      do
        incr k
      done;
      float_of_string_opt (String.sub line (i + ml) (!k - i - ml))
    end
    else find (i + 1)
  in
  find 0

let rows_section text marker key_of =
  let n = String.length text in
  let ml = String.length marker in
  let entries = ref [] in
  let rec scan i =
    if i + ml >= n then ()
    else if String.sub text i ml = marker then begin
      let eol = try String.index_from text i '\n' with Not_found -> n in
      let line = String.sub text i (eol - i) in
      (match key_of line with Some kv -> entries := kv :: !entries | None -> ());
      scan eol
    end
    else scan (i + 1)
  in
  scan 0;
  List.rev !entries

let scaling_section text =
  rows_section text "{\"queue\":\"" (fun line ->
      match (str_field line "queue", num_field line "pending", num_field line "events_per_sec")
      with
      | Some q, Some p, Some v -> Some (Printf.sprintf "%s/%.0f" q p, v)
      | _ -> None)

let parallel_section text =
  rows_section text "{\"domains\":" (fun line ->
      match (num_field line "domains", num_field line "events_per_sec") with
      | Some d, Some v -> Some (Printf.sprintf "domains-%.0f" d, v)
      | _ -> None)

let sharding_section text =
  rows_section text "{\"shards\":" (fun line ->
      match (num_field line "shards", num_field line "cross_pct", num_field line "throughput")
      with
      | Some s, Some c, Some v -> Some (Printf.sprintf "s%.0f-x%.0f" s c, v)
      | _ -> None)

(* "paxos" rows share the "overhead" rows' leading field, but only they
   carry "acceptors", which the key requires — so the overhead rows fall
   out of the match. Two entries per row: msgs and decision forces per
   commit, both costs (lower is better, the default direction). *)
let paxos_section text =
  rows_section text "{\"protocol\":\"" (fun line ->
      match
        (str_field line "protocol", num_field line "acceptors", num_field line "msgs_per_commit")
      with
      | Some p, Some a, Some v -> Some (Printf.sprintf "%s-a%.0f-msgs" p a, v)
      | _ -> None)
  @ rows_section text "{\"protocol\":\"" (fun line ->
        match
          ( str_field line "protocol",
            num_field line "acceptors",
            num_field line "decision_forces_per_commit" )
        with
        | Some p, Some a, Some v -> Some (Printf.sprintf "%s-a%.0f-forces" p a, v)
        | _ -> None)

let host_cores text =
  List.assoc_opt "host_cores" (section text "\"parallel\": {")

let () =
  let args = Array.to_list Sys.argv in
  let max_ratio = ref 2.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: r :: rest ->
      (match float_of_string_opt r with Some v -> max_ratio := v | None -> ());
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl args);
  match List.rev !files with
  | [ baseline; fresh ] ->
    let base_text = read_file baseline and fresh_text = read_file fresh in
    let failures = ref 0 and warnings = ref 0 in
    (* [higher_is_better] flips the ratio for the throughput sections: the
       printed ratio is always "times worse", so > max_ratio fails either
       way. *)
    let compare_section ?(higher_is_better = false) label unit base fresh =
      List.iter
        (fun (name, fv) ->
          match List.assoc_opt name base with
          | None -> ()
          | Some bv when bv <= 0.0 || fv <= 0.0 -> ()
          | Some bv ->
            let ratio = if higher_is_better then bv /. fv else fv /. bv in
            let verdict =
              if ratio > !max_ratio then begin
                incr failures;
                "REGRESSION"
              end
              else if ratio > 1.25 then begin
                incr warnings;
                "warn"
              end
              else "ok"
            in
            Printf.printf "%-10s %-30s %12.3f -> %12.3f %s  %5.2fx  %s\n" label name bv fv
              unit ratio verdict)
        fresh
    in
    compare_section "kernel" "ms/run" (section base_text "\"kernels\": {")
      (section fresh_text "\"kernels\": {");
    compare_section "alloc" "w/txn" (alloc_section base_text) (alloc_section fresh_text);
    compare_section ~higher_is_better:true "scaling" "ev/s" (scaling_section base_text)
      (scaling_section fresh_text);
    (match (host_cores base_text, host_cores fresh_text) with
    | Some b, Some f when b = f ->
      compare_section ~higher_is_better:true "parallel" "ev/s" (parallel_section base_text)
        (parallel_section fresh_text)
    | Some b, Some f ->
      Printf.printf "parallel   (skipped: host cores %.0f vs %.0f — different speedup regime)\n"
        b f
    | _ -> ());
    compare_section ~higher_is_better:true "sharding" "t/ktu" (sharding_section base_text)
      (sharding_section fresh_text);
    compare_section "paxos" "per-ct" (paxos_section base_text) (paxos_section fresh_text);
    if !failures > 0 then begin
      Printf.printf "\n%d entr(ies) regressed by more than %.1fx\n" !failures !max_ratio;
      exit 1
    end
    else
      Printf.printf "\nno hard regressions (threshold %.1fx, %d warning(s))\n" !max_ratio
        !warnings
  | _ ->
    prerr_endline "usage: diff.exe BASELINE.json FRESH.json [--max-ratio R]";
    exit 2
