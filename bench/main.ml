(* Benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks — one [Test.make] per reproduced experiment
      (F2-F8, V1-V7), each running a reduced-size kernel of that experiment's
      simulation, so regressions in any protocol path show up as wall-clock
      changes.
   2. The full experiment tables (Icdb_workload.Experiments), regenerating
      every figure and validation claim of the paper. EXPERIMENTS.md quotes
      this output. *)

open Bechamel
open Toolkit
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Experiments = Icdb_workload.Experiments
module Overhead = Icdb_workload.Overhead
module Sharding = Icdb_workload.Sharding

let small ?(n_txns = 30) ?(p_intended_abort = 0.0) ?(p_spontaneous = 0.0)
    ?(crash_rate = 0.0) ?(use_increments = true) protocol () =
  ignore
    (Runner.run
       {
         Runner.default with
         protocol;
         n_txns;
         concurrency = 6;
         accounts_per_site = 8;
         p_intended_abort;
         p_spontaneous;
         crash_rate;
         use_increments;
       })

(* Commit-overhead batching kernel: the fixed-spec lab at a reduced size,
   with one window setting driving message piggybacking, central decision-log
   group commit and local group commit. *)
let overhead_kernel window () =
  ignore
    (Overhead.run
       {
         Overhead.default with
         n_txns = 40;
         concurrency = 8;
         msg_batch_window = window;
         central_gc_window = window;
         group_commit_window = window;
       })

(* One kernel per experiment id; figure kernels regenerate the figure
   itself, claim kernels run a reduced instance of the swept workload. *)
let kernels =
  [
    ("f2", fun () -> ignore (Experiments.run "f2"));
    ("f3", fun () -> ignore (Experiments.run "f3"));
    ("f4", fun () -> ignore (Experiments.run "f4"));
    ("f5", fun () -> ignore (Experiments.run "f5"));
    ("f6", fun () -> ignore (Experiments.run "f6"));
    ("f7", fun () -> ignore (Experiments.run "f7"));
    ("f8", fun () -> ignore (Experiments.run "f8"));
    ("v1", small ~use_increments:false Protocol.Two_phase);
    ("v2", small ~p_spontaneous:0.2 Protocol.After);
    ("v3", small ~p_intended_abort:0.2 Protocol.Before);
    ("v4", small Protocol.Before_mlt);
    ("v5", small Protocol.Before);
    ("v6", small ~crash_rate:5.0 Protocol.After);
    ("v7", fun () -> ignore (Experiments.run "v7"));
    ("a1", small ~use_increments:false Protocol.Presumed_abort);
    ("a2", small Protocol.Hybrid);
    ("a3", small ~p_spontaneous:0.2 Protocol.Before_mlt);
    ("a4", fun () -> ignore (Experiments.run "a4"));
    ("a5", small Protocol.Before);
    ("a6", small Protocol.Before);
    ("o1-unbatched", overhead_kernel None);
    ("o1-batched", overhead_kernel (Some 3.0));
  ]

(* Reduced kernel set for the CI smoke run: one representative per protocol
   family plus the batching pair, so a perf regression in any hot path still
   shows up without the full sweep's runtime. *)
let smoke_kernels =
  let keep = [ "f2"; "v1"; "v4"; "a1"; "o1-unbatched"; "o1-batched" ] in
  List.filter (fun (name, _) -> List.mem name keep) kernels

(* --- allocation trajectory ----------------------------------------------

   Wall clock alone hides a class of regressions the interning work targets:
   code that is no slower on a warm cache but allocates more per
   transaction. For the kernels whose transaction count is fixed by
   construction we report minor words per transaction and major collections
   per run, from [Gc.quick_stat] deltas around a measured batch (one warmup
   run first so interner/registry growth is not billed to the steady
   state). *)

type alloc_row = {
  a_name : string;
  a_minor_words_per_txn : float;
  a_major_per_run : float;
}

let alloc_kernels =
  let txns name = if String.length name >= 2 && String.sub name 0 2 = "o1" then 40 else 30 in
  List.filter_map
    (fun (name, f) ->
      match name.[0] with
      | 'v' | 'a' | 'o' -> Some (name, f, txns name)
      | _ -> None)
    kernels

let alloc_snapshot kernels =
  List.map
    (fun (name, f, n_txns) ->
      f ();
      (* warmup *)
      let runs = 5 in
      Gc.full_major ();
      let before = Gc.quick_stat () in
      (* [quick_stat]'s minor_words only advances at minor collections (256k
         word quanta); [Gc.minor_words] reads the allocation pointer and is
         word-exact. *)
      let minor_before = Gc.minor_words () in
      for _ = 1 to runs do
        f ()
      done;
      let after = Gc.quick_stat () in
      let minor = Gc.minor_words () -. minor_before in
      let majors = after.Gc.major_collections - before.Gc.major_collections in
      {
        a_name = "icdb/" ^ name;
        a_minor_words_per_txn = minor /. float_of_int (runs * n_txns);
        a_major_per_run = float_of_int majors /. float_of_int runs;
      })
    kernels

let print_alloc rows =
  print_endline "Allocation per kernel (Gc.quick_stat deltas, warm, 5 runs)";
  print_endline "----------------------------------------------------------";
  List.iter
    (fun r ->
      Printf.printf "%-17s %12.0f minor words/txn %8.1f major collections/run\n" r.a_name
        r.a_minor_words_per_txn r.a_major_per_run)
    rows;
  print_newline ()

let benchmark kernels =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let tests =
    Test.make_grouped ~name:"icdb"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels)
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let rows_of results =
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> Float.nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_benchmark rows =
  print_endline "Bechamel micro-benchmarks (one kernel per experiment, wall clock per run)";
  print_endline "--------------------------------------------------------------------------";
  List.iter
    (fun (name, ns) -> Printf.printf "%-12s %10.3f ms/run\n" name (ns /. 1e6))
    rows;
  print_newline ()

(* Per-protocol phase-latency snapshot for BENCH.json: one fixed-seed
   workload per protocol on a shared metrics registry. *)
let phase_snapshot () =
  let registry = Icdb_obs.Registry.create () in
  List.iter
    (fun protocol ->
      ignore
        (Runner.run ~registry
           {
             Runner.default with
             protocol;
             n_txns = 60;
             concurrency = 6;
             accounts_per_site = 8;
             p_intended_abort = 0.1;
           }))
    Protocol.all;
  Icdb_obs.Registry.histograms_named registry "icdb_phase_time"
  |> List.filter_map (fun (key, h) ->
         match
           ( Icdb_obs.Registry.label key "protocol",
             Icdb_obs.Registry.label key "phase" )
         with
         | Some protocol, Some phase ->
           Some (protocol, phase, Icdb_obs.Registry.hist_snapshot h)
         | _ -> None)

(* Per-protocol commit-overhead trajectory for BENCH.json: the fixed-spec lab
   unbatched and at window 3, so messages and stable writes per commit are
   tracked per PR next to the wall-clock kernels. *)
let overhead_snapshot () =
  List.map
    (fun protocol ->
      let run window =
        Overhead.run
          {
            Overhead.default with
            protocol;
            msg_batch_window = window;
            central_gc_window = window;
            group_commit_window = window;
          }
      in
      (protocol, run None, run (Some 3.0)))
    Protocol.all

(* --- Paxos Commit decision-log cost --------------------------------------

   Per-protocol fixed-spec lab with a single-coordinator decision log
   ([acceptors = 1]) and a 2F+1 acceptor group ([acceptors = 3]). Every
   column is virtual-time and fixed-seed, so like "sharding" this section
   is byte-stable: any drift against BASELINE.json is a behavior change,
   not noise. [forces] counts decision-record stable writes — central log
   plus acceptor logs — per commit, the write amplification replication
   pays for non-blocking recovery. *)

type paxos_row = {
  x_protocol : string;
  x_acceptors : int;
  x_msgs_per_commit : float;
  x_decision_forces_per_commit : float;
  x_committed : int;
}

let paxos_snapshot () =
  List.concat_map
    (fun protocol ->
      List.map
        (fun acceptors ->
          let r = Overhead.run { Overhead.default with protocol; acceptors } in
          let forces = r.Overhead.central_log_forces + r.Overhead.paxos_acceptor_forces in
          {
            x_protocol = Protocol.name protocol;
            x_acceptors = acceptors;
            x_msgs_per_commit = r.messages_per_committed;
            x_decision_forces_per_commit =
              (if r.committed > 0 then float_of_int forces /. float_of_int r.committed
               else 0.0);
            x_committed = r.committed;
          })
        [ 1; 3 ])
    Protocol.all

let print_paxos rows =
  print_endline "Paxos Commit decision-log cost (fixed specs, virtual time)";
  print_endline "----------------------------------------------------------";
  List.iter
    (fun r ->
      Printf.printf "%-10s acceptors=%d %8.2f msg/commit %6.2f decision forces/commit %5d committed\n"
        r.x_protocol r.x_acceptors r.x_msgs_per_commit r.x_decision_forces_per_commit
        r.x_committed)
    rows;
  print_newline ()

(* --- pure scheduler kernel ----------------------------------------------

   The classic hold model on the event queue alone, no federation: prefill
   [pending] events, then run a steady state where every executed event
   schedules one successor (exponential inter-event gap), so the queue
   holds ~[pending] events throughout. Run against both the calendar
   engine and the pre-calendar binary heap (Engine_ref) so BENCH.json
   records the baseline the calendar is judged against. [drain] pops the
   queue to empty afterwards — the 10^7-pending entry uses it as a
   completes-without-pathologies check, and its wall time is included in
   the rate. *)

module Sim = Icdb_sim.Engine
module Sim_ref = Icdb_sim.Engine_ref
module Rng = Icdb_util.Rng

type scaling_row = {
  s_queue : string;
  s_pending : int;
  s_events : int;
  s_events_per_sec : float;
}

let hold_model ~pending ~ops ~drain schedule step =
  let rng = Rng.create 42L in
  (* untimed warmup steps after the prefill, plus a full collection before
     the clock starts: the rows claim steady state, so the measured window
     must not pay the prefill's garbage or first-touch faults *)
  let warmup = min ops (max 10_000 (ops / 5)) in
  let remaining = ref (ops + warmup) in
  let rec thunk () =
    if !remaining > 0 then begin
      decr remaining;
      schedule (Rng.exponential rng ~mean:100.0) thunk
    end
  in
  for _ = 1 to pending do
    schedule (Rng.exponential rng ~mean:100.0) thunk
  done;
  let w = ref warmup in
  while !w > 0 && step () do
    decr w
  done;
  Gc.full_major ();
  let t0 = Sys.time () in
  let executed = ref 0 in
  while !remaining > 0 && step () do
    incr executed
  done;
  if drain then
    while step () do
      incr executed
    done;
  let wall = Sys.time () -. t0 in
  (!executed, wall)

let scheduler_row queue ~pending ~ops ~drain =
  let executed, wall =
    match queue with
    | `Calendar ->
      let e = Sim.create () in
      hold_model ~pending ~ops ~drain
        (fun delay f -> ignore (Sim.schedule e ~delay f))
        (fun () -> Sim.step e)
    | `Heap_ref ->
      let e = Sim_ref.create () in
      hold_model ~pending ~ops ~drain
        (fun delay f -> ignore (Sim_ref.schedule e ~delay f))
        (fun () -> Sim_ref.step e)
  in
  {
    s_queue = (match queue with `Calendar -> "calendar" | `Heap_ref -> "heap-ref");
    s_pending = pending;
    s_events = executed;
    s_events_per_sec = (if wall > 0.0 then float_of_int executed /. wall else 0.0);
  }

let scheduler_snapshot ~smoke =
  if smoke then
    [
      scheduler_row `Heap_ref ~pending:10_000 ~ops:100_000 ~drain:false;
      scheduler_row `Calendar ~pending:10_000 ~ops:100_000 ~drain:false;
      scheduler_row `Calendar ~pending:100_000 ~ops:100_000 ~drain:false;
    ]
  else
    [
      scheduler_row `Heap_ref ~pending:10_000 ~ops:1_000_000 ~drain:false;
      scheduler_row `Heap_ref ~pending:1_000_000 ~ops:1_000_000 ~drain:false;
      scheduler_row `Calendar ~pending:10_000 ~ops:1_000_000 ~drain:false;
      scheduler_row `Calendar ~pending:1_000_000 ~ops:1_000_000 ~drain:false;
      (* the acceptance run: 10^7 pending, full drain included in the rate *)
      scheduler_row `Calendar ~pending:10_000_000 ~ops:1_000_000 ~drain:true;
    ]

(* --- partitioned-simulation scaling --------------------------------------

   The conservative parallel scheduler ([--sim-domains]) on one fixed
   federation workload at 1, 2 and 4 partitions: same seed, byte-identical
   outcomes by construction, so the only thing that varies is the wall
   clock of the transaction phase (measured with [Unix.gettimeofday] —
   domains run concurrently, so CPU time would overstate multi-domain
   rows). Speedup is relative to the sequential row. On a single-core host
   the partitions time-slice one core and the speedup column documents the
   coupling overhead instead of a win; [host_cores] in BENCH.json says
   which regime a recording came from. *)

type parallel_row = {
  p_domains : int;
  p_accounts : int;
  p_events : int;
  p_wall : float; (* transaction-phase wall seconds *)
  p_events_per_sec : float;
  p_speedup : float; (* sequential wall / this wall *)
}

let parallel_config ~smoke sim_domains =
  {
    Runner.default with
    protocol = Protocol.Before;
    n_sites = 4;
    accounts_per_site = (if smoke then 2_500 else 25_000);
    n_txns = (if smoke then 150 else 600);
    concurrency = 16;
    branches_per_txn = 2;
    ops_per_branch = 2;
    zipf_theta = 0.8;
    use_increments = true;
    sim_domains;
  }

let parallel_snapshot ~smoke =
  let measure sim_domains =
    let registry = Icdb_obs.Registry.create () in
    let cfg = parallel_config ~smoke sim_domains in
    let loaded = ref 0.0 in
    let on_setup _engine _fed = loaded := Unix.gettimeofday () in
    ignore (Runner.run ~registry ~on_setup cfg);
    let wall = Unix.gettimeofday () -. !loaded in
    let events =
      Icdb_obs.Registry.count
        (Icdb_obs.Registry.counter registry "icdb_sim_events_total")
    in
    (cfg.Runner.n_sites * cfg.Runner.accounts_per_site, events, wall)
  in
  let rows = List.map (fun d -> (d, measure d)) [ 1; 2; 4 ] in
  let base_wall = match rows with (_, (_, _, w)) :: _ -> w | [] -> 0.0 in
  List.map
    (fun (d, (accounts, events, wall)) ->
      {
        p_domains = d;
        p_accounts = accounts;
        p_events = events;
        p_wall = wall;
        p_events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
        p_speedup = (if wall > 0.0 then base_wall /. wall else 0.0);
      })
    rows

let print_parallel rows =
  Printf.printf
    "Partitioned simulation (--sim-domains, identical outcomes; %d host cores)\n"
    (Domain.recommended_domain_count ());
  print_endline "--------------------------------------------------------------------------";
  List.iter
    (fun r ->
      Printf.printf "%d domains %8d accounts %9d events %8.3f s %10.0f events/s %6.2fx\n"
        r.p_domains r.p_accounts r.p_events r.p_wall r.p_events_per_sec r.p_speedup)
    rows;
  print_newline ()

(* --- tracing overhead ----------------------------------------------------

   What does observability cost when it is on? One fixed 12k-transaction
   kernel (2k in smoke) run three ways: tracing disabled, the chaos
   campaign's flight-recorder ring (512 events, constant memory), and a
   sampled streaming sink (5% head sampling into a byte-counting writer).
   The flight-recorder column is the one with a budget: the campaign flies
   it on every run, so it must stay within a few percent of disabled. *)

type trace_row = {
  t_mode : string;
  t_events : int; (* events that reached the tracer (stored + overwritten) *)
  t_wall : float; (* best host seconds across interleaved rounds *)
  t_overhead_pct : float; (* vs the disabled run *)
}

let trace_overhead_config n_txns =
  {
    Runner.default with
    protocol = Protocol.Before;
    n_txns;
    concurrency = 16;
    accounts_per_site = 64;
    zipf_theta = 0.6;
  }

let trace_overhead_snapshot ~smoke =
  let n_txns = if smoke then 2_000 else 12_000 in
  let cfg = trace_overhead_config n_txns in
  let module Tracer = Icdb_obs.Tracer in
  (* The overhead under measurement is a few percent, smaller than the
     drift of this host's clock frequency over a multi-second benchmark.
     Measuring each mode in its own block would fold that drift into the
     comparison, so instead the three modes run interleaved — one round =
     one run of each — and each mode keeps its minimum across rounds. The
     kernels are deterministic, so the minimum is the least-noise estimate
     of the real cost. *)
  let rounds = 7 in
  let make_off () = None in
  let make_flight () =
    Some (Tracer.create ~enabled:true ~limit:512 ~clock:(fun () -> 0.0) ())
  in
  let last_sink = ref None in
  let make_stream () =
    let bytes = ref 0 in
    let sink = Icdb_obs.Sink.create ~write:(fun s -> bytes := !bytes + String.length s) in
    last_sink := Some sink;
    let tr = Tracer.create ~enabled:true ~clock:(fun () -> 0.0) () in
    Tracer.set_store tr false;
    Tracer.set_sink tr (Some (Icdb_obs.Sink.on_event sink));
    Tracer.set_sampler tr
      (Some (Icdb_obs.Sampling.kind_filter ~seed:cfg.Runner.seed ~rate:0.05));
    Some tr
  in
  let once make =
    let tracer = make () in
    let t0 = Sys.time () in
    ignore (Runner.run ?tracer cfg);
    (Sys.time () -. t0, tracer)
  in
  ignore (once make_off);
  ignore (once make_flight);
  ignore (once make_stream);
  let best = [| infinity; infinity; infinity |] in
  let flight_tr = ref None in
  for _ = 1 to rounds do
    let w, _ = once make_off in
    if w < best.(0) then best.(0) <- w;
    let w, tr = once make_flight in
    if w < best.(1) then best.(1) <- w;
    flight_tr := tr;
    let w, _ = once make_stream in
    if w < best.(2) then best.(2) <- w
  done;
  let off_wall = best.(0) and flight_wall = best.(1) and stream_wall = best.(2) in
  (* Event counts are deterministic run to run; read the last run's state. *)
  let stream_events =
    match !last_sink with Some s -> Icdb_obs.Sink.event_count s | None -> 0
  in
  let pct w = (if off_wall > 0.0 then (w -. off_wall) /. off_wall *. 100.0 else 0.0) in
  let flight_events =
    match !flight_tr with
    | Some tr -> Tracer.length tr + Tracer.dropped tr
    | None -> 0
  in
  [
    { t_mode = "off"; t_events = 0; t_wall = off_wall; t_overhead_pct = 0.0 };
    {
      t_mode = "flight-512";
      t_events = flight_events;
      t_wall = flight_wall;
      t_overhead_pct = pct flight_wall;
    };
    {
      t_mode = "stream-0.05";
      t_events = stream_events;
      t_wall = stream_wall;
      t_overhead_pct = pct stream_wall;
    };
  ]

let print_trace_overhead n_txns rows =
  Printf.printf "Tracing overhead (%d-txn kernel, best of 7 interleaved rounds)\n"
    n_txns;
  print_endline "------------------------------------------------------------";
  List.iter
    (fun r ->
      Printf.printf "%-12s %9d events %9.3f s %+7.1f%%\n" r.t_mode r.t_events r.t_wall
        r.t_overhead_pct)
    rows;
  print_newline ()

(* --- sharded-federation throughput ---------------------------------------

   The S2 grid (committed txns per 1000 virtual time units over shards x
   cross-shard fraction). Every column is a deterministic virtual-time
   measurement, so unlike the wall-clock sections this one is byte-stable:
   any drift against BASELINE.json is a behavior change, not noise. *)

let sharding_snapshot ~smoke = Sharding.run_cells ~smoke ()

let print_sharding rows =
  print_endline "Sharded federation (committed txns per 1000 virtual time units)";
  print_endline "----------------------------------------------------------------";
  List.iter
    (fun (r : Sharding.row) ->
      Printf.printf
        "%d shards cross %3.0f%% %5d committed %10.2f txn/1000tu %6.1f msg/commit %5d top forces\n"
        r.sh_shards (r.sh_cross *. 100.0) r.sh_committed r.sh_throughput
        r.sh_msgs_per_commit r.sh_top_forces)
    rows;
  print_newline ()

let print_scaling rows =
  print_endline "Scheduler hold-model (events/sec, steady state at N pending)";
  print_endline "------------------------------------------------------------";
  List.iter
    (fun r ->
      Printf.printf "%-10s %10d pending %10d events %12.0f events/s\n" r.s_queue
        r.s_pending r.s_events r.s_events_per_sec)
    rows;
  print_newline ()

(* Machine-readable companion to the human table: kernel name -> ms/run plus
   the virtual-time phase-latency breakdown, so future changes have both a
   perf and a behavior trajectory to compare against. *)
let write_bench_json path rows phases overhead alloc trace scaling parallel sharding paxos =
  let esc = Icdb_obs.Export.json_escape in
  let oc = open_out path in
  output_string oc "{\n  \"kernels\": {\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      let value =
        if Float.is_nan ns then "null" else Printf.sprintf "%.6f" (ns /. 1e6)
      in
      Printf.fprintf oc "    \"%s\": %s%s\n" (esc name) value (if i < last then "," else ""))
    rows;
  output_string oc "  },\n  \"phase_time\": [\n";
  let last = List.length phases - 1 in
  List.iteri
    (fun i (protocol, phase, (h : Icdb_obs.Registry.hsnap)) ->
      Printf.fprintf oc
        "    {\"protocol\":\"%s\",\"phase\":\"%s\",\"count\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"max\":%.3f}%s\n"
        (esc protocol) (esc phase) h.h_count h.h_mean h.h_p50 h.h_p95 h.h_max
        (if i < last then "," else ""))
    phases;
  output_string oc "  ],\n  \"overhead\": [\n";
  let last = List.length overhead - 1 in
  List.iteri
    (fun i (protocol, (base : Overhead.result), (batched : Overhead.result)) ->
      Printf.fprintf oc
        "    {\"protocol\":\"%s\",\"msgs_per_commit\":%.3f,\"forces_per_commit\":%.3f,\"msgs_per_commit_batched\":%.3f,\"forces_per_commit_batched\":%.3f,\"batch_occupancy\":%.3f}%s\n"
        (esc (Protocol.name protocol))
        base.messages_per_committed base.log_forces_per_commit
        batched.messages_per_committed batched.log_forces_per_commit
        batched.batch_occupancy_mean
        (if i < last then "," else ""))
    overhead;
  output_string oc "  ],\n  \"alloc\": [\n";
  let last = List.length alloc - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"kernel\":\"%s\",\"minor_words_per_txn\":%.1f,\"major_collections_per_run\":%.2f}%s\n"
        (esc r.a_name) r.a_minor_words_per_txn r.a_major_per_run
        (if i < last then "," else ""))
    alloc;
  output_string oc "  ],\n  \"trace_overhead\": [\n";
  let last = List.length trace - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"mode\":\"%s\",\"events\":%d,\"wall_s\":%.4f,\"overhead_pct\":%.2f}%s\n"
        (esc r.t_mode) r.t_events r.t_wall r.t_overhead_pct
        (if i < last then "," else ""))
    trace;
  output_string oc "  ],\n  \"scaling\": [\n";
  let last = List.length scaling - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"queue\":\"%s\",\"pending\":%d,\"events\":%d,\"events_per_sec\":%.0f}%s\n"
        (esc r.s_queue) r.s_pending r.s_events r.s_events_per_sec
        (if i < last then "," else ""))
    scaling;
  (* host_cores disambiguates the rows: on a single-core host the speedup
     column records coupling overhead, not a parallel win. *)
  Printf.fprintf oc "  ],\n  \"parallel\": {\n    \"host_cores\": %d,\n    \"rows\": [\n"
    (Domain.recommended_domain_count ());
  let last = List.length parallel - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "      {\"domains\":%d,\"accounts\":%d,\"events\":%d,\"wall_s\":%.4f,\"events_per_sec\":%.0f,\"speedup\":%.3f}%s\n"
        r.p_domains r.p_accounts r.p_events r.p_wall r.p_events_per_sec r.p_speedup
        (if i < last then "," else ""))
    parallel;
  output_string oc "    ]\n  },\n  \"sharding\": [\n";
  let last = List.length sharding - 1 in
  List.iteri
    (fun i (r : Sharding.row) ->
      Printf.fprintf oc
        "    {\"shards\":%d,\"cross_pct\":%.0f,\"committed\":%d,\"throughput\":%.2f,\"msgs_per_commit\":%.2f,\"top_forces\":%d,\"shard_forces\":%d}%s\n"
        r.sh_shards (r.sh_cross *. 100.0) r.sh_committed r.sh_throughput
        r.sh_msgs_per_commit r.sh_top_forces r.sh_shard_forces
        (if i < last then "," else ""))
    sharding;
  output_string oc "  ],\n  \"paxos\": [\n";
  let last = List.length paxos - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"protocol\":\"%s\",\"acceptors\":%d,\"msgs_per_commit\":%.3f,\"decision_forces_per_commit\":%.3f,\"committed\":%d}%s\n"
        (esc r.x_protocol) r.x_acceptors r.x_msgs_per_commit
        r.x_decision_forces_per_commit r.x_committed
        (if i < last then "," else ""))
    paxos;
  output_string oc "  ]\n}\n";
  close_out oc

(* Sweep parallelism: `-j N` on the command line, ICDB_JOBS in the
   environment as the fallback. *)
let jobs () =
  let parse s = match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None in
  let rec from_argv i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "-j" && i + 1 < Array.length Sys.argv then
      parse Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with
  | Some n -> n
  | None -> (
    match Option.bind (Sys.getenv_opt "ICDB_JOBS") parse with Some n -> n | None -> 1)

let smoke () = Array.exists (fun a -> a = "--smoke") Sys.argv

(* `--smoke` (CI): reduced kernel set, BENCH.json, no experiment sweep. *)
let () =
  let smoke = smoke () in
  let active = if smoke then smoke_kernels else kernels in
  let rows = rows_of (benchmark active) in
  print_benchmark rows;
  let alloc =
    alloc_snapshot
      (List.filter (fun (n, _, _) -> List.mem_assoc n active) alloc_kernels)
  in
  print_alloc alloc;
  let trace = trace_overhead_snapshot ~smoke in
  print_trace_overhead (if smoke then 2_000 else 12_000) trace;
  let scaling = scheduler_snapshot ~smoke in
  print_scaling scaling;
  let parallel = parallel_snapshot ~smoke in
  print_parallel parallel;
  let sharding = sharding_snapshot ~smoke in
  print_sharding sharding;
  let paxos = paxos_snapshot () in
  print_paxos paxos;
  write_bench_json "BENCH.json" rows (phase_snapshot ()) (overhead_snapshot ()) alloc
    trace scaling parallel sharding paxos;
  if not smoke then print_string (Experiments.run_all ~jobs:(jobs ()) ())
