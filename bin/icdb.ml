(* icdb — command-line interface to the integrated-commitment testbed.

   Subcommands:
   - [exp <id>|all]   regenerate one (or every) paper experiment
   - [list]           list experiment ids
   - [run ...]        run a parameterized workload and print the report
   - [trace <proto>]  run one transfer under a protocol and dump the trace *)

open Cmdliner
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Experiments = Icdb_workload.Experiments

let protocol_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Protocol.of_string s) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Protocol.name p))

let list_cmd =
  let doc = "List the reproduced experiments (figures F2-F8, claims V1-V7)." in
  let run () =
    List.iter (fun (id, descr) -> Printf.printf "%-4s %s\n" id descr) Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let exp_cmd =
  let doc = "Run one experiment by id (or $(b,all))." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With $(b,all), run the experiments on $(docv) parallel domains. Every \
             experiment is an independent deterministically seeded simulation, so the \
             output is byte-identical for any $(docv).")
  in
  let run id jobs =
    if id = "all" then print_string (Experiments.run_all ~jobs ())
    else
      match Experiments.run id with
      | report -> print_string report
      | exception Not_found ->
        Printf.eprintf "unknown experiment %S; try `icdb list`\n" id;
        exit 1
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run $ id $ jobs)

let report_to_string (r : Runner.report) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "elapsed (virtual time)     %.1f" r.elapsed;
  line "started / committed / aborted   %d / %d / %d" r.started r.committed r.aborted;
  line "throughput (commits/1000tu)     %.2f" r.throughput;
  line "response time mean / p95        %.2f / %.2f" r.mean_response r.p95_response;
  line "local lock hold mean / p95      %.2f / %.2f" r.mean_hold r.p95_hold;
  line "messages total / per commit     %d / %.1f" r.messages r.messages_per_committed;
  line "repetitions / compensations     %d / %d" r.repetitions r.compensations;
  line "redo-log / undo-log / L1-log    %d / %d / %d writes" r.redo_log_writes
    r.undo_log_writes r.mlt_log_writes;
  line "additional CC / L1 lock acq.    %d / %d" r.global_cc_acquisitions r.l1_acquisitions;
  line "local lock waits/timeouts/dl    %d / %d / %d" r.local_lock_waits
    r.local_lock_timeouts r.local_lock_deadlocks;
  line "log forces / per commit        %d / %.2f" r.log_forces r.log_forces_per_commit;
  line "message copies dropped          %d" r.messages_dropped;
  line "money conserved                 %b (%d -> %d)" r.money_conserved r.money_before
    r.money_after;
  line "globally serializable           %b" r.serializable;
  List.iter (fun v -> line "  violation: %s" v) r.violations;
  Buffer.contents b

let run_cmd =
  let doc = "Run a parameterized banking workload and print the full report." in
  let protocol =
    Arg.(value & opt protocol_conv Protocol.Before & info [ "p"; "protocol" ] ~docv:"PROTO")
  in
  let txns = Arg.(value & opt int 200 & info [ "n"; "txns" ]) in
  let sites = Arg.(value & opt int 4 & info [ "sites" ]) in
  let concurrency = Arg.(value & opt int 8 & info [ "c"; "concurrency" ]) in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ]) in
  let p_intended = Arg.(value & opt float 0.0 & info [ "intended-aborts" ]) in
  let p_spont = Arg.(value & opt float 0.0 & info [ "kills" ]) in
  let crash_rate = Arg.(value & opt float 0.0 & info [ "crash-rate" ]) in
  let theta = Arg.(value & opt float 0.6 & info [ "zipf" ]) in
  let loss = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"per-message-copy drop probability") in
  let gc_window =
    Arg.(value & opt (some float) None & info [ "group-commit" ] ~doc:"group-commit window")
  in
  let retries = Arg.(value & opt int 0 & info [ "action-retries" ] ~doc:"MLT L0 action retries") in
  let run protocol n_txns n_sites concurrency seed p_intended_abort p_spontaneous crash_rate
      zipf_theta message_loss group_commit_window mlt_action_retries =
    let r =
      Runner.run
        {
          Runner.default with
          protocol;
          n_txns;
          n_sites;
          concurrency;
          seed;
          p_intended_abort;
          p_spontaneous;
          crash_rate;
          zipf_theta;
          message_loss;
          group_commit_window;
          mlt_action_retries;
        }
    in
    Printf.printf "protocol: %s\n%s" (Protocol.name protocol) (report_to_string r)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ protocol $ txns $ sites $ concurrency $ seed $ p_intended $ p_spont
      $ crash_rate $ theta $ loss $ gc_window $ retries)

let trace_cmd =
  let doc = "Trace a single two-site transfer under the given protocol." in
  let protocol = Arg.(value & pos 0 protocol_conv Protocol.Before & info [] ~docv:"PROTO") in
  let abortive = Arg.(value & flag & info [ "abort" ] ~doc:"make one branch vote abort") in
  let run protocol abortive =
    let id =
      match (protocol, abortive) with
      | (Protocol.Two_phase | Protocol.Presumed_abort | Protocol.Hybrid), _ -> "f2"
      | Protocol.After, _ -> "f4"
      | (Protocol.Before | Protocol.Before_mlt), _ -> "f6"
    in
    print_string (Experiments.run id)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ protocol $ abortive)

let check_cmd =
  let doc =
    "Run the invariant battery: every protocol under kills, intended aborts and site \
     crashes; verifies atomicity (money conservation) and global serializability. Exits \
     non-zero on any violation."
  in
  let txns = Arg.(value & opt int 300 & info [ "n"; "txns" ]) in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ]) in
  let run n_txns seed =
    let table =
      Icdb_util.Table.create ~title:"invariant battery (chaos workload)"
        [ "protocol"; "committed"; "aborted"; "reps"; "comps"; "money"; "serializable" ]
    in
    let failed = ref false in
    List.iter
      (fun protocol ->
        let r =
          Runner.run
            {
              Runner.default with
              protocol;
              n_txns;
              seed;
              concurrency = 10;
              p_spontaneous = 0.15;
              p_intended_abort = 0.1;
              crash_rate = 4.0;
              crash_duration = 25.0;
              zipf_theta = 0.9;
            }
        in
        if not (r.money_conserved && r.serializable) then failed := true;
        Icdb_util.Table.add_row table
          [
            Protocol.name protocol;
            string_of_int r.committed;
            string_of_int r.aborted;
            string_of_int r.repetitions;
            string_of_int r.compensations;
            (if r.money_conserved then "conserved" else "VIOLATED");
            (if r.serializable then "yes" else "NO");
          ];
        List.iter (fun v -> Printf.printf "  violation: %s\n" v) r.violations)
      Protocol.all;
    Icdb_util.Table.print table;
    if !failed then begin
      print_endline "INVARIANT VIOLATIONS FOUND";
      exit 1
    end
    else print_endline "all invariants hold."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ txns $ seed)

let () =
  let doc = "atomic commitment for integrated database systems (Muth & Rakow, ICDE 1991)" in
  let info = Cmd.info "icdb" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; exp_cmd; run_cmd; trace_cmd; check_cmd ]))
