(* icdb — command-line interface to the integrated-commitment testbed.

   Subcommands:
   - [exp <id>|all]   regenerate one (or every) paper experiment
   - [list]           list experiment ids
   - [run ...]        run a parameterized workload and print the report
   - [trace <proto>]  run one transfer under a protocol and dump the trace *)

open Cmdliner
module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Experiments = Icdb_workload.Experiments
module Plan = Icdb_fault.Plan
module Campaign = Icdb_fault.Campaign
module Registry = Icdb_obs.Registry
module Tracer = Icdb_obs.Tracer
module Export = Icdb_obs.Export
module Sink = Icdb_obs.Sink
module Sampling = Icdb_obs.Sampling
module Scaling = Icdb_workload.Scaling
module Sharding = Icdb_workload.Sharding

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let protocol_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Protocol.of_string s) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Protocol.name p))

(* Experiments living outside Icdb_workload.Experiments (the fault campaign
   needs Icdb_fault, which depends on the workload library). *)
let extra_experiments =
  [
    ("r1", "fault-injection campaign: violations per protocol and fault class");
    ("s1", "scaling lab: committed-txns/sec and events/sec vs accounts x sites");
    ("s2", "sharding lab: committed-txns/sec vs shards x cross-shard fraction");
    ("a1", "availability lab: Paxos Commit cost + blocking under a leader crash");
  ]

let list_cmd =
  let doc = "List the reproduced experiments (figures F2-F8, claims V1-V7)." in
  let run () =
    List.iter
      (fun (id, descr) -> Printf.printf "%-4s %s\n" id descr)
      (Experiments.all @ extra_experiments)
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let exp_cmd =
  let doc = "Run one experiment by id (or $(b,all))." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With $(b,all), run the experiments on $(docv) parallel domains. Every \
             experiment is an independent deterministically seeded simulation, so the \
             output is byte-identical for any $(docv).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "With $(b,s1) or $(b,s2), run the reduced CI-sized ladder instead of the \
             full million-account one; with $(b,a1), the reduced availability lab. \
             Ignored by other experiments.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"BASE"
          ~doc:
            "With $(b,s1), stream a sampled Chrome trace per scaling cell to \
             $(docv)-<protocol>-<sites>x<accounts>.json (incremental write, bounded \
             memory — works at the million-account cells). Ignored by other \
             experiments.")
  in
  let trace_sample =
    Arg.(
      value & opt float 0.01
      & info [ "trace-sample" ] ~docv:"R"
          ~doc:
            "With $(b,s1) and $(b,--trace-out), keep a seeded head-sampled fraction \
             $(docv) of transactions in the streamed traces. Default 0.01.")
  in
  let sim_domains =
    Arg.(
      value & opt int 1
      & info [ "sim-domains" ] ~docv:"N"
          ~doc:
            "Partition each simulation over $(docv) domains (central system on \
             partition 0, sites round-robin over the rest). Deterministic: every \
             report column except the wall-clock ones is byte-identical for any \
             $(docv). Applies to $(b,s1) and $(b,r1).")
  in
  let run id jobs smoke trace_out trace_sample sim_domains =
    (* Core budget is shared between experiment-level parallelism (-j) and
       within-run partitioning (--sim-domains): scale the job count down so
       jobs x sim_domains stays at the requested width (see Icdb_util.Pool).
       The division clamps at one job — never a zero-width pool — and says
       so when the requested budget could not be honored. *)
    if jobs > 1 && sim_domains > 1 && jobs / sim_domains < 1 then
      Printf.eprintf
        "warning: core budget -j %d < --sim-domains %d; running 1 job of %d domains\n%!"
        jobs sim_domains sim_domains;
    let jobs = max 1 (jobs / max 1 sim_domains) in
    if id = "all" then begin
      print_string (Experiments.run_all ~jobs ());
      print_newline ();
      ignore (Campaign.experiment_r1 ~sim_domains ())
    end
    else if id = "r1" then ignore (Campaign.experiment_r1 ~sim_domains ())
    else if id = "s1" then begin
      let trace =
        Option.map
          (fun base -> { Scaling.ts_rate = trace_sample; ts_base = base })
          trace_out
      in
      print_string (Scaling.run_s1 ~smoke ?trace ~sim_domains ())
    end
    else if id = "s2" then print_string (Sharding.run_s2 ~smoke ())
    else if id = "a1" then print_string (Icdb_workload.Availability.run_a1 ~smoke ())
    else
      match Experiments.run id with
      | report -> print_string report
      | exception Not_found ->
        Printf.eprintf "unknown experiment %S; try `icdb list`\n" id;
        exit 1
  in
  Cmd.v (Cmd.info "exp" ~doc)
    Term.(const run $ id $ jobs $ smoke $ trace_out $ trace_sample $ sim_domains)

let report_to_string ?(central_gc = false) ?(sharded = false) ?(paxos = false)
    (r : Runner.report) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "elapsed (virtual time)     %.1f" r.elapsed;
  line "started / committed / aborted   %d / %d / %d" r.started r.committed r.aborted;
  line "throughput (commits/1000tu)     %.2f" r.throughput;
  line "response time mean / p95        %.2f / %.2f" r.mean_response r.p95_response;
  line "local lock hold mean / p95      %.2f / %.2f" r.mean_hold r.p95_hold;
  line "messages total / per commit     %d / %.1f" r.messages r.messages_per_committed;
  line "repetitions / compensations     %d / %d" r.repetitions r.compensations;
  line "redo-log / undo-log / L1-log    %d / %d / %d writes" r.redo_log_writes
    r.undo_log_writes r.mlt_log_writes;
  line "additional CC / L1 lock acq.    %d / %d" r.global_cc_acquisitions r.l1_acquisitions;
  line "local lock waits/timeouts/dl    %d / %d / %d" r.local_lock_waits
    r.local_lock_timeouts r.local_lock_deadlocks;
  line "log forces / per commit        %d / %.2f" r.log_forces r.log_forces_per_commit;
  (* Batching lines appear only when the features produced something, so a
     run with both windows off prints byte-identically to older builds. *)
  if r.batch_envelopes > 0 then
    line "batch envelopes / occupancy     %d / %.2f" r.batch_envelopes
      r.batch_occupancy_mean;
  if central_gc then line "central decision-log forces     %d" r.central_log_forces;
  (* Shard lines only on sharded runs: an unsharded report stays
     byte-identical to older builds. *)
  if sharded then begin
    line "top-level decision-log forces   %d" r.central_log_forces;
    line "shard decisions / log forces    %d / %d" r.shard_decisions r.shard_log_forces
  end;
  (* Paxos lines only when a group is installed: an acceptors=1 report
     stays byte-identical to older builds. *)
  if paxos then begin
    line "paxos rounds / acceptor forces  %d / %d" r.paxos_rounds
      r.paxos_acceptor_forces;
    line "paxos leader failovers          %d" r.paxos_failovers
  end;
  line "message copies dropped          %d" r.messages_dropped;
  line "money conserved                 %b (%d -> %d)" r.money_conserved r.money_before
    r.money_after;
  line "globally serializable           %b" r.serializable;
  List.iter (fun v -> line "  violation: %s" v) r.violations;
  if r.phase_breakdown <> [] then begin
    line "phase latency (count / mean / p50 / p95 / max):";
    List.iter
      (fun (phase, (h : Registry.hsnap)) ->
        line "  %-13s %5d / %6.2f / %6.2f / %6.2f / %6.2f" phase h.h_count h.h_mean
          h.h_p50 h.h_p95 h.h_max)
      r.phase_breakdown
  end;
  Buffer.contents b

let run_cmd =
  let doc = "Run a parameterized banking workload and print the full report." in
  let protocol =
    Arg.(value & opt protocol_conv Protocol.Before & info [ "p"; "protocol" ] ~docv:"PROTO")
  in
  let txns = Arg.(value & opt int 200 & info [ "n"; "txns" ]) in
  let sites = Arg.(value & opt int 4 & info [ "sites" ]) in
  let concurrency = Arg.(value & opt int 8 & info [ "c"; "concurrency" ]) in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ]) in
  let p_intended = Arg.(value & opt float 0.0 & info [ "intended-aborts" ]) in
  let p_spont = Arg.(value & opt float 0.0 & info [ "kills" ]) in
  let crash_rate = Arg.(value & opt float 0.0 & info [ "crash-rate" ]) in
  let theta = Arg.(value & opt float 0.6 & info [ "zipf" ]) in
  let loss = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"per-message-copy drop probability") in
  let gc_window =
    Arg.(value & opt (some float) None & info [ "group-commit" ] ~doc:"group-commit window")
  in
  let batch_window =
    Arg.(
      value
      & opt (some float) None
      & info [ "msg-batch-window" ] ~docv:"W"
          ~doc:
            "Coalesce same-site decision messages issued within $(docv) virtual-time \
             units into one wire envelope (piggybacking). 0 or unset: off.")
  in
  let central_gc =
    Arg.(
      value
      & opt (some float) None
      & info [ "central-group-commit" ] ~docv:"W"
          ~doc:
            "Group-commit window for the central decision log: decisions within \
             $(docv) share one log force. 0 or unset: off.")
  in
  let retries = Arg.(value & opt int 0 & info [ "action-retries" ] ~doc:"MLT L0 action retries") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a full span trace and write it as Chrome trace-event JSON to \
             $(docv) (open at https://ui.perfetto.dev). Tracing is off otherwise.")
  in
  let trace_stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-stream" ] ~docv:"FILE"
          ~doc:
            "Stream the trace incrementally to $(docv) as Chrome trace-event JSON \
             while the run executes, holding only open spans in memory. Unlike \
             $(b,--trace-out) (which buffers every event), memory stays bounded at \
             any run size; both can be given at once.")
  in
  let trace_sample =
    Arg.(
      value & opt float 1.0
      & info [ "trace-sample" ] ~docv:"R"
          ~doc:
            "Keep the spans of a seeded pseudo-random fraction $(docv) of \
             transactions (per-transaction head sampling: a kept transaction keeps \
             its phases, branches and decision; per-message and lock-wait spans are \
             dropped whenever $(docv) < 1). Deterministic in $(b,--seed). Default 1 \
             (trace everything).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a JSON snapshot of the metrics registry to $(docv).")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:"Write the metrics registry in Prometheus text exposition to $(docv).")
  in
  let sim_domains =
    Arg.(
      value & opt int 1
      & info [ "sim-domains" ] ~docv:"N"
          ~doc:
            "Partition the simulation over $(docv) OCaml domains: the central system \
             on partition 0, sites round-robin over the rest. The report, traces and \
             metrics are byte-identical for any $(docv) (conservative synchronization \
             executes events in global timestamp order); 1 runs the plain sequential \
             engine.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Group the sites into $(docv) shards, each with its own coordinator, \
             journal and decision log. Transactions confined to one shard commit in a \
             purely local round at their shard coordinator; cross-shard ones run a \
             top-level round over the participating shard coordinators. 1 (default) \
             is the unsharded federation, byte-identical to older builds.")
  in
  let cross_shard =
    Arg.(
      value & opt float 0.0
      & info [ "cross-shard" ] ~docv:"F"
          ~doc:
            "With $(b,--shards), probability in [0,1] that a generated transaction \
             deliberately spans at least two shards. Default 0.")
  in
  let acceptors =
    Arg.(
      value & opt int 1
      & info [ "acceptors" ] ~docv:"A"
          ~doc:
            "Replicate every commit/abort decision to $(docv) acceptor sites (Paxos \
             Commit; $(docv) odd, 2F+1, at most the site count) instead of forcing a \
             single coordinator log. 1 (default) installs nothing and is \
             byte-identical to older builds.")
  in
  let decision_force_time =
    Arg.(
      value
      & opt (some float) None
      & info [ "decision-force-time" ] ~docv:"T"
          ~doc:
            "Model each coordinator's decision log as a serial device: every force \
             occupies its log head for $(docv) virtual-time units (the contention \
             sharding relieves — see $(b,icdb exp s2)). Unset: forces are \
             instantaneous. Ignored when $(b,--central-group-commit) is set.")
  in
  let run protocol n_txns n_sites concurrency seed p_intended_abort p_spontaneous crash_rate
      zipf_theta message_loss group_commit_window msg_batch_window central_gc_window
      mlt_action_retries trace_out trace_stream trace_sample metrics_out prom_out
      sim_domains shards cross_shard_fraction acceptors decision_force_time =
    let registry = Registry.create () in
    let tracer =
      (* Clock re-wired onto the run's engine by [Runner.run]. *)
      if trace_out <> None || trace_stream <> None then
        Some (Tracer.create ~enabled:true ~clock:(fun () -> 0.0) ())
      else None
    in
    let stream =
      match (trace_stream, tracer) with
      | Some path, Some tr ->
        let oc = open_out path in
        let sink = Sink.create ~write:(output_string oc) in
        Tracer.set_sink tr (Some (Sink.on_event sink));
        (* Streaming only: don't also accumulate the events in memory. *)
        if trace_out = None then Tracer.set_store tr false;
        Some (path, oc, sink)
      | _ -> None
    in
    (match tracer with
    | Some tr when trace_sample < 1.0 ->
      Tracer.set_sampler tr (Some (Sampling.kind_filter ~seed ~rate:trace_sample))
    | _ -> ());
    let r =
      Runner.run ~registry ?tracer
        {
          Runner.default with
          protocol;
          n_txns;
          n_sites;
          concurrency;
          seed;
          p_intended_abort;
          p_spontaneous;
          crash_rate;
          zipf_theta;
          message_loss;
          group_commit_window;
          msg_batch_window;
          central_gc_window;
          mlt_action_retries;
          sim_domains;
          shards;
          cross_shard_fraction;
          acceptors;
          decision_force_time;
        }
    in
    let central_gc = match central_gc_window with Some w when w > 0.0 -> true | _ -> false in
    Printf.printf "protocol: %s\n%s" (Protocol.name protocol)
      (report_to_string ~central_gc ~sharded:(shards > 1) ~paxos:(acceptors > 1) r);
    (match (trace_out, tracer) with
    | Some path, Some tr ->
      write_file path (Export.chrome_trace tr);
      Printf.printf "wrote Chrome trace (%d events): %s\n" (Tracer.length tr) path
    | _ -> ());
    Option.iter
      (fun (path, oc, sink) ->
        Sink.close sink;
        close_out oc;
        Printf.printf "streamed Chrome trace (%d events, %d bytes): %s\n"
          (Sink.event_count sink) (Sink.byte_count sink) path)
      stream;
    Option.iter
      (fun path ->
        write_file path (Export.metrics_json registry);
        Printf.printf "wrote metrics snapshot: %s\n" path)
      metrics_out;
    Option.iter
      (fun path ->
        write_file path (Export.prometheus registry);
        Printf.printf "wrote Prometheus dump: %s\n" path)
      prom_out
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ protocol $ txns $ sites $ concurrency $ seed $ p_intended $ p_spont
      $ crash_rate $ theta $ loss $ gc_window $ batch_window $ central_gc $ retries
      $ trace_out $ trace_stream $ trace_sample $ metrics_out $ prom_out $ sim_domains
      $ shards $ cross_shard $ acceptors $ decision_force_time)

let trace_cmd =
  let doc =
    "Run a single two-site transfer under the given protocol with the tracer on and \
     print the span tree (transaction, phases, branches, lock waits, messages, \
     decision)."
  in
  let protocol = Arg.(value & pos 0 protocol_conv Protocol.Before & info [] ~docv:"PROTO") in
  let abortive =
    Arg.(
      value & flag
      & info [ "abort" ]
          ~doc:
            "Make the transaction abort: the second branch votes no (flat protocols) or \
             the global transaction aborts after its first L0 action (MLT), so the \
             undo/compensation path shows up in the trace.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Also write the trace as Chrome trace-event JSON to $(docv).")
  in
  let run protocol abortive trace_out =
    let module Sim = Icdb_sim.Engine in
    let module Fiber = Icdb_sim.Fiber in
    let module Db = Icdb_localdb.Engine in
    let module Program = Icdb_localdb.Program in
    let module Site = Icdb_net.Site in
    let module Action = Icdb_mlt.Action in
    let module Federation = Icdb_core.Federation in
    let module Global = Icdb_core.Global in
    let eng = Sim.create () in
    let tracer = Tracer.create ~enabled:true ~clock:(fun () -> Sim.now eng) () in
    let site_cfg ~prepare name =
      {
        (Db.default_config ~site_name:name) with
        capabilities =
          {
            supports_prepare = prepare;
            supports_increment_locks = true;
            granularity = Db.Record_level;
            cc = Locking { wait_timeout = Some 100.0 };
          };
      }
    in
    (* The hybrid protocol exists for mixed federations: give it one. *)
    let prepare i = match protocol with Protocol.Hybrid -> i = 0 | _ -> true in
    let fed =
      Federation.create eng ~tracer
        [ site_cfg ~prepare:(prepare 0) "s0"; site_cfg ~prepare:(prepare 1) "s1" ]
    in
    List.iter (fun (_, site) -> Db.load (Site.db site) [ ("x", 100) ]) fed.Federation.sites;
    let result = ref None in
    Fiber.spawn eng (fun () ->
        let outcome =
          if protocol = Protocol.Before_mlt then
            Icdb_core.Commit_before_mlt.run fed
              {
                Global.mlt_gid = Federation.fresh_gid fed;
                actions =
                  [
                    Action.deposit ~site:"s0" ~account:"x" 5;
                    Action.withdraw ~site:"s1" ~account:"x" 5;
                  ];
                abort_after = (if abortive then Some 1 else None);
              }
          else
            Protocol.run_flat protocol fed
              {
                Global.gid = Federation.fresh_gid fed;
                branches =
                  [
                    Global.branch ~site:"s0" [ Program.Increment ("x", 5) ];
                    Global.branch ~vote_commit:(not abortive) ~site:"s1"
                      [ Program.Increment ("x", -5) ];
                  ];
              }
        in
        result := Some outcome);
    Sim.run eng;
    Printf.printf "%s: %s two-site transfer\noutcome: %s\n\n" (Protocol.name protocol)
      (if abortive then "abortive" else "committing")
      (Global.outcome_to_string (Option.get !result));
    print_string (Export.span_tree tracer);
    Option.iter
      (fun path ->
        write_file path (Export.chrome_trace tracer);
        Printf.printf "\nwrote Chrome trace (%d events): %s\n" (Tracer.length tracer) path)
      trace_out
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ protocol $ abortive $ trace_out)

let check_cmd =
  let doc =
    "Run the invariant battery: every protocol under kills, intended aborts and site \
     crashes; verifies atomicity (money conservation) and global serializability. Exits \
     non-zero on any violation."
  in
  let txns = Arg.(value & opt int 300 & info [ "n"; "txns" ]) in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ]) in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write one combined JSON metrics snapshot covering all six protocol runs \
             (they share a registry; labelled metrics accumulate) to $(docv).")
  in
  let run n_txns seed metrics_out =
    let registry = Registry.create () in
    let table =
      Icdb_util.Table.create ~title:"invariant battery (chaos workload)"
        [ "protocol"; "committed"; "aborted"; "reps"; "comps"; "money"; "serializable" ]
    in
    let failed = ref false in
    List.iter
      (fun protocol ->
        let r =
          Runner.run ~registry
            {
              Runner.default with
              protocol;
              n_txns;
              seed;
              concurrency = 10;
              p_spontaneous = 0.15;
              p_intended_abort = 0.1;
              crash_rate = 4.0;
              crash_duration = 25.0;
              zipf_theta = 0.9;
            }
        in
        if not (r.money_conserved && r.serializable) then failed := true;
        Icdb_util.Table.add_row table
          [
            Protocol.name protocol;
            string_of_int r.committed;
            string_of_int r.aborted;
            string_of_int r.repetitions;
            string_of_int r.compensations;
            (if r.money_conserved then "conserved" else "VIOLATED");
            (if r.serializable then "yes" else "NO");
          ];
        List.iter (fun v -> Printf.printf "  violation: %s\n" v) r.violations)
      Protocol.all;
    Icdb_util.Table.print table;
    Option.iter
      (fun path ->
        write_file path (Export.metrics_json registry);
        Printf.printf "wrote combined metrics snapshot: %s\n" path)
      metrics_out;
    if !failed then begin
      print_endline "INVARIANT VIOLATIONS FOUND";
      exit 1
    end
    else print_endline "all invariants hold."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ txns $ seed $ metrics_out)

let chaos_cmd =
  let doc =
    "Run the fault-injection campaign: seeded fault plans (site crashes, central \
     crashes at protocol instants, loss bursts, latency spikes, duplicated \
     deliveries) against every protocol, with the full invariant suite evaluated \
     after each run. Deterministic in the seed. Exits non-zero on any violation."
  in
  let protocol =
    Arg.(
      value
      & opt (some protocol_conv) None
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"Campaign a single protocol instead of all six.")
  in
  let plans =
    Arg.(
      value & opt int 50
      & info [ "plans" ] ~docv:"N" ~doc:"Fault plans generated per protocol.")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ]) in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimise every violating plan to a locally minimal reproducer.")
  in
  let reproducers_out =
    Arg.(
      value
      & opt string "chaos-reproducers.txt"
      & info [ "reproducers-out" ] ~docv:"FILE"
          ~doc:"Where to write violating plans (only written when there are any).")
  in
  let flight_out =
    Arg.(
      value
      & opt string "chaos-flight"
      & info [ "flight-out" ] ~docv:"PREFIX"
          ~doc:
            "Prefix for flight-recorder dumps: every violating run's last ring of \
             events is written to $(docv)-<protocol>-<n>.txt (only written when \
             there are violations).")
  in
  let sim_domains =
    Arg.(
      value & opt int 1
      & info [ "sim-domains" ] ~docv:"N"
          ~doc:
            "Partition every campaign run over $(docv) OCaml domains \
             (conservative synchronization). Outcomes, the stats table and the \
             trips summary are byte-identical for any $(docv).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Run every campaign plan on a sharded federation with $(docv) shards: the \
             plan space gains shard-coordinator crashes (crash + volatile-state wipe + \
             per-shard restart recovery) and the stats table a shard-crash column. 1 \
             (default) reproduces the unsharded campaign byte for byte.")
  in
  let acceptors =
    Arg.(
      value & opt int 1
      & info [ "acceptors" ] ~docv:"A"
          ~doc:
            "Run every campaign plan with Paxos Commit over $(docv) acceptor sites \
             (odd, 2F+1): the plan space gains acceptor-site crashes, injected \
             central crashes trigger a leader failover instead of waiting for \
             restart recovery, and the stats table gains an acceptor-crash column. \
             1 (default) reproduces the single-coordinator campaign byte for byte.")
  in
  let run protocol plans seed shrink reproducers_out flight_out sim_domains shards
      acceptors =
    let protocols =
      match protocol with Some p -> [ p ] | None -> Protocol.all
    in
    let stats =
      Campaign.run_campaign ~shrink_failures:shrink ~seed ~sim_domains ~shards
        ~acceptors ~plans protocols
    in
    Icdb_util.Table.print (Campaign.stats_table ~plans ~seed stats);
    let trips = Campaign.trips_summary stats in
    if trips <> "" then begin
      print_newline ();
      print_string trips
    end;
    let violations = Campaign.total_violations stats in
    if violations > 0 then begin
      let b = Buffer.create 1024 in
      List.iter
        (fun (s : Campaign.protocol_stats) ->
          List.iteri
            (fun i (o : Campaign.outcome) ->
              Buffer.add_string b
                (Printf.sprintf "%s under %s\n"
                   (Protocol.obs_name s.cp_protocol)
                   (Plan.to_string o.plan));
              List.iter
                (fun v ->
                  Buffer.add_string b
                    (Printf.sprintf "  %s\n"
                       (Format.asprintf "%a" Campaign.pp_violation v)))
                o.violations;
              Option.iter
                (fun dump ->
                  let path =
                    Printf.sprintf "%s-%s-%d.txt" flight_out
                      (Protocol.obs_name s.cp_protocol) i
                  in
                  write_file path dump;
                  Buffer.add_string b
                    (Printf.sprintf "  flight recorder dump: %s\n" path))
                o.flight)
            s.cp_failures)
        stats;
      print_newline ();
      print_string (Buffer.contents b);
      write_file reproducers_out (Buffer.contents b);
      Printf.printf "\nwrote %d violating plan(s) to %s\n" violations reproducers_out;
      print_endline "CHAOS CAMPAIGN FOUND VIOLATIONS";
      exit 1
    end
    else print_endline "all invariants hold under every plan."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ protocol $ plans $ seed $ shrink $ reproducers_out $ flight_out
      $ sim_domains $ shards $ acceptors)

let () =
  let doc = "atomic commitment for integrated database systems (Muth & Rakow, ICDE 1991)" in
  let info = Cmd.info "icdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; exp_cmd; run_cmd; trace_cmd; check_cmd; chaos_cmd ]))
