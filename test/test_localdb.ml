(* Tests for Icdb_localdb.Engine: a complete local DBMS with locking or
   optimistic concurrency control, WAL recovery, crashes and the optional
   prepared state. *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Db = Icdb_localdb.Engine

let ok = function
  | Ok v -> v
  | Error r -> Alcotest.failf "unexpected local abort: %s" (Db.abort_reason_to_string r)

let reason_testable =
  Alcotest.testable Db.pp_abort_reason ( = )

let err = function
  | Ok _ -> Alcotest.fail "expected an abort"
  | Error r -> r

let locking_config ?(timeout = Some 50.0) ?(prepare = false) name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = prepare;
        supports_increment_locks = true;
        granularity = Record_level;
        cc = Locking { wait_timeout = timeout };
      };
  }

let occ_config name =
  {
    (Db.default_config ~site_name:name) with
    capabilities =
      {
        supports_prepare = false;
        supports_increment_locks = false;
        granularity = Record_level;
        cc = Optimistic;
      };
  }

(* Run [f] in a fiber on a fresh engine+db and drain the simulation. *)
let with_db ?(config = locking_config "site-a") f =
  let eng = Sim.create () in
  let db = Db.create eng config in
  let failure = ref None in
  Fiber.spawn eng
    ~on_error:(fun e -> failure := Some e)
    (fun () -> f eng db);
  Sim.run eng;
  match !failure with Some e -> raise e | None -> ()

(* --- basics --- *)

let test_write_read_commit () =
  with_db (fun _ db ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:1);
      ok (Db.write db t ~key:"b" ~value:2);
      Alcotest.(check (option int)) "own write visible" (Some 1) (ok (Db.read db t "a"));
      ok (Db.commit db t);
      Alcotest.(check bool) "committed state" true (Db.state t = `Committed);
      Alcotest.(check (option int)) "a committed" (Some 1) (Db.committed_value db "a");
      Alcotest.(check (option int)) "b committed" (Some 2) (Db.committed_value db "b");
      Alcotest.(check int) "one commit" 1 (Db.commit_count db))

let test_read_missing () =
  with_db (fun _ db ->
      let t = Db.begin_txn db in
      Alcotest.(check (option int)) "missing is None" None (ok (Db.read db t "nope"));
      ok (Db.commit db t))

let test_abort_restores_everything () =
  with_db (fun _ db ->
      Db.load db [ ("keep", 100); ("mut", 5) ];
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"new" ~value:1);
      ok (Db.write db t ~key:"mut" ~value:999);
      ok (Db.delete db t "keep");
      ok (Db.increment db t ~key:"mut" ~delta:7);
      Db.abort db t;
      Alcotest.(check bool) "aborted" true (Db.state t = `Aborted Db.Requested);
      Alcotest.(check (option int)) "insert undone" None (Db.committed_value db "new");
      Alcotest.(check (option int)) "update undone" (Some 5) (Db.committed_value db "mut");
      Alcotest.(check (option int)) "delete undone" (Some 100) (Db.committed_value db "keep"))

let test_delete_then_reinsert () =
  with_db (fun _ db ->
      Db.load db [ ("k", 1) ];
      let t = Db.begin_txn db in
      ok (Db.delete db t "k");
      Alcotest.(check (option int)) "deleted invisible" None (ok (Db.read db t "k"));
      ok (Db.write db t ~key:"k" ~value:2);
      ok (Db.commit db t);
      Alcotest.(check (option int)) "reinserted" (Some 2) (Db.committed_value db "k"))

let test_accesses_recorded () =
  with_db (fun _ db ->
      Db.load db [ ("x", 10) ];
      let t = Db.begin_txn db in
      ignore (ok (Db.read db t "x"));
      ok (Db.increment db t ~key:"x" ~delta:(-3));
      ok (Db.commit db t);
      match Db.accesses t with
      | [ Db.Read { key = "x"; value = Some 10 }; Db.Incremented { key = "x"; delta = -3 } ] ->
        ()
      | l -> Alcotest.failf "unexpected access log (%d entries)" (List.length l))

let test_op_on_finished_txn_rejected () =
  with_db (fun _ db ->
      let t = Db.begin_txn db in
      ok (Db.commit db t);
      Alcotest.(check bool) "raises" true
        (match Db.read db t "x" with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* --- isolation (strict 2PL) --- *)

let test_writer_blocks_reader_until_commit () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 0) ];
  let read_time = ref 0.0 and read_value = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"x" ~value:42);
      Fiber.sleep eng 10.0;
      ok (Db.commit db t));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 2.0;
      let t = Db.begin_txn db in
      read_value := ok (Db.read db t "x");
      read_time := Sim.now eng;
      ok (Db.commit db t));
  Sim.run eng;
  Alcotest.(check (option int)) "reader saw committed value" (Some 42) !read_value;
  Alcotest.(check bool) "reader waited for writer commit" true (!read_time > 11.0)

let test_two_writers_serialize () =
  (* Read-then-write of the same key by two transactions is the textbook
     lock-conversion deadlock; the victim retries until it commits. The
     invariant is that no update is ever lost. *)
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 0) ];
  let spawn_adder delay =
    Fiber.spawn eng (fun () ->
        Fiber.sleep eng delay;
        let rec attempt () =
          let t = Db.begin_txn db in
          let step =
            match Db.read db t "x" with
            | Error r -> Error r
            | Ok v -> (
              match Db.write db t ~key:"x" ~value:(Option.get v + 1) with
              | Error r -> Error r
              | Ok () -> Db.commit db t)
          in
          match step with Ok () -> () | Error _ -> attempt ()
        in
        attempt ())
  in
  spawn_adder 0.0;
  spawn_adder 0.1;
  Sim.run eng;
  Alcotest.(check (option int)) "no lost update" (Some 2) (Db.committed_value db "x")

let test_increment_locks_allow_concurrency () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("ctr", 0) ];
  let finish_times = ref [] in
  for _ = 1 to 3 do
    Fiber.spawn eng (fun () ->
        let t = Db.begin_txn db in
        ok (Db.increment db t ~key:"ctr" ~delta:1);
        Fiber.sleep eng 10.0;
        ok (Db.commit db t);
        finish_times := Sim.now eng :: !finish_times)
  done;
  Sim.run eng;
  Alcotest.(check (option int)) "all increments applied" (Some 3) (Db.committed_value db "ctr");
  (* All three held increment locks simultaneously: they finish together,
     not serialized 13/26/39. *)
  List.iter
    (fun ft -> Alcotest.(check bool) "concurrent finish" true (ft < 20.0))
    !finish_times

let test_increment_abort_is_logical () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("ctr", 100) ];
  (* T1 increments and aborts late; T2 increments and commits early. *)
  Fiber.spawn eng (fun () ->
      let t1 = Db.begin_txn db in
      ok (Db.increment db t1 ~key:"ctr" ~delta:5);
      Fiber.sleep eng 20.0;
      Db.abort db t1);
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 2.0;
      let t2 = Db.begin_txn db in
      ok (Db.increment db t2 ~key:"ctr" ~delta:3);
      ok (Db.commit db t2));
  Sim.run eng;
  Alcotest.(check (option int)) "T2's increment survives T1's undo" (Some 103)
    (Db.committed_value db "ctr")

(* --- autonomy: deadlock, timeout, kill --- *)

let test_deadlock_one_victim () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~timeout:None "s") in
  Db.load db [ ("a", 0); ("b", 0) ];
  let results = ref [] in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:1);
      Fiber.sleep eng 5.0;
      (match Db.write db t ~key:"b" ~value:1 with
      | Ok () -> results := `Committed :: !results; ok (Db.commit db t)
      | Error r -> results := `Aborted r :: !results));
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"b" ~value:2);
      Fiber.sleep eng 5.0;
      (match Db.write db t ~key:"a" ~value:2 with
      | Ok () -> results := `Committed :: !results; ok (Db.commit db t)
      | Error r -> results := `Aborted r :: !results));
  Sim.run eng;
  let aborted =
    List.filter (function `Aborted Db.Deadlock_victim -> true | _ -> false) !results
  in
  let committed = List.filter (( = ) `Committed) !results in
  Alcotest.(check int) "exactly one victim" 1 (List.length aborted);
  Alcotest.(check int) "the other commits" 1 (List.length committed);
  Alcotest.(check int) "deadlock counted" 1 (Db.lock_deadlock_count db)

let test_lock_timeout_aborts () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~timeout:(Some 5.0) "s") in
  Db.load db [ ("x", 0) ];
  let result = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"x" ~value:1);
      Fiber.sleep eng 100.0;
      ok (Db.commit db t));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 1.0;
      let t = Db.begin_txn db in
      result := Some (Db.write db t ~key:"x" ~value:2));
  Sim.run eng;
  (match !result with
  | Some (Error Db.Lock_timeout) -> ()
  | _ -> Alcotest.fail "expected lock timeout");
  Alcotest.(check bool) "holder unaffected" true (Db.committed_value db "x" = Some 1)

let test_kill_running_txn () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 7) ];
  let second_op = ref None in
  let handle = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      handle := Some t;
      ok (Db.write db t ~key:"x" ~value:8);
      Fiber.sleep eng 10.0;
      second_op := Some (Db.write db t ~key:"x" ~value:9));
  ignore (Sim.schedule eng ~delay:5.0 (fun () -> Db.kill db (Option.get !handle)));
  Sim.run eng;
  (match !second_op with
  | Some (Error Db.Injected) -> ()
  | _ -> Alcotest.fail "op after kill must fail with Injected");
  Alcotest.(check (option int)) "write rolled back" (Some 7) (Db.committed_value db "x")

let test_kill_blocked_txn () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~timeout:None "s") in
  Db.load db [ ("x", 0) ];
  let blocked_result = ref None in
  let victim = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"x" ~value:1);
      Fiber.sleep eng 50.0;
      ok (Db.commit db t));
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 1.0;
      let t = Db.begin_txn db in
      victim := Some t;
      blocked_result := Some (Db.write db t ~key:"x" ~value:2));
  ignore (Sim.schedule eng ~delay:10.0 (fun () -> Db.kill db (Option.get !victim)));
  Sim.run eng;
  match !blocked_result with
  | Some (Error Db.Injected) -> ()
  | _ -> Alcotest.fail "blocked victim must observe Injected"

(* --- optimistic concurrency control --- *)

let test_occ_basic_commit () =
  with_db ~config:(occ_config "o") (fun _ db ->
      Db.load db [ ("x", 1) ];
      let t = Db.begin_txn db in
      Alcotest.(check (option int)) "reads committed" (Some 1) (ok (Db.read db t "x"));
      ok (Db.write db t ~key:"x" ~value:2);
      Alcotest.(check (option int)) "reads own buffer" (Some 2) (ok (Db.read db t "x"));
      (* Deferred: nothing visible before commit. *)
      Alcotest.(check (option int)) "not applied yet" (Some 1) (Db.committed_value db "x");
      ok (Db.commit db t);
      Alcotest.(check (option int)) "applied at commit" (Some 2) (Db.committed_value db "x"))

let test_occ_validation_failure () =
  with_db ~config:(occ_config "o") (fun _ db ->
      Db.load db [ ("x", 1) ];
      let t1 = Db.begin_txn db in
      ignore (ok (Db.read db t1 "x"));
      (* t2 commits a write to x after t1 started. *)
      let t2 = Db.begin_txn db in
      ok (Db.write db t2 ~key:"x" ~value:99);
      ok (Db.commit db t2);
      ok (Db.write db t1 ~key:"y" ~value:1);
      Alcotest.check reason_testable "t1 fails validation" Db.Validation_failed
        (err (Db.commit db t1));
      Alcotest.(check (option int)) "t1's write discarded" None (Db.committed_value db "y"))

let test_occ_blind_writes_do_not_conflict () =
  with_db ~config:(occ_config "o") (fun _ db ->
      Db.load db [ ("x", 1) ];
      let t1 = Db.begin_txn db in
      ok (Db.write db t1 ~key:"x" ~value:10);
      let t2 = Db.begin_txn db in
      ok (Db.write db t2 ~key:"x" ~value:20);
      ok (Db.commit db t2);
      (* t1 never read x: blind write, validation passes (Thomas-style). *)
      ok (Db.commit db t1);
      Alcotest.(check (option int)) "last commit wins" (Some 10) (Db.committed_value db "x"))

let test_occ_increments_commute () =
  with_db ~config:(occ_config "o") (fun _ db ->
      Db.load db [ ("ctr", 0) ];
      let t1 = Db.begin_txn db in
      ok (Db.increment db t1 ~key:"ctr" ~delta:5);
      let t2 = Db.begin_txn db in
      ok (Db.increment db t2 ~key:"ctr" ~delta:3);
      ok (Db.commit db t2);
      ok (Db.commit db t1);
      Alcotest.(check (option int)) "both applied" (Some 8) (Db.committed_value db "ctr"))

let test_occ_abort_discards_buffer () =
  with_db ~config:(occ_config "o") (fun _ db ->
      Db.load db [ ("x", 1) ];
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"x" ~value:2);
      Db.abort db t;
      Alcotest.(check (option int)) "unchanged" (Some 1) (Db.committed_value db "x"))

(* --- crash and restart --- *)

let test_crash_preserves_committed_loses_running () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("safe", 1); ("dirty", 1) ];
  let late_op = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"safe" ~value:2);
      ok (Db.commit db t);
      let t2 = Db.begin_txn db in
      ok (Db.write db t2 ~key:"dirty" ~value:2);
      (* Force the dirty page to disk: recovery must undo it. *)
      Db.flush_buffers db;
      Fiber.sleep eng 10.0;
      late_op := Some (Db.read db t2 "dirty"));
  ignore (Sim.schedule eng ~delay:8.0 (fun () -> Db.crash db));
  Sim.run eng;
  (match !late_op with
  | Some (Error Db.Site_crashed) -> ()
  | _ -> Alcotest.fail "op during downtime must fail");
  Alcotest.(check bool) "site down" false (Db.is_up db);
  let outcome = Db.restart db in
  Alcotest.(check bool) "site up" true (Db.is_up db);
  Alcotest.(check bool) "loser rolled back" true (List.length outcome.rolled_back = 1);
  Alcotest.(check (option int)) "committed survived" (Some 2) (Db.committed_value db "safe");
  Alcotest.(check (option int)) "uncommitted undone" (Some 1) (Db.committed_value db "dirty")

let test_crash_before_any_flush () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [];
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:10);
      ok (Db.commit db t));
  Sim.run eng;
  (* No page ever reached the disk, only the log did (commit forces). *)
  Db.crash db;
  ignore (Db.restart db);
  Alcotest.(check (option int)) "redo reconstructs" (Some 10) (Db.committed_value db "a")

let test_double_crash_recovery_idempotent () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 5) ];
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.increment db t ~key:"x" ~delta:2);
      Db.flush_buffers db;
      Fiber.sleep eng 100.0);
  Sim.run_until eng 10.0;
  Db.crash db;
  ignore (Db.restart db);
  Db.crash db;
  ignore (Db.restart db);
  Alcotest.(check (option int)) "exactly one undo" (Some 5) (Db.committed_value db "x");
  Sim.run eng

(* --- prepare / in-doubt --- *)

let test_prepare_unsupported () =
  with_db (fun _ db ->
      let t = Db.begin_txn db in
      Alcotest.(check bool) "prepare refused" true
        (match Db.prepare db t with
        | exception Failure _ -> true
        | _ -> false))

let test_prepare_commit_flow () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~prepare:true "s") in
  Db.load db [ ("x", 1) ];
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"x" ~value:2);
      ok (Db.prepare db t);
      Alcotest.(check bool) "prepared" true (Db.state t = `Prepared);
      Db.resolve_prepared db ~txn_id:(Db.txn_id t) ~commit:true;
      Alcotest.(check bool) "committed" true (Db.state t = `Committed));
  Sim.run eng;
  Alcotest.(check (option int)) "value committed" (Some 2) (Db.committed_value db "x")

let test_prepared_survives_crash_then_commit () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~prepare:true "s") in
  Db.load db [ ("x", 1) ];
  let tid = ref 0 in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      tid := Db.txn_id t;
      ok (Db.write db t ~key:"x" ~value:2);
      ok (Db.prepare db t));
  Sim.run eng;
  Db.crash db;
  ignore (Db.restart db);
  Alcotest.(check (list int)) "in doubt after restart" [ !tid ] (Db.in_doubt db);
  Db.resolve_prepared db ~txn_id:!tid ~commit:true;
  Alcotest.(check (option int)) "decision applied" (Some 2) (Db.committed_value db "x");
  Alcotest.(check (list int)) "no longer in doubt" [] (Db.in_doubt db)

let test_prepared_survives_crash_then_abort () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~prepare:true "s") in
  Db.load db [ ("x", 1) ];
  let tid = ref 0 in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      tid := Db.txn_id t;
      ok (Db.write db t ~key:"x" ~value:2);
      ok (Db.prepare db t));
  Sim.run eng;
  Db.crash db;
  ignore (Db.restart db);
  Db.resolve_prepared db ~txn_id:!tid ~commit:false;
  Alcotest.(check (option int)) "undone" (Some 1) (Db.committed_value db "x")

let test_in_doubt_blocks_conflicting_access () =
  (* The classical 2PC blocking problem: recovered in-doubt writes stay
     locked until the global decision arrives. *)
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~prepare:true ~timeout:None "s") in
  Db.load db [ ("x", 1) ];
  let tid = ref 0 in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      tid := Db.txn_id t;
      ok (Db.write db t ~key:"x" ~value:2);
      ok (Db.prepare db t));
  Sim.run eng;
  Db.crash db;
  ignore (Db.restart db);
  let read_value = ref None and read_at = ref 0.0 in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      read_value := Some (ok (Db.read db t "x"));
      read_at := Sim.now eng;
      ok (Db.commit db t));
  ignore
    (Sim.schedule eng ~delay:25.0 (fun () ->
         Db.resolve_prepared db ~txn_id:!tid ~commit:true));
  Sim.run eng;
  Alcotest.(check (option (option int))) "reader saw decided value" (Some (Some 2)) !read_value;
  Alcotest.(check bool) "reader blocked until decision" true (!read_at >= 25.0)

(* --- misc --- *)

let test_metrics () =
  with_db (fun _ db ->
      let t1 = Db.begin_txn db in
      ok (Db.write db t1 ~key:"a" ~value:1);
      ok (Db.commit db t1);
      let t2 = Db.begin_txn db in
      ok (Db.write db t2 ~key:"a" ~value:2);
      Db.abort db t2;
      Alcotest.(check int) "commits" 1 (Db.commit_count db);
      Alcotest.(check int) "aborts" 1 (Db.abort_count db);
      Alcotest.(check (list (pair reason_testable int))) "by reason"
        [ (Db.Requested, 1) ] (Db.abort_counts db))

let test_load_and_keys () =
  with_db (fun _ db ->
      Db.load db [ ("b", 2); ("a", 1) ];
      Alcotest.(check (list string)) "keys sorted" [ "a"; "b" ] (Db.committed_keys db);
      Alcotest.(check (option int)) "value" (Some 2) (Db.committed_value db "b"))

(* --- checkpointing --- *)

let test_checkpoint_truncates_and_recovers () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 0) ];
  Fiber.spawn eng (fun () ->
      for _ = 1 to 20 do
        let t = Db.begin_txn db in
        ok (Db.increment db t ~key:"x" ~delta:1);
        ok (Db.commit db t)
      done);
  Sim.run eng;
  let before = Icdb_wal.Log.retained_count (Db.wal db) in
  Db.checkpoint db;
  let after = Icdb_wal.Log.retained_count (Db.wal db) in
  Alcotest.(check bool)
    (Printf.sprintf "log shrank (%d -> %d)" before after)
    true
    (after < before && after <= 2);
  (* Recovery from the truncated log alone restores the state. *)
  Db.crash db;
  ignore (Db.restart db);
  Alcotest.(check (option int)) "state intact" (Some 20) (Db.committed_value db "x")

let test_checkpoint_keeps_active_txn_undoable () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "s") in
  Db.load db [ ("x", 0); ("y", 0) ];
  Fiber.spawn eng (fun () ->
      (* An in-flight transaction spans the checkpoint. *)
      let t = Db.begin_txn db in
      ok (Db.increment db t ~key:"x" ~delta:5);
      Fiber.sleep eng 10.0;
      ok (Db.increment db t ~key:"y" ~delta:5);
      Fiber.sleep eng 10.0;
      (* the scheduled crash kills the site before this commit *)
      match Db.commit db t with
      | Error Db.Site_crashed -> ()
      | Ok () | Error _ -> Alcotest.fail "commit must fail with site-crashed");
  ignore
    (Sim.schedule eng ~delay:5.0 (fun () ->
         Db.checkpoint db;
         (* Its pre-checkpoint records must have been retained. *)
         Alcotest.(check bool) "chain retained" true
           (Icdb_wal.Log.retained_count (Db.wal db) >= 2)));
  (* Crash mid-transaction, after the checkpoint: undo must reach the
     records from before the checkpoint. *)
  ignore (Sim.schedule eng ~delay:15.0 (fun () -> Db.crash db));
  Sim.run eng;
  ignore (Db.restart db);
  Alcotest.(check (option int)) "x undone across checkpoint" (Some 0)
    (Db.committed_value db "x");
  Alcotest.(check (option int)) "y undone" (Some 0) (Db.committed_value db "y")

let test_checkpoint_preserves_in_doubt () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config ~prepare:true "s") in
  Db.load db [ ("x", 1) ];
  let tid = ref 0 in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      tid := Db.txn_id t;
      ok (Db.write db t ~key:"x" ~value:2);
      ok (Db.prepare db t));
  Sim.run eng;
  Db.crash db;
  ignore (Db.restart db);
  (* Checkpoint while the recovered transaction is in doubt. *)
  Db.checkpoint db;
  Db.crash db;
  ignore (Db.restart db);
  Alcotest.(check (list int)) "still in doubt after checkpointed restart" [ !tid ]
    (Db.in_doubt db);
  Db.resolve_prepared db ~txn_id:!tid ~commit:true;
  Alcotest.(check (option int)) "decision applies" (Some 2) (Db.committed_value db "x")

let test_periodic_checkpointing () =
  let eng = Sim.create () in
  let db =
    Db.create eng { (locking_config "s") with Db.checkpoint_interval = Some 20.0 }
  in
  Db.load db [ ("x", 0) ];
  Fiber.spawn eng (fun () ->
      for _ = 1 to 30 do
        let t = Db.begin_txn db in
        ok (Db.increment db t ~key:"x" ~delta:1);
        ok (Db.commit db t)
      done);
  Sim.run_until eng 200.0;
  Alcotest.(check bool) "log bounded by periodic checkpoints" true
    (Icdb_wal.Log.retained_count (Db.wal db) < 30);
  Alcotest.(check (option int)) "all applied" (Some 30) (Db.committed_value db "x")

(* --- group commit --- *)

let gc_config window name =
  { (locking_config name) with Db.group_commit_window = Some window }

let test_group_commit_batches_forces () =
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 5.0 "s") in
  Db.load db [ ("a", 0); ("b", 0); ("c", 0); ("d", 0) ];
  let forces_before = Icdb_wal.Log.force_count (Db.wal db) in
  let committed = ref 0 in
  List.iter
    (fun key ->
      Fiber.spawn eng (fun () ->
          let t = Db.begin_txn db in
          ok (Db.increment db t ~key ~delta:1);
          ok (Db.commit db t);
          incr committed))
    [ "a"; "b"; "c"; "d" ];
  Sim.run eng;
  Alcotest.(check int) "all committed" 4 !committed;
  Alcotest.(check int) "one force for the whole batch" 1
    (Icdb_wal.Log.force_count (Db.wal db) - forces_before)

let test_group_commit_crash_in_window_aborts () =
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 10.0 "s") in
  Db.load db [ ("a", 0) ];
  let result = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:7);
      result := Some (Db.commit db t));
  (* ops take 1tu + commit_delay 2tu; the crash lands inside the window *)
  ignore (Sim.schedule eng ~delay:6.0 (fun () -> Db.crash db));
  Sim.run eng;
  (match !result with
  | Some (Error Db.Site_crashed) -> ()
  | _ -> Alcotest.fail "unforced group commit must fail on crash");
  ignore (Db.restart db);
  Alcotest.(check (option int)) "rolled back" (Some 0) (Db.committed_value db "a")

let test_group_commit_durable_record_survives_crash () =
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 10.0 "s") in
  Db.load db [ ("a", 0) ];
  let result = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:7);
      result := Some (Db.commit db t));
  (* An independent force (e.g. a WAL-rule page flush) makes the batched
     commit record durable before the crash. *)
  ignore (Sim.schedule eng ~delay:5.0 (fun () -> Icdb_wal.Log.flush (Db.wal db)));
  ignore (Sim.schedule eng ~delay:6.0 (fun () -> Db.crash db));
  Sim.run eng;
  (match !result with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "durable commit record means the commit succeeded");
  ignore (Db.restart db);
  Alcotest.(check (option int)) "committed across crash" (Some 7) (Db.committed_value db "a")

let test_group_commit_flush_ordering () =
  (* Each force must cover the whole buffered prefix in LSN order: at hook
     time [flushed_lsn = last_lsn], and separate windows get separate
     forces. *)
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 5.0 "s") in
  Db.load db [ ("a", 0); ("b", 0) ];
  let wal = Db.wal db in
  let forces = ref [] in
  Icdb_wal.Log.set_force_hook wal (fun () ->
      forces :=
        (Sim.now eng, Icdb_wal.Log.flushed_lsn wal, Icdb_wal.Log.last_lsn wal)
        :: !forces);
  let wave keys =
    List.iter
      (fun key ->
        Fiber.spawn eng (fun () ->
            let t = Db.begin_txn db in
            ok (Db.increment db t ~key ~delta:1);
            ok (Db.commit db t)))
      keys
  in
  wave [ "a"; "b" ];
  ignore (Sim.schedule eng ~delay:30.0 (fun () -> wave [ "a"; "b" ]));
  Sim.run eng;
  let forces = List.rev !forces in
  Alcotest.(check int) "one force per window" 2 (List.length forces);
  List.iter
    (fun (_, flushed, last) ->
      Alcotest.(check int) "force covers every buffered record" last flushed)
    forces;
  (match forces with
  | [ (t1, _, _); (t2, _, _) ] ->
    Alcotest.(check bool) "second window forced strictly later" true (t2 > t1)
  | _ -> ());
  Alcotest.(check (option int)) "both waves applied" (Some 2) (Db.committed_value db "a")

let test_group_commit_durable_before_ack () =
  (* A batched commit may only return once its commit record is on stable
     storage: the force precedes (or coincides with) the ack, and at ack
     time the WAL's durable horizon covers the record. *)
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 5.0 "s") in
  Db.load db [ ("a", 0) ];
  let wal = Db.wal db in
  let force_time = ref neg_infinity in
  Icdb_wal.Log.set_force_hook wal (fun () -> force_time := Sim.now eng);
  let ack = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      ok (Db.write db t ~key:"a" ~value:7);
      ok (Db.commit db t);
      ack :=
        Some (Sim.now eng, Icdb_wal.Log.flushed_lsn wal, Icdb_wal.Log.last_lsn wal));
  Sim.run eng;
  match !ack with
  | None -> Alcotest.fail "commit never returned"
  | Some (ack_time, flushed, last) ->
    Alcotest.(check bool) "force happened before the ack" true
      (!force_time > neg_infinity && ack_time >= !force_time);
    Alcotest.(check int) "commit record durable at ack time" last flushed

let test_group_commit_kill_during_window_is_noop () =
  let eng = Sim.create () in
  let db = Db.create eng (gc_config 10.0 "s") in
  Db.load db [ ("a", 0) ];
  let handle = ref None in
  let result = ref None in
  Fiber.spawn eng (fun () ->
      let t = Db.begin_txn db in
      handle := Some t;
      ok (Db.write db t ~key:"a" ~value:7);
      result := Some (Db.commit db t));
  (* Killing a transaction whose commit record is already written must not
     corrupt the log with a rollback. *)
  ignore (Sim.schedule eng ~delay:6.0 (fun () -> Db.kill db (Option.get !handle)));
  Sim.run eng;
  (match !result with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "kill during group-commit window must be ignored");
  Alcotest.(check (option int)) "value committed" (Some 7) (Db.committed_value db "a")

(* Property: any transaction that aborts leaves the committed state exactly
   as it was — atomicity of local transactions. *)
let prop_abort_atomicity =
  QCheck2.Test.make ~name:"aborted txn leaves no trace" ~count:60
    QCheck2.Gen.(
      pair int
        (list_size (int_range 1 12)
           (triple (int_range 0 3) (int_range 0 2) (int_range (-10) 10))))
    (fun (seed, steps) ->
      ignore seed;
      let eng = Sim.create () in
      let db = Db.create eng (locking_config "p") in
      let initial = [ ("k0", 10); ("k1", 20); ("k2", 30) ] in
      Db.load db initial;
      let ok' = function Ok v -> v | Error _ -> () in
      Fiber.spawn eng (fun () ->
          let t = Db.begin_txn db in
          List.iter
            (fun (op, ki, v) ->
              let key = Printf.sprintf "k%d" ki in
              match op with
              | 0 -> ignore (Db.read db t key)
              | 1 -> ok' (Db.write db t ~key ~value:v)
              | 2 -> ok' (Db.delete db t key)
              | _ -> (
                match Db.committed_value db key with
                | Some _ -> ok' (Db.increment db t ~key ~delta:v)
                | None -> ()))
            steps;
          Db.abort db t);
      Sim.run eng;
      List.for_all (fun (k, v) -> Db.committed_value db k = Some v) initial
      && List.length (Db.committed_keys db) = 3)

(* Oracle equivalence for the interned OCC fast path: the engine now keeps
   one last-committer serial per key, the seed kept the full committed-write
   history and scanned it. This property replays random interleaved
   transactions against an oracle implementing the *seed* algorithm
   (history list + scan) plus a committed-state model, and demands identical
   commit/abort outcomes, read results and final state. *)
let prop_occ_oracle =
  QCheck2.Test.make ~name:"occ validation matches history-scan oracle" ~count:150
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (tup4 (int_range 0 3) (int_range 0 5) (int_range 0 4) (int_range (-5) 5)))
    (fun ops ->
      let eng = Sim.create () in
      let db = Db.create eng (occ_config "o") in
      let n_slots = 4 and n_keys = 5 in
      let key_of i = Printf.sprintf "k%d" i in
      (* oracle state *)
      let serial = ref 0 in
      let history = ref [] (* (serial, write-set) — newest first *) in
      let state : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let module M = struct
        type kind = Put of int | Del | Add of int

        type slot = {
          mutable txn : Db.txn;
          mutable start : int;
          mutable reads : string list;
          buf : (string, kind) Hashtbl.t;
        }
      end in
      let open M in
      let good = ref true in
      let check what cond = if not cond then (ignore what; good := false) in
      Fiber.spawn eng (fun () ->
          let fresh_slot () =
            { txn = Db.begin_txn db; start = !serial; reads = []; buf = Hashtbl.create 8 }
          in
          let slots = Array.init n_slots (fun _ -> fresh_slot ()) in
          let reopen s =
            s.txn <- Db.begin_txn db;
            s.start <- !serial;
            s.reads <- [];
            Hashtbl.reset s.buf
          in
          let note_read s k = if not (List.mem k s.reads) then s.reads <- k :: s.reads in
          let model_read s k =
            match Hashtbl.find_opt s.buf k with
            | Some (Put v) -> Some v
            | Some Del -> None
            | Some (Add d) -> (
              note_read s k;
              match Hashtbl.find_opt state k with Some v -> Some (v + d) | None -> Some d)
            | None ->
              note_read s k;
              Hashtbl.find_opt state k
          in
          List.iter
            (fun (slot_i, action, key_i, v) ->
              let s = slots.(slot_i) in
              let k = key_of key_i in
              match action with
              | 0 ->
                let got = ok (Db.read db s.txn k) in
                check "read value" (got = model_read s k)
              | 1 ->
                ok (Db.write db s.txn ~key:k ~value:v);
                Hashtbl.replace s.buf k (Put v)
              | 2 ->
                ok (Db.delete db s.txn k);
                Hashtbl.replace s.buf k Del
              | 3 ->
                ok (Db.increment db s.txn ~key:k ~delta:v);
                let entry =
                  match Hashtbl.find_opt s.buf k with
                  | Some (Add d) -> Add (d + v)
                  | Some (Put w) -> Put (w + v)
                  | Some Del -> Put v
                  | None -> Add v
                in
                Hashtbl.replace s.buf k entry
              | 4 ->
                (* seed validation: scan the full history for a committed
                   write newer than our start that hits our read set *)
                let valid =
                  List.for_all
                    (fun (ser, keys) ->
                      ser <= s.start || not (List.exists (fun k -> List.mem k s.reads) keys))
                    !history
                in
                (match Db.commit db s.txn with
                | Ok () ->
                  check "oracle predicted commit" valid;
                  incr serial;
                  history := (!serial, Hashtbl.fold (fun k _ acc -> k :: acc) s.buf []) :: !history;
                  Hashtbl.iter
                    (fun k kind ->
                      match kind with
                      | Put v -> Hashtbl.replace state k v
                      | Del -> Hashtbl.remove state k
                      | Add d ->
                        Hashtbl.replace state k
                          (match Hashtbl.find_opt state k with Some v -> v + d | None -> d))
                    s.buf
                | Error Db.Validation_failed -> check "oracle predicted abort" (not valid)
                | Error r -> Alcotest.failf "unexpected abort: %s" (Db.abort_reason_to_string r));
                reopen s
              | _ ->
                Db.abort db s.txn;
                reopen s)
            ops);
      Sim.run eng;
      (* final committed state must match the model exactly *)
      List.iter
        (fun i ->
          let k = key_of i in
          check "final state" (Db.committed_value db k = Hashtbl.find_opt state k))
        (List.init n_keys Fun.id);
      !good)

(* Regression: communication managers race site crashes; [begin_txn] on a
   down site raises, [begin_txn_opt] reports the outage as an outcome. *)
let test_begin_txn_opt_down_site () =
  let eng = Sim.create () in
  let db = Db.create eng (locking_config "site-a") in
  (match Db.begin_txn_opt db with
  | Some txn -> Db.abort db txn
  | None -> Alcotest.fail "up site must hand out transactions");
  Db.crash db;
  Alcotest.(check bool) "down site yields None" true (Db.begin_txn_opt db = None);
  ignore (Db.restart db);
  match Db.begin_txn_opt db with
  | Some txn -> Db.abort db txn
  | None -> Alcotest.fail "restarted site must hand out transactions"

let () =
  Alcotest.run "localdb"
    [
      ( "basics",
        [
          Alcotest.test_case "write/read/commit" `Quick test_write_read_commit;
          Alcotest.test_case "read missing" `Quick test_read_missing;
          Alcotest.test_case "abort restores everything" `Quick test_abort_restores_everything;
          Alcotest.test_case "delete then reinsert" `Quick test_delete_then_reinsert;
          Alcotest.test_case "accesses recorded" `Quick test_accesses_recorded;
          Alcotest.test_case "finished txn rejects ops" `Quick test_op_on_finished_txn_rejected;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "writer blocks reader" `Quick
            test_writer_blocks_reader_until_commit;
          Alcotest.test_case "no lost update" `Quick test_two_writers_serialize;
          Alcotest.test_case "increment locks concurrent" `Quick
            test_increment_locks_allow_concurrency;
          Alcotest.test_case "logical increment undo" `Quick test_increment_abort_is_logical;
        ] );
      ( "autonomy",
        [
          Alcotest.test_case "deadlock victim" `Quick test_deadlock_one_victim;
          Alcotest.test_case "lock timeout" `Quick test_lock_timeout_aborts;
          Alcotest.test_case "kill running" `Quick test_kill_running_txn;
          Alcotest.test_case "kill blocked" `Quick test_kill_blocked_txn;
        ] );
      ( "occ",
        [
          Alcotest.test_case "basic commit" `Quick test_occ_basic_commit;
          Alcotest.test_case "validation failure" `Quick test_occ_validation_failure;
          Alcotest.test_case "blind writes pass" `Quick test_occ_blind_writes_do_not_conflict;
          Alcotest.test_case "increments commute" `Quick test_occ_increments_commute;
          Alcotest.test_case "abort discards buffer" `Quick test_occ_abort_discards_buffer;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash semantics" `Quick
            test_crash_preserves_committed_loses_running;
          Alcotest.test_case "crash before any flush" `Quick test_crash_before_any_flush;
          Alcotest.test_case "begin_txn_opt on down site" `Quick
            test_begin_txn_opt_down_site;
          Alcotest.test_case "double crash idempotent" `Quick
            test_double_crash_recovery_idempotent;
        ] );
      ( "prepare",
        [
          Alcotest.test_case "unsupported" `Quick test_prepare_unsupported;
          Alcotest.test_case "prepare/commit" `Quick test_prepare_commit_flow;
          Alcotest.test_case "in-doubt commit after crash" `Quick
            test_prepared_survives_crash_then_commit;
          Alcotest.test_case "in-doubt abort after crash" `Quick
            test_prepared_survives_crash_then_abort;
          Alcotest.test_case "in-doubt blocks" `Quick test_in_doubt_blocks_conflicting_access;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "truncates and recovers" `Quick
            test_checkpoint_truncates_and_recovers;
          Alcotest.test_case "active txn undoable" `Quick
            test_checkpoint_keeps_active_txn_undoable;
          Alcotest.test_case "preserves in-doubt" `Quick test_checkpoint_preserves_in_doubt;
          Alcotest.test_case "periodic" `Quick test_periodic_checkpointing;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "batches forces" `Quick test_group_commit_batches_forces;
          Alcotest.test_case "crash in window aborts" `Quick
            test_group_commit_crash_in_window_aborts;
          Alcotest.test_case "durable record survives" `Quick
            test_group_commit_durable_record_survives_crash;
          Alcotest.test_case "flush ordering" `Quick test_group_commit_flush_ordering;
          Alcotest.test_case "durable before ack" `Quick
            test_group_commit_durable_before_ack;
          Alcotest.test_case "kill during window" `Quick
            test_group_commit_kill_during_window_is_noop;
        ] );
      ( "misc",
        [
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "load and keys" `Quick test_load_and_keys;
          QCheck_alcotest.to_alcotest prop_abort_atomicity;
          QCheck_alcotest.to_alcotest prop_occ_oracle;
        ] );
    ]
