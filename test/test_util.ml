(* Tests for Icdb_util: PRNG, Zipf sampling, statistics, table rendering. *)

module Rng = Icdb_util.Rng
module Btree = Icdb_util.Btree
module Zipf = Icdb_util.Zipf
module Stats = Icdb_util.Stats
module Table = Icdb_util.Table
module Pool = Icdb_util.Pool

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  (* The split stream must not equal the parent's continuation. *)
  Alcotest.(check bool) "split differs" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in_range () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "singleton range" 9 (Rng.int_in_range rng ~lo:9 ~hi:9)

let test_rng_int_covers_range () =
  let rng = Rng.create 11L in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_float_bounds () =
  let rng = Rng.create 5L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)

let test_rng_bernoulli_rate () =
  let rng = Rng.create 5L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_exponential () =
  let rng = Rng.create 5L in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:4.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (mean > 3.8 && mean < 4.2)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 5L in
  let s = Rng.sample_distinct rng ~n:10 ~bound:12 in
  Alcotest.(check int) "10 values" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in bound" true (v >= 0 && v < 12)) s;
  let all = Rng.sample_distinct rng ~n:5 ~bound:5 in
  Alcotest.(check (list int)) "exhaustive sample" [ 0; 1; 2; 3; 4 ]
    (List.sort compare all)

(* --- Zipf --- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  for k = 0 to 3 do
    check_float "uniform prob" 0.25 (Zipf.probability z k)
  done

let test_zipf_probabilities_sum () =
  let z = Zipf.create ~n:100 ~theta:0.99 in
  let sum = ref 0.0 in
  for k = 0 to 99 do
    sum := !sum +. Zipf.probability z k
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !sum

let test_zipf_skew_ordering () =
  let z = Zipf.create ~n:10 ~theta:1.0 in
  for k = 0 to 8 do
    Alcotest.(check bool) "monotone decreasing" true
      (Zipf.probability z k > Zipf.probability z (k + 1))
  done

(* Regression for the fused single-array CDF build: it must reproduce the
   original three-array construction (weights array, fold, cdf fill)
   bit-for-bit — probabilities, and therefore every sample drawn through
   the shared Rng stream, may not move at all. *)
let test_zipf_matches_reference_build () =
  List.iter
    (fun (n, theta) ->
      let z = Zipf.create ~n ~theta in
      let weights =
        Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** theta))
      in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let cdf = Array.make n 0.0 in
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (weights.(k) /. total);
        cdf.(k) <- !acc
      done;
      cdf.(n - 1) <- 1.0;
      for k = 0 to n - 1 do
        let expected = if k = 0 then cdf.(0) else cdf.(k) -. cdf.(k - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "prob bit-identical n=%d theta=%g k=%d" n theta k)
          true
          (Zipf.probability z k = expected)
      done;
      (* and the sample stream is unchanged: binary search over an equal
         cdf consumes the same draws and lands on the same ranks *)
      let rng = Rng.create 123L in
      let reference_sample () =
        let u = Rng.float rng 1.0 in
        let rec search lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if cdf.(mid) > u then search lo mid else search (mid + 1) hi
        in
        search 0 (n - 1)
      in
      let rng' = Rng.create 123L in
      for _ = 1 to 500 do
        Alcotest.(check int) "sample stream unchanged" (reference_sample ())
          (Zipf.sample z rng')
      done)
    [ (1, 0.5); (7, 0.0); (100, 0.6); (1000, 0.99); (4096, 1.3) ]

let test_zipf_sample_range_and_skew () =
  let z = Zipf.create ~n:10 ~theta:1.2 in
  let rng = Rng.create 9L in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(9) * 3)

(* --- Stats --- *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  check_float "mean" 5.0 (Stats.Summary.mean s);
  check_float "min" 2.0 (Stats.Summary.min s);
  check_float "max" 9.0 (Stats.Summary.max s);
  check_float "total" 40.0 (Stats.Summary.total s);
  (* population variance is 4; sample variance = 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.Summary.variance s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check_float "mean of empty" 0.0 (Stats.Summary.mean s);
  check_float "variance of empty" 0.0 (Stats.Summary.variance s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s))

let test_sample_percentiles () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 15.0; 20.0; 35.0; 40.0; 50.0 ];
  check_float "p0 = min" 15.0 (Stats.Sample.percentile s 0.0);
  check_float "p100 = max" 50.0 (Stats.Sample.percentile s 100.0);
  check_float "median" 35.0 (Stats.Sample.median s);
  check_float "p25 interpolated" 20.0 (Stats.Sample.percentile s 25.0);
  check_float "p90 interpolated" 46.0 (Stats.Sample.percentile s 90.0)

let test_sample_grows () =
  let s = Stats.Sample.create () in
  for i = 1 to 1000 do
    Stats.Sample.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Sample.count s);
  check_float "mean" 500.5 (Stats.Sample.mean s)

let test_histogram () =
  let values = Array.init 100 float_of_int in
  let h = Stats.histogram ~buckets:10 values in
  Alcotest.(check int) "10 buckets" 10 (Array.length h);
  Array.iter (fun (_, c) -> Alcotest.(check int) "10 per bucket" 10 c) h;
  Alcotest.(check int) "empty input" 0 (Array.length (Stats.histogram ~buckets:4 [||]))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"demo" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && String.sub out 0 4 = "demo");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains "name" out);
  Alcotest.(check bool) "has row" true (contains "alpha" out);
  Alcotest.(check bool) "right-aligns numbers" true (contains "22" out)

let test_table_arity () =
  let t = Table.create ~title:"x" [ "a"; "b" ] in
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_fmt () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "int" "42" (Table.fmt_int 42);
  Alcotest.(check string) "ratio" "2.00x" (Table.fmt_ratio 4.0 2.0);
  Alcotest.(check string) "ratio by zero" "-" (Table.fmt_ratio 4.0 0.0)

(* --- Btree --- *)

let test_btree_empty () =
  let t : int Btree.t = Btree.create () in
  Alcotest.(check bool) "empty" true (Btree.is_empty t);
  Alcotest.(check int) "size" 0 (Btree.size t);
  Alcotest.(check (option int)) "find" None (Btree.find t "k");
  Alcotest.(check bool) "remove missing" false (Btree.remove t "k");
  Alcotest.(check (option (pair string int))) "min" None (Btree.min_binding t);
  Alcotest.(check (option (pair string int))) "max" None (Btree.max_binding t);
  Btree.invariant_check t

let test_btree_insert_find_replace () =
  let t = Btree.create () in
  Btree.insert t "b" 2;
  Btree.insert t "a" 1;
  Btree.insert t "c" 3;
  Alcotest.(check int) "size" 3 (Btree.size t);
  Alcotest.(check (option int)) "find b" (Some 2) (Btree.find t "b");
  Btree.insert t "b" 20;
  Alcotest.(check int) "replace keeps size" 3 (Btree.size t);
  Alcotest.(check (option int)) "replaced" (Some 20) (Btree.find t "b");
  Alcotest.(check (list (pair string int))) "ordered"
    [ ("a", 1); ("b", 20); ("c", 3) ] (Btree.to_list t);
  Btree.invariant_check t

let test_btree_many_inserts_balanced () =
  let t = Btree.create () in
  for i = 0 to 4999 do
    Btree.insert t (Printf.sprintf "%05d" i) i
  done;
  Btree.invariant_check t;
  Alcotest.(check int) "size" 5000 (Btree.size t);
  (* height must be logarithmic: order 16 -> 5000 keys fit in height <= 5 *)
  Alcotest.(check bool) "balanced height" true (Btree.height t <= 5);
  Alcotest.(check (option (pair string int))) "min" (Some ("00000", 0)) (Btree.min_binding t);
  Alcotest.(check (option (pair string int))) "max" (Some ("04999", 4999))
    (Btree.max_binding t)

let test_btree_delete_everything () =
  let t = Btree.create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Btree.insert t (Printf.sprintf "%05d" (i * 7 mod n)) i
  done;
  (* Delete in a different order than insertion. *)
  for i = n - 1 downto 0 do
    Alcotest.(check bool) "removed" true (Btree.remove t (Printf.sprintf "%05d" i));
    if i mod 97 = 0 then Btree.invariant_check t
  done;
  Alcotest.(check int) "empty again" 0 (Btree.size t);
  Btree.invariant_check t

let test_btree_iter_order () =
  let t = Btree.create () in
  let rng = Rng.create 3L in
  for _ = 1 to 500 do
    Btree.insert t (Printf.sprintf "%06d" (Rng.int rng 100000)) 0
  done;
  let keys = Btree.keys t in
  Alcotest.(check (list string)) "keys sorted" (List.sort compare keys) keys;
  Alcotest.(check int) "keys = size" (Btree.size t) (List.length keys)

let test_btree_range () =
  let t = Btree.create () in
  for i = 0 to 99 do
    Btree.insert t (Printf.sprintf "%03d" i) i
  done;
  let collect lo hi =
    let acc = ref [] in
    Btree.range t ~lo ~hi (fun _ v -> acc := v :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "closed range" [ 10; 11; 12 ]
    (collect (Some "010") (Some "012"));
  Alcotest.(check int) "open low" 13 (List.length (collect None (Some "012")));
  Alcotest.(check int) "open high" 10 (List.length (collect (Some "090") None));
  Alcotest.(check (list int)) "empty range" [] (collect (Some "500") (Some "600"))

module StrMap = Map.Make (String)

(* Model-based property: a random op sequence applied to the tree and to a
   Map agrees at every step, and the tree stays structurally valid. *)
let prop_btree_model =
  QCheck2.Test.make ~name:"btree agrees with Map under random ops" ~count:60
    QCheck2.Gen.(list_size (int_range 1 400) (pair (int_range 0 2) (int_range 0 60)))
    (fun ops ->
      let t = Btree.create () in
      let model = ref StrMap.empty in
      let ok = ref true in
      List.iteri
        (fun step (op, k) ->
          let key = Printf.sprintf "k%02d" k in
          (match op with
          | 0 ->
            Btree.insert t key step;
            model := StrMap.add key step !model
          | 1 ->
            let removed = Btree.remove t key in
            let expected = StrMap.mem key !model in
            if removed <> expected then ok := false;
            model := StrMap.remove key !model
          | _ ->
            if Btree.find t key <> StrMap.find_opt key !model then ok := false))
        ops;
      Btree.invariant_check t;
      !ok
      && Btree.size t = StrMap.cardinal !model
      && Btree.to_list t = StrMap.bindings !model)

(* --- property tests --- *)

let prop_rng_int_in_bounds =
  QCheck2.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_percentile_within_extremes =
  QCheck2.Test.make ~name:"percentile lies within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
    (fun values ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) values;
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      List.for_all
        (fun p ->
          let v = Stats.Sample.percentile s p in
          v >= lo -. 1e-9 && v <= hi +. 1e-9)
        [ 0.0; 10.0; 50.0; 90.0; 100.0 ])

let prop_zipf_sample_in_range =
  QCheck2.Test.make ~name:"zipf sample in range" ~count:200
    QCheck2.Gen.(triple (int_range 1 500) (float_bound_inclusive 2.0) int)
    (fun (n, theta, seed) ->
      let z = Zipf.create ~n ~theta in
      let rng = Rng.create (Int64.of_int seed) in
      let k = Zipf.sample z rng in
      k >= 0 && k < n)

(* --- Pool --- *)

let test_pool_preserves_order () =
  List.iter
    (fun jobs ->
      let tasks = List.init 50 (fun i () -> i * i) in
      Alcotest.(check (list int))
        (Printf.sprintf "results in task order (jobs=%d)" jobs)
        (List.init 50 (fun i -> i * i))
        (Pool.run ~jobs tasks))
    [ 1; 2; 4; 64 ]

let test_pool_jobs_one_inline () =
  (* jobs <= 1 must run on the calling domain, in order: observable through
     sequenced side effects. *)
  let log = ref [] in
  let tasks = List.init 5 (fun i () -> log := i :: !log; i) in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3; 4 ] (Pool.run ~jobs:1 tasks);
  Alcotest.(check (list int)) "sequential effects" [ 4; 3; 2; 1; 0 ] !log;
  Alcotest.(check (list int)) "empty task list" [] (Pool.run ~jobs:1 [])

let test_pool_propagates_exception () =
  List.iter
    (fun jobs ->
      let tasks =
        List.init 8 (fun i () -> if i = 3 then failwith "task 3 failed" else i)
      in
      Alcotest.check_raises
        (Printf.sprintf "first failure re-raised (jobs=%d)" jobs)
        (Failure "task 3 failed")
        (fun () -> ignore (Pool.run ~jobs tasks)))
    [ 1; 4 ];
  (* With several failures, the lowest-indexed one wins deterministically. *)
  let tasks = List.init 8 (fun i () -> if i >= 2 then failwith (string_of_int i) else i) in
  Alcotest.check_raises "lowest index wins" (Failure "2") (fun () ->
      ignore (Pool.run ~jobs:4 tasks))

let test_pool_more_jobs_than_tasks () =
  Alcotest.(check (list int)) "jobs > tasks" [ 7 ] (Pool.run ~jobs:16 [ (fun () -> 7) ])

(* --- Symbol interner --- *)

module Symbol = Icdb_util.Symbol

let test_symbol_roundtrip () =
  let tbl = Symbol.create () in
  let keys = [ "alpha"; "beta"; "gamma"; "site-a/x"; "" ] in
  let ids = List.map (Symbol.intern tbl) keys in
  List.iter2
    (fun key id -> Alcotest.(check string) "name round-trips" key (Symbol.name tbl id))
    keys ids;
  Alcotest.(check int) "count" (List.length keys) (Symbol.count tbl)

let test_symbol_dedup_and_density () =
  let tbl = Symbol.create ~capacity:2 () in
  let a = Symbol.intern tbl "a" in
  let b = Symbol.intern tbl "b" in
  Alcotest.(check int) "first id is 0" 0 a;
  Alcotest.(check int) "ids are dense" 1 b;
  Alcotest.(check int) "re-intern returns same id" a (Symbol.intern tbl "a");
  Alcotest.(check int) "no growth on re-intern" 2 (Symbol.count tbl);
  Alcotest.(check (option int)) "find existing" (Some b) (Symbol.find tbl "b");
  Alcotest.(check (option int)) "find missing assigns nothing" None (Symbol.find tbl "c");
  Alcotest.(check bool) "mem" true (Symbol.mem tbl "a");
  Alcotest.(check bool) "mem missing" false (Symbol.mem tbl "c")

let test_symbol_snapshot () =
  let tbl = Symbol.create () in
  List.iter (fun s -> ignore (Symbol.intern tbl s)) [ "x"; "y"; "z" ];
  let snap = Symbol.snapshot tbl in
  Alcotest.(check (array string)) "snapshot in id order" [| "x"; "y"; "z" |] snap;
  (* The snapshot is a copy: later interns must not show up in it. *)
  ignore (Symbol.intern tbl "w");
  Alcotest.(check int) "snapshot unchanged" 3 (Array.length snap)

let test_symbol_unknown_id () =
  let tbl = Symbol.create () in
  ignore (Symbol.intern tbl "only");
  Alcotest.(check bool) "unknown id raises" true
    (match Symbol.name tbl 7 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The property the parallel sweep relies on: each domain builds its own
   table, and the same intern sequence yields the same ids everywhere. *)
let test_symbol_deterministic_across_domains () =
  let keys = List.init 200 (fun i -> Printf.sprintf "obj-%d/p%d" (i mod 17) i) in
  let intern_all () =
    let tbl = Symbol.create () in
    List.map (Symbol.intern tbl) keys
  in
  let d1 = Domain.spawn intern_all and d2 = Domain.spawn intern_all in
  let ids1 = Domain.join d1 and ids2 = Domain.join d2 in
  Alcotest.(check (list int)) "same ids on every domain" (intern_all ()) ids1;
  Alcotest.(check (list int)) "domains agree" ids1 ids2

(* --- Sample sort cache --- *)

let test_sample_percentile_cache_invalidation () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 3.0; 1.0; 2.0 ];
  check_float "median before add" 2.0 (Stats.Sample.median s);
  check_float "median cached" 2.0 (Stats.Sample.median s);
  Stats.Sample.add s 10.0;
  check_float "p100 sees new value" 10.0 (Stats.Sample.percentile s 100.0);
  check_float "median after add" 2.5 (Stats.Sample.median s);
  (* The cache must not disturb insertion order. *)
  Alcotest.(check (array (float 1e-9)))
    "values keep insertion order" [| 3.0; 1.0; 2.0; 10.0 |] (Stats.Sample.values s)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample_distinct" `Quick test_rng_sample_distinct;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "theta=0 uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "probabilities sum to 1" `Quick test_zipf_probabilities_sum;
          Alcotest.test_case "skew ordering" `Quick test_zipf_skew_ordering;
          Alcotest.test_case "sample range and skew" `Quick test_zipf_sample_range_and_skew;
          Alcotest.test_case "matches pre-fusion reference build" `Quick
            test_zipf_matches_reference_build;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary basic" `Quick test_summary_basic;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "sample percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "sample grows" `Quick test_sample_grows;
          Alcotest.test_case "percentile cache invalidation" `Quick
            test_sample_percentile_cache_invalidation;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "symbol",
        [
          Alcotest.test_case "round-trip" `Quick test_symbol_roundtrip;
          Alcotest.test_case "dedup + dense ids" `Quick test_symbol_dedup_and_density;
          Alcotest.test_case "snapshot" `Quick test_symbol_snapshot;
          Alcotest.test_case "unknown id" `Quick test_symbol_unknown_id;
          Alcotest.test_case "deterministic across domains" `Quick
            test_symbol_deterministic_across_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "more jobs than tasks" `Quick test_pool_more_jobs_than_tasks;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity errors" `Quick test_table_arity;
          Alcotest.test_case "formatters" `Quick test_table_fmt;
        ] );
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "insert/find/replace" `Quick test_btree_insert_find_replace;
          Alcotest.test_case "many inserts balanced" `Quick test_btree_many_inserts_balanced;
          Alcotest.test_case "delete everything" `Quick test_btree_delete_everything;
          Alcotest.test_case "iter order" `Quick test_btree_iter_order;
          Alcotest.test_case "range" `Quick test_btree_range;
          QCheck_alcotest.to_alcotest prop_btree_model;
        ] );
      ( "properties",
        qc [ prop_rng_int_in_bounds; prop_percentile_within_extremes; prop_zipf_sample_in_range ]
      );
    ]
