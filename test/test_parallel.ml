(* Tests for the conservative parallel simulation: partitioned runs must be
   byte-identical to sequential ones — reports, metrics, chaos-campaign
   summaries — for any domain count. Also covers the scheduler primitives
   (global execution order across partitions), the persistent worker pool
   the core budget is shared through, and the symbol-table ownership
   check. *)

module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Campaign = Icdb_fault.Campaign
module Registry = Icdb_obs.Registry
module Export = Icdb_obs.Export
module Table = Icdb_util.Table
module Pool = Icdb_util.Pool
module Symbol = Icdb_util.Symbol
module Parallel = Icdb_sim.Parallel
module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber

(* --- scheduler primitives --- *)

let test_parallel_global_order () =
  (* Events scattered over three partition engines execute in global
     timestamp order, interleaved across partitions. *)
  let par = Parallel.create ~domains:3 () in
  let engines = Parallel.engines par in
  Alcotest.(check int) "size" 3 (Parallel.size par);
  let log = ref [] in
  let mark tag = log := tag :: !log in
  (* Partition p gets events at times p, p+3, p+6, ... so the global order
     round-robins over the partitions. *)
  Array.iteri
    (fun p eng ->
      for k = 0 to 3 do
        let t = float_of_int (p + (3 * k)) in
        ignore (Sim.schedule eng ~delay:t (fun () -> mark (p, k)))
      done)
    engines;
  Parallel.run par;
  let expect =
    List.concat_map (fun k -> List.map (fun p -> (p, k)) [ 0; 1; 2 ]) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (pair int int))) "global time order" expect (List.rev !log);
  Alcotest.(check int) "drained" 0 (Parallel.pending par)

let test_parallel_cross_partition_scheduling () =
  (* An event on partition 0 schedules work on partition 2 at an earlier
     horizon than partition 1's next event; the cross-scheduled event must
     still execute in timestamp order. *)
  let par = Parallel.create ~domains:3 () in
  let engines = Parallel.engines par in
  let log = ref [] in
  ignore
    (Sim.schedule engines.(0) ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore
           (Sim.schedule engines.(2) ~delay:1.0 (fun () -> log := "cross" :: !log))));
  ignore (Sim.schedule engines.(1) ~delay:5.0 (fun () -> log := "b" :: !log));
  Parallel.run par;
  Alcotest.(check (list string)) "cross event before later local one"
    [ "a"; "cross"; "b" ] (List.rev !log);
  (* Reusable: a second batch of events runs on the same scheduler. *)
  ignore (Sim.schedule engines.(1) ~delay:1.0 (fun () -> log := "again" :: !log));
  Parallel.run par;
  Alcotest.(check string) "second run works" "again" (List.hd !log)

let test_parallel_single_domain_uncoupled () =
  (* domains=1 is the plain sequential engine: fibers work and nothing is
     coupled. *)
  let par = Parallel.create ~domains:1 () in
  Alcotest.(check int) "one partition" 1 (Parallel.size par);
  let eng = (Parallel.engines par).(0) in
  let hit = ref false in
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 3.0;
      hit := true);
  Parallel.run par;
  Alcotest.(check bool) "fiber ran" true !hit

(* --- whole-run byte identity --- *)

let chaotic ?(seed = 42L) protocol sim_domains =
  {
    Runner.default with
    protocol;
    seed;
    n_txns = 60;
    n_sites = 4;
    concurrency = 8;
    accounts_per_site = 8;
    p_intended_abort = 0.1;
    p_spontaneous = 0.1;
    crash_rate = 3.0;
    crash_duration = 20.0;
    message_loss = 0.1;
    zipf_theta = 0.9;
    sim_domains;
  }

let run_with_metrics cfg =
  let registry = Registry.create () in
  let report = Runner.run ~registry cfg in
  (report, Export.metrics_json registry)

let test_partitioned_run_identical () =
  List.iter
    (fun protocol ->
      let name = Protocol.name protocol in
      let base, base_metrics = run_with_metrics (chaotic protocol 1) in
      List.iter
        (fun n ->
          let r, metrics = run_with_metrics (chaotic protocol n) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: report identical at N=%d" name n)
            true (r = base);
          Alcotest.(check string)
            (Printf.sprintf "%s: metrics identical at N=%d" name n)
            base_metrics metrics)
        [ 2; 4 ])
    [ Protocol.Two_phase; Protocol.Before; Protocol.Before_mlt; Protocol.Hybrid ]

let test_partitioned_more_domains_than_sites () =
  (* More partitions than sites: the extra partitions simply stay empty. *)
  let r = Runner.run { (chaotic Protocol.Two_phase 8) with n_sites = 2 } in
  Alcotest.(check bool) "still conserved" true r.money_conserved;
  let base = Runner.run { (chaotic Protocol.Two_phase 1) with n_sites = 2 } in
  Alcotest.(check bool) "equal to sequential" true (r = base)

(* QCheck2 property: a partitioned run of a random small federation equals
   the sequential run — random protocol, topology, latency (including the
   1.0 minimum-latency edge), partition count 1-4 and seed. *)
let prop_partitioned_equals_sequential =
  QCheck2.Test.make ~name:"partitioned run equals sequential run" ~count:12
    QCheck2.Gen.(
      tup6 (int_range 0 5) (int_range 1 4) (int_range 1 4) (int_range 0 2) int bool)
    (fun (proto_idx, n_sites, domains, lat_idx, seed, lossy) ->
      let protocol = List.nth Protocol.all proto_idx in
      let latency = List.nth [ 1.0; 2.5; 7.0 ] lat_idx in
      let cfg sim_domains =
        {
          Runner.default with
          protocol;
          seed = Int64.of_int seed;
          n_sites;
          branches_per_txn = min 2 n_sites;
          accounts_per_site = 6;
          n_txns = 25;
          concurrency = 6;
          latency;
          p_intended_abort = 0.1;
          crash_rate = 2.0;
          crash_duration = 15.0;
          message_loss = (if lossy then 0.05 else 0.0);
          zipf_theta = 0.9;
          sim_domains;
        }
      in
      Runner.run (cfg domains) = Runner.run (cfg 1))

(* --- chaos campaign under partitioning --- *)

let test_chaos_campaign_partitioned () =
  (* The full satellite acceptance: >= 20 plans x 6 protocols at N=2, zero
     violations, and the rendered summaries byte-identical to N=1. *)
  let plans = 20 and seed = 42L in
  let render stats =
    Table.render (Campaign.stats_table ~plans ~seed stats)
    ^ "\n" ^ Campaign.trips_summary stats
  in
  let seq = Campaign.run_campaign ~seed ~plans Protocol.all in
  let par = Campaign.run_campaign ~seed ~sim_domains:2 ~plans Protocol.all in
  Alcotest.(check int) "zero violations at N=2" 0 (Campaign.total_violations par);
  Alcotest.(check string) "summaries byte-identical" (render seq) (render par)

(* --- persistent pool (core-budget sharing) --- *)

let test_pool_persistent_batches () =
  let pool = Pool.create ~size:3 in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  Alcotest.(check (list int)) "first batch in order"
    (List.init 20 (fun i -> i * i))
    (Pool.exec pool (List.init 20 (fun i () -> i * i)));
  Alcotest.(check (list int)) "workers reused for a second batch"
    (List.init 7 succ)
    (Pool.exec pool (List.init 7 (fun i () -> i + 1)));
  Alcotest.check_raises "lowest-indexed failure wins" (Failure "2") (fun () ->
      ignore
        (Pool.exec pool
           (List.init 6 (fun i () -> if i >= 2 then failwith (string_of_int i) else i))));
  Alcotest.(check (list int)) "pool survives a failed batch" [ 9 ]
    (Pool.exec pool [ (fun () -> 9) ]);
  Pool.shutdown pool

(* --- symbol-table ownership check --- *)

let test_symbol_ownership () =
  let tbl = Symbol.create () in
  ignore (Symbol.intern tbl "setup");
  Symbol.set_debug true;
  Fun.protect
    ~finally:(fun () -> Symbol.set_debug false)
    (fun () ->
      Symbol.seal tbl;
      (* The sealing domain stays an owner. *)
      Alcotest.(check bool) "owner interns" true (Symbol.intern tbl "owner-new" >= 0);
      (* Foreign domain: looking up an existing symbol is always fine. *)
      let lookup = Domain.spawn (fun () -> Symbol.intern tbl "setup") in
      Alcotest.(check int) "foreign lookup ok" (Symbol.intern tbl "setup")
        (Domain.join lookup);
      (* ... but interning a new string without allow fails fast. *)
      let rejected =
        Domain.spawn (fun () ->
            match Symbol.intern tbl "foreign-new" with
            | _ -> false
            | exception Failure _ -> true)
      in
      Alcotest.(check bool) "foreign new intern rejected" true (Domain.join rejected);
      (* An allowed domain interns freely. *)
      let allowed =
        Domain.spawn (fun () ->
            Symbol.allow tbl;
            Symbol.intern tbl "allowed-new" >= 0)
      in
      Alcotest.(check bool) "allowed domain interns" true (Domain.join allowed))

let () =
  Alcotest.run "parallel"
    [
      ( "scheduler",
        [
          Alcotest.test_case "global order across partitions" `Quick
            test_parallel_global_order;
          Alcotest.test_case "cross-partition scheduling" `Quick
            test_parallel_cross_partition_scheduling;
          Alcotest.test_case "single domain uncoupled" `Quick
            test_parallel_single_domain_uncoupled;
        ] );
      ( "byte identity",
        [
          Alcotest.test_case "reports + metrics, N in {1,2,4}" `Slow
            test_partitioned_run_identical;
          Alcotest.test_case "more domains than sites" `Quick
            test_partitioned_more_domains_than_sites;
          QCheck_alcotest.to_alcotest prop_partitioned_equals_sequential;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "campaign at N=2 equals N=1" `Slow
            test_chaos_campaign_partitioned;
        ] );
      ( "pool",
        [ Alcotest.test_case "persistent batches" `Quick test_pool_persistent_batches ] );
      ( "symbol",
        [ Alcotest.test_case "ownership check" `Quick test_symbol_ownership ] );
    ]
