(* Tests for Icdb_lock: mode lattice and the blocking lock table. *)

module Engine = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Mode = Icdb_lock.Mode
module Lock = Icdb_lock.Lock_table

let outcome_testable =
  Alcotest.testable
    (fun fmt -> function
      | Lock.Granted -> Format.pp_print_string fmt "granted"
      | Lock.Timeout -> Format.pp_print_string fmt "timeout"
      | Lock.Deadlock -> Format.pp_print_string fmt "deadlock")
    ( = )

(* --- Mode --- *)

let test_mode_compat_matrix () =
  let open Mode in
  Alcotest.(check bool) "S-S" true (compatible Shared Shared);
  Alcotest.(check bool) "S-X" false (compatible Shared Exclusive);
  Alcotest.(check bool) "X-S" false (compatible Exclusive Shared);
  Alcotest.(check bool) "X-X" false (compatible Exclusive Exclusive);
  Alcotest.(check bool) "I-I" true (compatible Increment Increment);
  Alcotest.(check bool) "I-S" false (compatible Increment Shared);
  Alcotest.(check bool) "S-I" false (compatible Shared Increment);
  Alcotest.(check bool) "I-X" false (compatible Increment Exclusive)

let test_mode_combine () =
  let open Mode in
  Alcotest.(check bool) "S+S=S" true (combine Shared Shared = Shared);
  Alcotest.(check bool) "I+I=I" true (combine Increment Increment = Increment);
  Alcotest.(check bool) "S+X=X" true (combine Shared Exclusive = Exclusive);
  Alcotest.(check bool) "S+I=X" true (combine Shared Increment = Exclusive);
  Alcotest.(check bool) "covers: X covers S" true (covers ~held:Exclusive ~want:Shared);
  Alcotest.(check bool) "covers: S not I" false (covers ~held:Shared ~want:Increment)

(* --- Lock table helpers --- *)

let make_table eng =
  Lock.create eng
    ~syms:(Icdb_util.Symbol.create ())
    ~compatible:Mode.compatible ~combine:Mode.combine

let run_engine f =
  let eng = Engine.create () in
  let r = f eng in
  Engine.run eng;
  r

(* --- Grant semantics --- *)

let test_shared_locks_coexist () =
  run_engine (fun eng ->
      let t = make_table eng in
      let done_count = ref 0 in
      for owner = 1 to 3 do
        Fiber.spawn eng (fun () ->
            match Lock.acquire t ~owner ~obj:(Lock.intern t "k") ~mode:Mode.Shared () with
            | Lock.Granted -> incr done_count
            | _ -> Alcotest.fail "shared should grant")
      done;
      ignore
        (Engine.schedule eng ~delay:1.0 (fun () ->
             Alcotest.(check int) "all granted" 3 !done_count;
             Alcotest.(check int) "three holders" 3 (List.length (Lock.holders t ~obj:(Lock.intern t "k"))))))

let test_exclusive_blocks_until_release () =
  run_engine (fun eng ->
      let t = make_table eng in
      let order = ref [] in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          order := "t1-granted" :: !order;
          Fiber.sleep eng 10.0;
          Lock.release t ~owner:1 ~obj:(Lock.intern t "k");
          order := "t1-released" :: !order);
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          match Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive () with
          | Lock.Granted -> order := "t2-granted" :: !order
          | _ -> Alcotest.fail "should eventually grant");
      ignore
        (Engine.schedule eng ~delay:20.0 (fun () ->
             Alcotest.(check (list string)) "waiter granted after release"
               [ "t1-granted"; "t1-released"; "t2-granted" ]
               (List.rev !order))))

let test_fifo_fairness () =
  run_engine (fun eng ->
      let t = make_table eng in
      let order = ref [] in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 5.0;
          Lock.release t ~owner:1 ~obj:(Lock.intern t "k"));
      for owner = 2 to 4 do
        Fiber.spawn eng (fun () ->
            (* Stagger arrival so queue order is 2,3,4. *)
            Fiber.sleep eng (float_of_int owner *. 0.1);
            ignore (Lock.acquire t ~owner ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
            order := owner :: !order;
            Fiber.sleep eng 1.0;
            Lock.release t ~owner ~obj:(Lock.intern t "k"))
      done;
      ignore
        (Engine.schedule eng ~delay:30.0 (fun () ->
             Alcotest.(check (list int)) "FIFO" [ 2; 3; 4 ] (List.rev !order))))

let test_shared_must_wait_behind_queued_exclusive () =
  (* No starvation: a new S request queues behind a waiting X. *)
  run_engine (fun eng ->
      let t = make_table eng in
      let order = ref [] in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          Fiber.sleep eng 5.0;
          Lock.release t ~owner:1 ~obj:(Lock.intern t "k"));
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          ignore (Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          order := "x" :: !order;
          Fiber.sleep eng 1.0;
          Lock.release t ~owner:2 ~obj:(Lock.intern t "k"));
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 2.0;
          (* S would be compatible with holder 1, but X is queued first. *)
          ignore (Lock.acquire t ~owner:3 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          order := "s" :: !order);
      ignore
        (Engine.schedule eng ~delay:30.0 (fun () ->
             Alcotest.(check (list string)) "X before late S" [ "x"; "s" ] (List.rev !order))))

let test_increment_locks_coexist () =
  run_engine (fun eng ->
      let t = make_table eng in
      let granted = ref 0 in
      for owner = 1 to 4 do
        Fiber.spawn eng (fun () ->
            match Lock.acquire t ~owner ~obj:(Lock.intern t "ctr") ~mode:Mode.Increment () with
            | Lock.Granted -> incr granted
            | _ -> Alcotest.fail "increment locks must coexist")
      done;
      ignore
        (Engine.schedule eng ~delay:1.0 (fun () ->
             Alcotest.(check int) "all four granted concurrently" 4 !granted)))

let test_reentrant_and_upgrade () =
  run_engine (fun eng ->
      let t = make_table eng in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          (* Re-entrant shared: immediate. *)
          Alcotest.check outcome_testable "reentrant S" Lock.Granted
            (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          (* Upgrade to X with no other holder: immediate. *)
          Alcotest.check outcome_testable "upgrade to X" Lock.Granted
            (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Alcotest.(check (list (pair int (Alcotest.testable Mode.pp ( = )))))
            "holds X" [ (1, Mode.Exclusive) ] (Lock.holders t ~obj:(Lock.intern t "k"))))

let test_upgrade_waits_for_other_reader () =
  run_engine (fun eng ->
      let t = make_table eng in
      let upgraded_at = ref 0.0 in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          Fiber.sleep eng 5.0;
          Lock.release t ~owner:1 ~obj:(Lock.intern t "k"));
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Shared ());
          Fiber.sleep eng 1.0;
          (match Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive () with
          | Lock.Granted -> upgraded_at := Engine.now eng
          | _ -> Alcotest.fail "upgrade should grant eventually"));
      ignore
        (Engine.schedule eng ~delay:30.0 (fun () ->
             Alcotest.(check (float 1e-9)) "upgrade granted at release" 5.0 !upgraded_at)))

let test_try_acquire () =
  run_engine (fun eng ->
      let t = make_table eng in
      Alcotest.(check bool) "free grant" true
        (Lock.try_acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive);
      Alcotest.(check bool) "conflicting refused" false
        (Lock.try_acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Shared);
      Alcotest.(check bool) "reentrant ok" true
        (Lock.try_acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Shared))

(* --- Deadlock / timeout --- *)

let test_deadlock_detected () =
  run_engine (fun eng ->
      let t = make_table eng in
      let outcomes = ref [] in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "a") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 1.0;
          let o = Lock.acquire t ~owner:1 ~obj:(Lock.intern t "b") ~mode:Mode.Exclusive () in
          outcomes := (1, o) :: !outcomes;
          if o = Lock.Deadlock then Lock.release_all t ~owner:1);
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:2 ~obj:(Lock.intern t "b") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 2.0;
          let o = Lock.acquire t ~owner:2 ~obj:(Lock.intern t "a") ~mode:Mode.Exclusive () in
          outcomes := (2, o) :: !outcomes);
      ignore
        (Engine.schedule eng ~delay:60.0 (fun () ->
             (* Owner 2's request closes the cycle and is denied; owner 1 is
                then granted after 2... actually owner 2 is the victim. *)
             let o2 = List.assoc 2 !outcomes in
             Alcotest.check outcome_testable "requester is victim" Lock.Deadlock o2;
             Alcotest.(check int) "one deadlock counted" 1 (Lock.deadlock_count t))))

let test_timeout () =
  run_engine (fun eng ->
      let t = make_table eng in
      let result = ref Lock.Granted in
      let finished_at = ref 0.0 in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 100.0;
          Lock.release_all t ~owner:1);
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          result := Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ~timeout:5.0 ();
          finished_at := Engine.now eng);
      ignore
        (Engine.schedule eng ~delay:200.0 (fun () ->
             Alcotest.check outcome_testable "timed out" Lock.Timeout !result;
             Alcotest.(check (float 1e-9)) "after 5 units" 6.0 !finished_at;
             Alcotest.(check int) "timeout counted" 1 (Lock.timeout_count t))))

let test_timed_out_waiter_does_not_hold () =
  run_engine (fun eng ->
      let t = make_table eng in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 10.0;
          Lock.release_all t ~owner:1);
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          ignore (Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ~timeout:2.0 ()));
      ignore
        (Engine.schedule eng ~delay:50.0 (fun () ->
             Alcotest.(check (list (pair int (Alcotest.testable Mode.pp ( = )))))
               "no stale holder" [] (Lock.holders t ~obj:(Lock.intern t "k")))))

(* --- release_all / reset --- *)

let test_release_all () =
  run_engine (fun eng ->
      let t = make_table eng in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "a") ~mode:Mode.Exclusive ());
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "b") ~mode:Mode.Shared ());
          Alcotest.(check int) "holds two" 2 (List.length (Lock.held t ~owner:1));
          Lock.release_all t ~owner:1;
          Alcotest.(check int) "holds none" 0 (List.length (Lock.held t ~owner:1))))

let test_release_all_cancels_wait () =
  run_engine (fun eng ->
      let t = make_table eng in
      let revoked = ref false in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 50.0;
          Lock.release_all t ~owner:1);
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          match Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive () with
          | _ -> Alcotest.fail "should have been revoked"
          | exception Lock.Lock_revoked -> revoked := true);
      (* A third party aborts owner 2 while it waits. *)
      ignore (Engine.schedule eng ~delay:5.0 (fun () -> Lock.release_all t ~owner:2));
      ignore
        (Engine.schedule eng ~delay:100.0 (fun () ->
             Alcotest.(check bool) "wait revoked" true !revoked)))

let test_reset_wakes_everyone () =
  run_engine (fun eng ->
      let t = make_table eng in
      let revoked = ref 0 in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 50.0);
      for owner = 2 to 4 do
        Fiber.spawn eng (fun () ->
            Fiber.sleep eng 1.0;
            match Lock.acquire t ~owner ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive () with
            | _ -> ()
            | exception Lock.Lock_revoked -> incr revoked)
      done;
      ignore (Engine.schedule eng ~delay:5.0 (fun () -> Lock.reset t));
      ignore
        (Engine.schedule eng ~delay:100.0 (fun () ->
             Alcotest.(check int) "all waiters revoked" 3 !revoked;
             Alcotest.(check int) "table empty" 0 (List.length (Lock.holders t ~obj:(Lock.intern t "k"))))))

(* --- metrics --- *)

let test_hold_time_hook () =
  run_engine (fun eng ->
      let t = make_table eng in
      let durations = ref [] in
      Lock.set_hold_time_hook t (fun ~obj:_ ~duration -> durations := duration :: !durations);
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 7.0;
          Lock.release t ~owner:1 ~obj:(Lock.intern t "k"));
      ignore
        (Engine.schedule eng ~delay:20.0 (fun () ->
             Alcotest.(check (list (float 1e-9))) "held for 7" [ 7.0 ] !durations)))

let test_counters () =
  run_engine (fun eng ->
      let t = make_table eng in
      Fiber.spawn eng (fun () ->
          ignore (Lock.acquire t ~owner:1 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ());
          Fiber.sleep eng 2.0;
          Lock.release_all t ~owner:1);
      Fiber.spawn eng (fun () ->
          Fiber.sleep eng 1.0;
          ignore (Lock.acquire t ~owner:2 ~obj:(Lock.intern t "k") ~mode:Mode.Exclusive ()));
      ignore
        (Engine.schedule eng ~delay:20.0 (fun () ->
             Alcotest.(check int) "two acquisitions" 2 (Lock.acquisition_count t);
             Alcotest.(check int) "one wait" 1 (Lock.wait_count t);
             Alcotest.(check int) "none blocked now" 0 (Lock.blocked_count t))))

(* Property: whatever sequence of try_acquire / release / release_all is
   applied, the granted holders on every object stay pairwise compatible
   (different owners) — the fundamental lock-table invariant. *)
let prop_holders_pairwise_compatible =
  QCheck2.Test.make ~name:"holders stay pairwise compatible" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (tup4 (int_range 0 2) (int_range 1 5) (int_range 0 3) (int_range 0 2)))
    (fun ops ->
      let eng = Engine.create () in
      let t = make_table eng in
      let mode_of = function
        | 0 -> Mode.Shared
        | 1 -> Mode.Exclusive
        | _ -> Mode.Increment
      in
      let ok = ref true in
      List.iter
        (fun (op, owner, obj_i, mode_i) ->
          let obj = Lock.intern t (Printf.sprintf "o%d" obj_i) in
          (match op with
          | 0 -> ignore (Lock.try_acquire t ~owner ~obj ~mode:(mode_of mode_i))
          | 1 -> Lock.release t ~owner ~obj
          | _ -> Lock.release_all t ~owner);
          for oi = 0 to 3 do
            let holders = Lock.holders t ~obj:(Lock.intern t (Printf.sprintf "o%d" oi)) in
            List.iter
              (fun (o1, m1) ->
                List.iter
                  (fun (o2, m2) ->
                    if o1 < o2 && not (Mode.compatible m1 m2) then ok := false)
                  holders)
              holders
          done)
        ops;
      !ok)

(* Equivalence with the pre-interning string-keyed table: a reference model
   keyed directly by object *names* replays the same try_acquire / release /
   release_all sequence and must agree with the symbol-keyed table on every
   outcome and every holder set. This pins down that interning changed the
   representation only, not the grant semantics. *)
module StrMap = Map.Make (String)

let prop_interned_matches_string_model =
  QCheck2.Test.make ~name:"interned table matches string-keyed model" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (tup4 (int_range 0 2) (int_range 1 5) (int_range 0 4) (int_range 0 2)))
    (fun ops ->
      let eng = Engine.create () in
      let t = make_table eng in
      let model = ref StrMap.empty in
      let mode_of = function
        | 0 -> Mode.Shared
        | 1 -> Mode.Exclusive
        | _ -> Mode.Increment
      in
      let model_holders name = try StrMap.find name !model with Not_found -> [] in
      (* Seed grant rule: reentrant requests combine with the held mode and
         are checked only against *other* holders. No fiber ever blocks in
         this sequence, so the no-active-waiters side condition is vacuous. *)
      let model_try_acquire ~owner ~name ~mode =
        let holders = model_holders name in
        let held = List.assoc_opt owner holders in
        let want = match held with Some hm -> Mode.combine hm mode | None -> mode in
        let ok =
          List.for_all (fun (o, hm) -> o = owner || Mode.compatible hm want) holders
        in
        if ok then begin
          let holders' =
            match held with
            | Some _ ->
              List.map (fun (o, hm) -> if o = owner then (o, want) else (o, hm)) holders
            | None -> (owner, mode) :: holders
          in
          model := StrMap.add name holders' !model
        end;
        ok
      in
      let model_release ~owner ~name =
        model :=
          StrMap.add name (List.filter (fun (o, _) -> o <> owner) (model_holders name)) !model
      in
      let ok = ref true in
      List.iter
        (fun (op, owner, obj_i, mode_i) ->
          let name = Printf.sprintf "o%d" obj_i in
          (match op with
          | 0 ->
            let mode = mode_of mode_i in
            let got = Lock.try_acquire t ~owner ~obj:(Lock.intern t name) ~mode in
            let want = model_try_acquire ~owner ~name ~mode in
            if got <> want then ok := false
          | 1 ->
            Lock.release t ~owner ~obj:(Lock.intern t name);
            model_release ~owner ~name
          | _ ->
            Lock.release_all t ~owner;
            StrMap.iter (fun name _ -> model_release ~owner ~name) !model);
          for oi = 0 to 5 do
            let name = Printf.sprintf "o%d" oi in
            let got = Lock.holders t ~obj:(Lock.intern t name) in
            let want = List.sort compare (model_holders name) in
            if got <> want then ok := false
          done)
        ops;
      !ok)

let () =
  Alcotest.run "lock"
    [
      ( "mode",
        [
          Alcotest.test_case "compatibility matrix" `Quick test_mode_compat_matrix;
          Alcotest.test_case "combine/covers" `Quick test_mode_combine;
        ] );
      ( "grant",
        [
          Alcotest.test_case "shared coexist" `Quick test_shared_locks_coexist;
          Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks_until_release;
          Alcotest.test_case "fifo" `Quick test_fifo_fairness;
          Alcotest.test_case "no reader starvation of writers" `Quick
            test_shared_must_wait_behind_queued_exclusive;
          Alcotest.test_case "increment coexist" `Quick test_increment_locks_coexist;
          Alcotest.test_case "reentrant and upgrade" `Quick test_reentrant_and_upgrade;
          Alcotest.test_case "upgrade waits" `Quick test_upgrade_waits_for_other_reader;
          Alcotest.test_case "try_acquire" `Quick test_try_acquire;
        ] );
      ( "failures",
        [
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "timed-out waiter absent" `Quick test_timed_out_waiter_does_not_hold;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "release_all" `Quick test_release_all;
          Alcotest.test_case "release_all cancels wait" `Quick test_release_all_cancels_wait;
          Alcotest.test_case "reset wakes everyone" `Quick test_reset_wakes_everyone;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hold time hook" `Quick test_hold_time_hook;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_holders_pairwise_compatible;
          QCheck_alcotest.to_alcotest prop_interned_matches_string_model;
        ] );
    ]
