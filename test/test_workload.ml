(* Tests for Icdb_workload: protocol selection and the experiment runner,
   including the whole-system property: atomicity (money conservation) and
   global serializability hold for every protocol under randomized load and
   failures. *)

module Runner = Icdb_workload.Runner
module Protocol = Icdb_workload.Protocol
module Experiments = Icdb_workload.Experiments

let test_protocol_parse () =
  Alcotest.(check bool) "2pc" true (Protocol.of_string "2pc" = Ok Protocol.Two_phase);
  Alcotest.(check bool) "after" true (Protocol.of_string "after" = Ok Protocol.After);
  Alcotest.(check bool) "before" true (Protocol.of_string "before" = Ok Protocol.Before);
  Alcotest.(check bool) "mlt" true (Protocol.of_string "before-mlt" = Ok Protocol.Before_mlt);
  Alcotest.(check bool) "unknown" true (Result.is_error (Protocol.of_string "paxos"))

let test_protocol_names_unique () =
  let names = List.map Protocol.name Protocol.all in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let small protocol =
  { Runner.default with protocol; n_txns = 40; concurrency = 4; accounts_per_site = 8 }

let test_runner_happy_path_all_protocols () =
  List.iter
    (fun protocol ->
      let r = Runner.run (small protocol) in
      Alcotest.(check int) (Protocol.name protocol ^ " all committed") 40 r.committed;
      Alcotest.(check bool) "money conserved" true r.money_conserved;
      Alcotest.(check bool) "serializable" true r.serializable;
      Alcotest.(check bool) "throughput positive" true (r.throughput > 0.0))
    Protocol.all

let test_runner_deterministic () =
  let r1 = Runner.run (small Protocol.Before) in
  let r2 = Runner.run (small Protocol.Before) in
  Alcotest.(check (float 1e-9)) "same elapsed" r1.elapsed r2.elapsed;
  Alcotest.(check int) "same messages" r1.messages r2.messages;
  Alcotest.(check int) "same committed" r1.committed r2.committed

let test_runner_seed_changes_schedule () =
  (* Under failures, seeds produce visibly different histories. (A failure-
     free run can legitimately produce identical timing for any seed: every
     transaction has the same shape.) *)
  let chaos seed =
    let r =
      Runner.run
        {
          (small Protocol.Before) with
          seed;
          p_intended_abort = 0.3;
          p_spontaneous = 0.2;
          n_txns = 60;
        }
    in
    (r.committed, r.aborted, r.elapsed, r.messages, r.compensations)
  in
  Alcotest.(check bool) "different schedule" true (chaos 42L <> chaos 43L)

let test_runner_2pc_needs_prepare () =
  let r = Runner.run { (small Protocol.Two_phase) with prepare_capable = false } in
  Alcotest.(check int) "nothing commits" 0 r.committed;
  Alcotest.(check int) "all aborted" 40 r.aborted

let test_runner_intended_aborts_compensate () =
  let r =
    Runner.run { (small Protocol.Before) with p_intended_abort = 0.3; n_txns = 60 }
  in
  Alcotest.(check bool) "some aborts" true (r.aborted > 0);
  Alcotest.(check bool) "compensations happened" true (r.compensations > 0);
  Alcotest.(check bool) "money conserved" true r.money_conserved

let test_runner_spontaneous_aborts_repetitions () =
  let r =
    Runner.run
      { (small Protocol.After) with p_spontaneous = 0.25; n_txns = 80; concurrency = 8 }
  in
  Alcotest.(check bool) "some repetitions" true (r.repetitions > 0);
  Alcotest.(check bool) "money conserved" true r.money_conserved;
  Alcotest.(check bool) "serializable" true r.serializable

let test_runner_crashes_survive () =
  List.iter
    (fun protocol ->
      let r =
        Runner.run
          {
            (small protocol) with
            crash_rate = 8.0;
            crash_duration = 20.0;
            n_txns = 60;
            concurrency = 8;
          }
      in
      Alcotest.(check bool)
        (Protocol.name protocol ^ " money conserved under crashes")
        true r.money_conserved;
      Alcotest.(check bool) "serializable" true r.serializable)
    Protocol.all

let test_runner_message_complexity () =
  (* V5's shape: commit-before uses 8 messages per committed transaction at
     2 branches; 2PC and commit-after use 12. *)
  let msgs protocol =
    (Runner.run (small protocol)).messages_per_committed
  in
  Alcotest.(check (float 0.01)) "2pc" 12.0 (msgs Protocol.Two_phase);
  Alcotest.(check (float 0.01)) "after" 12.0 (msgs Protocol.After);
  Alcotest.(check (float 0.01)) "before" 8.0 (msgs Protocol.Before);
  Alcotest.(check (float 0.01)) "before-mlt" 8.0 (msgs Protocol.Before_mlt)

let test_runner_mlt_no_additional_components () =
  (* V4: the MLT-fused protocol performs no additional-CC work and writes no
     additional undo-log; the standalone form does both. *)
  let mlt = Runner.run (small Protocol.Before_mlt) in
  Alcotest.(check int) "no additional CC" 0 mlt.global_cc_acquisitions;
  Alcotest.(check int) "no additional undo-log writes" 0 mlt.undo_log_writes;
  Alcotest.(check bool) "inherent L1 work instead" true (mlt.l1_acquisitions > 0);
  Alcotest.(check bool) "inherent L1 log instead" true (mlt.mlt_log_writes > 0);
  let standalone = Runner.run (small Protocol.Before) in
  Alcotest.(check bool) "standalone uses additional CC" true
    (standalone.global_cc_acquisitions > 0);
  Alcotest.(check bool) "standalone writes undo-log" true (standalone.undo_log_writes > 0)

let test_runner_heterogeneous_cc () =
  (* Every third site optimistic: validation failures become spontaneous
     local aborts; atomicity must still hold for the before/after/hybrid
     protocols (2PC cannot prepare an optimistic site). *)
  List.iter
    (fun protocol ->
      let r =
        Runner.run
          {
            (small protocol) with
            heterogeneous_cc = true;
            n_sites = 3;
            n_txns = 80;
            concurrency = 8;
            zipf_theta = 1.0;
          }
      in
      Alcotest.(check bool)
        (Protocol.name protocol ^ " commits on heterogeneous CC")
        true (r.committed > 0);
      Alcotest.(check bool) "money conserved" true r.money_conserved;
      Alcotest.(check bool) "serializable" true r.serializable)
    [ Protocol.After; Protocol.Before; Protocol.Before_mlt; Protocol.Hybrid ]

let test_runner_2pc_refuses_optimistic_site () =
  let r =
    Runner.run
      { (small Protocol.Two_phase) with heterogeneous_cc = true; n_sites = 3; n_txns = 30 }
  in
  (* Any transaction drawing the optimistic site aborts with
     Unsupported_site; money must still be conserved. *)
  Alcotest.(check bool) "some aborts" true (r.aborted > 0);
  Alcotest.(check bool) "money conserved" true r.money_conserved

let test_runner_message_loss_invariants () =
  (* A lossy wire (at-least-once delivery with dedup) plus kills and
     intended aborts: atomicity and serializability must be untouched. *)
  List.iter
    (fun protocol ->
      let r =
        Runner.run
          {
            (small protocol) with
            message_loss = 0.15;
            p_spontaneous = 0.1;
            p_intended_abort = 0.1;
            n_txns = 60;
          }
      in
      Alcotest.(check bool)
        (Protocol.name protocol ^ " drops happened")
        true (r.messages_dropped > 0);
      Alcotest.(check bool) "money conserved" true r.money_conserved;
      Alcotest.(check bool) "serializable" true r.serializable)
    Protocol.all

let test_runner_read_write_mix () =
  let r =
    Runner.run
      { (small Protocol.Before) with use_increments = false; read_fraction = 0.7 }
  in
  Alcotest.(check int) "all committed" 40 r.committed;
  Alcotest.(check bool) "serializable" true r.serializable

let test_experiments_parallel_equals_sequential () =
  (* The full sweep farmed out to 4 domains must concatenate to exactly the
     sequential report: every experiment is an independent deterministically
     seeded simulation, and the pool preserves registry order. *)
  let sequential = Experiments.run_all ~jobs:1 () in
  let parallel = Experiments.run_all ~jobs:4 () in
  Alcotest.(check bool) "non-trivial output" true (String.length sequential > 1000);
  Alcotest.(check string) "byte-identical" sequential parallel

(* --- commit-overhead batching (Overhead lab) --- *)

module Overhead = Icdb_workload.Overhead

let overhead_cfg ?(n_txns = Overhead.default.Overhead.n_txns)
    ?(concurrency = Overhead.default.Overhead.concurrency) ?seed protocol window =
  {
    Overhead.default with
    protocol;
    seed = Option.value seed ~default:Overhead.default.Overhead.seed;
    n_txns;
    concurrency;
    msg_batch_window = window;
    central_gc_window = window;
    group_commit_window = window;
  }

let test_batching_preserves_outcomes () =
  (* For every protocol, any batching window leaves the per-transaction
     commit/abort outcomes untouched and keeps the invariants: only timing
     and message accounting may move. *)
  List.iter
    (fun protocol ->
      let name = Protocol.name protocol in
      let base = Overhead.run (overhead_cfg ~n_txns:60 ~concurrency:8 protocol None) in
      Alcotest.(check bool) (name ^ " base money") true base.money_conserved;
      Alcotest.(check bool) (name ^ " base serializable") true base.serializable;
      List.iter
        (fun window ->
          let r =
            Overhead.run
              (overhead_cfg ~n_txns:60 ~concurrency:8 protocol (Some window))
          in
          let label = Printf.sprintf "%s @ window %.1f" name window in
          Alcotest.(check (list bool))
            (label ^ ": identical outcomes") base.outcomes r.outcomes;
          Alcotest.(check bool) (label ^ ": money conserved") true r.money_conserved;
          Alcotest.(check bool) (label ^ ": serializable") true r.serializable)
        [ 1.0; 4.0; 10.0 ])
    Protocol.all

let test_batching_reduces_overhead () =
  (* The acceptance bar from the issue: with batching on, both wire messages
     per committed transaction and stable-log forces per commit drop
     strictly for 2PC, presumed abort and commit-before with MLTs. *)
  List.iter
    (fun protocol ->
      let name = Protocol.name protocol in
      let base = Overhead.run (overhead_cfg protocol None) in
      let batched = Overhead.run (overhead_cfg protocol (Some 3.0)) in
      Alcotest.(check int) (name ^ ": same committed") base.committed batched.committed;
      Alcotest.(check bool)
        (Printf.sprintf "%s: msgs/commit %.2f < %.2f" name
           batched.messages_per_committed base.messages_per_committed)
        true
        (batched.messages_per_committed < base.messages_per_committed);
      Alcotest.(check bool)
        (Printf.sprintf "%s: forces/commit %.2f < %.2f" name
           batched.log_forces_per_commit base.log_forces_per_commit)
        true
        (batched.log_forces_per_commit < base.log_forces_per_commit);
      Alcotest.(check bool) (name ^ ": batching actually used") true
        (batched.batch_envelopes > 0))
    [ Protocol.Two_phase; Protocol.Presumed_abort; Protocol.Before_mlt ]

(* Satellite property: batched and unbatched runs of the same fixed workload
   agree on every per-transaction outcome, conserve money and stay
   serializable — for a random protocol, window and seed. *)
let prop_batching_equivalence =
  QCheck2.Test.make ~name:"batched run equals unbatched run" ~count:15
    QCheck2.Gen.(tup3 (int_range 0 5) (float_range 0.5 12.0) int)
    (fun (proto_idx, window, seed) ->
      let protocol = List.nth Protocol.all proto_idx in
      let seed = Int64.of_int seed in
      let cfg w = overhead_cfg ~n_txns:40 ~concurrency:6 ~seed protocol w in
      let base = Overhead.run (cfg None) in
      let batched = Overhead.run (cfg (Some window)) in
      base.outcomes = batched.outcomes
      && batched.money_conserved && batched.serializable
      && base.money_conserved && base.serializable)

(* The whole-system property test: random configurations with failures keep
   atomicity and serializability for every protocol. *)
let prop_invariants_under_chaos =
  QCheck2.Test.make ~name:"atomicity + serializability under randomized chaos" ~count:25
    QCheck2.Gen.(
      tup7 (int_range 0 5) (int_range 1 4) (int_range 1 4)
        (float_bound_inclusive 0.3) (float_bound_inclusive 0.2)
        (float_bound_inclusive 6.0) int)
    (fun (proto_idx, n_sites, concurrency, p_intended, p_spont, crash_rate, seed) ->
      let protocol = List.nth Protocol.all proto_idx in
      let r =
        Runner.run
          {
            Runner.default with
            protocol;
            seed = Int64.of_int seed;
            n_sites;
            branches_per_txn = min 2 n_sites;
            accounts_per_site = 6;
            n_txns = 25;
            concurrency;
            p_intended_abort = p_intended;
            p_spontaneous = p_spont;
            crash_rate;
            crash_duration = 15.0;
            zipf_theta = 0.9;
          }
      in
      r.money_conserved && r.serializable)

let () =
  Alcotest.run "workload"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "names unique" `Quick test_protocol_names_unique;
        ] );
      ( "runner",
        [
          Alcotest.test_case "happy path, all protocols" `Quick
            test_runner_happy_path_all_protocols;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_runner_seed_changes_schedule;
          Alcotest.test_case "2pc needs prepare" `Quick test_runner_2pc_needs_prepare;
          Alcotest.test_case "intended aborts compensate" `Quick
            test_runner_intended_aborts_compensate;
          Alcotest.test_case "spontaneous aborts cause repetitions" `Quick
            test_runner_spontaneous_aborts_repetitions;
          Alcotest.test_case "crashes survive" `Slow test_runner_crashes_survive;
          Alcotest.test_case "message complexity" `Quick test_runner_message_complexity;
          Alcotest.test_case "mlt needs no additional components" `Quick
            test_runner_mlt_no_additional_components;
          Alcotest.test_case "heterogeneous CC" `Quick test_runner_heterogeneous_cc;
          Alcotest.test_case "message loss invariants" `Quick
            test_runner_message_loss_invariants;
          Alcotest.test_case "2pc refuses optimistic site" `Quick
            test_runner_2pc_refuses_optimistic_site;
          Alcotest.test_case "read/write mix" `Quick test_runner_read_write_mix;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "parallel sweep equals sequential" `Slow
            test_experiments_parallel_equals_sequential;
        ] );
      ( "batching",
        [
          Alcotest.test_case "windows preserve outcomes" `Quick
            test_batching_preserves_outcomes;
          Alcotest.test_case "batching reduces overhead" `Quick
            test_batching_reduces_overhead;
          QCheck_alcotest.to_alcotest prop_batching_equivalence;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_invariants_under_chaos ]);
    ]
