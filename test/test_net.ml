(* Tests for Icdb_net: links (latency + message accounting) and sites
   (communication-manager endpoints with crash orchestration). *)

module Sim = Icdb_sim.Engine
module Fiber = Icdb_sim.Fiber
module Link = Icdb_net.Link
module Site = Icdb_net.Site
module Db = Icdb_localdb.Engine

let test_link_rpc_latency_and_counts () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:3.0 () in
  let remote_time = ref 0.0 and done_time = ref 0.0 and result = ref 0 in
  Fiber.spawn eng (fun () ->
      result :=
        Link.rpc link ~label:"ping" (fun () ->
            remote_time := Sim.now eng;
            ("pong", 41 + 1));
      done_time := Sim.now eng);
  Sim.run eng;
  Alcotest.(check int) "result" 42 !result;
  Alcotest.(check (float 1e-9)) "request latency" 3.0 !remote_time;
  Alcotest.(check (float 1e-9)) "round trip" 6.0 !done_time;
  Alcotest.(check int) "two messages" 2 (Link.message_count link);
  Alcotest.(check (list (pair string int))) "labels" [ ("ping", 1); ("pong", 1) ]
    (Link.messages_by_label link)

let test_link_reply_label_varies () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  Fiber.spawn eng (fun () ->
      ignore (Link.rpc link ~label:"prepare" (fun () -> ("ready", ())));
      ignore (Link.rpc link ~label:"prepare" (fun () -> ("abort-vote", ()))));
  Sim.run eng;
  Alcotest.(check (list (pair string int)))
    "vote labels distinguished"
    [ ("abort-vote", 1); ("prepare", 2); ("ready", 1) ]
    (Link.messages_by_label link)

let test_link_send_one_way () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:2.0 () in
  let hit = ref 0.0 in
  Fiber.spawn eng (fun () -> Link.send link ~label:"notify" (fun () -> hit := Sim.now eng));
  Sim.run eng;
  Alcotest.(check (float 1e-9)) "one latency" 2.0 !hit;
  Alcotest.(check int) "one message" 1 (Link.message_count link)

let test_link_reset () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:0.5 () in
  Fiber.spawn eng (fun () -> ignore (Link.rpc link ~label:"x" (fun () -> ("y", ()))));
  Sim.run eng;
  Link.reset_counters link;
  Alcotest.(check int) "reset" 0 (Link.message_count link)

let test_link_negative_latency () =
  let eng = Sim.create () in
  Alcotest.check_raises "negative latency" (Invalid_argument "Link.create: negative latency")
    (fun () -> ignore (Link.create eng ~latency:(-1.0) ()))

(* --- Site --- *)

let test_site_basics () =
  let eng = Sim.create () in
  let site = Site.create eng ~latency:1.0 (Db.default_config ~site_name:"s1") in
  Alcotest.(check string) "name" "s1" (Site.name site);
  Alcotest.(check bool) "up" true (Site.is_up site);
  Alcotest.(check (float 1e-9)) "latency" 1.0 (Link.latency (Site.link site))

let test_site_crash_for_and_await_up () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  let woke_at = ref 0.0 in
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 1.0;
      (* Site is down at this point; await recovery. *)
      Site.await_up site;
      woke_at := Sim.now eng);
  ignore (Sim.schedule eng ~delay:0.5 (fun () -> Site.crash_for site ~duration:10.0));
  Sim.run eng;
  Alcotest.(check (float 1e-9)) "woken at restart" 10.5 !woke_at;
  Alcotest.(check bool) "up again" true (Site.is_up site)

let test_site_await_up_immediate () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  let passed = ref false in
  Fiber.spawn eng (fun () ->
      Site.await_up site;
      passed := true);
  Sim.run eng;
  Alcotest.(check bool) "no blocking when up" true !passed

let test_site_crash_preserves_committed () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  Db.load (Site.db site) [ ("k", 7) ];
  Site.crash site;
  Alcotest.(check bool) "down" false (Site.is_up site);
  ignore (Site.restart site);
  Alcotest.(check (option int)) "durable" (Some 7) (Db.committed_value (Site.db site) "k")

let test_site_multiple_waiters () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  Site.crash site;
  let woken = ref 0 in
  for _ = 1 to 3 do
    Fiber.spawn eng (fun () ->
        Site.await_up site;
        incr woken)
  done;
  ignore (Sim.schedule eng ~delay:5.0 (fun () -> ignore (Site.restart site)));
  Sim.run eng;
  Alcotest.(check int) "all waiters woken" 3 !woken

(* Regression: two overlapping [crash_for] outages on one site. The first
   outage's scheduled restart used to fire mid-way through the second outage
   and revive the site ~90 time units early. *)
let test_site_overlapping_crash_for () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  ignore (Sim.schedule eng ~delay:5.0 (fun () -> Site.crash_for site ~duration:10.0));
  ignore (Sim.schedule eng ~delay:10.0 (fun () -> Site.crash_for site ~duration:100.0));
  let up_at_16 = ref true in
  ignore (Sim.schedule eng ~delay:16.0 (fun () -> up_at_16 := Site.is_up site));
  let woke_at = ref 0.0 in
  Fiber.spawn eng (fun () ->
      Fiber.sleep eng 6.0;
      Site.await_up site;
      woke_at := Sim.now eng);
  Sim.run eng;
  Alcotest.(check bool) "stale restart did not fire" false !up_at_16;
  Alcotest.(check (float 1e-9)) "second outage runs its course" 110.0 !woke_at;
  Alcotest.(check bool) "up at end" true (Site.is_up site)

(* Regression: a manual restart inside a [crash_for] window cancels the
   pending restart, and a later plain crash must not be undone by it. *)
let test_site_restart_cancels_pending () =
  let eng = Sim.create () in
  let site = Site.create eng (Db.default_config ~site_name:"s1") in
  ignore (Sim.schedule eng ~delay:0.0 (fun () -> Site.crash_for site ~duration:10.0));
  ignore (Sim.schedule eng ~delay:2.0 (fun () -> ignore (Site.restart site)));
  ignore (Sim.schedule eng ~delay:5.0 (fun () -> Site.crash site));
  let up_mid = ref false in
  ignore (Sim.schedule eng ~delay:3.0 (fun () -> up_mid := Site.is_up site));
  Sim.run eng;
  Alcotest.(check bool) "manual restart took effect" true !up_mid;
  Alcotest.(check bool) "crash after cancelled restart sticks" false (Site.is_up site)

(* --- lossy links --- *)

let test_link_lossy_rpc_exactly_once_effect () =
  let eng = Sim.create () in
  (* 40% loss: plenty of retransmissions. *)
  let link = Link.create eng ~latency:1.0 ~loss:0.4 ~loss_seed:3L () in
  let executions = ref 0 in
  let results = ref [] in
  Fiber.spawn eng (fun () ->
      for i = 1 to 20 do
        let r =
          Link.rpc link ~label:"req" (fun () ->
              incr executions;
              ("rep", i * 10))
        in
        results := r :: !results
      done);
  Sim.run eng;
  Alcotest.(check int) "every call returned" 20 (List.length !results);
  Alcotest.(check (list int)) "correct values in order"
    (List.init 20 (fun i -> (20 - i) * 10))
    !results;
  (* Dedup: the handler ran exactly once per logical request. *)
  Alcotest.(check int) "handler ran once per request" 20 !executions;
  Alcotest.(check bool) "wire carried retransmissions" true
    (Link.message_count link > 40);
  Alcotest.(check bool) "drops counted" true (Link.dropped_count link > 0)

let test_link_lossy_send_effect_once () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 ~loss:0.5 ~loss_seed:9L () in
  let effects = ref 0 in
  Fiber.spawn eng (fun () ->
      for _ = 1 to 10 do
        Link.send link ~label:"notify" (fun () -> incr effects)
      done);
  Sim.run eng;
  Alcotest.(check int) "each datagram delivered once" 10 !effects

(* Retry cap: a wire bad enough to eat every copy makes [rpc] give up with
   [Unreachable] instead of retransmitting forever. Nothing was delivered,
   so no receiver dedup state is orphaned. *)
let test_link_retry_cap_unreachable () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 ~loss:0.99 ~loss_seed:5L ~max_retries:2 () in
  let raised = ref false in
  Fiber.spawn eng (fun () ->
      try ignore (Link.rpc ~gid:9 link ~label:"q" (fun () -> ("r", ())))
      with Link.Unreachable "q" -> raised := true);
  Sim.run eng;
  Alcotest.(check bool) "unreachable after cap" true !raised;
  Alcotest.(check int) "request never delivered, no orphan" 0 (Link.orphan_count link)

(* Orphaned receiver dedup state: the request got through (the receiver
   memoized a reply) but the wire then turned bad and the budget ran out.
   The orphan stays until its global transaction evicts it. *)
let test_link_orphan_eviction () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 ~max_retries:0 () in
  ignore (Sim.schedule eng ~delay:0.5 (fun () -> Link.set_loss link 0.99));
  let raised = ref false and executed = ref 0 in
  Fiber.spawn eng (fun () ->
      try
        ignore
          (Link.rpc ~gid:7 link ~label:"q" (fun () ->
               incr executed;
               ("r", 1)))
      with Link.Unreachable _ -> raised := true);
  Sim.run eng;
  Alcotest.(check bool) "reply lost, budget spent" true !raised;
  Alcotest.(check int) "handler did run" 1 !executed;
  Alcotest.(check int) "dedup entry orphaned" 1 (Link.orphan_count link);
  Link.evict_gid link ~gid:7;
  Alcotest.(check int) "journal close evicts" 0 (Link.orphan_count link)

(* Duplicated deliveries ride the wire and the counters but never re-run the
   handler (receiver-side dedup). *)
let test_link_duplication_deduped () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  Link.set_duplication link 0.99;
  let executed = ref 0 in
  Fiber.spawn eng (fun () ->
      ignore
        (Link.rpc link ~label:"p" (fun () ->
             incr executed;
             ("r", ()))));
  Sim.run eng;
  Alcotest.(check int) "handler once" 1 !executed;
  Alcotest.(check int) "request+reply plus two duplicate copies" 4
    (Link.message_count link)

let test_link_loss_validation () =
  let eng = Sim.create () in
  Alcotest.check_raises "loss = 1 rejected"
    (Invalid_argument "Link.create: loss must be in [0,1)") (fun () ->
      ignore (Link.create eng ~latency:1.0 ~loss:1.0 ()))

(* --- piggyback accounting --- *)

let test_link_count_piggyback () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let sent = ref [] in
  Link.set_observer link (function
    | Link.Msg_sent { label } -> sent := label :: !sent
    | _ -> ());
  Link.count_piggyback link ~label:"commit";
  Link.count_piggyback link ~label:"commit";
  Alcotest.(check int) "no physical messages" 0 (Link.message_count link);
  Alcotest.(check (list (pair string int))) "label counted" [ ("commit", 2) ]
    (Link.messages_by_label link);
  Alcotest.(check (list string)) "observer fired per logical message"
    [ "commit"; "commit" ] !sent

let test_link_reset_then_recount () =
  (* Counter refs are zeroed in place on reset, so senders keep counting into
     the same cells; labels with a zero count do not reappear. *)
  let eng = Sim.create () in
  let link = Link.create eng ~latency:0.5 () in
  Fiber.spawn eng (fun () -> ignore (Link.rpc link ~label:"ping" (fun () -> ("pong", ()))));
  Sim.run eng;
  Link.reset_counters link;
  Alcotest.(check (list (pair string int))) "no zero-count labels" []
    (Link.messages_by_label link);
  Fiber.spawn eng (fun () -> ignore (Link.rpc link ~label:"ping" (fun () -> ("pong", ()))));
  Sim.run eng;
  Alcotest.(check (list (pair string int))) "recounted from zero"
    [ ("ping", 1); ("pong", 1) ]
    (Link.messages_by_label link)

(* --- Batcher --- *)

module Batcher = Icdb_net.Batcher

let test_batcher_coalesces_rpcs () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let b = Batcher.create eng link ~window:2.0 in
  let occupancies = ref [] in
  Batcher.set_observer b (fun n -> occupancies := n :: !occupancies);
  let order = ref [] and done_at = ref [] in
  for i = 1 to 3 do
    Fiber.spawn eng (fun () ->
        Batcher.rpc b ~label:"commit" (fun () ->
            order := i :: !order;
            "finished");
        done_at := (i, Sim.now eng) :: !done_at)
  done;
  Sim.run eng;
  (* One envelope out, one coalesced ack back. *)
  Alcotest.(check int) "two wire messages" 2 (Link.message_count link);
  Alcotest.(check (list (pair string int)))
    "physical envelope + logical members"
    [ ("batch", 1); ("batch-reply", 1); ("commit", 3); ("finished", 3) ]
    (Link.messages_by_label link);
  Alcotest.(check (list int)) "handlers ran in enqueue order" [ 1; 2; 3 ] (List.rev !order);
  List.iter
    (fun (i, t) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "member %d completes at window + round trip" i)
        4.0 t)
    !done_at;
  Alcotest.(check (list int)) "occupancy observed" [ 3 ] !occupancies;
  Alcotest.(check int) "one envelope" 1 (Batcher.envelope_count b);
  Alcotest.(check int) "three members" 3 (Batcher.member_count b);
  Alcotest.(check (float 1e-9)) "mean occupancy" 3.0 (Batcher.mean_occupancy b)

let test_batcher_windows_split () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let b = Batcher.create eng link ~window:2.0 in
  Fiber.spawn eng (fun () -> Batcher.rpc b ~label:"a" (fun () -> "finished"));
  (* Enqueued after the first window closed: its own envelope. *)
  ignore
    (Sim.schedule eng ~delay:5.0 (fun () ->
         Fiber.spawn eng (fun () -> Batcher.rpc b ~label:"b" (fun () -> "finished"))));
  Sim.run eng;
  Alcotest.(check int) "two envelopes" 2 (Batcher.envelope_count b);
  Alcotest.(check int) "four wire messages" 4 (Link.message_count link)

let test_batcher_all_oneway_no_ack () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let b = Batcher.create eng link ~window:1.0 in
  let effects = ref 0 in
  for _ = 1 to 3 do
    Fiber.spawn eng (fun () -> Batcher.send b ~label:"abort" (fun () -> incr effects))
  done;
  Sim.run eng;
  Alcotest.(check int) "all effects ran" 3 !effects;
  (* Presumed abort's ack elimination survives: a one-way batch has no reply. *)
  Alcotest.(check int) "one wire message" 1 (Link.message_count link);
  Alcotest.(check (list (pair string int)))
    "no batch-reply"
    [ ("abort", 3); ("batch", 1) ]
    (Link.messages_by_label link)

let test_batcher_mixed_kinds_uses_rpc_envelope () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let b = Batcher.create eng link ~window:1.0 in
  let effects = ref 0 in
  Fiber.spawn eng (fun () -> Batcher.rpc b ~label:"commit" (fun () -> "finished"));
  Fiber.spawn eng (fun () -> Batcher.send b ~label:"abort" (fun () -> incr effects));
  Sim.run eng;
  Alcotest.(check int) "one-way member ran" 1 !effects;
  Alcotest.(check (list (pair string int)))
    "rpc envelope, reply only for the rpc member"
    [ ("abort", 1); ("batch", 1); ("batch-reply", 1); ("commit", 1); ("finished", 1) ]
    (Link.messages_by_label link)

exception Handler_boom

let test_batcher_member_failure_isolated () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 () in
  let b = Batcher.create eng link ~window:1.0 in
  let ok = ref false and failed = ref false in
  Fiber.spawn eng (fun () ->
      match Batcher.rpc b ~label:"commit" (fun () -> raise Handler_boom) with
      | () -> ()
      | exception Handler_boom -> failed := true);
  Fiber.spawn eng (fun () ->
      Batcher.rpc b ~label:"commit" (fun () -> "finished");
      ok := true);
  Sim.run eng;
  Alcotest.(check bool) "failing member raises at its call site" true !failed;
  Alcotest.(check bool) "other member unaffected" true !ok;
  (* The raising handler produced no reply, so only one "finished". *)
  Alcotest.(check (list (pair string int)))
    "no reply accounted for the failed member"
    [ ("batch", 1); ("batch-reply", 1); ("commit", 2); ("finished", 1) ]
    (Link.messages_by_label link)

let test_batcher_lossy_members_exactly_once () =
  let eng = Sim.create () in
  let link = Link.create eng ~latency:1.0 ~loss:0.4 ~loss_seed:5L () in
  let b = Batcher.create eng link ~window:1.0 in
  let runs = ref 0 and completed = ref 0 in
  for _ = 1 to 4 do
    Fiber.spawn eng (fun () ->
        Batcher.rpc b ~label:"commit" (fun () ->
            incr runs;
            "finished");
        incr completed)
  done;
  Sim.run eng;
  (* Receiver-side dedup on the envelope keeps members exactly-once even
     though envelope copies were retransmitted. *)
  Alcotest.(check int) "every member completed" 4 !completed;
  Alcotest.(check int) "handlers ran once" 4 !runs

let () =
  Alcotest.run "net"
    [
      ( "link",
        [
          Alcotest.test_case "rpc latency and counts" `Quick test_link_rpc_latency_and_counts;
          Alcotest.test_case "reply labels" `Quick test_link_reply_label_varies;
          Alcotest.test_case "one-way send" `Quick test_link_send_one_way;
          Alcotest.test_case "reset" `Quick test_link_reset;
          Alcotest.test_case "negative latency" `Quick test_link_negative_latency;
        ] );
      ( "loss",
        [
          Alcotest.test_case "rpc dedup under loss" `Quick
            test_link_lossy_rpc_exactly_once_effect;
          Alcotest.test_case "send delivered once" `Quick test_link_lossy_send_effect_once;
          Alcotest.test_case "retry cap unreachable" `Quick
            test_link_retry_cap_unreachable;
          Alcotest.test_case "orphan eviction" `Quick test_link_orphan_eviction;
          Alcotest.test_case "duplication deduped" `Quick test_link_duplication_deduped;
          Alcotest.test_case "validation" `Quick test_link_loss_validation;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "piggyback counting" `Quick test_link_count_piggyback;
          Alcotest.test_case "reset then recount" `Quick test_link_reset_then_recount;
          Alcotest.test_case "coalesces rpcs" `Quick test_batcher_coalesces_rpcs;
          Alcotest.test_case "windows split" `Quick test_batcher_windows_split;
          Alcotest.test_case "all one-way, no ack" `Quick test_batcher_all_oneway_no_ack;
          Alcotest.test_case "mixed kinds" `Quick test_batcher_mixed_kinds_uses_rpc_envelope;
          Alcotest.test_case "member failure isolated" `Quick
            test_batcher_member_failure_isolated;
          Alcotest.test_case "exactly-once under loss" `Quick
            test_batcher_lossy_members_exactly_once;
        ] );
      ( "site",
        [
          Alcotest.test_case "basics" `Quick test_site_basics;
          Alcotest.test_case "crash_for / await_up" `Quick test_site_crash_for_and_await_up;
          Alcotest.test_case "overlapping crash_for" `Quick
            test_site_overlapping_crash_for;
          Alcotest.test_case "restart cancels pending" `Quick
            test_site_restart_cancels_pending;
          Alcotest.test_case "await_up immediate" `Quick test_site_await_up_immediate;
          Alcotest.test_case "crash durability" `Quick test_site_crash_preserves_committed;
          Alcotest.test_case "multiple waiters" `Quick test_site_multiple_waiters;
        ] );
    ]
